// Ablation study (ours, beyond the paper's figures): isolates the design
// choices DESIGN.md calls out —
//   1. vertex pruning on/off (GVE-LPA feature 4),
//   2. per-iteration tolerance sweep (the paper fixes tau = 0.05),
//   3. asynchrony granularity: how many simulated blocks are in flight
//      (the simulator knob standing in for SM residency).
//
// --trace FILE streams every configuration's per-iteration events to one
// JSONL file; the `context` field names "<graph>/<setting>" so a single
// capture holds the whole sweep (`nulpa trace-summary --input FILE`).
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/nulpa.hpp"
#include "core/runner.hpp"
#include "observe/trace.hpp"
#include "perfmodel/machine.hpp"
#include "quality/modularity.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nulpa;
  const CliArgs args(argc, argv);
  const auto opts = bench::SuiteOptions::from_args(args);
  // --parallel-sim / --threads pick the simulator backend for every swept
  // configuration; modeled times are backend-independent.
  const simt::ExecPolicy exec =
      exec_policy_from_flags(parse_common_flags(args));
  apply_threads(exec);
  const auto graphs = make_large_subset(opts.scale, opts.seed);
  const MachineModel gpu = a100();

  std::ofstream trace_file;
  std::optional<observe::JsonlEmitter> jsonl;
  if (const std::string path = args.get("trace", ""); !path.empty()) {
    trace_file.open(path);
    if (!trace_file) {
      std::fprintf(stderr, "cannot open for write: %s\n", path.c_str());
      return 2;
    }
    jsonl.emplace(trace_file, gpu);
  }

  auto sweep = [&](const char* title, auto&& configure,
                   const std::vector<double>& knob_values,
                   auto&& knob_label) {
    std::printf("=== Ablation: %s (%zu graphs)\n\n", title, graphs.size());
    TextTable table({"setting", "rel. runtime (modeled)", "mean modularity",
                     "mean iterations", "edges scanned"});
    std::vector<double> ref_time;
    bool first = true;
    for (const double knob : knob_values) {
      std::vector<double> rel_t, qs;
      double iters = 0.0;
      double edges = 0.0;
      for (std::size_t i = 0; i < graphs.size(); ++i) {
        NuLpaConfig cfg;
        cfg.exec = exec;
        configure(cfg, knob);
        observe::ContextTracer ctx(
            jsonl ? &*jsonl : nullptr,
            graphs[i].spec.name + "/" + knob_label(knob));
        const auto r = nu_lpa(graphs[i].graph, cfg,
                              ctx.enabled() ? &ctx : nullptr);
        const double t = modeled_gpu_seconds(gpu, r.counters);
        if (first) {
          ref_time.push_back(t);
          rel_t.push_back(1.0);
        } else {
          rel_t.push_back(t / ref_time[i]);
        }
        qs.push_back(modularity(graphs[i].graph, r.labels));
        iters += r.iterations;
        edges += static_cast<double>(r.edges_scanned);
      }
      table.add_row({knob_label(knob), fmt(bench::geomean(rel_t), 3),
                     fmt(bench::mean(qs), 4),
                     fmt(iters / static_cast<double>(graphs.size()), 2),
                     fmt_count(edges)});
      first = false;
    }
    table.print();
    std::printf("\n");
  };

  sweep(
      "vertex pruning",
      [](NuLpaConfig& cfg, double on) { cfg.pruning = on != 0.0; },
      {1.0, 0.0},
      [](double on) { return std::string(on != 0.0 ? "pruning on (default)"
                                                   : "pruning off"); });

  sweep(
      "per-iteration tolerance tau",
      [](NuLpaConfig& cfg, double tau) { cfg.tolerance = tau; },
      {0.05, 0.3, 0.1, 0.01, 0.001},
      [](double tau) {
        return std::string("tau = ") + fmt(tau, 3) +
               (tau == 0.05 ? " (default)" : "");
      });

  sweep(
      "shared-memory tables for low-degree vertices (Section 4.2 footnote)",
      [](NuLpaConfig& cfg, double on) {
        cfg.shared_memory_tables = on != 0.0;
      },
      {0.0, 1.0},
      [](double on) {
        return std::string(on != 0.0 ? "tables in shared memory"
                                     : "tables in global memory (default)");
      });

  sweep(
      "asynchrony granularity (resident thread-blocks)",
      [](NuLpaConfig& cfg, double blocks) {
        cfg.launch.resident_blocks = static_cast<std::uint32_t>(blocks);
        cfg.bpv_resident_blocks = static_cast<std::uint32_t>(blocks) * 32;
      },
      {8.0, 1.0, 2.0, 4.0, 16.0},
      [](double blocks) {
        return std::string(fmt(blocks, 0)) + " TPV blocks in flight" +
               (blocks == 8.0 ? " (default)" : "");
      });

  std::printf(
      "Reading: pruning trades a negligible quality delta for a large cut "
      "in edges scanned; loose tolerances stop earlier at small quality "
      "cost (the paper picked 0.05 for this reason); lower residency "
      "serializes the simulated GPU and lets label epidemics erode "
      "quality.\n");
  return 0;
}
