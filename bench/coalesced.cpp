// Appendix figure: the default open-addressing hashtable (quadratic-double)
// versus a coalesced-chaining design with an extra `nexts` array H_n.
// Both run with every vertex in the thread-per-vertex kernel so the table
// design is the only variable.
//
// Paper's finding: coalesced chaining does not improve performance — the
// chain walks cost as much as the probes they replace, and H_n adds 50%
// more table memory traffic.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/nulpa.hpp"
#include "perfmodel/machine.hpp"
#include "quality/modularity.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nulpa;
  const CliArgs args(argc, argv);
  const auto opts = bench::SuiteOptions::from_args(args);
  const auto graphs = make_large_subset(opts.scale, opts.seed);
  const MachineModel gpu = a100();

  std::printf("=== Appendix: default vs coalesced hashing (relative to "
              "default, %zu graphs)\n\n",
              graphs.size());
  TextTable table({"design", "rel. runtime (modeled)", "probes+chain steps",
                   "mean modularity"});

  std::vector<double> ref_time;
  const Probing designs[] = {Probing::kQuadDouble, Probing::kCoalesced};
  for (const Probing p : designs) {
    std::vector<double> rel_t, qs;
    double steps = 0.0;
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      NuLpaConfig cfg;
      cfg.probing = p;
      cfg.switch_degree = 0xFFFFFFFF;  // all thread-per-vertex (see header)
      const auto r = nu_lpa(graphs[i].graph, cfg);
      const double t = modeled_gpu_seconds(gpu, r.counters);
      if (p == Probing::kQuadDouble) {
        ref_time.push_back(t);
        rel_t.push_back(1.0);
      } else {
        rel_t.push_back(t / ref_time[i]);
      }
      steps += static_cast<double>(r.hash_stats.probes);
      qs.push_back(modularity(graphs[i].graph, r.labels));
    }
    table.add_row({p == Probing::kQuadDouble ? "Default (quad-double)"
                                             : "Coalesced chaining",
                   fmt(bench::geomean(rel_t), 3), fmt(steps, 0),
                   fmt(bench::mean(qs), 4)});
  }
  table.print();
  std::printf("\nPaper: coalesced hashing does not beat the default.\n");
  return 0;
}
