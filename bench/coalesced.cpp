// Coalesced-layout study: ν-LPA with warp-aligned (lane-major interleaved)
// hashtable slabs and blocked neighbor gather versus the flat per-vertex
// slab layout. The thread-per-vertex kernel assigns consecutive vertices to
// consecutive lanes, so under the flat layout every lane streams its own
// slab and each issue window touches up to 32 distinct cache lines; the
// interleaved layout puts the i-th element of all 32 cohort slabs on the
// same line, collapsing those windows into a handful of wide transactions.
// Labels stay byte-identical — only addresses move — and the win is
// reported as the measured drop in global-memory transactions per scanned
// edge (the simulator's coalescer counts them; see DESIGN.md "Memory
// hierarchy"). Emits machine-readable BENCH_coalesce.json for
// tools/bench_check.py; the committed reference copy lives under
// bench/baselines/.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/nulpa.hpp"
#include "graph/dataset.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace nulpa;

struct ModeStats {
  RunReport report;
  double seconds = 0.0;
  double txn_per_edge = 0.0;
};

ModeStats run_mode(const Graph& g, const NuLpaConfig& cfg) {
  ModeStats s;
  Timer timer;
  s.report = nu_lpa(g, cfg);
  s.seconds = timer.seconds();
  const auto& c = s.report.counters;
  s.txn_per_edge = c.edges_scanned > 0
                       ? static_cast<double>(c.global_transactions) /
                             static_cast<double>(c.edges_scanned)
                       : 0.0;
  return s;
}

struct GraphResult {
  std::string name;
  const Graph* graph = nullptr;
  ModeStats flat;
  ModeStats coal;
  bool identical = false;
  double txn_reduction = 0.0;  // flat txn/edge over coalesced txn/edge
  double wall_speedup = 0.0;
};

void write_mode(std::FILE* f, const char* name, const ModeStats& s) {
  const auto& c = s.report.counters;
  const auto u64 = [](std::uint64_t x) {
    return static_cast<unsigned long long>(x);
  };
  std::fprintf(f, "      \"%s\": {\n", name);
  std::fprintf(f, "        \"seconds\": %.6f,\n", s.seconds);
  std::fprintf(f, "        \"iterations\": %d,\n", s.report.iterations);
  std::fprintf(f, "        \"tracked_accesses\": %llu,\n",
               u64(c.tracked_accesses));
  std::fprintf(f, "        \"global_transactions\": %llu,\n",
               u64(c.global_transactions));
  std::fprintf(f, "        \"coalesced_accesses\": %llu,\n",
               u64(c.coalesced_accesses));
  std::fprintf(f, "        \"txn_32b\": %llu, \"txn_64b\": %llu, "
               "\"txn_128b\": %llu,\n",
               u64(c.txn_32b), u64(c.txn_64b), u64(c.txn_128b));
  std::fprintf(f, "        \"cache_hits\": %llu, \"cache_misses\": %llu,\n",
               u64(c.cache_hits), u64(c.cache_misses));
  std::fprintf(f, "        \"edges_scanned\": %llu,\n", u64(c.edges_scanned));
  std::fprintf(f, "        \"transactions_per_edge\": %.6f\n", s.txn_per_edge);
  std::fprintf(f, "      }");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nulpa;
  const CliArgs args(argc, argv);
  const auto scale = args.get_int("scale", 4000);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const std::string out = args.get("out", "BENCH_coalesce.json");

  // One instance per suite category shape, matching bench/frontier.cpp's
  // picks: a road network (uniform low degrees — whole cohorts share one
  // slab stride, the best case), a k-mer graph (degree <= 4, similar), and
  // a web crawl (power-law degrees — ragged cohorts, the stress case).
  struct Pick {
    const char* name;
    int factor;
  };
  const Pick picks[] = {
      {"europe_osm", 3}, {"kmer_V1r", 1}, {"webbase-2001", 1}};

  // Default config: the coalesced-layout knob is the only variable. The
  // transaction counters the headline is built from are exact simulator
  // measurements, deterministic for a given graph — only the wall-clock
  // seconds vary across hosts.
  const NuLpaConfig base;

  std::vector<DatasetInstance> instances;
  std::vector<GraphResult> results;
  for (const Pick& pick : picks) {
    const DatasetSpec* spec = nullptr;
    for (const DatasetSpec& s : dataset_specs()) {
      if (s.name == pick.name) spec = &s;
    }
    if (spec == nullptr) continue;
    instances.push_back(make_dataset(
        *spec, static_cast<Vertex>(scale * pick.factor), seed));
  }
  std::printf("=== Coalesced layout: warp-interleaved slabs vs flat "
              "per-vertex slabs (measured transactions)\n\n");

  for (const DatasetInstance& inst : instances) {
    GraphResult r;
    r.name = inst.spec.name;
    r.graph = &inst.graph;
    r.flat = run_mode(inst.graph, base.with_coalesced_layout(false));
    r.coal = run_mode(inst.graph, base.with_coalesced_layout(true));
    r.identical = r.flat.report.labels == r.coal.report.labels;
    r.txn_reduction = r.coal.txn_per_edge > 0
                          ? r.flat.txn_per_edge / r.coal.txn_per_edge
                          : 0.0;
    r.wall_speedup =
        r.coal.seconds > 0 ? r.flat.seconds / r.coal.seconds : 0.0;
    results.push_back(std::move(r));
  }

  TextTable table({"graph", "|V|", "txn/edge flat", "txn/edge coalesced",
                   "txn cut", "labels identical"});
  bool all_identical = true;
  const GraphResult* largest = nullptr;
  for (const GraphResult& r : results) {
    all_identical = all_identical && r.identical;
    if (largest == nullptr ||
        r.graph->num_vertices() > largest->graph->num_vertices()) {
      largest = &r;
    }
    table.add_row({r.name,
                   fmt_count(static_cast<double>(r.graph->num_vertices())),
                   fmt(r.flat.txn_per_edge, 3), fmt(r.coal.txn_per_edge, 3),
                   fmt(r.txn_reduction, 2) + "x",
                   r.identical ? "yes" : "NO"});
  }
  table.print();
  if (largest != nullptr) {
    std::printf("\nlargest graph (%s, |V|=%u): transactions per edge cut "
                "%.2fx (%.3f -> %.3f)\n",
                largest->name.c_str(), largest->graph->num_vertices(),
                largest->txn_reduction, largest->flat.txn_per_edge,
                largest->coal.txn_per_edge);
  }

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"scale\": %d,\n", static_cast<int>(scale));
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"reference_mode\": \"flat\",\n");
  std::fprintf(f, "  \"optimized_mode\": \"coalesced\",\n");
  std::fprintf(f, "  \"labels_identical\": %s,\n",
               all_identical ? "true" : "false");
  if (largest != nullptr) {
    std::fprintf(f,
                 "  \"headline\": {\"graph\": \"%s\", \"vertices\": %u, "
                 "\"transactions_per_edge_reduction\": %.4f},\n",
                 largest->name.c_str(), largest->graph->num_vertices(),
                 largest->txn_reduction);
  }
  std::fprintf(f, "  \"graphs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const GraphResult& r = results[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f,
                 "      \"name\": \"%s\", \"vertices\": %u, "
                 "\"edges\": %llu,\n",
                 r.name.c_str(), r.graph->num_vertices(),
                 static_cast<unsigned long long>(r.graph->num_edges()));
    std::fprintf(f, "      \"labels_identical\": %s,\n",
                 r.identical ? "true" : "false");
    std::fprintf(f,
                 "      \"speedup\": {\"transactions_per_edge_reduction\": "
                 "%.4f, \"wall_clock\": %.4f},\n",
                 r.txn_reduction, r.wall_speedup);
    write_mode(f, "flat", r.flat);
    std::fprintf(f, ",\n");
    write_mode(f, "coalesced", r.coal);
    std::fprintf(f, "\n    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());

  return all_identical ? 0 : 1;
}
