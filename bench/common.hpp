// Shared plumbing for the per-figure bench harnesses: dataset loading knobs
// and the relative-metric helpers the paper's figures report ("relative
// runtime", "relative modularity" — both normalized within each graph, then
// averaged across graphs).
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "graph/dataset.hpp"
#include "util/cli.hpp"

namespace nulpa::bench {

/// Suite scale: every bench accepts --scale N (vertices of the smallest
/// instance) and --seed. Defaults keep the full 13-graph sweep under a few
/// minutes on one core.
struct SuiteOptions {
  Vertex scale = 3000;
  std::uint64_t seed = 42;

  static SuiteOptions from_args(const CliArgs& args) {
    SuiteOptions o;
    o.scale = static_cast<Vertex>(args.get_int("scale", o.scale));
    o.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    return o;
  }
};

/// Geometric mean — the standard aggregator for runtime ratios.
inline double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

/// Arithmetic mean, used for modularity ratios (which straddle 1.0).
inline double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

}  // namespace nulpa::bench
