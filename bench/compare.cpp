// Figure 7 (a, b, c): the headline comparison — FLPA (sequential),
// NetworKit-style PLP (32-core modeled), Gunrock-style LPA (GPU modeled),
// cuGraph-style Louvain (GPU modeled), and ν-LPA (simulated A100) on all 13
// dataset analogues. Emits three tables mirroring the figure's three
// panels: runtime, speedup of ν-LPA, and modularity.
//
// Time accounting (see DESIGN.md "Hardware substitutions"):
//  * nu-LPA      — modeled A100 time from simulator hardware counters.
//  * FLPA        — measured single-thread wall-clock (it is sequential in
//                  the paper too).
//  * PLP         — measured single-thread wall-clock scaled to the paper's
//                  32 cores at 50% parallel efficiency.
//  * Gunrock     — run on the SIMT simulator (gunrock_lpa_simt); counters
//                  scaled for its segmented-sort aggregation (8x traffic)
//                  and multi-kernel frontier steps (4 launches/iteration).
//  * Louvain     — modeled A100 time from its edge-scan work (~8 words per
//                  edge: local moving plus aggregation traffic).
//
// Paper's findings: nu-LPA is ~364x vs FLPA, ~62x vs PLP, ~2.6x vs Gunrock,
// ~37x vs cuGraph Louvain; modularity +4.7% vs FLPA (driven by road/k-mer
// graphs), -6.1% vs PLP, -9.6% vs Louvain.
#include <cstdio>
#include <vector>

#include "baselines/flpa.hpp"
#include "baselines/gunrock_lpa.hpp"
#include "baselines/gunrock_lpa_simt.hpp"
#include "baselines/louvain.hpp"
#include "baselines/plp.hpp"
#include "bench/common.hpp"
#include "core/nulpa.hpp"
#include "perfmodel/machine.hpp"
#include "quality/modularity.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nulpa;
  const CliArgs args(argc, argv);
  const auto opts = bench::SuiteOptions::from_args(args);
  const auto graphs = make_dataset_suite(opts.scale, opts.seed);
  const MachineModel gpu = a100();

  struct Row {
    std::string name;
    double t_flpa, t_plp, t_gunrock, t_louvain, t_nu;
    double q_flpa, q_plp, q_gunrock, q_louvain, q_nu;
    double nu_edges_per_s;
  };
  std::vector<Row> rows;

  for (const auto& inst : graphs) {
    const Graph& g = inst.graph;
    Row row;
    row.name = inst.spec.name;

    const auto r_nu = nu_lpa(g);
    row.t_nu = modeled_gpu_seconds(gpu, r_nu.counters);
    row.q_nu = modularity(g, r_nu.labels);
    row.nu_edges_per_s =
        static_cast<double>(g.num_edges()) * r_nu.iterations / row.t_nu;

    const auto r_flpa = flpa(g, FlpaConfig{});
    row.t_flpa = r_flpa.seconds;
    row.q_flpa = modularity(g, r_flpa.labels);

    const auto r_plp = plp(g, PlpConfig{});
    row.t_plp = modeled_cpu_seconds(r_plp.seconds, 32, 0.5);
    row.q_plp = modularity(g, r_plp.labels);

    // Gunrock's synchronous LPA runs on the same SIMT simulator as ν-LPA
    // so both GPU rows are modeled from real hardware counters. Its label
    // aggregation is segmented *sort* in the real system: ~4 radix passes,
    // each reading and writing key+value for every edge, plus the frontier
    // machinery — about 8x the traffic of the hashed single pass our
    // work-equivalent kernel counts, hence the multiplier.
    const auto r_gr = gunrock_lpa_simt(g, GunrockLpaConfig{});
    simt::PerfCounters gr_ctr = r_gr.counters;
    gr_ctr.global_loads *= 8;
    gr_ctr.global_stores *= 8;
    gr_ctr.kernel_launches *= 4;  // advance / filter / sort / reduce per step
    row.t_gunrock = modeled_gpu_seconds(gpu, gr_ctr);
    row.q_gunrock = modularity(g, r_gr.labels);

    // cuGraph Louvain: local moving runs to a tight gain threshold (many
    // sweeps), each pass issues dozens of kernels, and per-edge hashmap
    // work plus graph contraction dominate — modeled as 16 words + 2
    // dependent random accesses per scanned edge and ~25 launches/pass.
    LouvainConfig lv_cfg;
    lv_cfg.tolerance = 1e-3;
    const auto r_lv = louvain(g, lv_cfg);
    row.t_louvain = modeled_gpu_seconds_from_work(
        gpu, r_lv.edges_scanned, 25 * r_lv.iterations,
        /*words_per_edge=*/16.0, /*random_per_edge=*/2.0);
    row.q_louvain = modularity(g, r_lv.labels);

    rows.push_back(row);
  }

  std::printf("=== Figure 7a: runtime in seconds (modeled platforms; see "
              "header)\n\n");
  TextTable t_runtime({"Graph", "FLPA (1 core)", "PLP (32 cores)",
                       "Gunrock (GPU)", "Louvain (GPU)", "nu-LPA (GPU)"});
  for (const auto& r : rows) {
    t_runtime.add_row({r.name, fmt(r.t_flpa, 3), fmt(r.t_plp, 3),
                       fmt(r.t_gunrock, 3), fmt(r.t_louvain, 3),
                       fmt(r.t_nu, 3)});
  }
  t_runtime.print();

  std::printf("\n=== Figure 7b: speedup of nu-LPA (paper: 364x / 62x / "
              "2.6x / 37x)\n\n");
  TextTable t_speedup({"Graph", "vs FLPA", "vs PLP", "vs Gunrock",
                       "vs Louvain", "nu-LPA edges/s"});
  std::vector<double> s_flpa, s_plp, s_gr, s_lv;
  for (const auto& r : rows) {
    s_flpa.push_back(r.t_flpa / r.t_nu);
    s_plp.push_back(r.t_plp / r.t_nu);
    s_gr.push_back(r.t_gunrock / r.t_nu);
    s_lv.push_back(r.t_louvain / r.t_nu);
    t_speedup.add_row({r.name, fmt(r.t_flpa / r.t_nu, 3),
                       fmt(r.t_plp / r.t_nu, 3), fmt(r.t_gunrock / r.t_nu, 3),
                       fmt(r.t_louvain / r.t_nu, 3),
                       fmt_count(r.nu_edges_per_s)});
  }
  t_speedup.add_row({"geomean", fmt(bench::geomean(s_flpa), 3),
                     fmt(bench::geomean(s_plp), 3),
                     fmt(bench::geomean(s_gr), 3),
                     fmt(bench::geomean(s_lv), 3), ""});
  t_speedup.print();

  std::printf("\n=== Figure 7c: modularity (paper: nu-LPA +4.7%% vs FLPA, "
              "-6.1%% vs PLP, -9.6%% vs Louvain)\n\n");
  TextTable t_q({"Graph", "FLPA", "PLP", "Gunrock", "Louvain", "nu-LPA"});
  std::vector<double> d_flpa, d_plp, d_gr, d_lv;
  for (const auto& r : rows) {
    t_q.add_row({r.name, fmt(r.q_flpa, 3), fmt(r.q_plp, 3),
                 fmt(r.q_gunrock, 3), fmt(r.q_louvain, 3), fmt(r.q_nu, 3)});
    if (r.q_flpa > 0) d_flpa.push_back(r.q_nu / r.q_flpa);
    if (r.q_plp > 0) d_plp.push_back(r.q_nu / r.q_plp);
    if (r.q_gunrock > 0) d_gr.push_back(r.q_nu / r.q_gunrock);
    if (r.q_louvain > 0) d_lv.push_back(r.q_nu / r.q_louvain);
  }
  t_q.print();
  std::printf("\nnu-LPA modularity relative to: FLPA %+.1f%%, PLP %+.1f%%, "
              "Gunrock %+.1f%%, Louvain %+.1f%%\n",
              (bench::mean(d_flpa) - 1.0) * 100.0,
              (bench::mean(d_plp) - 1.0) * 100.0,
              (bench::mean(d_gr) - 1.0) * 100.0,
              (bench::mean(d_lv) - 1.0) * 100.0);
  return 0;
}
