// Figure 7 (a, b, c): the headline comparison — every algorithm in the
// registry (ν-LPA, GVE-LPA, FLPA, NetworKit-style PLP, textbook sequential
// LPA, Gunrock-style LPA, cuGraph-style Louvain) on all 13 dataset
// analogues. Emits three tables mirroring the figure's three panels:
// runtime, speedup of ν-LPA, and modularity.
//
// Dispatch goes through core/runner.hpp: each registered runner fills
// RunReport::modeled_seconds with its reference-platform accounting (see
// DESIGN.md "Hardware substitutions" and the registry descriptions), so the
// sweep below has no per-algorithm logic at all.
//
// Paper's findings: nu-LPA is ~364x vs FLPA, ~62x vs PLP, ~2.6x vs Gunrock,
// ~37x vs cuGraph Louvain; modularity +4.7% vs FLPA (driven by road/k-mer
// graphs), -6.1% vs PLP, -9.6% vs Louvain.
//
// --trace FILE streams every run's iteration events to one JSONL file,
// with each event's `context` field naming the dataset (see DESIGN.md "Trace
// schema"); inspect it with `nulpa trace-summary --input FILE`.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/runner.hpp"
#include "observe/metrics.hpp"
#include "observe/trace.hpp"
#include "perfmodel/machine.hpp"
#include "quality/modularity.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nulpa;
  const CliArgs args(argc, argv);
  const auto opts = bench::SuiteOptions::from_args(args);
  const CommonFlags flags = parse_common_flags(args);
  const auto graphs = make_dataset_suite(opts.scale, opts.seed);
  const auto& registry = algorithm_registry();

  std::ofstream trace_file;
  std::optional<observe::JsonlEmitter> jsonl;
  if (const std::string path = args.get("trace", ""); !path.empty()) {
    trace_file.open(path);
    if (!trace_file) {
      std::fprintf(stderr, "cannot open for write: %s\n", path.c_str());
      return 2;
    }
    jsonl.emplace(trace_file, a100());
  }

  struct Cell {
    double t = 0.0;  // reference-platform seconds (RunReport.modeled_seconds)
    double q = 0.0;  // modularity
    int iterations = 0;
  };
  struct Row {
    std::string name;
    std::vector<Cell> cells;  // registry order
    double nu_edges_per_s = 0.0;
  };
  std::vector<Row> rows;

  // --parallel-sim / --threads / --seed select the simulator backend for
  // the simulator-backed rows (nulpa, gunrock); modeled times are
  // backend-independent because the hardware counters are.
  RunOptions run_opts = run_options_from_flags(flags);
  apply_threads(run_opts.exec);
  // cuGraph Louvain runs local moving to a tight gain threshold (many
  // sweeps per pass) — keep the comparison's historical setting.
  run_opts.louvain.tolerance = 1e-3;

  // Per-iteration latency distributions, one histogram per algorithm
  // across all graphs (LPA's early sweeps move almost every label and the
  // tail moves a handful — means hide that; p50/p95/p99 expose it).
  observe::MetricsRegistry iter_metrics;

  for (const auto& inst : graphs) {
    const Graph& g = inst.graph;
    Row row;
    row.name = inst.spec.name;

    observe::ContextTracer ctx(jsonl ? &*jsonl : nullptr, inst.spec.name);

    for (const auto& algo : registry) {
      observe::CollectingTracer iter_sink;
      observe::MultiTracer fan;
      if (ctx.enabled()) fan.add(&ctx);
      fan.add(&iter_sink);
      run_opts.tracer = &fan;
      const RunReport r = algo.run(g, run_opts);
      auto& hist = iter_metrics.histogram(std::string(algo.name));
      for (const auto& ev : iter_sink.events()) {
        if (ev.kind != observe::EventKind::kIterationEnd) continue;
        // Modeled seconds for simulator-backed rows (deterministic at a
        // fixed scale/seed), host wall for the rest.
        const double s = ev.has_counters
                             ? modeled_gpu_seconds(a100(), ev.counters)
                             : ev.seconds;
        hist.record(static_cast<std::uint64_t>(s * 1e9));
      }
      Cell cell;
      cell.t = r.modeled_seconds;
      cell.q = modularity(g, r.labels);
      cell.iterations = r.iterations;
      if (algo.name == "nulpa") {
        row.nu_edges_per_s =
            static_cast<double>(g.num_edges()) * r.iterations / cell.t;
      }
      row.cells.push_back(cell);
    }
    rows.push_back(row);
  }

  std::vector<std::size_t> others;  // registry indices of the baselines
  std::size_t nu = 0;
  for (std::size_t a = 0; a < registry.size(); ++a) {
    if (registry[a].name == "nulpa") {
      nu = a;
    } else {
      others.push_back(a);
    }
  }

  std::printf("=== Figure 7a: runtime in seconds (reference platforms per "
              "algorithm; see registry)\n\n");
  std::vector<std::string> runtime_header{"Graph"};
  for (const auto& algo : registry) runtime_header.emplace_back(algo.name);
  TextTable t_runtime(runtime_header);
  for (const auto& r : rows) {
    std::vector<std::string> cols{r.name};
    for (const Cell& c : r.cells) cols.push_back(fmt(c.t, 3));
    t_runtime.add_row(cols);
  }
  t_runtime.print();

  std::printf("\n=== Figure 7b: speedup of nu-LPA (paper: 364x vs FLPA, "
              "62x vs PLP, 2.6x vs Gunrock, 37x vs Louvain)\n\n");
  std::vector<std::string> speedup_header{"Graph"};
  for (const std::size_t a : others) {
    speedup_header.push_back("vs " + std::string(registry[a].name));
  }
  speedup_header.emplace_back("nu-LPA edges/s");
  TextTable t_speedup(speedup_header);
  std::vector<std::vector<double>> speedups(others.size());
  for (const auto& r : rows) {
    std::vector<std::string> cols{r.name};
    for (std::size_t k = 0; k < others.size(); ++k) {
      const double s = r.cells[others[k]].t / r.cells[nu].t;
      speedups[k].push_back(s);
      cols.push_back(fmt(s, 3));
    }
    cols.push_back(fmt_count(r.nu_edges_per_s));
    t_speedup.add_row(cols);
  }
  std::vector<std::string> geo{"geomean"};
  for (const auto& s : speedups) geo.push_back(fmt(bench::geomean(s), 3));
  geo.emplace_back("");
  t_speedup.add_row(geo);
  t_speedup.print();

  std::printf("\n=== Figure 7c: modularity (paper: nu-LPA +4.7%% vs FLPA, "
              "-6.1%% vs PLP, -9.6%% vs Louvain)\n\n");
  std::vector<std::string> q_header{"Graph"};
  for (const auto& algo : registry) q_header.emplace_back(algo.name);
  TextTable t_q(q_header);
  std::vector<std::vector<double>> q_ratio(others.size());
  for (const auto& r : rows) {
    std::vector<std::string> cols{r.name};
    for (const Cell& c : r.cells) cols.push_back(fmt(c.q, 3));
    t_q.add_row(cols);
    for (std::size_t k = 0; k < others.size(); ++k) {
      if (r.cells[others[k]].q > 0) {
        q_ratio[k].push_back(r.cells[nu].q / r.cells[others[k]].q);
      }
    }
  }
  t_q.print();
  std::printf("\nnu-LPA modularity relative to:");
  for (std::size_t k = 0; k < others.size(); ++k) {
    std::printf(" %.*s %+.1f%%%s",
                static_cast<int>(registry[others[k]].name.size()),
                registry[others[k]].name.data(),
                (bench::mean(q_ratio[k]) - 1.0) * 100.0,
                k + 1 < others.size() ? "," : "\n");
  }

  std::printf("\n=== Per-iteration latency distribution, all graphs pooled "
              "(ms; modeled seconds for simulator-backed rows, host wall "
              "otherwise)\n\n");
  iter_metrics.print_table(std::cout, 1e-6, "ms");
  return 0;
}
