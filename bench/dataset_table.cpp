// Table 1: the dataset inventory — |V|, |E| (after adding reverse edges),
// average degree, and the number of communities ν-LPA finds (|Gamma|).
// The graphs are the synthetic analogues of the 13 SuiteSparse instances
// (see DESIGN.md for the substitution).
#include <cstdio>

#include "bench/common.hpp"
#include "core/nulpa.hpp"
#include "graph/stats.hpp"
#include "quality/communities.hpp"
#include "quality/modularity.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nulpa;
  const CliArgs args(argc, argv);
  const auto opts = bench::SuiteOptions::from_args(args);

  std::printf("=== Table 1: dataset suite (synthetic analogues, scale=%u)\n\n",
              opts.scale);
  TextTable table({"Graph", "category", "|V|", "|E|", "D_avg", "|Gamma|",
                   "modularity (nu-LPA)"});

  for (const auto& inst : make_dataset_suite(opts.scale, opts.seed)) {
    const GraphStats s = compute_stats(inst.graph);
    const auto r = nu_lpa(inst.graph);
    table.add_row({inst.spec.name, to_string(inst.spec.category),
                   fmt_count(static_cast<double>(s.vertices)),
                   fmt_count(static_cast<double>(s.edges)),
                   fmt(s.avg_degree, 3),
                   fmt_count(static_cast<double>(
                       count_communities(r.labels))),
                   fmt(modularity(inst.graph, r.labels), 3)});
  }
  table.print();
  std::printf(
      "\nPaper context: 13 SuiteSparse graphs, 3.07M-214M vertices; the "
      "suite here mirrors the category mix and per-category average "
      "degrees at laptop scale.\n");
  return 0;
}
