// Figure 6: 32-bit float vs 64-bit double hashtable values. Reports the
// modeled runtime ratio (hashtable traffic halves with floats), measured
// wall-clock, and modularity, confirming that quality is unaffected.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/nulpa.hpp"
#include "perfmodel/machine.hpp"
#include "quality/modularity.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nulpa;
  const CliArgs args(argc, argv);
  const auto opts = bench::SuiteOptions::from_args(args);
  const auto graphs = make_large_subset(opts.scale, opts.seed);
  const MachineModel gpu = a100();

  std::printf("=== Figure 6: hashtable value datatype (relative to Float, "
              "%zu graphs)\n\n",
              graphs.size());
  TextTable table({"datatype", "rel. runtime (modeled)", "host wall-clock",
                   "mean modularity"});

  std::vector<double> ref_time;
  for (int use_double = 0; use_double <= 1; ++use_double) {
    std::vector<double> rel_t, qs;
    double wall = 0.0;
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      NuLpaConfig cfg;
      cfg.use_double_values = use_double != 0;
      const auto r = nu_lpa(graphs[i].graph, cfg);
      // Double values move twice the bytes per hashtable access: account
      // the value-array share of the traffic at 8 bytes instead of 4.
      simt::PerfCounters c = r.counters;
      if (use_double) {
        const std::uint64_t value_words =
            r.hash_stats.inserts + r.counters.hash_probes;
        c.global_loads += value_words;  // +4 bytes each, modeled as words
        c.global_stores += r.hash_stats.inserts;
      }
      const double t = modeled_gpu_seconds(gpu, c);
      if (use_double == 0) {
        ref_time.push_back(t);
        rel_t.push_back(1.0);
      } else {
        rel_t.push_back(t / ref_time[i]);
      }
      wall += r.seconds;
      qs.push_back(modularity(graphs[i].graph, r.labels));
    }
    table.add_row({use_double ? "Double (64-bit)" : "Float (32-bit)",
                   fmt(bench::geomean(rel_t), 3), fmt(wall, 3) + " s",
                   fmt(bench::mean(qs), 4)});
  }
  table.print();
  std::printf(
      "\nPaper: floats give a moderate speedup with no quality change.\n");
  return 0;
}
