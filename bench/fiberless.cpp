// Executor-mode study: ν-LPA on the fiberless direct executor vs the
// lockstep fiber path. The split TPV kernels are barrier-free, so the
// direct executor runs their lanes as plain calls — one context switch per
// launch instead of two per lane — while keeping labels byte-identical
// (DESIGN.md "Executor modes"). Sweeps the largest instance of each suite
// category shape; road and k-mer graphs are TPV-dominated (the showcase),
// web crawls keep a BPV hub tail that stays on fibers either way. Emits
// machine-readable BENCH_fiberless.json for tools/bench_check.py; the
// committed reference copy lives under bench/baselines/.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/nulpa.hpp"
#include "graph/dataset.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace nulpa;

struct ModeStats {
  RunReport report;
  double seconds = 0.0;
};

ModeStats run_mode(const Graph& g, const NuLpaConfig& cfg) {
  ModeStats s;
  Timer timer;
  s.report = nu_lpa(g, cfg);
  s.seconds = timer.seconds();
  return s;
}

struct GraphResult {
  std::string name;
  const Graph* graph = nullptr;
  ModeStats fiber;
  ModeStats fiberless;
  bool identical = false;
  double wall_speedup = 0.0;
  double switch_reduction = 0.0;  // fiber switches, fiber / fiberless
};

void write_mode(std::FILE* f, const char* name, const ModeStats& s) {
  const auto& c = s.report.counters;
  std::fprintf(f, "      \"%s\": {\n", name);
  std::fprintf(f, "        \"seconds\": %.6f,\n", s.seconds);
  std::fprintf(f, "        \"iterations\": %d,\n", s.report.iterations);
  std::fprintf(f, "        \"fiber_switches\": %llu,\n",
               static_cast<unsigned long long>(c.fiber_switches));
  std::fprintf(f, "        \"threads_run\": %llu,\n",
               static_cast<unsigned long long>(c.threads_run));
  std::fprintf(f, "        \"fiberless_lanes\": %llu,\n",
               static_cast<unsigned long long>(c.fiberless_lanes));
  std::fprintf(f, "        \"promoted_lanes\": %llu,\n",
               static_cast<unsigned long long>(c.promoted_lanes));
  std::fprintf(f, "        \"stack_pool_hits\": %llu,\n",
               static_cast<unsigned long long>(c.stack_pool_hits));
  std::fprintf(f, "        \"shared_zero_fills\": %llu\n",
               static_cast<unsigned long long>(c.shared_zero_fills));
  std::fprintf(f, "      }");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nulpa;
  const CliArgs args(argc, argv);
  const auto scale = args.get_int("scale", 4000);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const std::string out = args.get("out", "BENCH_fiberless.json");

  // TPV-dominated suite: road networks and k-mer chains are almost
  // entirely low-degree (every vertex under the switch threshold goes
  // through the barrier-free split kernels); the web crawl is the stress
  // case whose hub tail keeps real BPV fiber work in both modes. The road
  // network runs at 3x base so the largest graph is the showcase shape.
  struct Pick {
    const char* name;
    int factor;
  };
  const Pick picks[] = {
      {"europe_osm", 3}, {"kmer_V1r", 1}, {"webbase-2001", 1}};

  // Tolerance 0 runs the full iteration budget: the comparison should
  // cover dense early sweeps and sparse late ones alike. Memory tracking
  // is pinned off: this bench's headline is wall clock, and the coalescer
  // bookkeeping would tax both executors equally, compressing the very
  // scheduler-overhead ratio the figure measures (bench/coalesced.cpp is
  // the harness that wants the tracked counters).
  const NuLpaConfig base = NuLpaConfig{}.with_tolerance(0.0);

  std::vector<DatasetInstance> instances;
  std::vector<GraphResult> results;
  for (const Pick& pick : picks) {
    const DatasetSpec* spec = nullptr;
    for (const DatasetSpec& s : dataset_specs()) {
      if (s.name == pick.name) spec = &s;
    }
    if (spec == nullptr) continue;
    instances.push_back(make_dataset(
        *spec, static_cast<Vertex>(scale * pick.factor), seed));
  }
  std::printf("=== Executor modes: nu-LPA fiberless direct executor vs "
              "lockstep fiber path (20 iterations)\n\n");

  for (const DatasetInstance& inst : instances) {
    GraphResult r;
    r.name = inst.spec.name;
    r.graph = &inst.graph;
    // Memory tracking is pinned off: this bench's headline is wall clock,
    // and the coalescer bookkeeping would tax both executors equally,
    // diluting the scheduler-overhead ratio the figure measures
    // (bench/coalesced.cpp is the harness that wants tracked counters).
    r.fiber = run_mode(inst.graph, base.with_exec(
        simt::ExecPolicy::lockstep().with_track_memory(false)));
    r.fiberless = run_mode(inst.graph, base.with_exec(
        simt::ExecPolicy{}.with_track_memory(false)));
    r.identical = r.fiber.report.labels == r.fiberless.report.labels;
    r.wall_speedup = r.fiberless.seconds > 0
                         ? r.fiber.seconds / r.fiberless.seconds
                         : 0.0;
    const auto sw_fiber = r.fiber.report.counters.fiber_switches;
    const auto sw_direct = r.fiberless.report.counters.fiber_switches;
    r.switch_reduction =
        sw_direct > 0 ? static_cast<double>(sw_fiber) /
                            static_cast<double>(sw_direct)
                      : 0.0;
    results.push_back(std::move(r));
  }

  TextTable table({"graph", "|V|", "wall speedup", "fiber-switch cut",
                   "labels identical"});
  bool all_identical = true;
  const GraphResult* largest = nullptr;
  for (const GraphResult& r : results) {
    all_identical = all_identical && r.identical;
    if (largest == nullptr ||
        r.graph->num_vertices() > largest->graph->num_vertices()) {
      largest = &r;
    }
    table.add_row({r.name,
                   fmt_count(static_cast<double>(r.graph->num_vertices())),
                   fmt(r.wall_speedup, 2) + "x",
                   fmt(r.switch_reduction, 2) + "x",
                   r.identical ? "yes" : "NO"});
  }
  table.print();
  if (largest != nullptr) {
    std::printf("\nlargest graph (%s, |V|=%u): wall %.2fx, fiber switches "
                "cut %.2fx\n",
                largest->name.c_str(), largest->graph->num_vertices(),
                largest->wall_speedup, largest->switch_reduction);
  }

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"scale\": %d,\n", static_cast<int>(scale));
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  // bench_check.py reads the per-graph mode objects by these names.
  std::fprintf(f, "  \"reference_mode\": \"fiber\",\n");
  std::fprintf(f, "  \"optimized_mode\": \"fiberless\",\n");
  std::fprintf(f, "  \"labels_identical\": %s,\n",
               all_identical ? "true" : "false");
  if (largest != nullptr) {
    std::fprintf(f,
                 "  \"headline\": {\"graph\": \"%s\", \"vertices\": %u, "
                 "\"wall_clock_speedup\": %.4f, "
                 "\"fiber_switch_reduction\": %.4f},\n",
                 largest->name.c_str(), largest->graph->num_vertices(),
                 largest->wall_speedup, largest->switch_reduction);
  }
  std::fprintf(f, "  \"graphs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const GraphResult& r = results[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f,
                 "      \"name\": \"%s\", \"vertices\": %u, "
                 "\"edges\": %llu,\n",
                 r.name.c_str(), r.graph->num_vertices(),
                 static_cast<unsigned long long>(r.graph->num_edges()));
    std::fprintf(f, "      \"labels_identical\": %s,\n",
                 r.identical ? "true" : "false");
    std::fprintf(f,
                 "      \"speedup\": {\"wall_clock\": %.4f, "
                 "\"fiber_switch_reduction\": %.4f},\n",
                 r.wall_speedup, r.switch_reduction);
    write_mode(f, "fiber", r.fiber);
    std::fprintf(f, ",\n");
    write_mode(f, "fiberless", r.fiberless);
    std::fprintf(f, "\n    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());

  // Gate locally too: the whole point of the mode is a >= 2x cut in
  // context switches on the TPV-dominated showcase.
  const bool switch_win =
      largest != nullptr && largest->switch_reduction >= 2.0;
  return all_identical && switch_win ? 0 : 1;
}
