// Frontier-compaction study: ν-LPA with per-window compacted worklists vs
// full-range launches. Pruning makes late iterations sparse — compaction
// converts that sparsity into fewer fibers actually spawned, while keeping
// labels byte-identical (the compacted worklist preserves each resident
// window's gather cohort; see DESIGN.md "Frontier pipeline"). Sweeps the
// largest instance of each suite category shape; road networks are the
// showcase (their frontier collapses to label boundaries, the classic
// frontier-processing win), web crawls the stress case (persistently
// active hubs bound the gain). Emits machine-readable BENCH_frontier.json
// for tools/bench_check.py; the committed reference copy lives under
// bench/baselines/.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/nulpa.hpp"
#include "graph/dataset.hpp"
#include "observe/trace.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace nulpa;

struct ModeStats {
  RunReport report;
  double seconds = 0.0;
  std::vector<std::uint64_t> iter_fiber_switches;
  std::vector<std::uint64_t> iter_active;
};

ModeStats run_mode(const Graph& g, const NuLpaConfig& cfg) {
  observe::CollectingTracer tracer;
  ModeStats s;
  Timer timer;
  s.report = nu_lpa(g, cfg, &tracer);
  s.seconds = timer.seconds();
  for (const observe::TraceEvent& ev : tracer.events()) {
    if (ev.kind != observe::EventKind::kIterationEnd) continue;
    s.iter_fiber_switches.push_back(ev.counters.fiber_switches);
    s.iter_active.push_back(ev.active_vertices);
  }
  return s;
}

// Acceptance window: iterations after the third, where pruning has thinned
// the frontier and full-range launches mostly spin empty lanes.
constexpr std::size_t kAfter = 3;

std::uint64_t sum_after(const std::vector<std::uint64_t>& xs,
                        std::size_t first) {
  std::uint64_t total = 0;
  for (std::size_t i = first; i < xs.size(); ++i) total += xs[i];
  return total;
}

struct GraphResult {
  std::string name;
  const Graph* graph = nullptr;
  ModeStats full;
  ModeStats compact;
  bool identical = false;
  double wall_speedup = 0.0;
  double switch_ratio = 0.0;  // fiber switches after iteration kAfter
};

void write_array(std::FILE* f, const char* key,
                 const std::vector<std::uint64_t>& xs) {
  std::fprintf(f, "\"%s\": [", key);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::fprintf(f, "%s%llu", i == 0 ? "" : ", ",
                 static_cast<unsigned long long>(xs[i]));
  }
  std::fprintf(f, "]");
}

void write_mode(std::FILE* f, const char* name, const ModeStats& s) {
  const auto& c = s.report.counters;
  std::fprintf(f, "      \"%s\": {\n", name);
  std::fprintf(f, "        \"seconds\": %.6f,\n", s.seconds);
  std::fprintf(f, "        \"iterations\": %d,\n", s.report.iterations);
  std::fprintf(f, "        \"fiber_switches\": %llu,\n",
               static_cast<unsigned long long>(c.fiber_switches));
  std::fprintf(f, "        \"threads_run\": %llu,\n",
               static_cast<unsigned long long>(c.threads_run));
  std::fprintf(f, "        \"frontier_vertices\": %llu,\n",
               static_cast<unsigned long long>(c.frontier_vertices));
  std::fprintf(f, "        \"skipped_lanes\": %llu,\n",
               static_cast<unsigned long long>(c.skipped_lanes));
  std::fprintf(f, "        ");
  write_array(f, "per_iteration_fiber_switches", s.iter_fiber_switches);
  std::fprintf(f, ",\n        ");
  write_array(f, "per_iteration_active", s.iter_active);
  std::fprintf(f, "\n      }");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nulpa;
  const CliArgs args(argc, argv);
  const auto scale = args.get_int("scale", 4000);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const std::string out = args.get("out", "BENCH_frontier.json");

  // The largest instance of each category shape in the suite (Table 1
  // analogues). europe_osm runs at 3x base so the largest graph the bench
  // touches is the road network — the workload class frontier processing
  // is known to pay off on (the active set collapses to label boundaries
  // within a few sweeps, while k-mer chains and web hubs keep a genuine
  // active tail that bounds any compaction's gain).
  struct Pick {
    const char* name;
    int factor;
  };
  const Pick picks[] = {
      {"europe_osm", 3}, {"kmer_V1r", 1}, {"webbase-2001", 1}};

  // Tolerance 0 runs the full 20-iteration budget so the sparse tail —
  // where compaction pays — is all present. Pinned to the lockstep fiber
  // path: this bench measures what compaction saves the fiber scheduler
  // (fibers never spawned), and the committed baseline was recorded there.
  // Under the default fiberless executor the per-lane switches compaction
  // used to eliminate are already gone — bench/fiberless.cpp covers that
  // comparison.
  // Memory tracking is pinned off: the headline here is wall clock and
  // fiber switches, and the coalescer bookkeeping taxes both modes
  // equally, diluting the ratio (bench/coalesced.cpp is the harness that
  // wants tracked counters).
  const NuLpaConfig base = NuLpaConfig{}.with_tolerance(0.0).with_exec(
      simt::ExecPolicy::lockstep().with_track_memory(false));

  std::vector<DatasetInstance> instances;
  std::vector<GraphResult> results;
  for (const Pick& pick : picks) {
    const DatasetSpec* spec = nullptr;
    for (const DatasetSpec& s : dataset_specs()) {
      if (s.name == pick.name) spec = &s;
    }
    if (spec == nullptr) continue;
    instances.push_back(make_dataset(
        *spec, static_cast<Vertex>(scale * pick.factor), seed));
  }
  std::printf("=== Frontier compaction: nu-LPA compacted vs full-range "
              "launches (20 iterations)\n\n");

  for (const DatasetInstance& inst : instances) {
    GraphResult r;
    r.name = inst.spec.name;
    r.graph = &inst.graph;
    r.full = run_mode(
        inst.graph, base.with_exec(base.exec.with_frontier_compaction(false)));
    r.compact = run_mode(
        inst.graph, base.with_exec(base.exec.with_frontier_compaction(true)));
    r.identical = r.full.report.labels == r.compact.report.labels;
    const auto full_tail = sum_after(r.full.iter_fiber_switches, kAfter);
    const auto compact_tail =
        sum_after(r.compact.iter_fiber_switches, kAfter);
    r.wall_speedup =
        r.compact.seconds > 0 ? r.full.seconds / r.compact.seconds : 0.0;
    r.switch_ratio = compact_tail > 0
                         ? static_cast<double>(full_tail) /
                               static_cast<double>(compact_tail)
                         : 0.0;
    results.push_back(std::move(r));
  }

  TextTable table({"graph", "|V|", "wall speedup",
                   "switch cut after iter 3", "labels identical"});
  bool all_identical = true;
  const GraphResult* largest = nullptr;
  for (const GraphResult& r : results) {
    all_identical = all_identical && r.identical;
    if (largest == nullptr ||
        r.graph->num_vertices() > largest->graph->num_vertices()) {
      largest = &r;
    }
    table.add_row({r.name,
                   fmt_count(static_cast<double>(r.graph->num_vertices())),
                   fmt(r.wall_speedup, 2) + "x", fmt(r.switch_ratio, 2) + "x",
                   r.identical ? "yes" : "NO"});
  }
  table.print();
  if (largest != nullptr) {
    std::printf("\nlargest graph (%s, |V|=%u): wall %.2fx, fiber switches "
                "after iter %zu cut %.2fx\n",
                largest->name.c_str(), largest->graph->num_vertices(),
                largest->wall_speedup, kAfter, largest->switch_ratio);
  }

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"scale\": %d,\n", static_cast<int>(scale));
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"labels_identical\": %s,\n",
               all_identical ? "true" : "false");
  if (largest != nullptr) {
    std::fprintf(f,
                 "  \"headline\": {\"graph\": \"%s\", \"vertices\": %u, "
                 "\"wall_clock_speedup\": %.4f, "
                 "\"fiber_switches_after_iter_%zu\": %.4f},\n",
                 largest->name.c_str(), largest->graph->num_vertices(),
                 largest->wall_speedup, kAfter, largest->switch_ratio);
  }
  std::fprintf(f, "  \"graphs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const GraphResult& r = results[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f,
                 "      \"name\": \"%s\", \"vertices\": %u, "
                 "\"edges\": %llu,\n",
                 r.name.c_str(), r.graph->num_vertices(),
                 static_cast<unsigned long long>(r.graph->num_edges()));
    std::fprintf(f, "      \"labels_identical\": %s,\n",
                 r.identical ? "true" : "false");
    std::fprintf(f,
                 "      \"speedup\": {\"wall_clock\": %.4f, "
                 "\"fiber_switches_after_iter_%zu\": %.4f},\n",
                 r.wall_speedup, kAfter, r.switch_ratio);
    write_mode(f, "full", r.full);
    std::fprintf(f, ",\n");
    write_mode(f, "compacted", r.compact);
    std::fprintf(f, "\n    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());

  return all_identical ? 0 : 1;
}
