// Microbenchmark (google-benchmark): raw accumulate throughput of the
// per-vertex hashtable under each probing policy, plus the coalesced
// variant and the GVE-LPA dense table for context. This is the host-side
// cost of the structures; the figure-level benches measure them in situ.
// BM_GatherPerExecutorMode drives the same probe loop through the SIMT
// launch path in each executor mode, isolating how much of a simulated
// gather's cost is scheduler overhead vs table work.
#include <benchmark/benchmark.h>

#include <vector>

#include "hash/coalesced.hpp"
#include "hash/probing.hpp"
#include "hash/vertex_table.hpp"
#include "simt/grid.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace {

using namespace nulpa;

constexpr std::uint32_t kDegree = 128;

std::vector<Vertex> make_keys(std::uint32_t degree, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Vertex> keys(degree);
  for (auto& k : keys) {
    k = static_cast<Vertex>(rng.next_bounded(degree));  // many duplicates
  }
  return keys;
}

void BM_OpenAddressing(benchmark::State& state) {
  const auto probing = static_cast<Probing>(state.range(0));
  const std::uint32_t cap = hashtable_capacity(kDegree);
  std::vector<Vertex> slots(cap);
  std::vector<float> values(cap);
  const auto keys = make_keys(kDegree, 7);
  VertexTableView<float> table(slots.data(), values.data(), cap);
  for (auto _ : state) {
    table.clear();
    for (const Vertex k : keys) {
      benchmark::DoNotOptimize(table.accumulate(k, 1.0f, probing));
    }
    benchmark::DoNotOptimize(table.max_key());
  }
  state.SetItemsProcessed(state.iterations() * kDegree);
}
BENCHMARK(BM_OpenAddressing)
    ->Arg(static_cast<int>(Probing::kLinear))
    ->Arg(static_cast<int>(Probing::kQuadratic))
    ->Arg(static_cast<int>(Probing::kDouble))
    ->Arg(static_cast<int>(Probing::kQuadDouble));

void BM_Coalesced(benchmark::State& state) {
  const std::uint32_t cap = hashtable_capacity(kDegree);
  std::vector<Vertex> slots(cap);
  std::vector<float> values(cap);
  std::vector<std::uint32_t> nexts(cap);
  const auto keys = make_keys(kDegree, 7);
  CoalescedTableView<float> table(slots.data(), values.data(), nexts.data(),
                                  cap);
  for (auto _ : state) {
    table.clear();
    for (const Vertex k : keys) {
      benchmark::DoNotOptimize(table.accumulate(k, 1.0f));
    }
    benchmark::DoNotOptimize(table.max_key());
  }
  state.SetItemsProcessed(state.iterations() * kDegree);
}
BENCHMARK(BM_Coalesced);

// A TPV-style gather kernel (one hashtable accumulate loop per lane) run
// through the SIMT session under each executor mode. Arg 0 selects the
// mode: 0 = fiberless direct executor (barrier-free traits, the engine's
// default for the split TPV kernels), 1 = lockstep fiber path. The probe
// loop is identical, so the throughput gap is pure executor overhead.
void BM_GatherPerExecutorMode(benchmark::State& state) {
  const bool lockstep = state.range(0) == 1;
  state.SetLabel(lockstep ? "fiber" : "fiberless");
  constexpr std::uint32_t kLanes = 256;
  const std::uint32_t cap = hashtable_capacity(kDegree);
  std::vector<Vertex> slots(kLanes * cap);
  std::vector<float> values(kLanes * cap);
  std::vector<std::vector<Vertex>> keys;
  keys.reserve(kLanes);
  for (std::uint32_t t = 0; t < kLanes; ++t) {
    keys.push_back(make_keys(kDegree, 7 + t));
  }
  simt::LaunchConfig cfg;
  cfg.block_dim = kLanes;
  simt::PerfCounters ctr;
  simt::LaunchSession session(cfg, ctr,
                              lockstep ? simt::ExecPolicy::lockstep()
                                       : simt::ExecPolicy::barrier_free());
  for (auto _ : state) {
    session.run(1, [&](simt::Lane& lane) {
      const std::uint32_t t = lane.thread_idx();
      VertexTableView<float> table(slots.data() + t * cap,
                                   values.data() + t * cap, cap);
      table.clear();
      for (const Vertex k : keys[t]) {
        benchmark::DoNotOptimize(
            table.accumulate(k, 1.0f, Probing::kQuadDouble));
      }
      benchmark::DoNotOptimize(table.max_key());
    });
  }
  state.SetItemsProcessed(state.iterations() * kLanes * kDegree);
}
BENCHMARK(BM_GatherPerExecutorMode)->Arg(0)->Arg(1);

void BM_ClearCost(benchmark::State& state) {
  const auto degree = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t cap = hashtable_capacity(degree);
  std::vector<Vertex> slots(cap);
  std::vector<float> values(cap);
  VertexTableView<float> table(slots.data(), values.data(), cap);
  for (auto _ : state) {
    table.clear();
    benchmark::DoNotOptimize(slots.data());
  }
  state.SetItemsProcessed(state.iterations() * cap);
}
BENCHMARK(BM_ClearCost)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
