// Microbenchmark (google-benchmark): raw accumulate throughput of the
// per-vertex hashtable under each probing policy, plus the coalesced
// variant and the GVE-LPA dense table for context. This is the host-side
// cost of the structures; the figure-level benches measure them in situ.
#include <benchmark/benchmark.h>

#include <vector>

#include "hash/coalesced.hpp"
#include "hash/probing.hpp"
#include "hash/vertex_table.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace {

using namespace nulpa;

constexpr std::uint32_t kDegree = 128;

std::vector<Vertex> make_keys(std::uint32_t degree, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Vertex> keys(degree);
  for (auto& k : keys) {
    k = static_cast<Vertex>(rng.next_bounded(degree));  // many duplicates
  }
  return keys;
}

void BM_OpenAddressing(benchmark::State& state) {
  const auto probing = static_cast<Probing>(state.range(0));
  const std::uint32_t cap = hashtable_capacity(kDegree);
  std::vector<Vertex> slots(cap);
  std::vector<float> values(cap);
  const auto keys = make_keys(kDegree, 7);
  VertexTableView<float> table(slots.data(), values.data(), cap);
  for (auto _ : state) {
    table.clear();
    for (const Vertex k : keys) {
      benchmark::DoNotOptimize(table.accumulate(k, 1.0f, probing));
    }
    benchmark::DoNotOptimize(table.max_key());
  }
  state.SetItemsProcessed(state.iterations() * kDegree);
}
BENCHMARK(BM_OpenAddressing)
    ->Arg(static_cast<int>(Probing::kLinear))
    ->Arg(static_cast<int>(Probing::kQuadratic))
    ->Arg(static_cast<int>(Probing::kDouble))
    ->Arg(static_cast<int>(Probing::kQuadDouble));

void BM_Coalesced(benchmark::State& state) {
  const std::uint32_t cap = hashtable_capacity(kDegree);
  std::vector<Vertex> slots(cap);
  std::vector<float> values(cap);
  std::vector<std::uint32_t> nexts(cap);
  const auto keys = make_keys(kDegree, 7);
  CoalescedTableView<float> table(slots.data(), values.data(), nexts.data(),
                                  cap);
  for (auto _ : state) {
    table.clear();
    for (const Vertex k : keys) {
      benchmark::DoNotOptimize(table.accumulate(k, 1.0f));
    }
    benchmark::DoNotOptimize(table.max_key());
  }
  state.SetItemsProcessed(state.iterations() * kDegree);
}
BENCHMARK(BM_Coalesced);

void BM_ClearCost(benchmark::State& state) {
  const auto degree = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t cap = hashtable_capacity(degree);
  std::vector<Vertex> slots(cap);
  std::vector<float> values(cap);
  VertexTableView<float> table(slots.data(), values.data(), cap);
  for (auto _ : state) {
    table.clear();
    benchmark::DoNotOptimize(slots.data());
  }
  state.SetItemsProcessed(state.iterations() * cap);
}
BENCHMARK(BM_ClearCost)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
