// Memory-footprint comparison backing the space-complexity claims of
// Section 4.5: ν-LPA's per-vertex hashtables need O(M) memory (two 2|E|
// buffers) while GVE-LPA's per-thread collision-free tables need O(T·N + M)
// — untenable for GPU thread counts, which is the whole motivation for the
// per-vertex design.
#include <cstdio>

#include "bench/common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nulpa;
  const CliArgs args(argc, argv);
  const auto opts = bench::SuiteOptions::from_args(args);
  const auto graphs = make_dataset_suite(opts.scale, opts.seed);

  std::printf("=== Hashtable memory: per-vertex (nu-LPA, O(M)) vs per-thread "
              "(GVE-LPA, O(T*N + M))\n\n");
  TextTable table({"Graph", "|V|", "|E|", "nu-LPA tables",
                   "GVE @ 32 threads", "GVE @ 64 SMs x 2048 thr"});

  for (const auto& inst : graphs) {
    const auto n = static_cast<double>(inst.graph.num_vertices());
    const auto m = static_cast<double>(inst.graph.num_edges());
    // nu-LPA: keys (u32) + values (f32), each 2|E| entries.
    const double nu_bytes = 2.0 * m * (4.0 + 4.0);
    // GVE-LPA per thread: full-size f64 values array + keys list.
    auto gve_bytes = [n](double threads) {
      return threads * (n * 8.0 + n * 4.0);
    };
    table.add_row({inst.spec.name, fmt_count(n), fmt_count(m),
                   fmt_count(nu_bytes) + "B", fmt_count(gve_bytes(32)) + "B",
                   fmt_count(gve_bytes(64.0 * 2048.0)) + "B"});
  }
  table.print();
  std::printf(
      "\nOn a GPU with ~130K resident threads the per-thread design needs "
      "terabytes; the per-vertex layout stays proportional to the edge "
      "list, which is why Section 4.2 adopts it.\n");
  return 0;
}
