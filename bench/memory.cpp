// Memory-footprint comparison backing the space-complexity claims of
// Section 4.5: ν-LPA's per-vertex hashtables need O(M) memory (two 2|E|
// buffers) while GVE-LPA's per-thread collision-free tables need O(T·N + M)
// — untenable for GPU thread counts, which is the whole motivation for the
// per-vertex design. Alongside the analytic footprints, a tracked run of
// each instance reports the measured memory-hierarchy behaviour of the
// per-vertex layout (transactions per scanned edge and data-cache hit
// rate, from the simulator's coalescer — see DESIGN.md "Memory
// hierarchy"), tying the space claim to actual traffic.
#include <cstdio>

#include "bench/common.hpp"
#include "core/nulpa.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nulpa;
  const CliArgs args(argc, argv);
  const auto opts = bench::SuiteOptions::from_args(args);
  const auto graphs = make_dataset_suite(opts.scale, opts.seed);

  std::printf("=== Hashtable memory: per-vertex (nu-LPA, O(M)) vs per-thread "
              "(GVE-LPA, O(T*N + M))\n\n");
  TextTable table({"Graph", "|V|", "|E|", "nu-LPA tables",
                   "GVE @ 32 threads", "GVE @ 64 SMs x 2048 thr",
                   "txn/edge", "cache hit"});

  for (const auto& inst : graphs) {
    const auto n = static_cast<double>(inst.graph.num_vertices());
    const auto m = static_cast<double>(inst.graph.num_edges());
    // nu-LPA: keys (u32) + values (f32), each 2|E| entries.
    const double nu_bytes = 2.0 * m * (4.0 + 4.0);
    // GVE-LPA per thread: full-size f64 values array + keys list.
    auto gve_bytes = [n](double threads) {
      return threads * (n * 8.0 + n * 4.0);
    };
    // Measured traffic of the per-vertex layout under the default config
    // (coalesced slabs, tracking on).
    const auto r = nu_lpa(inst.graph, NuLpaConfig{});
    const auto& c = r.counters;
    const double txn_per_edge =
        c.edges_scanned > 0 ? static_cast<double>(c.global_transactions) /
                                  static_cast<double>(c.edges_scanned)
                            : 0.0;
    const std::uint64_t probes = c.cache_hits + c.cache_misses;
    const double hit_rate =
        probes > 0 ? static_cast<double>(c.cache_hits) /
                         static_cast<double>(probes)
                   : 0.0;
    table.add_row({inst.spec.name, fmt_count(n), fmt_count(m),
                   fmt_count(nu_bytes) + "B", fmt_count(gve_bytes(32)) + "B",
                   fmt_count(gve_bytes(64.0 * 2048.0)) + "B",
                   fmt(txn_per_edge, 3), fmt(hit_rate * 100.0, 3) + "%"});
  }
  table.print();
  std::printf(
      "\nOn a GPU with ~130K resident threads the per-thread design needs "
      "terabytes; the per-vertex layout stays proportional to the edge "
      "list, which is why Section 4.2 adopts it.\n");
  return 0;
}
