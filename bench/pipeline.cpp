// Pipelined-scheduler study: the scoreboard's latency-hiding replay
// (simt/scoreboard.hpp) on ν-LPA, two comparisons per graph:
//
//   * scoreboard on vs lockstep (serialized replay, ExecPolicy::scoreboard
//     = false): how much memory latency the warp scheduler hides behind
//     other resident warps' issue — the modeled-time ratio between the two
//     is exactly (modeled + hidden) / modeled by the replay identities.
//   * coalesced vs flat layout, both with the scoreboard on: the layout's
//     win in *modeled stall cycles* and modeled time, not just transaction
//     counts (bench/coalesced.cpp gates those). Low-degree shapes (road,
//     k-mer) are issue-light and can expose more latency when coalesced —
//     reported honestly; the gate rides the community-structured graphs
//     where the win is real.
//
// Every headline is a ratio of deterministic simulator counters, so the
// committed baseline reproduces bit-exactly on any host at the same scale
// and seed; only wall-clock seconds vary. Emits BENCH_pipeline.json for
// tools/bench_check.py (ctest perf label: bench_check_pipeline); the
// committed reference copy lives under bench/baselines/.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/nulpa.hpp"
#include "graph/dataset.hpp"
#include "simt/grid.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace nulpa;

struct ModeStats {
  RunReport report;
  double seconds = 0.0;
};

ModeStats run_mode(const Graph& g, const NuLpaConfig& cfg) {
  ModeStats s;
  Timer timer;
  s.report = nu_lpa(g, cfg);
  s.seconds = timer.seconds();
  return s;
}

struct GraphResult {
  std::string name;
  const Graph* graph = nullptr;
  ModeStats flat;      // flat layout, scoreboard on
  ModeStats coal;      // coalesced layout, scoreboard on
  ModeStats lockstep;  // coalesced layout, serialized replay
  bool identical = false;
  double stall_reduction = 0.0;    // flat stall / coalesced stall
  double modeled_reduction = 0.0;  // flat modeled / coalesced modeled
  double hidden_ratio = 0.0;       // lockstep modeled / scoreboard modeled
};

void write_mode(std::FILE* f, const char* name, const ModeStats& s) {
  const auto& c = s.report.counters;
  const auto u64 = [](std::uint64_t x) {
    return static_cast<unsigned long long>(x);
  };
  std::fprintf(f, "      \"%s\": {\n", name);
  std::fprintf(f, "        \"seconds\": %.6f,\n", s.seconds);
  std::fprintf(f, "        \"iterations\": %d,\n", s.report.iterations);
  std::fprintf(f, "        \"global_transactions\": %llu,\n",
               u64(c.global_transactions));
  std::fprintf(f, "        \"cache_hits\": %llu, \"cache_misses\": %llu,\n",
               u64(c.cache_hits), u64(c.cache_misses));
  std::fprintf(f, "        \"modeled_cycles\": %llu,\n",
               u64(c.modeled_cycles));
  std::fprintf(f, "        \"stall_cycles\": %llu,\n", u64(c.stall_cycles));
  std::fprintf(f, "        \"hidden_latency_cycles\": %llu\n",
               u64(c.hidden_latency_cycles));
  std::fprintf(f, "      }");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nulpa;
  const CliArgs args(argc, argv);
  const auto scale = args.get_int("scale", 4000);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const std::string out = args.get("out", "BENCH_pipeline.json");

  // The two social networks (fuzzy communities, degree ~12 with hubs —
  // where scattered slab walks leave the most latency to hide) plus the
  // largest web crawl as the high-locality contrast.
  const char* pick_names[] = {"com-Orkut", "com-LiveJournal", "webbase-2001"};

  const NuLpaConfig base;
  std::vector<DatasetInstance> instances;
  for (const char* name : pick_names) {
    for (const DatasetSpec& s : dataset_specs()) {
      if (s.name == name) {
        instances.push_back(
            make_dataset(s, static_cast<Vertex>(scale), seed));
      }
    }
  }

  std::printf("=== Pipelined warp scheduler: scoreboard latency hiding and "
              "the coalesced-layout stall gap\n\n");

  std::vector<GraphResult> results;
  for (const DatasetInstance& inst : instances) {
    GraphResult r;
    r.name = inst.spec.name;
    r.graph = &inst.graph;
    r.flat = run_mode(inst.graph, base.with_coalesced_layout(false));
    r.coal = run_mode(inst.graph, base.with_coalesced_layout(true));
    r.lockstep = run_mode(
        inst.graph, base.with_coalesced_layout(true).with_exec(
                        simt::ExecPolicy{}.with_scoreboard(false)));
    r.identical = r.flat.report.labels == r.coal.report.labels &&
                  r.coal.report.labels == r.lockstep.report.labels;
    const auto& cc = r.coal.report.counters;
    const auto& fc = r.flat.report.counters;
    if (cc.stall_cycles > 0) {
      r.stall_reduction = static_cast<double>(fc.stall_cycles) /
                          static_cast<double>(cc.stall_cycles);
    }
    if (cc.modeled_cycles > 0) {
      r.modeled_reduction = static_cast<double>(fc.modeled_cycles) /
                            static_cast<double>(cc.modeled_cycles);
      r.hidden_ratio =
          static_cast<double>(r.lockstep.report.counters.modeled_cycles) /
          static_cast<double>(cc.modeled_cycles);
    }
    results.push_back(std::move(r));
  }

  TextTable table({"graph", "|V|", "stall cut", "modeled cut",
                   "latency hidden", "labels identical"});
  bool all_identical = true;
  const GraphResult* best = nullptr;  // largest stall reduction
  for (const GraphResult& r : results) {
    all_identical = all_identical && r.identical;
    if (best == nullptr || r.stall_reduction > best->stall_reduction) {
      best = &r;
    }
    table.add_row({r.name,
                   fmt_count(static_cast<double>(r.graph->num_vertices())),
                   fmt(r.stall_reduction, 2) + "x",
                   fmt(r.modeled_reduction, 2) + "x",
                   fmt(r.hidden_ratio, 2) + "x",
                   r.identical ? "yes" : "NO"});
  }
  table.print();
  bool stall_gate = false;
  if (best != nullptr) {
    stall_gate = best->stall_reduction >= 1.2;
    std::printf("\nbest stall cut (%s): coalesced layout removes %.1f%% of "
                "modeled stall cycles (gate: >= 20%%: %s); scoreboard hides "
                "%.2fx of lockstep modeled time there\n",
                best->name.c_str(),
                100.0 * (1.0 - 1.0 / best->stall_reduction),
                stall_gate ? "pass" : "FAIL", best->hidden_ratio);
  }

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"scale\": %d,\n", static_cast<int>(scale));
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"reference_mode\": \"flat\",\n");
  std::fprintf(f, "  \"optimized_mode\": \"coalesced\",\n");
  std::fprintf(f, "  \"labels_identical\": %s,\n",
               all_identical ? "true" : "false");
  if (best != nullptr) {
    std::fprintf(
        f,
        "  \"headline\": {\"graph\": \"%s\", \"vertices\": %u, "
        "\"stall_cycle_reduction\": %.4f, \"modeled_time_reduction\": %.4f, "
        "\"latency_hidden_ratio\": %.4f},\n",
        best->name.c_str(), best->graph->num_vertices(),
        best->stall_reduction, best->modeled_reduction, best->hidden_ratio);
  }
  std::fprintf(f, "  \"graphs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const GraphResult& r = results[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f,
                 "      \"name\": \"%s\", \"vertices\": %u, "
                 "\"edges\": %llu,\n",
                 r.name.c_str(), r.graph->num_vertices(),
                 static_cast<unsigned long long>(r.graph->num_edges()));
    std::fprintf(f, "      \"labels_identical\": %s,\n",
                 r.identical ? "true" : "false");
    std::fprintf(f,
                 "      \"speedup\": {\"stall_cycle_reduction\": %.4f, "
                 "\"modeled_time_reduction\": %.4f, "
                 "\"latency_hidden_ratio\": %.4f},\n",
                 r.stall_reduction, r.modeled_reduction, r.hidden_ratio);
    write_mode(f, "flat", r.flat);
    std::fprintf(f, ",\n");
    write_mode(f, "coalesced", r.coal);
    std::fprintf(f, ",\n");
    write_mode(f, "lockstep", r.lockstep);
    std::fprintf(f, "\n    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());

  return all_identical && stall_gate ? 0 : 1;
}
