// Figure 4: collision-resolution strategies for the per-vertex hashtables —
// linear probing, quadratic probing, double hashing, and the paper's hybrid
// quadratic-double. Reports runtime relative to quadratic-double plus the
// probe-collision counts that drive the difference.
//
// Paper's finding: quadratic-double is 2.8x / 3.7x / 3.2x faster than
// linear / quadratic / double on the A100 (divergent re-probes serialize
// warps, so collision counts translate superlinearly into runtime there).
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/nulpa.hpp"
#include "perfmodel/machine.hpp"
#include "quality/modularity.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nulpa;
  const CliArgs args(argc, argv);
  const auto opts = bench::SuiteOptions::from_args(args);
  const auto graphs = make_large_subset(opts.scale, opts.seed);
  const MachineModel gpu = a100();

  const Probing policies[] = {Probing::kLinear, Probing::kQuadratic,
                              Probing::kDouble, Probing::kQuadDouble};

  // Reference runs: quadratic-double.
  std::vector<double> ref_time;
  for (const auto& inst : graphs) {
    NuLpaConfig cfg;
    cfg.probing = Probing::kQuadDouble;
    const auto r = nu_lpa(inst.graph, cfg);
    ref_time.push_back(modeled_gpu_seconds(gpu, r.counters));
  }

  std::printf(
      "=== Figure 4: collision resolution (relative to quadratic-double, "
      "%zu graphs)\n\n",
      graphs.size());
  TextTable table({"policy", "rel. runtime (modeled)", "probes/insert",
                   "fallbacks", "modularity"});
  for (const Probing p : policies) {
    std::vector<double> rel_t, qs;
    double probes = 0.0, inserts = 0.0, fallbacks = 0.0;
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      NuLpaConfig cfg;
      cfg.probing = p;
      const auto r = nu_lpa(graphs[i].graph, cfg);
      rel_t.push_back(modeled_gpu_seconds(gpu, r.counters) / ref_time[i]);
      probes += static_cast<double>(r.hash_stats.probes);
      inserts += static_cast<double>(r.hash_stats.inserts);
      fallbacks += static_cast<double>(r.hash_stats.fallbacks);
      qs.push_back(modularity(graphs[i].graph, r.labels));
    }
    table.add_row({to_string(p), fmt(bench::geomean(rel_t), 3),
                   fmt(probes / inserts, 4), fmt(fallbacks, 0),
                   fmt(bench::mean(qs), 3)});
  }
  table.print();
  std::printf(
      "\nPaper: quadratic-double wins by balancing clustering (which "
      "linear suffers) against cache locality (which double hashing "
      "sacrifices); community quality is probing-independent.\n");
  return 0;
}
