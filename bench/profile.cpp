// Profiler overhead study: the span profiler promises near-zero cost when
// disabled (one relaxed atomic load per ProfSpan, no clock read) and
// unperturbed results when enabled (labels and PerfCounters byte-identical
// either way — only host wall-clock moves). Three measurements per graph:
//
//   * disabled: the normal run, instrumentation compiled in but capture
//     off — the configuration every other bench and test runs under;
//   * enabled: the same run with the registry capturing, plus the span
//     count it retained;
//   * a microbenchmark of the disabled ProfSpan guard itself, which with
//     the enabled run's span count bounds the disabled-mode overhead as a
//     fraction of the run (<2% is the working expectation; recorded as
//     ungated `info` because wall-clock ratios are host noise at bench
//     scale).
//
// Emits BENCH_profile.json for tools/bench_check.py (ctest perf label:
// bench_check_profile); the committed reference copy lives under
// bench/baselines/. The only hard gate is labels_identical — the overhead
// numbers are provenance, not promises a loaded CI box can keep.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/nulpa.hpp"
#include "graph/dataset.hpp"
#include "observe/profiler.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace nulpa;

struct ModeStats {
  RunReport report;
  double seconds = 0.0;
  std::uint64_t spans = 0;  // enabled mode only
};

ModeStats run_disabled(const Graph& g, const NuLpaConfig& cfg) {
  ModeStats s;
  Timer timer;
  s.report = nu_lpa(g, cfg);
  s.seconds = timer.seconds();
  return s;
}

ModeStats run_enabled(const Graph& g, const NuLpaConfig& cfg) {
  auto& reg = observe::ProfilerRegistry::instance();
  reg.enable();
  ModeStats s;
  Timer timer;
  s.report = nu_lpa(g, cfg);
  s.seconds = timer.seconds();
  reg.disable();
  s.spans = reg.drain().size();
  reg.clear();
  return s;
}

/// Cost of one disabled ProfSpan guard, amortized over a tight loop.
double disabled_guard_ns() {
  constexpr int kIters = 1 << 21;
  Timer timer;
  for (int i = 0; i < kIters; ++i) {
    observe::ProfSpan span("bench.guard", "i", static_cast<std::uint64_t>(i));
  }
  return timer.seconds() * 1e9 / kIters;
}

struct GraphResult {
  std::string name;
  const Graph* graph = nullptr;
  ModeStats off;  // profiling disabled (the reference configuration)
  ModeStats on;   // profiling enabled
  bool identical = false;
  double disabled_overhead_pct = 0.0;  // guard cost x spans / disabled wall
  double enabled_overhead_pct = 0.0;   // (enabled - disabled) / disabled
};

}  // namespace

int main(int argc, char** argv) {
  using namespace nulpa;
  const CliArgs args(argc, argv);
  const auto scale = args.get_int("scale", 4000);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const std::string out = args.get("out", "BENCH_profile.json");

  // The social networks: fuzzy communities and hubs make them the
  // span-densest workloads (most iterations, most kernel launches).
  const char* pick_names[] = {"com-Orkut", "com-LiveJournal"};

  const NuLpaConfig base;
  std::vector<DatasetInstance> instances;
  for (const char* name : pick_names) {
    for (const DatasetSpec& s : dataset_specs()) {
      if (s.name == name) {
        instances.push_back(
            make_dataset(s, static_cast<Vertex>(scale), seed));
      }
    }
  }

  std::printf("=== Span profiler overhead: disabled guards are near-free, "
              "enabled capture does not perturb results\n\n");

  const double guard_ns = disabled_guard_ns();

  std::vector<GraphResult> results;
  for (const DatasetInstance& inst : instances) {
    GraphResult r;
    r.name = inst.spec.name;
    r.graph = &inst.graph;
    run_disabled(inst.graph, base);  // warm allocators and caches
    r.off = run_disabled(inst.graph, base);
    r.on = run_enabled(inst.graph, base);
    r.identical = r.off.report.labels == r.on.report.labels &&
                  r.off.report.counters == r.on.report.counters;
    if (r.off.seconds > 0.0) {
      r.disabled_overhead_pct = 100.0 * static_cast<double>(r.on.spans) *
                                guard_ns / (r.off.seconds * 1e9);
      r.enabled_overhead_pct =
          100.0 * (r.on.seconds / r.off.seconds - 1.0);
    }
    results.push_back(std::move(r));
  }

  TextTable table({"graph", "|V|", "spans", "disabled ovh", "enabled ovh",
                   "identical"});
  bool all_identical = true;
  double worst_disabled_pct = 0.0;
  double worst_enabled_pct = 0.0;
  for (const GraphResult& r : results) {
    all_identical = all_identical && r.identical;
    worst_disabled_pct = std::max(worst_disabled_pct,
                                  r.disabled_overhead_pct);
    worst_enabled_pct = std::max(worst_enabled_pct, r.enabled_overhead_pct);
    table.add_row({r.name,
                   fmt_count(static_cast<double>(r.graph->num_vertices())),
                   fmt_count(static_cast<double>(r.on.spans)),
                   fmt(r.disabled_overhead_pct, 4) + "%",
                   fmt(r.enabled_overhead_pct, 2) + "%",
                   r.identical ? "yes" : "NO"});
  }
  table.print();
  std::printf("\ndisabled ProfSpan guard: %.2f ns; worst-case disabled "
              "overhead %.4f%% of wall (<2%% expected; informational, not "
              "gated)\n",
              guard_ns, worst_disabled_pct);

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"scale\": %d,\n", static_cast<int>(scale));
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"reference_mode\": \"disabled\",\n");
  std::fprintf(f, "  \"optimized_mode\": \"enabled\",\n");
  std::fprintf(f, "  \"labels_identical\": %s,\n",
               all_identical ? "true" : "false");
  std::fprintf(f, "  \"metrics\": {\n");
  std::fprintf(f,
               "    \"disabled_guard_ns_per_span\": {\"value\": %.4f, "
               "\"kind\": \"info\"},\n",
               guard_ns);
  std::fprintf(f,
               "    \"disabled_overhead_pct\": {\"value\": %.6f, "
               "\"kind\": \"info\"},\n",
               worst_disabled_pct);
  std::fprintf(f,
               "    \"enabled_overhead_pct\": {\"value\": %.4f, "
               "\"kind\": \"info\"}\n",
               worst_enabled_pct);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"graphs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const GraphResult& r = results[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f,
                 "      \"name\": \"%s\", \"vertices\": %u, "
                 "\"edges\": %llu,\n",
                 r.name.c_str(), r.graph->num_vertices(),
                 static_cast<unsigned long long>(r.graph->num_edges()));
    std::fprintf(f, "      \"labels_identical\": %s,\n",
                 r.identical ? "true" : "false");
    std::fprintf(f,
                 "      \"disabled\": {\"seconds\": %.6f, "
                 "\"iterations\": %d},\n",
                 r.off.seconds, r.off.report.iterations);
    std::fprintf(f,
                 "      \"enabled\": {\"seconds\": %.6f, "
                 "\"iterations\": %d, \"spans\": %llu}\n",
                 r.on.seconds, r.on.report.iterations,
                 static_cast<unsigned long long>(r.on.spans));
    std::fprintf(f, "    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());

  return all_identical ? 0 : 1;
}
