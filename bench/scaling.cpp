// Scaling study: modeled ν-LPA throughput (edges/s) as graph size grows —
// the context for the paper's headline "3.0 B edges/s on a 2.2 B-edge
// graph" claim. Also reports the simulator's own wall-clock so users can
// budget simulation time.
#include <cstdio>

#include "bench/common.hpp"
#include "core/nulpa.hpp"
#include "graph/generators.hpp"
#include "perfmodel/machine.hpp"
#include "quality/modularity.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nulpa;
  const CliArgs args(argc, argv);
  const auto max_scale =
      static_cast<Vertex>(args.get_int("max-vertices", 64000));
  const MachineModel gpu = a100();

  std::printf("=== Scaling: nu-LPA throughput vs web-graph size (paper: "
              "3.0B edges/s on it-2004)\n\n");
  TextTable table({"|V|", "|E|", "iters", "modeled A100 time",
                   "modeled edges/s", "modularity", "frontier share",
                   "sim wall-clock"});

  for (Vertex n = 4000; n <= max_scale; n *= 2) {
    const Graph g = generate_web(n, 8, 0.85, 42);
    const auto r = nu_lpa(g);
    const double t = modeled_gpu_seconds(gpu, r.counters);
    const double edges_per_s =
        static_cast<double>(g.num_edges()) * r.iterations / t;
    // Fraction of lane slots compaction actually launched: below 1.0 the
    // kernels ran over worklists much smaller than the full vertex range.
    const double slots = static_cast<double>(r.counters.frontier_vertices +
                                             r.counters.skipped_lanes);
    const double share =
        slots > 0
            ? static_cast<double>(r.counters.frontier_vertices) / slots
            : 1.0;
    table.add_row({fmt_count(static_cast<double>(g.num_vertices())),
                   fmt_count(static_cast<double>(g.num_edges())),
                   std::to_string(r.iterations), fmt(t * 1e3, 3) + " ms",
                   fmt_count(edges_per_s), fmt(modularity(g, r.labels), 3),
                   fmt(share, 3), fmt(r.seconds, 3) + " s"});
  }
  table.print();
  std::printf(
      "\nThroughput grows with size as kernel-launch overhead amortizes, "
      "approaching the bandwidth-bound billions-of-edges/s regime the "
      "paper reports on the 2.2B-edge it-2004.\n");
  return 0;
}
