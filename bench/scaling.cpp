// Scaling study, two axes:
//
//  1. Graph size: modeled ν-LPA throughput (edges/s) as web-graph size
//     grows — the context for the paper's headline "3.0 B edges/s on a
//     2.2 B-edge graph" claim.
//  2. Simulator threads: the same detection run on the serial backend vs
//     the parallel backend at T ∈ {1, 2, 4, 8} worker threads
//     (ExecPolicy::parallel, deterministic mode), on the europe_osm-class
//     road network the paper's TPV path showcases. Labels must stay
//     byte-identical at every thread count; wall-clock speedup is
//     whatever the host can actually deliver (a single-core host records
//     honest ratios <= 1.0 — see EXPERIMENTS.md).
//
// Emits machine-readable BENCH_parallel.json for tools/bench_check.py;
// the committed reference copy lives under bench/baselines/.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/nulpa.hpp"
#include "core/runner.hpp"
#include "graph/dataset.hpp"
#include "graph/generators.hpp"
#include "perfmodel/machine.hpp"
#include "quality/modularity.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace nulpa;

struct ModeStats {
  RunReport report;
  double seconds = 0.0;
};

ModeStats run_mode(const Graph& g, const NuLpaConfig& cfg) {
  ModeStats s;
  Timer timer;
  s.report = nu_lpa(g, cfg);
  s.seconds = timer.seconds();
  return s;
}

struct GraphResult {
  std::string name;
  const Graph* graph = nullptr;
  ModeStats serial;
  ModeStats parallel_t4;
  // Full sweep (headline graph only): seconds at T = 1, 2, 4, 8.
  std::vector<std::pair<unsigned, double>> sweep;
  bool identical = false;
  double wall_speedup = 0.0;  // serial / parallel_t4
};

void write_mode(std::FILE* f, const char* name, const ModeStats& s) {
  const auto& c = s.report.counters;
  std::fprintf(f, "      \"%s\": {\n", name);
  std::fprintf(f, "        \"seconds\": %.6f,\n", s.seconds);
  std::fprintf(f, "        \"iterations\": %d,\n", s.report.iterations);
  std::fprintf(f, "        \"threads_run\": %llu,\n",
               static_cast<unsigned long long>(c.threads_run));
  std::fprintf(f, "        \"edges_scanned\": %llu,\n",
               static_cast<unsigned long long>(c.edges_scanned));
  std::fprintf(f, "        \"fiber_switches\": %llu,\n",
               static_cast<unsigned long long>(c.fiber_switches));
  std::fprintf(f, "        \"stack_pool_hits\": %llu\n",
               static_cast<unsigned long long>(c.stack_pool_hits));
  std::fprintf(f, "      }");
}

NuLpaConfig parallel_cfg(const NuLpaConfig& base, unsigned threads) {
  // Retarget the process-wide pool so T simulated workers map onto T OS
  // threads (on smaller hosts the extra workers stride the same cores —
  // determinism keeps the labels byte-identical either way).
  const simt::ExecPolicy policy = simt::ExecPolicy::parallel(threads);
  apply_threads(policy);
  return base.with_exec(policy);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nulpa;
  const CliArgs args(argc, argv);
  const auto scale = args.get_int("scale", 4000);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const std::string out = args.get("out", "BENCH_parallel.json");
  const auto max_scale =
      static_cast<Vertex>(args.get_int("max-vertices", 64000));
  // --parallel-sim / --threads select the backend for the size-scaling
  // table; the thread sweep below sweeps backends itself.
  const simt::ExecPolicy flag_exec =
      exec_policy_from_flags(parse_common_flags(args));
  apply_threads(flag_exec);
  const MachineModel gpu = a100();

  std::printf("=== Scaling: nu-LPA throughput vs web-graph size (paper: "
              "3.0B edges/s on it-2004)\n\n");
  TextTable size_table({"|V|", "|E|", "iters", "modeled A100 time",
                        "modeled edges/s", "modularity", "frontier share",
                        "sim wall-clock"});

  for (Vertex n = 4000; n <= max_scale; n *= 2) {
    const Graph g = generate_web(n, 8, 0.85, 42);
    const auto r = nu_lpa(g, NuLpaConfig{}.with_exec(flag_exec));
    const double t = modeled_gpu_seconds(gpu, r.counters);
    const double edges_per_s =
        static_cast<double>(g.num_edges()) * r.iterations / t;
    // Fraction of lane slots compaction actually launched: below 1.0 the
    // kernels ran over worklists much smaller than the full vertex range.
    const double slots = static_cast<double>(r.counters.frontier_vertices +
                                             r.counters.skipped_lanes);
    const double share =
        slots > 0
            ? static_cast<double>(r.counters.frontier_vertices) / slots
            : 1.0;
    size_table.add_row({fmt_count(static_cast<double>(g.num_vertices())),
                        fmt_count(static_cast<double>(g.num_edges())),
                        std::to_string(r.iterations), fmt(t * 1e3, 3) + " ms",
                        fmt_count(edges_per_s), fmt(modularity(g, r.labels), 3),
                        fmt(share, 3), fmt(r.seconds, 3) + " s"});
  }
  size_table.print();
  std::printf(
      "\nThroughput grows with size as kernel-launch overhead amortizes, "
      "approaching the bandwidth-bound billions-of-edges/s regime the "
      "paper reports on the 2.2B-edge it-2004.\n");

  // --- Thread scaling: serial backend vs parallel backend ---------------
  // Same suite picks as the executor-mode study: the road network at 3x
  // base is the TPV-dominated showcase and carries the full T sweep; the
  // k-mer chain and web crawl get the serial-vs-T4 pairing that feeds the
  // perf gate.
  struct Pick {
    const char* name;
    int factor;
    bool full_sweep;
  };
  const Pick picks[] = {{"europe_osm", 3, true},
                        {"kmer_V1r", 1, false},
                        {"webbase-2001", 1, false}};
  const unsigned sweep_threads[] = {1, 2, 4, 8};

  // Tolerance 0 runs the full iteration budget so the wall-clock numbers
  // cover dense early sweeps and sparse late ones alike.
  const NuLpaConfig base = NuLpaConfig{}.with_tolerance(0.0);

  std::printf("\n=== Thread scaling: serial backend vs parallel backend "
              "(deterministic, labels must match byte-for-byte)\n\n");

  std::vector<DatasetInstance> instances;
  std::vector<const Pick*> inst_picks;
  for (const Pick& pick : picks) {
    for (const DatasetSpec& s : dataset_specs()) {
      if (s.name == pick.name) {
        instances.push_back(make_dataset(
            s, static_cast<Vertex>(scale * pick.factor), seed));
        inst_picks.push_back(&pick);
      }
    }
  }

  TextTable table({"graph", "|V|", "backend", "wall-clock",
                   "speedup vs serial", "labels identical"});
  std::vector<GraphResult> results;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const DatasetInstance& inst = instances[i];
    GraphResult r;
    r.name = inst.spec.name;
    r.graph = &inst.graph;
    r.serial = run_mode(inst.graph, base.with_exec(simt::ExecPolicy{}));
    table.add_row({r.name,
                   fmt_count(static_cast<double>(inst.graph.num_vertices())),
                   "serial", fmt(r.serial.seconds, 3) + " s", "1.00x", "-"});
    bool identical = true;
    for (const unsigned t : sweep_threads) {
      if (t != 4 && !inst_picks[i]->full_sweep) continue;
      const ModeStats m = run_mode(inst.graph, parallel_cfg(base, t));
      const bool same = m.report.labels == r.serial.report.labels;
      identical = identical && same;
      if (t == 4) r.parallel_t4 = m;
      if (inst_picks[i]->full_sweep) r.sweep.emplace_back(t, m.seconds);
      table.add_row({"", "", "parallel T=" + std::to_string(t),
                     fmt(m.seconds, 3) + " s",
                     fmt(m.seconds > 0 ? r.serial.seconds / m.seconds : 0.0,
                         2) + "x",
                     same ? "yes" : "NO"});
    }
    r.identical = identical;
    r.wall_speedup = r.parallel_t4.seconds > 0
                         ? r.serial.seconds / r.parallel_t4.seconds
                         : 0.0;
    results.push_back(std::move(r));
  }
  table.print();

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("\nhost hardware threads: %u%s\n", hw,
              hw <= 1 ? " (single-core host: parallel-backend ratios "
                        "reflect scheduling overhead, not speedup)"
                      : "");

  bool all_identical = true;
  const GraphResult* largest = nullptr;
  for (const GraphResult& r : results) {
    all_identical = all_identical && r.identical;
    if (largest == nullptr ||
        r.graph->num_vertices() > largest->graph->num_vertices()) {
      largest = &r;
    }
  }

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"scale\": %d,\n", static_cast<int>(scale));
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"hardware_threads\": %u,\n", hw);
  // bench_check.py reads the per-graph mode objects by these names.
  std::fprintf(f, "  \"reference_mode\": \"serial\",\n");
  std::fprintf(f, "  \"optimized_mode\": \"parallel_t4\",\n");
  std::fprintf(f, "  \"labels_identical\": %s,\n",
               all_identical ? "true" : "false");
  if (largest != nullptr) {
    std::fprintf(f,
                 "  \"headline\": {\"graph\": \"%s\", \"vertices\": %u},\n",
                 largest->name.c_str(), largest->graph->num_vertices());
    // Metrics schema (tools/bench_check.py): wall-clock speedup is
    // host-dependent — whatever core count recorded the baseline need not
    // match the checking host — so it is provenance ("info"), never a
    // gated ratio. The machine-independent gates are label identity
    // (hard exit code) and work parity: deterministic mode promises the
    // parallel backend does byte-identical work, so the threads_run ratio
    // is exactly 1.0 on every host.
    const double parity =
        largest->serial.report.counters.threads_run > 0
            ? static_cast<double>(
                  largest->parallel_t4.report.counters.threads_run) /
                  static_cast<double>(
                      largest->serial.report.counters.threads_run)
            : 0.0;
    std::fprintf(f,
                 "  \"metrics\": {\n"
                 "    \"wall_clock_speedup\": {\"value\": %.4f, "
                 "\"kind\": \"info\"},\n"
                 "    \"threads_run_parity\": {\"value\": %.6f, "
                 "\"kind\": \"exact\", \"rel_tol\": 0.0}\n"
                 "  },\n",
                 largest->wall_speedup, parity);
  }
  std::fprintf(f, "  \"graphs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const GraphResult& r = results[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f,
                 "      \"name\": \"%s\", \"vertices\": %u, "
                 "\"edges\": %llu,\n",
                 r.name.c_str(), r.graph->num_vertices(),
                 static_cast<unsigned long long>(r.graph->num_edges()));
    std::fprintf(f, "      \"labels_identical\": %s,\n",
                 r.identical ? "true" : "false");
    std::fprintf(f, "      \"speedup\": {\"wall_clock\": %.4f},\n",
                 r.wall_speedup);
    if (!r.sweep.empty()) {
      std::fprintf(f, "      \"thread_sweep_seconds\": {");
      for (std::size_t j = 0; j < r.sweep.size(); ++j) {
        std::fprintf(f, "%s\"%u\": %.6f", j == 0 ? "" : ", ",
                     r.sweep[j].first, r.sweep[j].second);
      }
      std::fprintf(f, "},\n");
    }
    write_mode(f, "serial", r.serial);
    std::fprintf(f, ",\n");
    write_mode(f, "parallel_t4", r.parallel_t4);
    std::fprintf(f, "\n    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());

  // Determinism is the hard local gate: every parallel run must reproduce
  // the serial labels byte-for-byte. Speedup ratios are host-dependent and
  // are gated relative to the committed baseline by tools/bench_check.py.
  return all_identical ? 0 : 1;
}
