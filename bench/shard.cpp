// Multi-device exchange-volume study: the same sharded detection run with
// the naive full-mirror broadcast (--comm-mode full pinned) vs the delta
// exchange (auto mode, changed-bitset filtered). Labels are byte-identical
// by the sharding determinism contract; the win is wire volume — after the
// first couple of iterations only a small fraction of masters still change
// per sweep, so the delta path ships a fraction of the mirror set while
// the broadcast re-sends every mirror every iteration.
//
// Reported per graph: average labels crossing shard boundaries per
// iteration (post-iteration-2, where LPA's change rate has settled — the
// first two sweeps are dense for both modes and would mask the tail) and
// the broadcast/delta reduction ratio. The committed baseline
// (bench/baselines/BENCH_shard.json) gates the headline reduction with an
// absolute floor of 5x via the metrics schema in tools/bench_check.py.
//
// Emits machine-readable BENCH_shard.json for tools/bench_check.py.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/runner.hpp"
#include "core/sharded.hpp"
#include "graph/dataset.hpp"
#include "graph/stats.hpp"
#include "observe/trace.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace nulpa;

struct ModeStats {
  RunReport report;
  double seconds = 0.0;
  // Post-iteration-2 averages from the "exchange" trace events.
  double labels_per_iter = 0.0;
  double bytes_per_iter = 0.0;
};

ModeStats run_mode(const Graph& g, const ShardPlan& plan,
                   const ShardedConfig& cfg) {
  observe::CollectingTracer tracer;
  ModeStats s;
  Timer timer;
  s.report = sharded_lpa(g, plan, cfg, &tracer);
  s.seconds = timer.seconds();
  std::uint64_t labels = 0, bytes = 0, iters = 0;
  for (const observe::TraceEvent& ev : tracer.events()) {
    if (ev.kind != observe::EventKind::kKernelLaunch ||
        ev.kernel != "exchange" || ev.iteration < 2) {
      continue;
    }
    labels += ev.counters.exchanged_labels;
    bytes += ev.counters.exchange_bytes;
    ++iters;
  }
  if (iters > 0) {
    s.labels_per_iter = static_cast<double>(labels) / iters;
    s.bytes_per_iter = static_cast<double>(bytes) / iters;
  }
  return s;
}

struct GraphResult {
  std::string name;
  const Graph* graph = nullptr;
  ModeStats broadcast;
  ModeStats delta;
  double replication = 0.0;
  bool identical = false;
  double label_reduction = 0.0;  // broadcast / delta, labels per iteration
  double byte_reduction = 0.0;
};

void write_mode(std::FILE* f, const char* name, const ModeStats& s) {
  std::fprintf(f, "      \"%s\": {\n", name);
  std::fprintf(f, "        \"seconds\": %.6f,\n", s.seconds);
  std::fprintf(f, "        \"iterations\": %d,\n", s.report.iterations);
  std::fprintf(f, "        \"labels_per_iter\": %.1f,\n", s.labels_per_iter);
  std::fprintf(f, "        \"bytes_per_iter\": %.1f,\n", s.bytes_per_iter);
  std::fprintf(f, "        \"exchanged_labels\": %llu,\n",
               static_cast<unsigned long long>(
                   s.report.counters.exchanged_labels));
  std::fprintf(f, "        \"exchange_bytes\": %llu,\n",
               static_cast<unsigned long long>(
                   s.report.counters.exchange_bytes));
  std::fprintf(f, "        \"mirror_updates\": %llu\n",
               static_cast<unsigned long long>(
                   s.report.counters.mirror_updates));
  std::fprintf(f, "      }");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nulpa;
  const CliArgs args(argc, argv);
  const auto scale = args.get_int("scale", 4000);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const auto num_shards =
      static_cast<std::uint32_t>(args.get_int("shards", 4));
  const std::string out = args.get("out", "BENCH_shard.json");

  // Tolerance 0 runs the full iteration budget, covering the sparse tail
  // where the delta exchange earns its keep; both modes execute identical
  // iterations (determinism contract), so per-iteration volumes compare
  // one-to-one.
  const ShardedConfig base = ShardedConfig{}
                                 .with_shards(num_shards)
                                 .with_tolerance(0.0);

  struct Pick {
    const char* name;
    int factor;
  };
  const Pick picks[] = {
      {"europe_osm", 3}, {"kmer_V1r", 1}, {"webbase-2001", 1}};

  std::printf("=== Delta exchange vs full broadcast (%u shards, "
              "contiguous edge-cut)\n\n",
              num_shards);
  TextTable table({"graph", "|V|", "cut arcs", "repl", "mode",
                   "labels/iter (it>=2)", "wire B/iter", "wall-clock",
                   "identical"});

  std::vector<DatasetInstance> instances;
  for (const Pick& pick : picks) {
    for (const DatasetSpec& s : dataset_specs()) {
      if (s.name == pick.name) {
        instances.push_back(make_dataset(
            s, static_cast<Vertex>(scale * pick.factor), seed));
      }
    }
  }

  std::vector<GraphResult> results;
  for (const DatasetInstance& inst : instances) {
    GraphResult r;
    r.name = inst.spec.name;
    r.graph = &inst.graph;
    const ShardPlan plan =
        make_shard_plan(inst.graph, num_shards, base.shard_mode);
    const PartitionStats ps = compute_partition_stats(inst.graph, plan);
    r.replication = ps.replication_factor;
    r.broadcast = run_mode(
        inst.graph, plan,
        base.with_comm_mode(comm::DataCommMode::kFullVector));
    r.delta = run_mode(inst.graph, plan, base);
    r.identical = r.broadcast.report.labels == r.delta.report.labels;
    r.label_reduction = r.delta.labels_per_iter > 0
                            ? r.broadcast.labels_per_iter /
                                  r.delta.labels_per_iter
                            : 0.0;
    r.byte_reduction =
        r.delta.bytes_per_iter > 0
            ? r.broadcast.bytes_per_iter / r.delta.bytes_per_iter
            : 0.0;

    table.add_row({r.name,
                   fmt_count(static_cast<double>(inst.graph.num_vertices())),
                   fmt_count(static_cast<double>(ps.cut_arcs)),
                   fmt(ps.replication_factor, 3), "broadcast",
                   fmt_count(r.broadcast.labels_per_iter),
                   fmt_count(r.broadcast.bytes_per_iter),
                   fmt(r.broadcast.seconds, 3) + " s", "-"});
    table.add_row({"", "", "", "", "delta",
                   fmt_count(r.delta.labels_per_iter),
                   fmt_count(r.delta.bytes_per_iter),
                   fmt(r.delta.seconds, 3) + " s",
                   r.identical ? "yes" : "NO"});
    table.add_row({"", "", "", "", "reduction",
                   fmt(r.label_reduction, 2) + "x",
                   fmt(r.byte_reduction, 2) + "x", "", ""});
    results.push_back(std::move(r));
  }
  table.print();

  bool all_identical = true;
  const GraphResult* largest = nullptr;
  for (const GraphResult& r : results) {
    all_identical = all_identical && r.identical;
    if (largest == nullptr ||
        r.graph->num_vertices() > largest->graph->num_vertices()) {
      largest = &r;
    }
  }

  std::printf("\nPost-iteration-2 average: the first two sweeps are dense "
              "(most vertices still changing) for both modes; the delta "
              "win is the converging tail, where the broadcast keeps "
              "re-sending every mirror.\n");

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"scale\": %d,\n", static_cast<int>(scale));
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"shards\": %u,\n", num_shards);
  std::fprintf(f, "  \"reference_mode\": \"broadcast\",\n");
  std::fprintf(f, "  \"optimized_mode\": \"delta\",\n");
  std::fprintf(f, "  \"labels_identical\": %s,\n",
               all_identical ? "true" : "false");
  if (largest != nullptr) {
    std::fprintf(f,
                 "  \"headline\": {\"graph\": \"%s\", \"vertices\": %u},\n",
                 largest->name.c_str(), largest->graph->num_vertices());
    // All three gated metrics are machine-independent: exchange volumes
    // and the partition shape are deterministic functions of
    // (graph, seed, shard count). The ISSUE-level contract is the 5x
    // absolute floor on the label reduction.
    std::fprintf(f,
                 "  \"metrics\": {\n"
                 "    \"delta_exchange_reduction\": {\"value\": %.4f, "
                 "\"kind\": \"ratio\", \"min_value\": 5.0},\n"
                 "    \"exchange_bytes_reduction\": {\"value\": %.4f, "
                 "\"kind\": \"ratio\"},\n"
                 "    \"replication_factor\": {\"value\": %.6f, "
                 "\"kind\": \"exact\", \"rel_tol\": 0.001}\n"
                 "  },\n",
                 largest->label_reduction, largest->byte_reduction,
                 largest->replication);
  }
  std::fprintf(f, "  \"graphs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const GraphResult& r = results[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f,
                 "      \"name\": \"%s\", \"vertices\": %u, "
                 "\"edges\": %llu,\n",
                 r.name.c_str(), r.graph->num_vertices(),
                 static_cast<unsigned long long>(r.graph->num_edges()));
    std::fprintf(f, "      \"labels_identical\": %s,\n",
                 r.identical ? "true" : "false");
    std::fprintf(f, "      \"replication_factor\": %.6f,\n", r.replication);
    std::fprintf(f, "      \"label_reduction\": %.4f,\n", r.label_reduction);
    std::fprintf(f, "      \"byte_reduction\": %.4f,\n", r.byte_reduction);
    write_mode(f, "broadcast", r.broadcast);
    std::fprintf(f, ",\n");
    write_mode(f, "delta", r.delta);
    std::fprintf(f, "\n    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());

  // Hard local gates: byte-identical labels, and the headline reduction
  // clearing its absolute 5x floor. Baseline-relative drift is
  // tools/bench_check.py's job.
  const bool reduction_ok =
      largest != nullptr && largest->label_reduction >= 5.0;
  if (!reduction_ok) {
    std::fprintf(stderr,
                 "FAIL: headline delta-exchange reduction %.2fx below the "
                 "5x floor\n",
                 largest != nullptr ? largest->label_reduction : 0.0);
  }
  return all_identical && reduction_ok ? 0 : 1;
}
