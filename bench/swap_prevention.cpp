// Figure 2: community-swap mitigation techniques. Sweeps Cross-Check every
// 1-4 iterations (CC1-CC4), Pick-Less every 1-4 (PL1-PL4), and all 16
// hybrid combinations, reporting runtime and modularity relative to PL4 on
// the paper's "large graphs" subset. Per the paper, this experiment uses
// the double-hashing table (the probing study comes later, Figure 4).
//
// Paper's finding: PL4 reaches the highest modularity while being only ~8%
// slower than the fastest setting (CC2).
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/nulpa.hpp"
#include "perfmodel/machine.hpp"
#include "quality/modularity.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nulpa;
  const CliArgs args(argc, argv);
  const auto opts = bench::SuiteOptions::from_args(args);
  const bool full_hybrid = args.get_bool("full-hybrid", true);

  const auto graphs = make_large_subset(opts.scale, opts.seed);

  std::vector<SwapPrevention> configs;
  for (int i = 1; i <= 4; ++i) configs.push_back({.pick_less_every = 0,
                                                  .cross_check_every = i});
  for (int i = 1; i <= 4; ++i) configs.push_back({.pick_less_every = i,
                                                  .cross_check_every = 0});
  if (full_hybrid) {
    for (int pl = 1; pl <= 4; ++pl) {
      for (int cc = 1; cc <= 4; ++cc) {
        configs.push_back({.pick_less_every = pl, .cross_check_every = cc});
      }
    }
  }

  // Reference: PL4 (the paper's pick).
  const MachineModel gpu = a100();
  struct Ref {
    double time;
    double q;
  };
  std::vector<Ref> reference;
  for (const auto& inst : graphs) {
    NuLpaConfig cfg;
    cfg.probing = Probing::kDouble;  // per the paper's Fig. 2 setup
    cfg.swap = {.pick_less_every = 4, .cross_check_every = 0};
    const auto r = nu_lpa(inst.graph, cfg);
    reference.push_back({modeled_gpu_seconds(gpu, r.counters),
                         modularity(inst.graph, r.labels)});
  }

  std::printf("=== Figure 2: swap prevention (relative to PL4, %zu graphs, "
              "double hashing)\n\n",
              graphs.size());
  TextTable table({"method", "rel. runtime (modeled)", "rel. modularity",
                   "mean iterations"});
  for (const auto& swap : configs) {
    std::vector<double> rel_t, rel_q;
    double iters = 0.0;
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      NuLpaConfig cfg;
      cfg.probing = Probing::kDouble;
      cfg.swap = swap;
      const auto r = nu_lpa(graphs[i].graph, cfg);
      rel_t.push_back(modeled_gpu_seconds(gpu, r.counters) /
                      reference[i].time);
      rel_q.push_back(modularity(graphs[i].graph, r.labels) /
                      reference[i].q);
      iters += r.iterations;
    }
    table.add_row({swap.label(), fmt(bench::geomean(rel_t), 3),
                   fmt(bench::mean(rel_q), 3),
                   fmt(iters / static_cast<double>(graphs.size()), 3)});
  }
  table.print();
  std::printf(
      "\nPaper: PL4 has the best modularity; CC2 is fastest (PL4 ~8%% "
      "slower). Expect the PL column to dominate modularity and CC rows "
      "to run fewer effective iterations.\n");
  return 0;
}
