// Figure 5: the switch degree between the thread-per-vertex kernel and the
// block-per-vertex kernel, swept from 2 to 256. Reports modeled runtime
// relative to the paper's optimum (32) plus the partition split.
//
// Paper's finding: 32 — the warp size — is the best switching point: below
// it, warps idle on low-degree vertices in block-per-vertex mode; above it,
// single threads serialize long adjacency scans.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/nulpa.hpp"
#include "graph/partition.hpp"
#include "perfmodel/machine.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nulpa;
  const CliArgs args(argc, argv);
  const auto opts = bench::SuiteOptions::from_args(args);
  const auto graphs = make_large_subset(opts.scale, opts.seed);
  const MachineModel gpu = a100();

  // The A100-style wall-clock penalty of a thread-per-vertex lane scanning
  // degree-d adjacency is serialization d/32 versus a cooperating warp;
  // conversely one-vertex blocks below the warp size leave lanes idle.
  // Both effects appear directly in the simulator's lane-time counters, so
  // we model per-configuration time as the modeled memory time plus the
  // serialization term from the longest thread-per-vertex scan.
  std::vector<double> ref_time(graphs.size(), 0.0);

  const std::uint32_t sweep[] = {2, 4, 8, 16, 32, 64, 128, 256};

  std::printf("=== Figure 5: switch degree sweep (relative to 32, %zu "
              "graphs)\n\n",
              graphs.size());
  TextTable table({"switch degree", "rel. runtime (modeled)",
                   "low-degree verts", "high-degree verts"});

  struct Run {
    double time;
    std::uint64_t low;
    std::uint64_t high;
  };
  std::vector<std::vector<Run>> runs(std::size(sweep));

  for (std::size_t s = 0; s < std::size(sweep); ++s) {
    for (const auto& inst : graphs) {
      NuLpaConfig cfg;
      cfg.switch_degree = sweep[s];
      const auto r = nu_lpa(inst.graph, cfg);
      const auto part = partition_by_degree(inst.graph, sweep[s]);

      // Modeled time: counter-driven memory/atomic time plus the two
      // partitioning penalties the figure is about.
      double t = modeled_gpu_seconds(gpu, r.counters);
      // Thread-per-vertex tail latency: one lane walks its whole adjacency
      // serially, so the kernel cannot retire before the highest-degree
      // low-partition vertex finishes its dependent scan (~60 ns/edge —
      // DRAM-latency-class dependent accesses, a handful in flight).
      std::uint32_t tpv_tail_degree = 0;
      for (const Vertex v : part.low) {
        tpv_tail_degree = std::max(tpv_tail_degree, inst.graph.degree(v));
      }
      constexpr double kSerialEdgeSeconds = 60e-9;
      t += static_cast<double>(tpv_tail_degree) * kSerialEdgeSeconds *
           r.iterations;
      // Block-per-vertex idling: a one-vertex block of 32+ lanes working a
      // degree-d < 32 vertex wastes (32 - d) lane-slots.
      std::uint64_t bpv_idle = 0;
      for (const Vertex v : part.high) {
        const auto d = inst.graph.degree(v);
        if (d < 32) bpv_idle += 32 - d;
      }
      t += static_cast<double>(bpv_idle) * r.iterations * 32.0 /
           gpu.random_access_per_s;

      runs[s].push_back({t, part.low.size(), part.high.size()});
    }
  }

  // Normalize to switch degree 32 (index 4 in the sweep).
  for (std::size_t s = 0; s < std::size(sweep); ++s) {
    std::vector<double> rel;
    std::uint64_t low = 0, high = 0;
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      rel.push_back(runs[s][i].time / runs[4][i].time);
      low += runs[s][i].low;
      high += runs[s][i].high;
    }
    table.add_row({std::to_string(sweep[s]), fmt(bench::geomean(rel), 3),
                   std::to_string(low), std::to_string(high)});
  }
  table.print();
  std::printf("\nPaper: 32 (the warp size) minimizes runtime.\n");
  return 0;
}
