file(REMOVE_RECURSE
  "CMakeFiles/coalesced.dir/coalesced.cpp.o"
  "CMakeFiles/coalesced.dir/coalesced.cpp.o.d"
  "coalesced"
  "coalesced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coalesced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
