# Empty dependencies file for coalesced.
# This may be replaced when dependencies are built.
