file(REMOVE_RECURSE
  "CMakeFiles/dataset_table.dir/dataset_table.cpp.o"
  "CMakeFiles/dataset_table.dir/dataset_table.cpp.o.d"
  "dataset_table"
  "dataset_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
