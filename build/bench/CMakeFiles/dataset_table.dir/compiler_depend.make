# Empty compiler generated dependencies file for dataset_table.
# This may be replaced when dependencies are built.
