
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/datatype.cpp" "bench/CMakeFiles/datatype.dir/datatype.cpp.o" "gcc" "bench/CMakeFiles/datatype.dir/datatype.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nulpa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/nulpa_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/observe/CMakeFiles/nulpa_observe.dir/DependInfo.cmake"
  "/root/repo/build/src/quality/CMakeFiles/nulpa_quality.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/nulpa_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/nulpa_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/nulpa_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/nulpa_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/nulpa_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
