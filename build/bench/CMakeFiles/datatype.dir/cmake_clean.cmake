file(REMOVE_RECURSE
  "CMakeFiles/datatype.dir/datatype.cpp.o"
  "CMakeFiles/datatype.dir/datatype.cpp.o.d"
  "datatype"
  "datatype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datatype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
