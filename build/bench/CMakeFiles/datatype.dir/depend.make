# Empty dependencies file for datatype.
# This may be replaced when dependencies are built.
