file(REMOVE_RECURSE
  "CMakeFiles/hashtable_micro.dir/hashtable_micro.cpp.o"
  "CMakeFiles/hashtable_micro.dir/hashtable_micro.cpp.o.d"
  "hashtable_micro"
  "hashtable_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hashtable_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
