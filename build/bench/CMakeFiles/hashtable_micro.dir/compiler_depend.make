# Empty compiler generated dependencies file for hashtable_micro.
# This may be replaced when dependencies are built.
