file(REMOVE_RECURSE
  "CMakeFiles/memory.dir/memory.cpp.o"
  "CMakeFiles/memory.dir/memory.cpp.o.d"
  "memory"
  "memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
