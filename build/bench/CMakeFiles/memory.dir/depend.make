# Empty dependencies file for memory.
# This may be replaced when dependencies are built.
