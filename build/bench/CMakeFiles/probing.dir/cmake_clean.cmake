file(REMOVE_RECURSE
  "CMakeFiles/probing.dir/probing.cpp.o"
  "CMakeFiles/probing.dir/probing.cpp.o.d"
  "probing"
  "probing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
