file(REMOVE_RECURSE
  "CMakeFiles/swap_prevention.dir/swap_prevention.cpp.o"
  "CMakeFiles/swap_prevention.dir/swap_prevention.cpp.o.d"
  "swap_prevention"
  "swap_prevention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swap_prevention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
