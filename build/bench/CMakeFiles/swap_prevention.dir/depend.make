# Empty dependencies file for swap_prevention.
# This may be replaced when dependencies are built.
