file(REMOVE_RECURSE
  "CMakeFiles/switch_degree.dir/switch_degree.cpp.o"
  "CMakeFiles/switch_degree.dir/switch_degree.cpp.o.d"
  "switch_degree"
  "switch_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switch_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
