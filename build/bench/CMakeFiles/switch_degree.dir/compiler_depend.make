# Empty compiler generated dependencies file for switch_degree.
# This may be replaced when dependencies are built.
