# Empty dependencies file for switch_degree.
# This may be replaced when dependencies are built.
