file(REMOVE_RECURSE
  "CMakeFiles/web_communities.dir/web_communities.cpp.o"
  "CMakeFiles/web_communities.dir/web_communities.cpp.o.d"
  "web_communities"
  "web_communities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_communities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
