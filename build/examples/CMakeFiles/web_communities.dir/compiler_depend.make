# Empty compiler generated dependencies file for web_communities.
# This may be replaced when dependencies are built.
