
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/flpa.cpp" "src/baselines/CMakeFiles/nulpa_baselines.dir/flpa.cpp.o" "gcc" "src/baselines/CMakeFiles/nulpa_baselines.dir/flpa.cpp.o.d"
  "/root/repo/src/baselines/gunrock_lpa.cpp" "src/baselines/CMakeFiles/nulpa_baselines.dir/gunrock_lpa.cpp.o" "gcc" "src/baselines/CMakeFiles/nulpa_baselines.dir/gunrock_lpa.cpp.o.d"
  "/root/repo/src/baselines/gunrock_lpa_simt.cpp" "src/baselines/CMakeFiles/nulpa_baselines.dir/gunrock_lpa_simt.cpp.o" "gcc" "src/baselines/CMakeFiles/nulpa_baselines.dir/gunrock_lpa_simt.cpp.o.d"
  "/root/repo/src/baselines/gve_lpa.cpp" "src/baselines/CMakeFiles/nulpa_baselines.dir/gve_lpa.cpp.o" "gcc" "src/baselines/CMakeFiles/nulpa_baselines.dir/gve_lpa.cpp.o.d"
  "/root/repo/src/baselines/louvain.cpp" "src/baselines/CMakeFiles/nulpa_baselines.dir/louvain.cpp.o" "gcc" "src/baselines/CMakeFiles/nulpa_baselines.dir/louvain.cpp.o.d"
  "/root/repo/src/baselines/plp.cpp" "src/baselines/CMakeFiles/nulpa_baselines.dir/plp.cpp.o" "gcc" "src/baselines/CMakeFiles/nulpa_baselines.dir/plp.cpp.o.d"
  "/root/repo/src/baselines/seq_lpa.cpp" "src/baselines/CMakeFiles/nulpa_baselines.dir/seq_lpa.cpp.o" "gcc" "src/baselines/CMakeFiles/nulpa_baselines.dir/seq_lpa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/nulpa_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/nulpa_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/quality/CMakeFiles/nulpa_quality.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/nulpa_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/nulpa_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/observe/CMakeFiles/nulpa_observe.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/nulpa_perfmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
