file(REMOVE_RECURSE
  "CMakeFiles/nulpa_baselines.dir/flpa.cpp.o"
  "CMakeFiles/nulpa_baselines.dir/flpa.cpp.o.d"
  "CMakeFiles/nulpa_baselines.dir/gunrock_lpa.cpp.o"
  "CMakeFiles/nulpa_baselines.dir/gunrock_lpa.cpp.o.d"
  "CMakeFiles/nulpa_baselines.dir/gunrock_lpa_simt.cpp.o"
  "CMakeFiles/nulpa_baselines.dir/gunrock_lpa_simt.cpp.o.d"
  "CMakeFiles/nulpa_baselines.dir/gve_lpa.cpp.o"
  "CMakeFiles/nulpa_baselines.dir/gve_lpa.cpp.o.d"
  "CMakeFiles/nulpa_baselines.dir/louvain.cpp.o"
  "CMakeFiles/nulpa_baselines.dir/louvain.cpp.o.d"
  "CMakeFiles/nulpa_baselines.dir/plp.cpp.o"
  "CMakeFiles/nulpa_baselines.dir/plp.cpp.o.d"
  "CMakeFiles/nulpa_baselines.dir/seq_lpa.cpp.o"
  "CMakeFiles/nulpa_baselines.dir/seq_lpa.cpp.o.d"
  "libnulpa_baselines.a"
  "libnulpa_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nulpa_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
