file(REMOVE_RECURSE
  "libnulpa_baselines.a"
)
