# Empty dependencies file for nulpa_baselines.
# This may be replaced when dependencies are built.
