file(REMOVE_RECURSE
  "CMakeFiles/nulpa_core.dir/multilevel.cpp.o"
  "CMakeFiles/nulpa_core.dir/multilevel.cpp.o.d"
  "CMakeFiles/nulpa_core.dir/nulpa.cpp.o"
  "CMakeFiles/nulpa_core.dir/nulpa.cpp.o.d"
  "CMakeFiles/nulpa_core.dir/runner.cpp.o"
  "CMakeFiles/nulpa_core.dir/runner.cpp.o.d"
  "libnulpa_core.a"
  "libnulpa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nulpa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
