file(REMOVE_RECURSE
  "libnulpa_core.a"
)
