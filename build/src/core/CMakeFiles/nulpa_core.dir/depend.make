# Empty dependencies file for nulpa_core.
# This may be replaced when dependencies are built.
