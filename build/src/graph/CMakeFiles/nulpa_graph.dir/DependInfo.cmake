
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/binary_io.cpp" "src/graph/CMakeFiles/nulpa_graph.dir/binary_io.cpp.o" "gcc" "src/graph/CMakeFiles/nulpa_graph.dir/binary_io.cpp.o.d"
  "/root/repo/src/graph/builder.cpp" "src/graph/CMakeFiles/nulpa_graph.dir/builder.cpp.o" "gcc" "src/graph/CMakeFiles/nulpa_graph.dir/builder.cpp.o.d"
  "/root/repo/src/graph/csr.cpp" "src/graph/CMakeFiles/nulpa_graph.dir/csr.cpp.o" "gcc" "src/graph/CMakeFiles/nulpa_graph.dir/csr.cpp.o.d"
  "/root/repo/src/graph/dataset.cpp" "src/graph/CMakeFiles/nulpa_graph.dir/dataset.cpp.o" "gcc" "src/graph/CMakeFiles/nulpa_graph.dir/dataset.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/graph/CMakeFiles/nulpa_graph.dir/generators.cpp.o" "gcc" "src/graph/CMakeFiles/nulpa_graph.dir/generators.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/graph/CMakeFiles/nulpa_graph.dir/io.cpp.o" "gcc" "src/graph/CMakeFiles/nulpa_graph.dir/io.cpp.o.d"
  "/root/repo/src/graph/metis_io.cpp" "src/graph/CMakeFiles/nulpa_graph.dir/metis_io.cpp.o" "gcc" "src/graph/CMakeFiles/nulpa_graph.dir/metis_io.cpp.o.d"
  "/root/repo/src/graph/partition.cpp" "src/graph/CMakeFiles/nulpa_graph.dir/partition.cpp.o" "gcc" "src/graph/CMakeFiles/nulpa_graph.dir/partition.cpp.o.d"
  "/root/repo/src/graph/stats.cpp" "src/graph/CMakeFiles/nulpa_graph.dir/stats.cpp.o" "gcc" "src/graph/CMakeFiles/nulpa_graph.dir/stats.cpp.o.d"
  "/root/repo/src/graph/transforms.cpp" "src/graph/CMakeFiles/nulpa_graph.dir/transforms.cpp.o" "gcc" "src/graph/CMakeFiles/nulpa_graph.dir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
