file(REMOVE_RECURSE
  "CMakeFiles/nulpa_graph.dir/binary_io.cpp.o"
  "CMakeFiles/nulpa_graph.dir/binary_io.cpp.o.d"
  "CMakeFiles/nulpa_graph.dir/builder.cpp.o"
  "CMakeFiles/nulpa_graph.dir/builder.cpp.o.d"
  "CMakeFiles/nulpa_graph.dir/csr.cpp.o"
  "CMakeFiles/nulpa_graph.dir/csr.cpp.o.d"
  "CMakeFiles/nulpa_graph.dir/dataset.cpp.o"
  "CMakeFiles/nulpa_graph.dir/dataset.cpp.o.d"
  "CMakeFiles/nulpa_graph.dir/generators.cpp.o"
  "CMakeFiles/nulpa_graph.dir/generators.cpp.o.d"
  "CMakeFiles/nulpa_graph.dir/io.cpp.o"
  "CMakeFiles/nulpa_graph.dir/io.cpp.o.d"
  "CMakeFiles/nulpa_graph.dir/metis_io.cpp.o"
  "CMakeFiles/nulpa_graph.dir/metis_io.cpp.o.d"
  "CMakeFiles/nulpa_graph.dir/partition.cpp.o"
  "CMakeFiles/nulpa_graph.dir/partition.cpp.o.d"
  "CMakeFiles/nulpa_graph.dir/stats.cpp.o"
  "CMakeFiles/nulpa_graph.dir/stats.cpp.o.d"
  "CMakeFiles/nulpa_graph.dir/transforms.cpp.o"
  "CMakeFiles/nulpa_graph.dir/transforms.cpp.o.d"
  "libnulpa_graph.a"
  "libnulpa_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nulpa_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
