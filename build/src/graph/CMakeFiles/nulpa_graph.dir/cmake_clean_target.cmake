file(REMOVE_RECURSE
  "libnulpa_graph.a"
)
