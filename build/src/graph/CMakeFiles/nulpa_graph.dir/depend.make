# Empty dependencies file for nulpa_graph.
# This may be replaced when dependencies are built.
