file(REMOVE_RECURSE
  "CMakeFiles/nulpa_hash.dir/probing.cpp.o"
  "CMakeFiles/nulpa_hash.dir/probing.cpp.o.d"
  "libnulpa_hash.a"
  "libnulpa_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nulpa_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
