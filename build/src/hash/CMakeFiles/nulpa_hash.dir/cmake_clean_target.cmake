file(REMOVE_RECURSE
  "libnulpa_hash.a"
)
