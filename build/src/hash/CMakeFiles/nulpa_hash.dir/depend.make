# Empty dependencies file for nulpa_hash.
# This may be replaced when dependencies are built.
