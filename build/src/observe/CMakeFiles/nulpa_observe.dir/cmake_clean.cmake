file(REMOVE_RECURSE
  "CMakeFiles/nulpa_observe.dir/trace.cpp.o"
  "CMakeFiles/nulpa_observe.dir/trace.cpp.o.d"
  "libnulpa_observe.a"
  "libnulpa_observe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nulpa_observe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
