file(REMOVE_RECURSE
  "libnulpa_observe.a"
)
