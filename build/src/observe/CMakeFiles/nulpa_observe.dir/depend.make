# Empty dependencies file for nulpa_observe.
# This may be replaced when dependencies are built.
