file(REMOVE_RECURSE
  "CMakeFiles/nulpa_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/nulpa_parallel.dir/thread_pool.cpp.o.d"
  "libnulpa_parallel.a"
  "libnulpa_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nulpa_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
