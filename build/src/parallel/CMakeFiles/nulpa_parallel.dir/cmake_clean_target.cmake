file(REMOVE_RECURSE
  "libnulpa_parallel.a"
)
