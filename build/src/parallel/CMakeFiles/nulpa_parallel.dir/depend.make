# Empty dependencies file for nulpa_parallel.
# This may be replaced when dependencies are built.
