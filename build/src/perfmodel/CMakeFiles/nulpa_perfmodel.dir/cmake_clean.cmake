file(REMOVE_RECURSE
  "CMakeFiles/nulpa_perfmodel.dir/machine.cpp.o"
  "CMakeFiles/nulpa_perfmodel.dir/machine.cpp.o.d"
  "libnulpa_perfmodel.a"
  "libnulpa_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nulpa_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
