file(REMOVE_RECURSE
  "libnulpa_perfmodel.a"
)
