# Empty compiler generated dependencies file for nulpa_perfmodel.
# This may be replaced when dependencies are built.
