
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quality/communities.cpp" "src/quality/CMakeFiles/nulpa_quality.dir/communities.cpp.o" "gcc" "src/quality/CMakeFiles/nulpa_quality.dir/communities.cpp.o.d"
  "/root/repo/src/quality/metrics.cpp" "src/quality/CMakeFiles/nulpa_quality.dir/metrics.cpp.o" "gcc" "src/quality/CMakeFiles/nulpa_quality.dir/metrics.cpp.o.d"
  "/root/repo/src/quality/modularity.cpp" "src/quality/CMakeFiles/nulpa_quality.dir/modularity.cpp.o" "gcc" "src/quality/CMakeFiles/nulpa_quality.dir/modularity.cpp.o.d"
  "/root/repo/src/quality/nmi.cpp" "src/quality/CMakeFiles/nulpa_quality.dir/nmi.cpp.o" "gcc" "src/quality/CMakeFiles/nulpa_quality.dir/nmi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/nulpa_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
