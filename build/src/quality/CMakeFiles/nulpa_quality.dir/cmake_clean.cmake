file(REMOVE_RECURSE
  "CMakeFiles/nulpa_quality.dir/communities.cpp.o"
  "CMakeFiles/nulpa_quality.dir/communities.cpp.o.d"
  "CMakeFiles/nulpa_quality.dir/metrics.cpp.o"
  "CMakeFiles/nulpa_quality.dir/metrics.cpp.o.d"
  "CMakeFiles/nulpa_quality.dir/modularity.cpp.o"
  "CMakeFiles/nulpa_quality.dir/modularity.cpp.o.d"
  "CMakeFiles/nulpa_quality.dir/nmi.cpp.o"
  "CMakeFiles/nulpa_quality.dir/nmi.cpp.o.d"
  "libnulpa_quality.a"
  "libnulpa_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nulpa_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
