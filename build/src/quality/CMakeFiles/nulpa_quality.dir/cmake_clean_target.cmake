file(REMOVE_RECURSE
  "libnulpa_quality.a"
)
