# Empty compiler generated dependencies file for nulpa_quality.
# This may be replaced when dependencies are built.
