file(REMOVE_RECURSE
  "CMakeFiles/nulpa_simt.dir/counters.cpp.o"
  "CMakeFiles/nulpa_simt.dir/counters.cpp.o.d"
  "CMakeFiles/nulpa_simt.dir/fiber.cpp.o"
  "CMakeFiles/nulpa_simt.dir/fiber.cpp.o.d"
  "CMakeFiles/nulpa_simt.dir/fiber_switch.S.o"
  "CMakeFiles/nulpa_simt.dir/grid.cpp.o"
  "CMakeFiles/nulpa_simt.dir/grid.cpp.o.d"
  "libnulpa_simt.a"
  "libnulpa_simt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang ASM CXX)
  include(CMakeFiles/nulpa_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
