file(REMOVE_RECURSE
  "libnulpa_simt.a"
)
