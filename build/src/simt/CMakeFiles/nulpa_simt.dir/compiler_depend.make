# Empty compiler generated dependencies file for nulpa_simt.
# This may be replaced when dependencies are built.
