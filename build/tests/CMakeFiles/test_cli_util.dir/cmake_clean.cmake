file(REMOVE_RECURSE
  "CMakeFiles/test_cli_util.dir/cli_util_test.cpp.o"
  "CMakeFiles/test_cli_util.dir/cli_util_test.cpp.o.d"
  "test_cli_util"
  "test_cli_util.pdb"
  "test_cli_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cli_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
