# Empty compiler generated dependencies file for test_cli_util.
# This may be replaced when dependencies are built.
