file(REMOVE_RECURSE
  "CMakeFiles/test_file_io.dir/file_io_test.cpp.o"
  "CMakeFiles/test_file_io.dir/file_io_test.cpp.o.d"
  "test_file_io"
  "test_file_io.pdb"
  "test_file_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_file_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
