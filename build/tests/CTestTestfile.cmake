# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_simt[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_hash[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_quality[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_transforms[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_perfmodel[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_equivalence[1]_include.cmake")
include("/root/repo/build/tests/test_file_io[1]_include.cmake")
include("/root/repo/build/tests/test_multilevel[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
include("/root/repo/build/tests/test_cli_util[1]_include.cmake")
include("/root/repo/build/tests/test_observe[1]_include.cmake")
add_test(trace_summary_smoke "/usr/bin/cmake" "-DNULPA=/root/repo/build/tools/nulpa" "-DWORK_DIR=/root/repo/build/tests" "-P" "/root/repo/tests/trace_summary_smoke.cmake")
set_tests_properties(trace_summary_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;33;add_test;/root/repo/tests/CMakeLists.txt;0;")
