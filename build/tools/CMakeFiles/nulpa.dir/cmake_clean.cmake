file(REMOVE_RECURSE
  "CMakeFiles/nulpa.dir/nulpa_cli.cpp.o"
  "CMakeFiles/nulpa.dir/nulpa_cli.cpp.o.d"
  "nulpa"
  "nulpa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nulpa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
