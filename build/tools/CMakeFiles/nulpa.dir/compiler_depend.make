# Empty compiler generated dependencies file for nulpa.
# This may be replaced when dependencies are built.
