# Empty dependencies file for nulpa.
# This may be replaced when dependencies are built.
