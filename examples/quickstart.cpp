// Quickstart: build a small graph, run ν-LPA, inspect the communities.
//
//   ./quickstart [--cliques 8] [--size 6]
//
// This is the 60-second tour of the public API: GraphBuilder/generators ->
// nu_lpa() -> quality metrics.
#include <cstdio>

#include "core/nulpa.hpp"
#include "graph/generators.hpp"
#include "quality/communities.hpp"
#include "quality/modularity.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace nulpa;
  const CliArgs args(argc, argv);
  const auto cliques = static_cast<Vertex>(args.get_int("cliques", 8));
  const auto size = static_cast<Vertex>(args.get_int("size", 6));

  // A ring of cliques: the textbook community-detection example.
  const Graph g = generate_ring_of_cliques(cliques, size);
  std::printf("graph: %u vertices, %llu arcs\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  // Run ν-LPA with the paper's defaults (PL4, quadratic-double probing,
  // switch degree 32, float hashtable values).
  const NuLpaResult result = nu_lpa(g);

  std::printf("nu-LPA finished in %d iterations (%.3f ms host wall-clock)\n",
              result.iterations, result.seconds * 1e3);
  std::printf("communities found: %u (expected %u)\n",
              count_communities(result.labels), cliques);
  std::printf("modularity: %.4f\n", modularity(g, result.labels));

  // Show the membership of the first two cliques.
  for (Vertex v = 0; v < std::min<Vertex>(2 * size, g.num_vertices()); ++v) {
    std::printf("  vertex %2u -> community %u\n", v, result.labels[v]);
  }

  // Simulated-hardware counters feed the performance model (see
  // examples/web_communities.cpp for modeled GPU time).
  std::printf("simulated: %llu kernel launches, %llu global loads, "
              "%llu hashtable inserts (%llu probe collisions)\n",
              static_cast<unsigned long long>(result.counters.kernel_launches),
              static_cast<unsigned long long>(result.counters.global_loads),
              static_cast<unsigned long long>(result.hash_stats.inserts),
              static_cast<unsigned long long>(result.hash_stats.probes));
  return 0;
}
