// Partitioning a road network with LPA communities — the "future work"
// application the paper's conclusion motivates (graph partitioning). Road
// networks are ν-LPA's hardest category in Table 1: average degree ~2.1,
// huge diameters, millions of tiny communities.
//
//   ./road_partition [--width 160] [--height 160]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/nulpa.hpp"
#include "graph/generators.hpp"
#include "quality/communities.hpp"
#include "quality/modularity.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace nulpa;
  const CliArgs args(argc, argv);
  const auto width = static_cast<Vertex>(args.get_int("width", 160));
  const auto height = static_cast<Vertex>(args.get_int("height", 160));

  const Graph g = generate_road(width, height, 0.0, /*seed=*/7);
  std::printf("road network: %u junctions, %llu arcs, avg degree %.2f\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()),
              g.average_degree());

  const NuLpaResult r = nu_lpa(g);
  std::vector<Vertex> compact(r.labels);
  const Vertex parts = compact_labels(compact);

  std::printf("nu-LPA: %u parts in %d iterations, modularity %.4f\n", parts,
              r.iterations, modularity(g, r.labels));

  // Partition quality metrics a partitioner user would ask about:
  // edge cut and balance.
  std::uint64_t cut_arcs = 0;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (const Vertex v : g.neighbors(u)) {
      if (r.labels[u] != r.labels[v]) ++cut_arcs;
    }
  }
  const auto sizes = community_sizes(r.labels);
  const Vertex largest = *std::max_element(sizes.begin(), sizes.end());
  const double avg =
      static_cast<double>(g.num_vertices()) / static_cast<double>(parts);

  std::printf("edge cut: %llu of %llu arcs (%.1f%%)\n",
              static_cast<unsigned long long>(cut_arcs / 2),
              static_cast<unsigned long long>(g.num_edges() / 2),
              100.0 * static_cast<double>(cut_arcs) /
                  static_cast<double>(g.num_edges()));
  std::printf("balance: largest part %u vs average %.1f (imbalance %.2fx)\n",
              largest, avg, static_cast<double>(largest) / avg);

  // Size distribution summary.
  std::vector<Vertex> sorted(sizes);
  std::sort(sorted.begin(), sorted.end());
  std::printf("part sizes: min %u, median %u, max %u\n", sorted.front(),
              sorted[sorted.size() / 2], sorted.back());
  return 0;
}
