// Social-network analysis with ground truth: plant a community structure,
// recover it with every algorithm in the library, and score them with NMI —
// the metric the paper cites for LPA's strength relative to its modest
// modularity.
//
//   ./social_analysis [--members 400] [--groups 12] [--noise 2.0]
#include <cstdio>

#include "baselines/flpa.hpp"
#include "baselines/gunrock_lpa.hpp"
#include "baselines/louvain.hpp"
#include "baselines/plp.hpp"
#include "baselines/seq_lpa.hpp"
#include "core/nulpa.hpp"
#include "graph/generators.hpp"
#include "quality/communities.hpp"
#include "quality/modularity.hpp"
#include "quality/nmi.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nulpa;
  const CliArgs args(argc, argv);
  const auto members = static_cast<Vertex>(args.get_int("members", 400));
  const auto groups = static_cast<Vertex>(args.get_int("groups", 12));
  const double noise = args.get_double("noise", 2.0);

  const auto pp = generate_planted_partition(
      members * groups, groups, /*avg_degree_in=*/12.0,
      /*avg_degree_out=*/noise, /*seed=*/99);
  const Graph& g = pp.graph;
  std::printf(
      "planted social network: %u members, %u groups, %llu arcs "
      "(intra-degree 12, inter-degree %.1f)\n\n",
      g.num_vertices(), groups,
      static_cast<unsigned long long>(g.num_edges()), noise);

  TextTable table(
      {"algorithm", "NMI vs truth", "modularity", "communities", "iters"});
  auto report = [&](const char* name, const std::vector<Vertex>& labels,
                    int iters) {
    table.add_row({name,
                   fmt(normalized_mutual_information(labels, pp.ground_truth)),
                   fmt(modularity(g, labels)),
                   std::to_string(count_communities(labels)),
                   std::to_string(iters)});
  };

  const auto r_nu = nu_lpa(g);
  report("nu-LPA", r_nu.labels, r_nu.iterations);
  const auto r_flpa = flpa(g, FlpaConfig{});
  report("FLPA", r_flpa.labels, r_flpa.iterations);
  const auto r_plp = plp(g, PlpConfig{});
  report("NetworKit-style PLP", r_plp.labels, r_plp.iterations);
  const auto r_seq = seq_lpa(g, SeqLpaConfig{});
  report("textbook LPA", r_seq.labels, r_seq.iterations);
  const auto r_gr = gunrock_lpa(g, GunrockLpaConfig{});
  report("Gunrock-style sync LPA", r_gr.labels, r_gr.iterations);
  const auto r_lv = louvain(g, LouvainConfig{});
  report("Louvain", r_lv.labels, r_lv.iterations);

  table.print();
  std::printf(
      "\nLPA variants recover planted structure (high NMI) at a fraction of "
      "Louvain's cost; the synchronous fixed-iteration variant trails, as "
      "the paper observes for Gunrock.\n");
  return 0;
}
