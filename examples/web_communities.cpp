// Community detection on a synthetic web crawl — the paper's headline
// workload. Runs ν-LPA against FLPA (sequential state of the art) and the
// Louvain method, reporting quality and both measured and modeled runtimes.
//
//   ./web_communities [--vertices 20000] [--out-degree 8] [--locality 0.85]
#include <cstdio>

#include "baselines/flpa.hpp"
#include "baselines/louvain.hpp"
#include "core/nulpa.hpp"
#include "graph/generators.hpp"
#include "perfmodel/machine.hpp"
#include "quality/communities.hpp"
#include "quality/modularity.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nulpa;
  const CliArgs args(argc, argv);
  const auto n = static_cast<Vertex>(args.get_int("vertices", 20000));
  const auto out_degree =
      static_cast<std::uint32_t>(args.get_int("out-degree", 8));
  const double locality = args.get_double("locality", 0.85);

  const Graph g = generate_web(n, out_degree, locality, /*seed=*/42);
  std::printf("synthetic web crawl: %u pages, %llu arcs, avg degree %.1f\n\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()),
              g.average_degree());

  TextTable table({"algorithm", "modularity", "communities", "iterations",
                   "host wall-clock", "modeled platform time"});

  {
    const auto r = nu_lpa(g);
    const double gpu = modeled_gpu_seconds(a100(), r.counters);
    table.add_row({"nu-LPA (simulated A100)", fmt(modularity(g, r.labels)),
                   std::to_string(count_communities(r.labels)),
                   std::to_string(r.iterations), fmt(r.seconds, 3) + " s",
                   fmt(gpu * 1e3, 3) + " ms"});
  }
  {
    const auto r = flpa(g, FlpaConfig{});
    table.add_row({"FLPA (sequential)", fmt(modularity(g, r.labels)),
                   std::to_string(count_communities(r.labels)),
                   std::to_string(r.iterations), fmt(r.seconds, 3) + " s",
                   fmt(r.seconds * 1e3, 3) + " ms"});
  }
  {
    const auto r = louvain(g, LouvainConfig{});
    table.add_row({"Louvain (for reference)", fmt(modularity(g, r.labels)),
                   std::to_string(count_communities(r.labels)),
                   std::to_string(r.iterations), fmt(r.seconds, 3) + " s",
                   fmt(r.seconds * 1e3, 3) + " ms"});
  }

  table.print();
  std::printf(
      "\nModeled platform time converts simulator counters into A100 "
      "kernel time (see src/perfmodel); host wall-clock of the simulator "
      "is not comparable across rows.\n");
  return 0;
}
