#include "baselines/flpa.hpp"

#include <deque>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"
#include "util/timer.hpp"

namespace nulpa {

ClusteringResult flpa(const Graph& g, const FlpaConfig& cfg,
                      observe::Tracer* tracer) {
  Timer timer;
  Xoshiro256 rng(cfg.seed);
  const Vertex n = g.num_vertices();
  ClusteringResult res;
  res.labels.resize(n);
  for (Vertex v = 0; v < n; ++v) res.labels[v] = v;

  std::deque<Vertex> queue;
  std::vector<std::uint8_t> in_queue(n, 1);
  for (Vertex v = 0; v < n; ++v) queue.push_back(v);

  std::unordered_map<Vertex, double> weight_of;
  std::vector<Vertex> dominant;
  std::uint64_t processed = 0;
  const std::uint64_t max_processed =
      cfg.max_processed_factor == 0
          ? ~0ULL
          : cfg.max_processed_factor * static_cast<std::uint64_t>(n);

  const observe::RunTrace trace(tracer, "flpa", n, g.num_edges());
  int epoch = 0;
  std::uint64_t epoch_changed = 0, total_changed = 0, epoch_edges0 = 0;
  Timer epoch_timer;
  if (trace.on()) trace.iteration_start(epoch, queue.size());

  while (!queue.empty() && processed < max_processed) {
    const Vertex v = queue.front();
    queue.pop_front();
    in_queue[v] = 0;
    ++processed;
    // Epoch boundary: |V| pops count as one "iteration" of the queue run.
    if (trace.on() && processed % std::max<std::uint64_t>(n, 1) == 0) {
      trace.iteration_end(epoch, queue.size(), epoch_changed,
                          res.edges_scanned - epoch_edges0,
                          epoch_timer.seconds());
      ++epoch;
      epoch_changed = 0;
      epoch_edges0 = res.edges_scanned;
      epoch_timer.reset();
      trace.iteration_start(epoch, queue.size());
    }

    const auto nbrs = g.neighbors(v);
    const auto wts = g.weights_of(v);
    res.edges_scanned += nbrs.size();
    if (nbrs.empty()) continue;

    weight_of.clear();
    double best_w = 0.0;
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (nbrs[k] == v) continue;
      const double w = (weight_of[res.labels[nbrs[k]]] += wts[k]);
      if (w > best_w) best_w = w;
    }
    if (weight_of.empty()) continue;

    // FLPA picks uniformly among all dominant labels.
    dominant.clear();
    for (const auto& [label, w] : weight_of) {
      if (w == best_w) dominant.push_back(label);
    }
    const Vertex chosen =
        dominant.size() == 1
            ? dominant.front()
            : dominant[rng.next_bounded(dominant.size())];

    if (chosen != res.labels[v]) {
      res.labels[v] = chosen;
      ++epoch_changed;
      ++total_changed;
      // Re-enqueue neighbours that are not already in the new community
      // and not already queued.
      for (const Vertex u : nbrs) {
        if (res.labels[u] != chosen && !in_queue[u]) {
          in_queue[u] = 1;
          queue.push_back(u);
        }
      }
    }
  }

  // "Iterations" for a queue algorithm: processed vertices / |V|, rounded up.
  res.iterations = static_cast<int>((processed + n - 1) / std::max<Vertex>(n, 1));
  res.seconds = timer.seconds();
  if (trace.on()) {
    // Flush the final partial epoch, then close the run. Convergence for
    // FLPA means the queue drained before the safety valve fired.
    if (processed % std::max<std::uint64_t>(n, 1) != 0 || processed == 0) {
      trace.iteration_end(epoch, queue.size(), epoch_changed,
                          res.edges_scanned - epoch_edges0,
                          epoch_timer.seconds());
    }
    trace.run_end(res.iterations, queue.empty(), total_changed,
                  res.edges_scanned, res.seconds);
  }
  return res;
}

ClusteringResult flpa(const Graph& g, const FlpaConfig& cfg) {
  return flpa(g, cfg, nullptr);
}

}  // namespace nulpa
