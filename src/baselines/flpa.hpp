// Fast Label Propagation Algorithm (Traag & Šubelj 2023) as shipped in
// igraph's IGRAPH_LPA_FAST variant — the sequential state of the art the
// paper compares against. Queue-driven: only vertices whose neighbourhood
// recently changed are reprocessed; converges when the queue empties; no
// random vertex-order shuffling; ties among dominant labels broken at
// random (the behaviour the paper calls out as slow).
#pragma once

#include <cstdint>

#include "baselines/result.hpp"
#include "graph/csr.hpp"
#include "observe/trace.hpp"

namespace nulpa {

struct FlpaConfig {
  std::uint64_t seed = 1;  // tie-break RNG seed
  // Safety valve (the real FLPA runs until the queue drains; on graphs with
  // persistent swaps that can be long). 0 = unbounded.
  std::uint64_t max_processed_factor = 64;  // max processed = factor * |V|
};

/// Tracing note: FLPA has no sweep boundary, so one trace "iteration" is an
/// epoch of |V| processed queue entries; active_vertices is the queue depth
/// at the epoch boundary.
ClusteringResult flpa(const Graph& g, const FlpaConfig& cfg,
                      observe::Tracer* tracer);
ClusteringResult flpa(const Graph& g, const FlpaConfig& cfg);

}  // namespace nulpa
