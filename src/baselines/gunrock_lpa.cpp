#include "baselines/gunrock_lpa.hpp"

#include <unordered_map>
#include <vector>

#include "util/timer.hpp"

namespace nulpa {

ClusteringResult gunrock_lpa(const Graph& g, const GunrockLpaConfig& cfg) {
  Timer timer;
  const Vertex n = g.num_vertices();
  ClusteringResult res;
  res.labels.resize(n);
  for (Vertex v = 0; v < n; ++v) res.labels[v] = v;
  std::vector<Vertex> next(res.labels);

  std::unordered_map<Vertex, double> weight_of;
  for (int it = 0; it < cfg.iterations; ++it) {
    for (Vertex v = 0; v < n; ++v) {
      const auto nbrs = g.neighbors(v);
      const auto wts = g.weights_of(v);
      res.edges_scanned += nbrs.size();
      if (nbrs.empty()) continue;
      weight_of.clear();
      Vertex best = res.labels[v];
      double best_w = -1.0;
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        if (nbrs[k] == v) continue;
        const Vertex c = res.labels[nbrs[k]];
        const double w = (weight_of[c] += wts[k]);
        // Tie-break toward the smaller label id (min-reduction semantics
        // of the data-parallel formulation).
        if (w > best_w || (w == best_w && c < best)) {
          best_w = w;
          best = c;
        }
      }
      next[v] = best;
    }
    res.labels.swap(next);
    ++res.iterations;
  }

  res.seconds = timer.seconds();
  return res;
}

}  // namespace nulpa
