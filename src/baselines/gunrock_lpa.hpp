// Gunrock-style synchronous LPA. Gunrock's LpProblem runs data-parallel
// label updates against a snapshot of the previous iteration's labels
// (double-buffered) for a fixed, small number of iterations and breaks ties
// toward the smaller label id. Synchronous updates oscillate on symmetric
// structures and the early cut-off leaves propagation unfinished — which is
// why the paper measures "very low" modularity for it (Fig. 7c).
#pragma once

#include "baselines/result.hpp"
#include "graph/csr.hpp"
#include "simt/grid.hpp"

namespace nulpa {

struct GunrockLpaConfig {
  int iterations = 5;  // Gunrock runs a fixed short schedule by default
  // SIMT variant only: how the simulator executes the advance kernel.
  //
  //   exec.frontier_compaction — launch each iteration over the frontier of
  //     vertices whose neighborhood changed last iteration instead of the
  //     full range. Synchronous LPA reads a snapshot, so a vertex with no
  //     changed neighbor recomputes its previous answer — skipping it is
  //     label-identical by construction (Gunrock itself is frontier-based).
  //   exec.sync — the advance kernel has no barriers, so the default
  //     (kAuto) runs it on the fiberless direct executor; kLockstep forces
  //     the fiber path (labels are identical either way; only
  //     scheduler-cost counters move).
  //   exec.backend/threads/deterministic — serial simulation (default) or
  //     the sharded parallel backend; see DESIGN.md.
  simt::ExecPolicy exec{};
};

ClusteringResult gunrock_lpa(const Graph& g, const GunrockLpaConfig& cfg);

}  // namespace nulpa
