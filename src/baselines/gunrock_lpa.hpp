// Gunrock-style synchronous LPA. Gunrock's LpProblem runs data-parallel
// label updates against a snapshot of the previous iteration's labels
// (double-buffered) for a fixed, small number of iterations and breaks ties
// toward the smaller label id. Synchronous updates oscillate on symmetric
// structures and the early cut-off leaves propagation unfinished — which is
// why the paper measures "very low" modularity for it (Fig. 7c).
#pragma once

#include "baselines/result.hpp"
#include "graph/csr.hpp"

namespace nulpa {

struct GunrockLpaConfig {
  int iterations = 5;  // Gunrock runs a fixed short schedule by default
  // SIMT variant only: launch each iteration over the frontier of vertices
  // whose neighborhood changed last iteration instead of the full range.
  // Synchronous LPA reads a snapshot, so a vertex with no changed neighbor
  // recomputes its previous answer — skipping it is label-identical by
  // construction (Gunrock itself is frontier-based).
  bool frontier_compaction = true;
  // SIMT variant only: the advance kernel has no barriers, so by default it
  // declares KernelTraits::barrier_free and runs on the fiberless direct
  // executor. Off = the lockstep fiber path (labels are identical either
  // way; only scheduler-cost counters move).
  bool fiberless = true;
};

ClusteringResult gunrock_lpa(const Graph& g, const GunrockLpaConfig& cfg);

}  // namespace nulpa
