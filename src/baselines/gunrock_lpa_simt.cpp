#include "baselines/gunrock_lpa_simt.hpp"

#include "hash/vertex_table.hpp"
#include "simt/grid.hpp"
#include "util/bits.hpp"
#include "util/timer.hpp"

namespace nulpa {

GunrockSimtResult gunrock_lpa_simt(const Graph& g,
                                   const GunrockLpaConfig& cfg) {
  Timer timer;
  GunrockSimtResult res;
  const Vertex n = g.num_vertices();
  res.labels.resize(n);
  for (Vertex v = 0; v < n; ++v) res.labels[v] = v;
  if (n == 0) {
    res.seconds = timer.seconds();
    return res;
  }

  std::vector<Vertex> next(res.labels);
  // Per-vertex aggregation scratch, same 2|E| layout as ν-LPA's tables —
  // Gunrock aggregates labels per vertex too (via segmented sort; a
  // hashtable is work-equivalent and lets us count comparable traffic).
  std::vector<Vertex> buf_k(2 * g.num_edges(), kEmptyKey);
  std::vector<float> buf_v(2 * g.num_edges(), 0.0f);

  simt::LaunchConfig launch;
  launch.block_dim = 256;
  launch.resident_blocks = 8;
  const auto grid =
      static_cast<std::uint32_t>(ceil_div(n, launch.block_dim));

  for (int it = 0; it < cfg.iterations; ++it) {
    simt::launch(grid, launch, res.counters, [&](simt::Lane& lane) {
      const std::uint32_t v = lane.global_thread();
      if (v >= n) return;
      const std::uint32_t deg = g.degree(v);
      if (deg == 0) return;

      const std::uint32_t p1 = hashtable_capacity(deg);
      const EdgeIndex off = 2 * g.offset(v);
      VertexTableView<float> table(buf_k.data() + off, buf_v.data() + off,
                                   p1);
      table.clear();
      lane.count_store(2 * p1);

      const auto nbrs = g.neighbors(v);
      const auto wts = g.weights_of(v);
      for (std::size_t e = 0; e < nbrs.size(); ++e) {
        if (nbrs[e] == v) continue;
        lane.count_load(3);
        table.accumulate(res.labels[nbrs[e]], wts[e], Probing::kQuadDouble);
        lane.count_store(1);
      }
      lane.counters().edges_scanned += deg;

      // Min-label tie-break, the reduction order of the data-parallel
      // formulation.
      Vertex best = res.labels[v];
      float best_w = -1.0f;
      lane.count_load(p1);
      const auto keys = table.keys();
      const auto values = table.values();
      for (std::uint32_t s = 0; s < p1; ++s) {
        if (keys[s] == kEmptyKey) continue;
        if (values[s] > best_w || (values[s] == best_w && keys[s] < best)) {
          best_w = values[s];
          best = keys[s];
        }
      }
      next[v] = best;  // double-buffered: synchronous by construction
      lane.count_store(1);
    });
    res.labels.swap(next);
    ++res.iterations;
  }

  res.edges_scanned = res.counters.edges_scanned;
  res.seconds = timer.seconds();
  return res;
}

}  // namespace nulpa
