#include "baselines/gunrock_lpa_simt.hpp"

#include <algorithm>

#include "hash/vertex_table.hpp"
#include "simt/grid.hpp"
#include "util/bits.hpp"
#include "util/timer.hpp"

namespace nulpa {

GunrockSimtResult gunrock_lpa_simt(const Graph& g,
                                   const GunrockLpaConfig& cfg,
                                   observe::Tracer* tracer) {
  Timer timer;
  GunrockSimtResult res;
  res.has_counters = true;
  const Vertex n = g.num_vertices();
  res.labels.resize(n);
  for (Vertex v = 0; v < n; ++v) res.labels[v] = v;
  const observe::RunTrace trace(tracer, "gunrock", n, g.num_edges());
  if (n == 0) {
    res.seconds = timer.seconds();
    trace.run_end(0, true, 0, 0, res.seconds);
    return res;
  }

  std::vector<Vertex> next(res.labels);
  // Per-vertex aggregation scratch, same 2|E| layout as ν-LPA's tables —
  // Gunrock aggregates labels per vertex too (via segmented sort; a
  // hashtable is work-equivalent and lets us count comparable traffic).
  std::vector<Vertex> buf_k(2 * g.num_edges(), kEmptyKey);
  std::vector<float> buf_v(2 * g.num_edges(), 0.0f);

  simt::LaunchConfig launch;
  launch.block_dim = 256;
  launch.resident_blocks = 8;
  simt::LaunchSession session(launch, res.counters, cfg.exec);

  // Frontier state: a vertex is active next iteration iff it changed or a
  // neighbor changed this iteration (its inputs are otherwise a repeat of
  // the snapshot it already answered). Every vertex starts active.
  std::vector<std::uint8_t> active(n, 1);
  std::vector<Vertex> frontier;
  frontier.reserve(n);

  std::uint64_t total_changed = 0;
  for (int it = 0; it < cfg.iterations; ++it) {
    Timer iter_timer;
    simt::PerfCounters iter_ctr0;
    frontier.clear();
    if (cfg.exec.frontier_compaction) {
      for (Vertex v = 0; v < n; ++v) {
        if (active[v]) frontier.push_back(v);
      }
      // Compaction kernel stand-in: flag scan + worklist write.
      res.counters.global_loads += n;
      res.counters.global_stores += frontier.size();
      res.counters.skipped_lanes += n - frontier.size();
    } else {
      for (Vertex v = 0; v < n; ++v) frontier.push_back(v);
    }
    res.counters.frontier_vertices += frontier.size();
    const auto fsize = static_cast<std::uint32_t>(frontier.size());
    if (trace.on()) {
      iter_ctr0 = res.counters.snapshot();
      trace.iteration_start(it, fsize);
    }
    // Gunrock's fixed schedule launches every iteration, frontier or not.
    ++res.counters.kernel_launches;
    const auto grid =
        static_cast<std::uint32_t>(ceil_div(fsize, launch.block_dim));
    if (fsize > 0) session.run(grid, [&](simt::Lane& lane) {
      const std::uint32_t t = lane.global_thread();
      if (t >= fsize) return;
      const Vertex v = frontier[t];
      const std::uint32_t deg = g.degree(v);
      if (deg == 0) return;

      const std::uint32_t p1 = hashtable_capacity(deg);
      const EdgeIndex off = 2 * g.offset(v);
      VertexTableView<float> table(buf_k.data() + off, buf_v.data() + off,
                                   p1);
      table.clear();
      lane.count_store(2 * p1);

      const auto nbrs = g.neighbors(v);
      const auto wts = g.weights_of(v);
      for (std::size_t e = 0; e < nbrs.size(); ++e) {
        if (nbrs[e] == v) continue;
        lane.count_load(3);
        table.accumulate(res.labels[nbrs[e]], wts[e], Probing::kQuadDouble);
        lane.count_store(1);
      }
      lane.counters().edges_scanned += deg;

      // Min-label tie-break, the reduction order of the data-parallel
      // formulation.
      Vertex best = res.labels[v];
      float best_w = -1.0f;
      lane.count_load(p1);
      const auto keys = table.keys();
      const auto values = table.values();
      for (std::uint32_t s = 0; s < p1; ++s) {
        if (keys[s] == kEmptyKey) continue;
        if (values[s] > best_w || (values[s] == best_w && keys[s] < best)) {
          best_w = values[s];
          best = keys[s];
        }
      }
      next[v] = best;  // double-buffered: synchronous by construction
      lane.count_store(1);
    });
    // Diff the double buffers and rebuild the active flags for the next
    // iteration; the diff itself is host-side bookkeeping (Gunrock folds it
    // into the label kernel), so it is not counted as device work.
    std::uint64_t changed = 0;
    if (cfg.exec.frontier_compaction) {
      std::fill(active.begin(), active.end(), 0);
    }
    for (Vertex v = 0; v < n; ++v) {
      if (next[v] == res.labels[v]) continue;
      ++changed;
      if (!cfg.exec.frontier_compaction) continue;
      active[v] = 1;
      for (const Vertex u : g.neighbors(v)) active[u] = 1;
    }
    total_changed += changed;
    if (trace.on()) {
      observe::TraceEvent ev =
          trace.make(observe::EventKind::kIterationEnd, it);
      ev.active_vertices = fsize;
      ev.labels_changed = changed;
      ev.seconds = iter_timer.seconds();
      ev.has_counters = true;
      ev.counters = res.counters - iter_ctr0;
      ev.edges_scanned = ev.counters.edges_scanned;
      trace.record(ev);
    }
    res.labels.swap(next);
    ++res.iterations;
  }

  res.edges_scanned = res.counters.edges_scanned;
  res.seconds = timer.seconds();
  if (trace.on()) {
    observe::TraceEvent ev = trace.make(observe::EventKind::kRunEnd, -1);
    // Gunrock's fixed schedule never "converges"; it just stops.
    ev.iterations = res.iterations;
    ev.converged = false;
    ev.labels_changed = total_changed;
    ev.edges_scanned = res.edges_scanned;
    ev.seconds = res.seconds;
    ev.has_counters = true;
    ev.counters = res.counters;
    trace.record(ev);
  }
  return res;
}

GunrockSimtResult gunrock_lpa_simt(const Graph& g,
                                   const GunrockLpaConfig& cfg) {
  return gunrock_lpa_simt(g, cfg, nullptr);
}

}  // namespace nulpa
