// Gunrock-style synchronous LPA executed on the SIMT simulator — the GPU
// baseline of Figure 7 running on the same simulated hardware as ν-LPA, so
// the comparison uses hardware counters on both sides. Double-buffered
// label updates (no asynchrony, no pruning, no symmetry breaking needed),
// a fixed short iteration schedule, and min-label tie-breaks, as in
// Gunrock's LpProblem.
#pragma once

#include "baselines/gunrock_lpa.hpp"
#include "core/report.hpp"
#include "graph/csr.hpp"
#include "observe/trace.hpp"

namespace nulpa {

/// RunReport with `has_counters` set (simulated hardware events included).
using GunrockSimtResult = RunReport;

GunrockSimtResult gunrock_lpa_simt(const Graph& g,
                                   const GunrockLpaConfig& cfg,
                                   observe::Tracer* tracer);
GunrockSimtResult gunrock_lpa_simt(const Graph& g,
                                   const GunrockLpaConfig& cfg);

}  // namespace nulpa
