// Gunrock-style synchronous LPA executed on the SIMT simulator — the GPU
// baseline of Figure 7 running on the same simulated hardware as ν-LPA, so
// the comparison uses hardware counters on both sides. Double-buffered
// label updates (no asynchrony, no pruning, no symmetry breaking needed),
// a fixed short iteration schedule, and min-label tie-breaks, as in
// Gunrock's LpProblem.
#pragma once

#include <vector>

#include "baselines/gunrock_lpa.hpp"
#include "graph/csr.hpp"
#include "simt/counters.hpp"

namespace nulpa {

struct GunrockSimtResult {
  std::vector<Vertex> labels;
  int iterations = 0;
  double seconds = 0.0;  // host wall-clock of the simulation
  std::uint64_t edges_scanned = 0;
  simt::PerfCounters counters;
};

GunrockSimtResult gunrock_lpa_simt(const Graph& g,
                                   const GunrockLpaConfig& cfg);

}  // namespace nulpa
