#include "baselines/gve_lpa.hpp"

#include <algorithm>
#include <vector>

#include "parallel/for_each.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace nulpa {

namespace {

/// The GVE-LPA per-thread hashtable: a dense values array indexed by label
/// (no collisions possible) plus a compact list of the keys actually
/// touched, so clearing costs O(keys), not O(|V|).
///
/// Tie-break: uniform among dominant labels. Under real OpenMP execution
/// the interleaving of threads scrambles which dominant label is observed
/// first; running the same strict rule single-threaded in ascending order
/// would instead telescope labels toward vertex 0 (see PlpConfig).
struct DenseTable {
  std::vector<double> values;  // size |V|
  std::vector<Vertex> keys;
  Xoshiro256 rng;

  DenseTable(Vertex n, std::uint64_t seed) : values(n, 0.0), rng(seed) {
    keys.reserve(64);
  }

  void accumulate(Vertex label, double w) {
    if (values[label] == 0.0) keys.push_back(label);
    values[label] += w;
  }

  Vertex best_and_clear(Vertex fallback) {
    double best_w = -1.0;
    for (const Vertex k : keys) best_w = std::max(best_w, values[k]);
    Vertex best = fallback;
    std::uint64_t ties = 0;
    for (const Vertex k : keys) {
      if (values[k] == best_w && rng.next_bounded(++ties) == 0) best = k;
      values[k] = 0.0;
    }
    keys.clear();
    return best;
  }
};

}  // namespace

ClusteringResult gve_lpa(const Graph& g, ThreadPool& pool,
                         const GveLpaConfig& cfg, observe::Tracer* tracer) {
  Timer timer;
  const Vertex n = g.num_vertices();
  ClusteringResult res;
  res.labels.resize(n);
  for (Vertex v = 0; v < n; ++v) res.labels[v] = v;

  // 8-bit flags (GVE-LPA found these faster than vector<bool>).
  std::vector<std::uint8_t> unprocessed(n, 1);
  std::vector<DenseTable> tables;
  tables.reserve(pool.size());
  for (unsigned t = 0; t < pool.size(); ++t) {
    tables.emplace_back(n, 0x9e3779b9u * (t + 1));
  }

  const observe::RunTrace trace(tracer, "gve", n, g.num_edges());
  const auto count_active = [&] {
    std::uint64_t active = 0;
    for (const std::uint8_t f : unprocessed) active += f;
    return active;
  };
  bool converged = false;
  std::uint64_t total_changed = 0;

  for (int it = 0; it < cfg.max_iterations; ++it) {
    Timer iter_timer;
    if (trace.on()) trace.iteration_start(it, count_active());
    // Per-thread change counts combined by parallel reduce (no shared
    // atomic counter).
    const std::uint64_t changed = parallel_reduce<std::uint64_t>(
        pool, 0, n, Schedule::kDynamic, 0,
        [&](std::uint64_t vi, unsigned worker) -> std::uint64_t {
          const auto v = static_cast<Vertex>(vi);
          if (!unprocessed[v]) return 0;
          unprocessed[v] = 0;

          DenseTable& table = tables[worker];
          const auto nbrs = g.neighbors(v);
          const auto wts = g.weights_of(v);
          for (std::size_t k = 0; k < nbrs.size(); ++k) {
            if (nbrs[k] == v) continue;
            table.accumulate(res.labels[nbrs[k]], wts[k]);
          }
          const Vertex best = table.best_and_clear(res.labels[v]);
          if (best != res.labels[v]) {
            res.labels[v] = best;
            for (const Vertex u : nbrs) unprocessed[u] = 1;
            return 1;
          }
          return 0;
        },
        2048);

    res.edges_scanned += g.num_edges();
    ++res.iterations;
    total_changed += changed;
    if (trace.on()) {
      trace.iteration_end(it, count_active(), changed, g.num_edges(),
                          iter_timer.seconds());
    }
    if (static_cast<double>(changed) / n < cfg.tolerance) {
      converged = true;
      break;
    }
  }

  res.seconds = timer.seconds();
  trace.run_end(res.iterations, converged || n == 0, total_changed,
                res.edges_scanned, res.seconds);
  return res;
}

}  // namespace nulpa
