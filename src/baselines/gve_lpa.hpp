// GVE-LPA (Sahu 2023) — the multicore LPA that ν-LPA builds on. Asynchronous
// updates on a single membership vector, per-iteration tolerance 0.05, max
// 20 iterations, 8-bit vertex pruning flags, and per-thread collision-free
// hashtables: a keys list plus a full-size (|V|) values array per thread,
// giving O(T·N + M) space — the footprint ν-LPA's per-vertex tables remove.
#pragma once

#include "baselines/result.hpp"
#include "graph/csr.hpp"
#include "observe/trace.hpp"
#include "parallel/thread_pool.hpp"

namespace nulpa {

struct GveLpaConfig {
  int max_iterations = 20;
  double tolerance = 0.05;
};

ClusteringResult gve_lpa(const Graph& g, ThreadPool& pool,
                         const GveLpaConfig& cfg, observe::Tracer* tracer);

inline ClusteringResult gve_lpa(const Graph& g, ThreadPool& pool,
                                const GveLpaConfig& cfg) {
  return gve_lpa(g, pool, cfg, nullptr);
}

inline ClusteringResult gve_lpa(const Graph& g, const GveLpaConfig& cfg) {
  return gve_lpa(g, ThreadPool::global(), cfg);
}

}  // namespace nulpa
