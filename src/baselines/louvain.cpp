#include "baselines/louvain.hpp"

#include <unordered_map>
#include <vector>

#include "graph/builder.hpp"
#include "quality/communities.hpp"
#include "quality/modularity.hpp"
#include "util/timer.hpp"

namespace nulpa {

namespace {

/// One level of Louvain local moving. Returns the (non-compacted) community
/// of each vertex and the number of vertices moved in the final sweep.
std::vector<Vertex> local_moving(const Graph& g, const LouvainConfig& cfg,
                                 std::uint64_t& edges_scanned) {
  const Vertex n = g.num_vertices();
  const double m = g.total_weight();
  std::vector<Vertex> community(n);
  std::vector<double> k(n);            // weighted degree of each vertex
  std::vector<double> sigma_total(n);  // total degree of each community
  for (Vertex v = 0; v < n; ++v) {
    community[v] = v;
    k[v] = g.weighted_degree(v);
    sigma_total[v] = k[v];
  }
  if (m <= 0.0) return community;

  std::unordered_map<Vertex, double> k_to;  // K_i->c for each candidate c
  for (int it = 0; it < cfg.max_local_iterations; ++it) {
    Vertex moved = 0;
    for (Vertex v = 0; v < n; ++v) {
      const auto nbrs = g.neighbors(v);
      const auto wts = g.weights_of(v);
      edges_scanned += nbrs.size();
      if (nbrs.empty()) continue;

      k_to.clear();
      for (std::size_t e = 0; e < nbrs.size(); ++e) {
        if (nbrs[e] == v) continue;
        k_to[community[nbrs[e]]] += wts[e];
      }

      const Vertex d = community[v];
      const double k_to_d = k_to.contains(d) ? k_to[d] : 0.0;

      // Best destination by delta-modularity (Equation 2). Sigma_d includes
      // v (still a member); Sigma_c must not, and since v is not in c,
      // sigma_total[c] already excludes it.
      Vertex best = d;
      double best_gain = 0.0;
      for (const auto& [c, k_to_c] : k_to) {
        if (c == d) continue;
        const double gain = delta_modularity(
            k_to_c, k_to_d, k[v], sigma_total[c], sigma_total[d], m);
        if (gain > best_gain) {
          best_gain = gain;
          best = c;
        }
      }
      if (best != d) {
        sigma_total[d] -= k[v];
        sigma_total[best] += k[v];
        community[v] = best;
        ++moved;
      }
    }
    if (static_cast<double>(moved) / n < cfg.tolerance) break;
  }
  return community;
}

/// Collapses communities into super-vertices; self-loops keep the intra-
/// community weight so modularity is preserved across levels.
Graph aggregate(const Graph& g, const std::vector<Vertex>& compact_community,
                Vertex num_communities) {
  GraphBuilder builder(num_communities);
  builder.reserve(g.num_edges() / 2 + num_communities);
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto wts = g.weights_of(u);
    for (std::size_t e = 0; e < nbrs.size(); ++e) {
      if (u > nbrs[e]) continue;  // one direction; builder symmetrizes
      const Vertex cu = compact_community[u];
      const Vertex cv = compact_community[nbrs[e]];
      // Intra-community edges double into the self-loop so community
      // degrees and total weight are preserved (CSR stores a self-loop arc
      // once) — modularity is then invariant across levels.
      const Weight w = (cu == cv && u != nbrs[e]) ? 2 * wts[e] : wts[e];
      builder.add_edge(cu, cv, w);
    }
  }
  GraphBuilder::Options opts;
  opts.drop_self_loops = false;  // intra-community weight must survive
  return builder.build(opts);
}

}  // namespace

ClusteringResult louvain(const Graph& g, const LouvainConfig& cfg,
                         observe::Tracer* tracer) {
  Timer timer;
  const Vertex n = g.num_vertices();
  ClusteringResult res;
  res.labels.resize(n);
  for (Vertex v = 0; v < n; ++v) res.labels[v] = v;
  const observe::RunTrace trace(tracer, "louvain", n, g.num_edges());
  if (n == 0) {
    res.seconds = timer.seconds();
    trace.run_end(0, true, 0, 0, res.seconds);
    return res;
  }

  bool converged = false;
  std::uint64_t total_merged = 0;
  Graph level = g;
  // membership[v] on the original graph, refined after each level.
  for (int pass = 0; pass < cfg.max_passes; ++pass) {
    Timer pass_timer;
    const std::uint64_t edges0 = res.edges_scanned;
    trace.iteration_start(pass, level.num_vertices());
    std::vector<Vertex> community =
        local_moving(level, cfg, res.edges_scanned);
    ++res.iterations;

    std::vector<Vertex> compact(community);
    const Vertex k = compact_labels(compact);

    // Project this level's communities onto the original vertices.
    for (Vertex v = 0; v < n; ++v) res.labels[v] = compact[res.labels[v]];

    // "Labels changed" for a coarsening pass: vertices merged away (the
    // level shrinking from |level| communities to k).
    const std::uint64_t merged = level.num_vertices() - k;
    total_merged += merged;
    trace.iteration_end(pass, level.num_vertices(), merged,
                        res.edges_scanned - edges0, pass_timer.seconds());

    if (k == level.num_vertices() ||
        static_cast<double>(k) >
            cfg.aggregation_tolerance *
                static_cast<double>(level.num_vertices())) {
      converged = true;
      break;  // no meaningful coarsening left
    }
    level = aggregate(level, compact, k);
  }

  res.seconds = timer.seconds();
  trace.run_end(res.iterations, converged, total_merged, res.edges_scanned,
                res.seconds);
  return res;
}

ClusteringResult louvain(const Graph& g, const LouvainConfig& cfg) {
  return louvain(g, cfg, nullptr);
}

}  // namespace nulpa
