// Louvain community detection (Blondel et al. 2008) — the stand-in for
// cuGraph Louvain in the comparison experiments. Full method: repeated
// local-moving passes driven by delta-modularity (Equation 2), followed by
// graph aggregation, until modularity gain stalls. Produces the higher-
// quality / slower end of the quality-runtime trade-off the paper reports
// (~9.6% above LPA's modularity at ~37x the cost).
#pragma once

#include "baselines/result.hpp"
#include "graph/csr.hpp"
#include "observe/trace.hpp"

namespace nulpa {

struct LouvainConfig {
  int max_passes = 10;          // coarsening levels
  int max_local_iterations = 20;
  double tolerance = 1e-2;      // local-moving stop threshold
  double aggregation_tolerance = 0.8;  // stop if graph shrinks < 20%
};

/// Tracing note: one trace "iteration" is a coarsening pass (local moving
/// plus aggregation); active_vertices is the size of the level graph.
ClusteringResult louvain(const Graph& g, const LouvainConfig& cfg,
                         observe::Tracer* tracer);
ClusteringResult louvain(const Graph& g, const LouvainConfig& cfg);

}  // namespace nulpa
