#include "baselines/plp.hpp"

#include <algorithm>
#include <atomic>
#include <map>

#include "parallel/for_each.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace nulpa {

ClusteringResult plp(const Graph& g, ThreadPool& pool, const PlpConfig& cfg,
                     observe::Tracer* tracer) {
  Timer timer;
  const Vertex n = g.num_vertices();
  ClusteringResult res;
  res.labels.resize(n);
  for (Vertex v = 0; v < n; ++v) res.labels[v] = v;

  // NetworKit tracks active vertices with a vector<bool>-style flag array.
  std::vector<std::uint8_t> active(n, 1);
  std::atomic<std::uint64_t> edges_scanned{0};
  std::vector<Xoshiro256> worker_rng;
  for (unsigned w = 0; w < pool.size(); ++w) {
    worker_rng.push_back(Xoshiro256(cfg.seed).split(w));
  }

  const observe::RunTrace trace(tracer, "plp", n, g.num_edges());
  const auto count_active = [&] {
    std::uint64_t count = 0;
    for (const std::uint8_t f : active) count += f;
    return count;
  };
  bool converged = false;
  std::uint64_t total_changed = 0;

  for (int it = 0; it < cfg.max_iterations; ++it) {
    Timer iter_timer;
    if (trace.on()) trace.iteration_start(it, count_active());
    // Shared atomic counter of updated vertices — the contention pattern
    // the paper criticizes but NetworKit uses.
    std::atomic<std::uint64_t> changed{0};
    std::atomic<std::uint64_t> local_edges{0};

    parallel_for(
        pool, 0, n, Schedule::kGuided,
        [&](std::uint64_t vi, unsigned worker) {
          const auto v = static_cast<Vertex>(vi);
          if (!active[v]) return;
          active[v] = 0;

          const auto nbrs = g.neighbors(v);
          const auto wts = g.weights_of(v);
          local_edges.fetch_add(nbrs.size(), std::memory_order_relaxed);
          if (nbrs.empty()) return;

          // Label weights in an std::map, as NetworKit does.
          std::map<Vertex, double> weight_of;
          for (std::size_t k = 0; k < nbrs.size(); ++k) {
            if (nbrs[k] == v) continue;
            weight_of[res.labels[nbrs[k]]] += wts[k];
          }
          if (weight_of.empty()) return;

          double best_w = -1.0;
          for (const auto& [label, w] : weight_of) {
            best_w = std::max(best_w, w);
          }
          // Uniform choice among dominant labels (see PlpConfig::seed).
          Vertex best = res.labels[v];
          std::uint64_t ties = 0;
          for (const auto& [label, w] : weight_of) {
            if (w == best_w && worker_rng[worker].next_bounded(++ties) == 0) {
              best = label;
            }
          }
          if (best != res.labels[v]) {
            res.labels[v] = best;
            changed.fetch_add(1, std::memory_order_relaxed);
            for (const Vertex u : nbrs) active[u] = 1;
          }
        });

    edges_scanned += local_edges.load();
    ++res.iterations;
    total_changed += changed.load();
    if (trace.on()) {
      trace.iteration_end(it, count_active(), changed.load(),
                          local_edges.load(), iter_timer.seconds());
    }
    if (static_cast<double>(changed.load()) <
        cfg.tolerance * static_cast<double>(n)) {
      converged = true;
      break;
    }
  }

  res.edges_scanned = edges_scanned.load();
  res.seconds = timer.seconds();
  trace.run_end(res.iterations, converged, total_changed, res.edges_scanned,
                res.seconds);
  return res;
}

}  // namespace nulpa
