// NetworKit-style Parallel Label Propagation (PLP, Staudt & Meyerhenke).
// Reproduces the implementation choices the paper describes for
// NetworKit::PLP::run(): boolean active-vertex flags, OpenMP *guided*
// scheduling (via our thread pool), an std::map per vertex for label
// weights, a 1e-5 convergence tolerance, and an atomically updated counter
// of changed vertices.
#pragma once

#include "baselines/result.hpp"
#include "graph/csr.hpp"
#include "observe/trace.hpp"
#include "parallel/thread_pool.hpp"

namespace nulpa {

struct PlpConfig {
  int max_iterations = 100;
  double tolerance = 1e-5;  // NetworKit's "theta" update threshold
  // In NetworKit the OpenMP guided schedule scrambles the order in which
  // vertices observe each other's updates, which is what breaks ties in
  // practice; a deterministic smallest-label tie-break under ascending
  // order telescopes labels toward vertex 0 instead. We model the
  // scrambled order with a seeded uniform choice among dominant labels.
  std::uint64_t seed = 1;
};

ClusteringResult plp(const Graph& g, ThreadPool& pool, const PlpConfig& cfg,
                     observe::Tracer* tracer);

inline ClusteringResult plp(const Graph& g, ThreadPool& pool,
                            const PlpConfig& cfg) {
  return plp(g, pool, cfg, nullptr);
}

inline ClusteringResult plp(const Graph& g, const PlpConfig& cfg) {
  return plp(g, ThreadPool::global(), cfg);
}

}  // namespace nulpa
