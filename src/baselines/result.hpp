// Common result type for every community-detection algorithm in the
// library (baselines and ν-LPA alike), so benches can sweep them uniformly.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace nulpa {

struct ClusteringResult {
  std::vector<Vertex> labels;       // community of each vertex
  int iterations = 0;               // passes over the vertex set
  double seconds = 0.0;             // measured wall-clock of the run
  std::uint64_t edges_scanned = 0;  // algorithm-level work metric
};

}  // namespace nulpa
