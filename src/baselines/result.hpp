// Common result type for every community-detection algorithm in the
// library (baselines and ν-LPA alike), so benches can sweep them uniformly.
// The canonical definition is RunReport (core/report.hpp); ClusteringResult
// remains as the name the baseline signatures were written against.
#pragma once

#include "core/report.hpp"

namespace nulpa {

using ClusteringResult = RunReport;

}  // namespace nulpa
