#include "baselines/seq_lpa.hpp"

#include <unordered_map>

#include "util/rng.hpp"
#include "util/timer.hpp"

namespace nulpa {

namespace {

struct LabelChooser {
  std::unordered_map<Vertex, double> weight_of;
  std::vector<Vertex> dominant;

  /// Label of maximal interconnecting weight for `v` (Equation 3), or |V|
  /// when the vertex has no usable neighbours.
  Vertex choose(const Graph& g, Vertex v, const std::vector<Vertex>& labels,
                bool random_tie, Xoshiro256& rng) {
    weight_of.clear();
    const auto nbrs = g.neighbors(v);
    const auto wts = g.weights_of(v);
    double best_w = -1.0;
    Vertex first_best = g.num_vertices();
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (nbrs[k] == v) continue;
      const Vertex c = labels[nbrs[k]];
      const double w = (weight_of[c] += wts[k]);
      if (w > best_w) {
        best_w = w;
        first_best = c;
      }
    }
    if (first_best == g.num_vertices()) return first_best;
    if (!random_tie) return first_best;

    dominant.clear();
    for (const auto& [c, w] : weight_of) {
      if (w == best_w) dominant.push_back(c);
    }
    return dominant.size() == 1 ? dominant.front()
                                : dominant[rng.next_bounded(dominant.size())];
  }
};

}  // namespace

ClusteringResult seq_lpa(const Graph& g, const SeqLpaConfig& cfg,
                         observe::Tracer* tracer) {
  Timer timer;
  Xoshiro256 rng(cfg.seed);
  const Vertex n = g.num_vertices();
  ClusteringResult res;
  res.labels.resize(n);
  for (Vertex v = 0; v < n; ++v) res.labels[v] = v;

  std::vector<Vertex> next;
  if (!cfg.asynchronous) next = res.labels;
  LabelChooser chooser;
  const observe::RunTrace trace(tracer, "seq", n, g.num_edges());
  bool converged = false;
  std::uint64_t total_changed = 0;

  for (int it = 0; it < cfg.max_iterations; ++it) {
    trace.iteration_start(it, n);  // no pruning: every vertex is swept
    Timer iter_timer;
    const std::uint64_t edges0 = res.edges_scanned;
    std::uint64_t changed = 0;
    std::vector<Vertex>& write = cfg.asynchronous ? res.labels : next;
    for (Vertex v = 0; v < n; ++v) {
      const Vertex c =
          chooser.choose(g, v, res.labels, cfg.random_tie_break, rng);
      res.edges_scanned += g.degree(v);
      if (c == g.num_vertices()) continue;  // isolated vertex
      if (c != res.labels[v]) ++changed;
      write[v] = c;
    }
    if (!cfg.asynchronous) res.labels = next;
    ++res.iterations;
    total_changed += changed;
    trace.iteration_end(it, n, changed, res.edges_scanned - edges0,
                        iter_timer.seconds());
    if (static_cast<double>(changed) / n < cfg.tolerance) {
      converged = true;
      break;
    }
  }
  res.seconds = timer.seconds();
  trace.run_end(res.iterations, converged || n == 0, total_changed,
                res.edges_scanned, res.seconds);
  return res;
}

ClusteringResult seq_lpa(const Graph& g, const SeqLpaConfig& cfg) {
  return seq_lpa(g, cfg, nullptr);
}

}  // namespace nulpa
