// Textbook LPA (Raghavan et al. 2007) — the reference implementation the
// property tests compare every optimized variant against.
#pragma once

#include <cstdint>

#include "baselines/result.hpp"
#include "graph/csr.hpp"
#include "observe/trace.hpp"

namespace nulpa {

struct SeqLpaConfig {
  int max_iterations = 20;
  double tolerance = 0.05;  // stop when < tol fraction of vertices change
  bool asynchronous = true;  // in-place updates (true) vs double-buffered
  // RAK breaks ties among dominant labels uniformly at random; the strict
  // variant (first dominant label in scan order) is what GVE-LPA calls
  // "strict LPA". Random is the default because the strict+ascending-order
  // combination cascades labels across sparse bridges.
  bool random_tie_break = true;
  std::uint64_t seed = 1;
};

/// Sequential LPA (Equation 3), processing vertices in ascending id order.
ClusteringResult seq_lpa(const Graph& g, const SeqLpaConfig& cfg,
                         observe::Tracer* tracer);
ClusteringResult seq_lpa(const Graph& g, const SeqLpaConfig& cfg);

}  // namespace nulpa
