// Changed-value tracking for the delta exchange (src/comm/exchange.hpp):
// one bit per tracked slot, set by the compute kernels when they write a
// value this iteration, read by batch_get to pack only the dirty entries.
// The Galois/Katana host-comm template calls this the "comm bitset".
//
// set() uses a relaxed atomic RMW on the containing word so lanes of the
// parallel simulator backend can mark concurrently; everything else
// (reset, queries, iteration) is host-side single-threaded between kernel
// launches.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace nulpa::comm {

class ChangedBitset {
 public:
  ChangedBitset() = default;
  explicit ChangedBitset(std::size_t n)
      : size_(n), words_((n + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  void set(std::size_t i) noexcept {
    std::atomic_ref<std::uint64_t> word(words_[i >> 6]);
    word.fetch_or(std::uint64_t{1} << (i & 63), std::memory_order_relaxed);
  }

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void reset() noexcept {
    for (auto& w : words_) w = 0;
  }

  /// Population count over the whole set.
  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t n = 0;
    for (const auto w : words_) n += std::popcount(w);
    return n;
  }

  /// Visits every set index in ascending order.
  template <typename F>
  void for_each_set(F&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = std::countr_zero(w);
        fn(wi * 64 + static_cast<std::size_t>(bit));
        w &= w - 1;
      }
    }
  }

  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace nulpa::comm
