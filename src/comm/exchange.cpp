#include "comm/exchange.hpp"

namespace nulpa::comm {

std::string_view comm_mode_name(DataCommMode mode) noexcept {
  switch (mode) {
    case DataCommMode::kNoData: return "none";
    case DataCommMode::kBitsetData: return "bitset";
    case DataCommMode::kOffsetsData: return "offsets";
    case DataCommMode::kFullVector: return "full";
  }
  return "unknown";
}

bool comm_mode_from_name(std::string_view name, DataCommMode& out) noexcept {
  if (name == "none") {
    out = DataCommMode::kNoData;
    return true;
  }
  if (name == "bitset") {
    out = DataCommMode::kBitsetData;
    return true;
  }
  if (name == "offsets") {
    out = DataCommMode::kOffsetsData;
    return true;
  }
  if (name == "full") {
    out = DataCommMode::kFullVector;
    return true;
  }
  return false;
}

std::size_t message_wire_bytes(DataCommMode mode, std::size_t list_size,
                               std::size_t changed,
                               std::size_t value_bytes) noexcept {
  constexpr std::size_t kHeader = 8;  // mode tag + payload count
  switch (mode) {
    case DataCommMode::kNoData:
      return kHeader;
    case DataCommMode::kBitsetData:
      return kHeader + ((list_size + 63) / 64) * 8 + changed * value_bytes;
    case DataCommMode::kOffsetsData:
      return kHeader + changed * sizeof(std::uint32_t) +
             changed * value_bytes;
    case DataCommMode::kFullVector:
      return kHeader + list_size * value_bytes;
  }
  return kHeader;
}

DataCommMode pick_comm_mode(std::size_t list_size, std::size_t changed,
                            std::size_t value_bytes) noexcept {
  if (changed == 0) return DataCommMode::kNoData;
  DataCommMode best = DataCommMode::kOffsetsData;
  std::size_t best_bytes =
      message_wire_bytes(best, list_size, changed, value_bytes);
  for (const DataCommMode m :
       {DataCommMode::kBitsetData, DataCommMode::kFullVector}) {
    const std::size_t b =
        message_wire_bytes(m, list_size, changed, value_bytes);
    if (b < best_bytes) {
      best = m;
      best_bytes = b;
    }
  }
  return best;
}

}  // namespace nulpa::comm
