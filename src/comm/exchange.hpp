// Delta exchange between shards — the Katana/Galois host-comm pattern
// (batch_get / batch_set over aligned master/mirror lists) with the four
// DataCommMode message encodings:
//
//   kNoData      nothing changed; a bare header crosses the wire.
//   kBitsetData  one presence bit per list slot + the changed values.
//   kOffsetsData changed list positions (u32 each) + the changed values.
//   kFullVector  every list value, no presence structure at all — the
//                naive broadcast, and also the cheapest encoding once
//                almost everything changed.
//
// batch_get auto-picks the cheapest encoding for each message from the
// modeled wire size (selection rule in pick_comm_mode below), or honors a
// forced mode so the bench can pin the naive-broadcast reference. The
// layer is deliberately algorithm-agnostic: Message/batch_get/batch_set
// are templated over the value type, and nothing here knows about labels
// or LPA — any registry algorithm with per-iteration vertex state can
// adopt it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "comm/bitset.hpp"
#include "graph/csr.hpp"
#include "observe/profiler.hpp"
#include "simt/counters.hpp"

namespace nulpa::comm {

/// Mirrors Galois' DataCommMode (SNIPPETS.md host-comm excerpts).
enum class DataCommMode : std::uint8_t {
  kNoData,
  kBitsetData,
  kOffsetsData,
  kFullVector,
};

/// Wire/CLI name ("none", "bitset", "offsets", "full").
std::string_view comm_mode_name(DataCommMode mode) noexcept;

/// Inverse of comm_mode_name. Returns false on an unknown name.
bool comm_mode_from_name(std::string_view name, DataCommMode& out) noexcept;

/// Modeled wire size of one message: an 8-byte header, plus the mode's
/// presence structure, plus the packed values. This is the cost model the
/// auto-pick minimizes and the exchange_bytes counter reports.
std::size_t message_wire_bytes(DataCommMode mode, std::size_t list_size,
                               std::size_t changed,
                               std::size_t value_bytes) noexcept;

/// Selection rule: kNoData when nothing changed, otherwise the encoding
/// with the smallest modeled wire size; ties break toward the sparser
/// structure (offsets, then bitset, then full vector) so near-threshold
/// densities stay deterministic.
DataCommMode pick_comm_mode(std::size_t list_size, std::size_t changed,
                            std::size_t value_bytes) noexcept;

/// One packed shard-to-shard message. Entries are identified by *list
/// position* (index into the aligned send/recv lists both sides hold), so
/// no global ids ever cross the wire.
template <typename T>
struct Message {
  DataCommMode mode = DataCommMode::kNoData;
  std::uint32_t list_size = 0;
  std::vector<std::uint64_t> bitset;    // kBitsetData: bit i = slot i packed
  std::vector<std::uint32_t> offsets;   // kOffsetsData: packed positions
  std::vector<T> values;                // payload, ascending list order

  [[nodiscard]] std::size_t wire_bytes() const noexcept {
    return message_wire_bytes(mode, list_size, values.size(), sizeof(T));
  }
};

/// Packs the values of the `send_list` entries whose bit is set in
/// `changed` (a bitset over the *value array* — one bit per owned slot, so
/// one bitset serves every peer's send list). `forced` pins the encoding
/// (the full-vector reference packs every slot regardless of the bitset);
/// nullopt auto-picks via pick_comm_mode.
///
/// Counters: exchanged_labels += packed values, exchange_bytes += modeled
/// wire size, full_broadcast_labels_saved += list entries a full broadcast
/// would have carried but this message dropped.
template <typename T>
Message<T> batch_get(std::span<const Vertex> send_list,
                     std::span<const T> values, const ChangedBitset& changed,
                     std::optional<DataCommMode> forced,
                     simt::PerfCounters& ctr) {
  observe::ProfSpan prof_span("comm.batch_get", "list_size",
                              send_list.size());
  Message<T> msg;
  msg.list_size = static_cast<std::uint32_t>(send_list.size());

  std::size_t k = 0;
  for (const Vertex slot : send_list) {
    if (changed.test(slot)) ++k;
  }
  msg.mode = forced ? *forced
                    : pick_comm_mode(send_list.size(), k, sizeof(T));

  switch (msg.mode) {
    case DataCommMode::kNoData:
      break;
    case DataCommMode::kFullVector:
      msg.values.reserve(send_list.size());
      for (const Vertex slot : send_list) msg.values.push_back(values[slot]);
      break;
    case DataCommMode::kBitsetData:
      msg.bitset.assign((send_list.size() + 63) / 64, 0);
      msg.values.reserve(k);
      for (std::size_t i = 0; i < send_list.size(); ++i) {
        if (!changed.test(send_list[i])) continue;
        msg.bitset[i >> 6] |= std::uint64_t{1} << (i & 63);
        msg.values.push_back(values[send_list[i]]);
      }
      break;
    case DataCommMode::kOffsetsData:
      msg.offsets.reserve(k);
      msg.values.reserve(k);
      for (std::size_t i = 0; i < send_list.size(); ++i) {
        if (!changed.test(send_list[i])) continue;
        msg.offsets.push_back(static_cast<std::uint32_t>(i));
        msg.values.push_back(values[send_list[i]]);
      }
      break;
  }

  ctr.exchanged_labels += msg.values.size();
  ctr.exchange_bytes += msg.wire_bytes();
  ctr.full_broadcast_labels_saved += send_list.size() - msg.values.size();
  return msg;
}

/// Applies a packed message to the receiving side: payload entry for list
/// position p lands in values[recv_list[p]]. Only writes that actually
/// change the stored value count as mirror_updates and reach `on_update`
/// (with the recv-list position) — a full-vector message re-sending
/// unchanged values must behave exactly like the delta encodings, so
/// downstream reactivation is encoding-invariant.
template <typename T, typename OnUpdate>
void batch_set(const Message<T>& msg, std::span<const Vertex> recv_list,
               std::span<T> values, simt::PerfCounters& ctr,
               OnUpdate&& on_update) {
  observe::ProfSpan prof_span("comm.batch_set", "values",
                              msg.values.size());
  const auto apply = [&](std::size_t pos, const T& v) {
    T& slot = values[recv_list[pos]];
    if (slot == v) return;
    slot = v;
    ++ctr.mirror_updates;
    on_update(pos);
  };

  switch (msg.mode) {
    case DataCommMode::kNoData:
      break;
    case DataCommMode::kFullVector:
      for (std::size_t i = 0; i < msg.values.size(); ++i) {
        apply(i, msg.values[i]);
      }
      break;
    case DataCommMode::kBitsetData: {
      std::size_t next = 0;
      for (std::size_t wi = 0; wi < msg.bitset.size(); ++wi) {
        std::uint64_t w = msg.bitset[wi];
        while (w != 0) {
          const auto pos = wi * 64 +
                           static_cast<std::size_t>(std::countr_zero(w));
          apply(pos, msg.values[next++]);
          w &= w - 1;
        }
      }
      break;
    }
    case DataCommMode::kOffsetsData:
      for (std::size_t i = 0; i < msg.offsets.size(); ++i) {
        apply(msg.offsets[i], msg.values[i]);
      }
      break;
  }
}

}  // namespace nulpa::comm
