// Configuration for ν-LPA. Defaults reproduce the paper's final design:
// asynchronous LPA, Pick-Less every 4 iterations (PL4), per-vertex
// hashtables with hybrid quadratic-double probing, switch degree 32,
// 32-bit float hashtable values, tolerance 0.05, max 20 iterations.
#pragma once

#include <cstdint>
#include <string>

#include "hash/probing.hpp"
#include "simt/grid.hpp"

namespace nulpa {

/// Community-swap mitigation schedule (Section 4.1). A technique fires on
/// iterations where `iteration % every == 0`; 0 disables it. The paper's
/// grid: PL1..PL4, CC1..CC4, and all 16 hybrid combinations; PL4 wins.
struct SwapPrevention {
  int pick_less_every = 4;    // PL rho; 0 = disabled
  int cross_check_every = 0;  // CC rho; 0 = disabled

  [[nodiscard]] std::string label() const;

  // Fluent builders: each returns a modified copy, so configurations can
  // be assembled in one expression (and from const contexts).
  [[nodiscard]] SwapPrevention with_pick_less(int every) const {
    SwapPrevention s = *this;
    s.pick_less_every = every;
    return s;
  }
  [[nodiscard]] SwapPrevention with_cross_check(int every) const {
    SwapPrevention s = *this;
    s.cross_check_every = every;
    return s;
  }
  [[nodiscard]] static SwapPrevention none() {
    return SwapPrevention{.pick_less_every = 0, .cross_check_every = 0};
  }
};

struct NuLpaConfig {
  int max_iterations = 20;    // Section 4: LPA feature (2)
  double tolerance = 0.05;    // Section 4: per-iteration tolerance (3)
  SwapPrevention swap{};      // PL4 by default
  bool pruning = true;        // Section 4: vertex pruning (4)
  // One knob surface for how the engine executes (simt::ExecPolicy):
  //
  //   exec.sync — kAuto/kBarrierFree (the default) splits the TPV kernel
  //     at its syncwarp into a gather launch and a commit launch, each
  //     barrier-free, so those lanes run on the simulator's fiberless
  //     direct executor: no lane fibers, no context switches, labels
  //     byte-identical to the fused kernel (only scheduler-cost counters
  //     change). kLockstep runs the fused kernels on the lockstep fiber
  //     path, exactly as before the fiberless executor existed. The BPV
  //     kernel always keeps full fiber semantics.
  //   exec.frontier_compaction — launch kernels over compacted worklists
  //     of still-active vertices instead of the full partition ranges
  //     (Traag & Šubelj-style frontier processing, arXiv:2209.13338).
  //     Compaction happens per resident-set window of the degree
  //     partitions, which keeps the set of vertices that gather together —
  //     and therefore the labels — byte-identical to the full-range
  //     launch; only the inactive lanes disappear. No effect when
  //     `pruning` is off (every vertex is always active).
  //   exec.backend/threads/deterministic — serial simulation (default) or
  //     resident blocks sharded across the process ThreadPool; see
  //     DESIGN.md "Parallel backend & ExecPolicy".
  //   exec.schedule_seed — overrides launch.schedule_seed when non-zero.
  simt::ExecPolicy exec{};

  // Section 4.2 — hashtable design.
  Probing probing = Probing::kQuadDouble;
  bool use_double_values = false;  // Section 4.4: float wins
  // Keep low-degree vertices' tables in per-SM shared memory instead of the
  // global buffers. The paper tried this and measured "little to no
  // performance gain"; the ablation bench reproduces that comparison.
  bool shared_memory_tables = false;

  // Section 4.3 — kernel partitioning.
  std::uint32_t switch_degree = 32;

  // Coalescing-aware data layout for the thread-per-vertex kernel: edge
  // slabs and hashtable slabs of each warp-sized cohort of low-degree
  // vertices are interleaved lane-major (element e of cohort lane l lives
  // at base + e*32 + l), so the 32 lanes of a warp touch 32 *adjacent*
  // words per issue window instead of 32 scattered per-vertex ranges.
  // Labels are byte-identical either way — only the physical addresses
  // change — and the win shows up as a drop in measured
  // PerfCounters::global_transactions (bench/coalesced.cpp). Ignored by
  // the coalesced-chaining probing variant and by shared-memory tables,
  // which have their own layouts.
  bool coalesced_layout = true;

  // Simulated hardware shape. `launch` drives the thread-per-vertex kernel;
  // the block-per-vertex kernel uses narrower blocks but many more of them
  // in flight, because on a real A100 hundreds of blocks are resident and
  // the number of *vertices* being processed concurrently — the asynchrony
  // granularity of label updates — is what shapes convergence. Simulating
  // one-vertex blocks with only a handful resident would make the simulated
  // GPU more sequential than the hardware it stands in for.
  simt::LaunchConfig launch{.block_dim = 256, .resident_blocks = 8,
                            .shared_bytes = 0, .stack_bytes = 1 << 13};
  std::uint32_t bpv_block_dim = 32;
  std::uint32_t bpv_resident_blocks = 1024;

  // Fluent builders mirroring SwapPrevention's: modified-copy style, so
  // the CLI, benches, and tests can express one-off variations without
  // mutating a shared default instance.
  [[nodiscard]] NuLpaConfig with_max_iterations(int n) const {
    NuLpaConfig c = *this;
    c.max_iterations = n;
    return c;
  }
  [[nodiscard]] NuLpaConfig with_tolerance(double tau) const {
    NuLpaConfig c = *this;
    c.tolerance = tau;
    return c;
  }
  [[nodiscard]] NuLpaConfig with_swap(SwapPrevention s) const {
    NuLpaConfig c = *this;
    c.swap = s;
    return c;
  }
  [[nodiscard]] NuLpaConfig with_pruning(bool on) const {
    NuLpaConfig c = *this;
    c.pruning = on;
    return c;
  }
  [[nodiscard]] NuLpaConfig with_exec(simt::ExecPolicy p) const {
    NuLpaConfig c = *this;
    c.exec = p;
    return c;
  }
  // Deprecated shims (one release): the pre-ExecPolicy per-field knobs.
  [[deprecated("use with_exec(exec.with_frontier_compaction(on))")]]
  [[nodiscard]] NuLpaConfig with_frontier_compaction(bool on) const {
    NuLpaConfig c = *this;
    c.exec.frontier_compaction = on;
    return c;
  }
  [[deprecated("use with_exec(exec.with_sync(...)) — fiberless == sync != kLockstep")]]
  [[nodiscard]] NuLpaConfig with_fiberless(bool on) const {
    NuLpaConfig c = *this;
    c.exec.sync =
        on ? simt::SyncMode::kAuto : simt::SyncMode::kLockstep;
    return c;
  }
  [[nodiscard]] NuLpaConfig with_probing(Probing p) const {
    NuLpaConfig c = *this;
    c.probing = p;
    return c;
  }
  [[nodiscard]] NuLpaConfig with_double_values(bool on) const {
    NuLpaConfig c = *this;
    c.use_double_values = on;
    return c;
  }
  [[nodiscard]] NuLpaConfig with_shared_memory_tables(bool on) const {
    NuLpaConfig c = *this;
    c.shared_memory_tables = on;
    return c;
  }
  [[nodiscard]] NuLpaConfig with_switch_degree(std::uint32_t deg) const {
    NuLpaConfig c = *this;
    c.switch_degree = deg;
    return c;
  }
  [[nodiscard]] NuLpaConfig with_coalesced_layout(bool on) const {
    NuLpaConfig c = *this;
    c.coalesced_layout = on;
    return c;
  }
};

}  // namespace nulpa
