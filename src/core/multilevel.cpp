#include "core/multilevel.hpp"

#include "graph/transforms.hpp"
#include "util/timer.hpp"

namespace nulpa {

MultilevelResult multilevel_lpa(const Graph& g, const MultilevelConfig& cfg) {
  Timer timer;
  MultilevelResult res;
  const Vertex n = g.num_vertices();
  res.labels.resize(n);
  for (Vertex v = 0; v < n; ++v) res.labels[v] = v;
  if (n == 0) {
    res.seconds = timer.seconds();
    return res;
  }

  Graph level = g;
  // membership of each original vertex in the *current* level's id space.
  std::vector<Vertex> vertex_of(n);
  for (Vertex v = 0; v < n; ++v) vertex_of[v] = v;

  for (int round = 0; round < cfg.max_levels; ++round) {
    const NuLpaResult r = nu_lpa(level, cfg.level_config);
    res.iterations += r.iterations;
    res.counters += r.counters;
    ++res.levels;

    // Project this level's communities down to the original vertices.
    for (Vertex v = 0; v < n; ++v) {
      res.labels[v] = r.labels[vertex_of[v]];
    }

    if (round + 1 == cfg.max_levels) break;

    std::vector<Vertex> coarse_id;
    const Graph coarse = coarsen_by_membership(level, r.labels, &coarse_id);
    if (static_cast<double>(coarse.num_vertices()) >
        cfg.min_shrink * static_cast<double>(level.num_vertices())) {
      break;  // nothing left to merge
    }
    for (Vertex v = 0; v < n; ++v) {
      vertex_of[v] = coarse_id[vertex_of[v]];
    }
    level = coarse;
  }

  // Labels currently name coarse-level vertices (ids < n, since coarsening
  // only shrinks); remap each distinct label to the first original vertex
  // carrying it so the result obeys the LPA invariant that labels are
  // vertex ids of the original graph.
  std::vector<Vertex> first_of(n, 0xFFFFFFFFu);
  for (Vertex v = 0; v < n; ++v) {
    const Vertex c = res.labels[v];
    if (first_of[c] == 0xFFFFFFFFu) first_of[c] = v;
    res.labels[v] = first_of[c];
  }

  res.seconds = timer.seconds();
  return res;
}

MultilevelResult multilevel_lpa(const Graph& g) {
  return multilevel_lpa(g, MultilevelConfig{});
}

}  // namespace nulpa
