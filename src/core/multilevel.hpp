// Multilevel ν-LPA — the paper's "future work" direction (partitioning of
// large graphs) following the LPA-coarsening literature it builds on
// (Valejo et al. coarsening, XtraPuLP/SCLaP-style pipelines): run ν-LPA,
// contract the communities, repeat on the coarse graph, and project the
// coarsest labels back down. Each extra level merges structure LPA's
// one-hop view cannot see, trading a little runtime for modularity that
// approaches Louvain's.
#pragma once

#include <vector>

#include "core/nulpa.hpp"

namespace nulpa {

struct MultilevelConfig {
  NuLpaConfig level_config{};  // used at every level
  int max_levels = 4;          // contraction rounds (1 = plain nu-LPA)
  // Stop coarsening when a level shrinks the graph by less than this
  // factor (no structure left to merge).
  double min_shrink = 0.95;
};

struct MultilevelResult {
  std::vector<Vertex> labels;  // membership on the original graph
  int levels = 0;              // coarsening rounds actually executed
  int iterations = 0;          // total LPA iterations across levels
  double seconds = 0.0;
  simt::PerfCounters counters;  // summed across levels
};

MultilevelResult multilevel_lpa(const Graph& g, const MultilevelConfig& cfg);
MultilevelResult multilevel_lpa(const Graph& g);

}  // namespace nulpa
