#include "core/nulpa.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <optional>
#include <sstream>

#include "core/shared_accumulate.hpp"
#include "graph/partition.hpp"
#include "hash/coalesced.hpp"
#include "observe/profiler.hpp"
#include "simt/collectives.hpp"
#include "simt/grid.hpp"
#include "util/bits.hpp"

namespace nulpa {

std::string SwapPrevention::label() const {
  std::ostringstream ss;
  if (pick_less_every == 0 && cross_check_every == 0) return "none";
  if (pick_less_every > 0 && cross_check_every > 0) {
    ss << "H(PL" << pick_less_every << ",CC" << cross_check_every << ")";
  } else if (pick_less_every > 0) {
    ss << "PL" << pick_less_every;
  } else {
    ss << "CC" << cross_check_every;
  }
  return ss.str();
}

namespace {

/// Block-shared scratch layout for the block-per-vertex kernel's
/// max-reduction. Doubles first so the arena's natural alignment suffices.
struct BlockScratchLayout {
  std::size_t best_w_off = 0;
  std::size_t best_k_off = 0;
  std::size_t flag_off = 0;
  std::size_t total = 0;

  explicit BlockScratchLayout(std::uint32_t block_dim) {
    best_w_off = 0;
    best_k_off = best_w_off + block_dim * sizeof(double);
    flag_off = best_k_off + block_dim * sizeof(Vertex);
    // Round the flag word up to 8 so total stays aligned.
    flag_off = (flag_off + 7) & ~std::size_t{7};
    total = flag_off + sizeof(std::uint64_t);
  }
};

template <typename V>
class Engine {
 public:
  Engine(const Graph& g, const NuLpaConfig& cfg, observe::Tracer* tracer)
      : g_(g),
        cfg_(cfg),
        part_(partition_by_degree(g, cfg.switch_degree)),
        scratch_(cfg.bpv_block_dim),
        tracer_(tracer) {
    const Vertex n = g.num_vertices();
    labels_.resize(n);
    for (Vertex v = 0; v < n; ++v) labels_[v] = v;
    unprocessed_.assign(n, 1);
    // The two global buffers of Figure 3: one allocation of 2|E| keys and
    // one of 2|E| values; vertex i's table lives at offset 2*O_i.
    buf_k_.assign(2 * g.num_edges(), kEmptyKey);
    buf_v_.assign(2 * g.num_edges(), V{});
    // Chain links for the coalesced-hashing variant only (appendix figure).
    if (cfg.probing == Probing::kCoalesced) {
      buf_n_.assign(2 * g.num_edges(), CoalescedTableView<V>::kNil);
    }
    // Shared-memory table layout for the TPV kernel (optional, Section 4.2
    // footnote). Shared memory is a scarce per-SM resource, so this only
    // works for realistic switch degrees; otherwise fall back to the
    // global-buffer tables.
    if (cfg_.shared_memory_tables && cfg_.switch_degree >= 2 &&
        cfg_.switch_degree <= 256) {
      shared_cap_ = hashtable_capacity(cfg_.switch_degree - 1);
      const auto round8 = [](std::size_t x) { return (x + 7) & ~std::size_t{7}; };
      shared_keys_off_ = round8(shared_cap_ * sizeof(V));  // values first
      shared_slice_ = shared_keys_off_ + round8(shared_cap_ * sizeof(Vertex));
    } else {
      cfg_.shared_memory_tables = false;
    }
    // Coalescing-aware re-layout of the TPV kernel's working set (see
    // NuLpaConfig::coalesced_layout): edge slabs and table slabs are
    // rebuilt lane-major per warp-sized cohort of part_.low. The chaining
    // probing variant and shared-memory tables keep their own layouts.
    coal_enabled_ = cfg_.coalesced_layout &&
                    cfg_.probing != Probing::kCoalesced &&
                    !cfg_.shared_memory_tables;
    if (coal_enabled_) build_coalesced_layout();
    // Persistent launch sessions: fiber stacks, lane arrays and shared
    // arenas are allocated once here and reused by every kernel launch of
    // every iteration (the seed engine re-allocated them per launch).
    tpv_cfg_ = cfg_.launch;
    if (cfg_.shared_memory_tables) {
      tpv_cfg_.shared_bytes =
          static_cast<std::uint32_t>(tpv_cfg_.block_dim * shared_slice_);
    }
    bpv_cfg_ = cfg_.launch;
    bpv_cfg_.block_dim = cfg_.bpv_block_dim;
    bpv_cfg_.resident_blocks = cfg_.bpv_resident_blocks;
    bpv_cfg_.shared_bytes = static_cast<std::uint32_t>(scratch_.total);
    // The engine's ExecPolicy picks the executor per kernel family: the
    // TPV kernels are barrier-free when split (fiberless) and lockstep
    // when fused; the BPV kernel is built from syncthreads phases and
    // always runs lockstep. Backend/threads/determinism pass through.
    const simt::ExecPolicy tpv_policy = cfg_.exec.with_sync(
        fiberless() ? simt::SyncMode::kBarrierFree : simt::SyncMode::kLockstep);
    const simt::ExecPolicy bpv_policy =
        cfg_.exec.with_sync(simt::SyncMode::kLockstep);
    tpv_session_.emplace(tpv_cfg_, ctr_, tpv_policy);
    bpv_session_.emplace(bpv_cfg_, ctr_, bpv_policy);
    // The cross-check kernel is order-dependent between blocks (its revert
    // reads the label of an arbitrary leader vertex while peers CAS), so
    // under the parallel backend it runs through a serial-backend session
    // to keep labels reproducible; it is off the paper's hot path
    // (cross_check_every defaults to 0).
    if (cfg_.exec.is_parallel() && cfg_.swap.cross_check_every > 0) {
      chk_session_.emplace(
          tpv_cfg_, ctr_,
          tpv_policy.with_backend(simt::ExecPolicy::Backend::kSerial));
    }
    // Per-worker hash statistics: table probes run concurrently on the
    // parallel backend, so each shard accumulates privately and the host
    // sums on demand (hstats_total()).
    hstats_w_.resize(
        std::max(tpv_session_->workers(), bpv_session_->workers()));
    if (fiberless()) {
      // Per-window gather results for the split TPV kernel: one slot per
      // lane of a resident-set window.
      cstar_.assign(
          static_cast<std::size_t>(std::max(1u, tpv_cfg_.resident_blocks)) *
              tpv_cfg_.block_dim,
          kEmptyKey);
    }
  }

  NuLpaResult run() {
    observe::ProfSpan run_span("run.nulpa");
    observe::SpanTimer timer;
    NuLpaResult res;
    const Vertex n = g_.num_vertices();
    const bool tracing = observe::active(tracer_);
    if (tracing) {
      observe::TraceEvent ev;
      ev.kind = observe::EventKind::kRunStart;
      ev.algo = "nulpa";
      ev.vertices = n;
      ev.edges = g_.num_edges();
      tracer_->record(ev);
    }
    bool converged = false;
    std::uint64_t total_changed = 0;

    for (int iter = 0; n != 0 && iter < cfg_.max_iterations; ++iter) {
      observe::ProfSpan iter_span("iteration", "iter",
                                  static_cast<std::uint64_t>(iter));
      iter_ = iter;
      pick_less_ = cfg_.swap.pick_less_every > 0 &&
                   iter % cfg_.swap.pick_less_every == 0;
      const bool cross_check = cfg_.swap.cross_check_every > 0 &&
                               iter % cfg_.swap.cross_check_every == 0;

      // Iteration-span snapshots for the trace deltas. All tracer work is
      // host-side observation: nothing here touches lane counters or the
      // label state, so a traced run is bit-identical to an untraced one.
      simt::PerfCounters iter_ctr0;
      HashStats iter_hs0;
      observe::SpanTimer iter_timer;
      if (tracing) {
        iter_ctr0 = ctr_.snapshot();
        iter_hs0 = hstats_total();
        observe::TraceEvent ev;
        ev.kind = observe::EventKind::kIterationStart;
        ev.algo = "nulpa";
        ev.iteration = iter;
        ev.active_vertices = cfg_.pruning ? count_unprocessed() : n;
        tracer_->record(ev);
      }

      if (cross_check) {
        prev_labels_ = labels_;
        ctr_.global_loads += n;
        ctr_.global_stores += n;
      }

      delta_n_ = 0;
      traced_kernel("tpv", [&] { return launch_thread_per_vertex(); });
      traced_kernel("bpv", [&] { return launch_block_per_vertex(); });
      if (cross_check) {
        traced_kernel("cross-check", [&] { return launch_cross_check(); });
      }

      ++res.iterations;
      if (tracing) {
        total_changed += delta_n_;
        observe::TraceEvent ev;
        ev.kind = observe::EventKind::kIterationEnd;
        ev.algo = "nulpa";
        ev.iteration = iter;
        ev.active_vertices = cfg_.pruning ? count_unprocessed() : n;
        ev.labels_changed = delta_n_;
        ev.seconds = iter_timer.seconds();
        ev.has_counters = true;
        ev.counters = ctr_ - iter_ctr0;
        ev.hash_stats = hstats_total() - iter_hs0;
        ev.edges_scanned = ev.counters.edges_scanned;
        tracer_->record(ev);
      }
      if (!pick_less_ &&
          static_cast<double>(delta_n_) / n < cfg_.tolerance) {
        converged = true;
        break;
      }
    }

    // device_vector and the result's plain vector differ in allocator, so
    // this is a copy — the host-side D2H transfer at the end of the run.
    res.labels.assign(labels_.begin(), labels_.end());
    res.has_counters = true;
    res.counters = ctr_;
    res.hash_stats = hstats_total();
    res.edges_scanned = ctr_.edges_scanned;
    res.seconds = timer.seconds();
    if (tracing) {
      observe::TraceEvent ev;
      ev.kind = observe::EventKind::kRunEnd;
      ev.algo = "nulpa";
      ev.iterations = res.iterations;
      ev.converged = converged || n == 0;
      ev.labels_changed = total_changed;
      ev.edges_scanned = res.edges_scanned;
      ev.seconds = res.seconds;
      ev.has_counters = true;
      ev.counters = res.counters;
      ev.hash_stats = res.hash_stats;
      tracer_->record(ev);
    }
    return res;
  }

 private:
  /// Vertices still flagged for processing — the pruning frontier the
  /// tracer reports. Host-side read; deliberately not counted as device
  /// traffic so traced and untraced runs report identical counters.
  [[nodiscard]] std::uint64_t count_unprocessed() const {
    std::uint64_t active = 0;
    for (const std::uint8_t f : unprocessed_) active += f;
    return active;
  }

  /// Runs one kernel launch, recording a kernel_launch event with the
  /// launched work-item count (the compacted frontier size, or the full
  /// range when compaction is off) and counter delta when a tracer is
  /// attached. `fn` returns the number of work items it launched.
  template <typename F>
  void traced_kernel(const char* name, F&& fn) {
    // `name` is a string literal at every call site, so it satisfies
    // ProfSpan's static-storage requirement.
    observe::ProfSpan prof_span(name);
    if (!observe::active(tracer_)) {
      fn();
      return;
    }
    const simt::PerfCounters ctr0 = ctr_.snapshot();
    const HashStats hs0 = hstats_total();
    observe::SpanTimer t;
    const std::uint64_t work_items = fn();
    observe::TraceEvent ev;
    ev.kind = observe::EventKind::kKernelLaunch;
    ev.algo = "nulpa";
    ev.iteration = iter_;
    ev.kernel = name;
    ev.work_items = work_items;
    ev.seconds = t.seconds();
    ev.has_counters = true;
    ev.counters = ctr_ - ctr0;
    ev.hash_stats = hstats_total() - hs0;
    ev.edges_scanned = ev.counters.edges_scanned;
    tracer_->record(ev);
  }

  /// Frontier compaction happens per resident-set window: a window is the
  /// slice of the partition order one resident set of blocks would cover,
  /// i.e. the set of vertices that gather together before any of them
  /// commits. Compacting within a window (and scanning the activity flags
  /// right before launching it, so mid-iteration re-activations from
  /// earlier windows are honoured exactly like a lane's own flag read
  /// would) keeps every active vertex in the same gather cohort as the
  /// full-range launch — which is why compacted and full-range runs
  /// produce byte-identical labels. The host-side scan and worklist write
  /// are charged to the device counters as the stream-compaction kernel a
  /// real GPU would run.
  [[nodiscard]] bool compacting() const {
    return cfg_.exec.frontier_compaction && cfg_.pruning;
  }

  /// Barrier-free kernels run on the fiberless direct executor unless the
  /// policy pins the lockstep fiber path.
  [[nodiscard]] bool fiberless() const {
    return cfg_.exec.sync != simt::SyncMode::kLockstep;
  }

  [[nodiscard]] HashStats hstats_total() const {
    HashStats total;
    for (const HashStats& h : hstats_w_) total += h;
    return total;
  }
  [[nodiscard]] HashStats* hstats_for(const simt::Lane& lane) {
    return &hstats_w_[lane.worker()];
  }

  // ---- Coalescing-aware layout (NuLpaConfig::coalesced_layout). TPV
  // vertices are grouped into warp-sized cohorts in partition order — the
  // same order the full-range launch maps them onto warp lanes — and each
  // cohort's edge targets/weights and hashtable slab are stored lane-major:
  // element e of cohort lane l lives at cohort_base + e*32 + l. When the 32
  // lanes of a warp each touch "their" element e in the same issue window,
  // those 32 words are adjacent, so the coalescer emits one 128B
  // transaction instead of up to 32. Capacities are the cohort maximum and
  // bases are multiples of the warp size, so every cohort slab starts on a
  // transaction-line boundary of its device_vector.
  void build_coalesced_layout() {
    constexpr std::uint32_t kW = simt::kWarpSize;
    const std::vector<Vertex>& items = part_.low;
    coal_edge_base_.assign(g_.num_vertices(), 0);
    coal_tab_base_.assign(g_.num_vertices(), 0);
    std::uint64_t esz = 0;
    std::uint64_t tsz = 0;
    for (std::size_t c = 0; c < items.size(); c += kW) {
      const std::size_t end = std::min(items.size(), c + kW);
      std::uint32_t edge_cap = 0;
      std::uint32_t tab_cap = 0;
      for (std::size_t i = c; i < end; ++i) {
        const std::uint32_t deg = g_.degree(items[i]);
        edge_cap = std::max(edge_cap, deg);
        if (deg > 0) tab_cap = std::max(tab_cap, hashtable_capacity(deg));
      }
      for (std::size_t i = c; i < end; ++i) {
        coal_edge_base_[items[i]] = esz + (i - c);
        coal_tab_base_[items[i]] = tsz + (i - c);
      }
      esz += static_cast<std::uint64_t>(edge_cap) * kW;
      tsz += static_cast<std::uint64_t>(tab_cap) * kW;
    }
    coal_tgt_.assign(esz, kEmptyKey);
    coal_wts_.assign(esz, Weight{});
    coal_k_.assign(tsz, kEmptyKey);
    coal_v_.assign(tsz, V{});
    for (const Vertex v : items) {
      const auto nbrs = g_.neighbors(v);
      const auto wts = g_.weights_of(v);
      const std::uint64_t eb = coal_edge_base_[v];
      for (std::size_t e = 0; e < nbrs.size(); ++e) {
        coal_tgt_[eb + e * kW] = nbrs[e];
        coal_wts_[eb + e * kW] = wts[e];
      }
    }
  }

  // ---- Thread-per-vertex kernel: one lane per low-degree vertex. The
  // syncwarp between the gather and commit phases models warp lockstep —
  // all 32 lanes read neighbour labels before any of them writes, which is
  // exactly the execution pattern that produces community swaps.
  std::uint64_t launch_thread_per_vertex() {
    const std::vector<Vertex>& items = part_.low;
    if (items.empty()) return 0;
    const std::uint32_t bdim = tpv_cfg_.block_dim;
    const std::size_t window =
        static_cast<std::size_t>(std::max(1u, tpv_cfg_.resident_blocks)) *
        bdim;
    const bool compact = compacting();
    std::uint64_t launched = 0;
    bool counted_launch = false;

    for (std::size_t base = 0; base < items.size(); base += window) {
      const std::size_t wcount = std::min(window, items.size() - base);
      const Vertex* work = items.data() + base;
      auto count = static_cast<std::uint32_t>(wcount);
      if (compact) {
        frontier_lo_.clear();
        for (std::size_t i = base; i < base + wcount; ++i) {
          if (unprocessed_[items[i]]) frontier_lo_.push_back(items[i]);
        }
        count = static_cast<std::uint32_t>(frontier_lo_.size());
        work = frontier_lo_.data();
        ctr_.frontier_vertices += count;
        ctr_.skipped_lanes += wcount - count;
        ctr_.global_loads += wcount;  // compaction kernel: flag scan
        ctr_.global_stores += count;  // compaction kernel: worklist write
        if (count == 0) continue;
      }
      if (!counted_launch) {
        ctr_.kernel_launches++;
        counted_launch = true;
      }
      launched += count;
      const auto grid = static_cast<std::uint32_t>(ceil_div(count, bdim));
      if (fiberless()) {
        // Split at the fused kernel's syncwarp: every lane of the window
        // gathers, then every lane commits — which is exactly the schedule
        // the lockstep scheduler produces for the fused kernel (a window is
        // one resident set, so all its lanes park at the syncwarp before
        // any commits). Both halves are barrier-free, so they run on the
        // fiberless direct executor: no fibers, no context switches.
        // `cstar_` carries each lane's candidate across the launch
        // boundary; in the fused kernel it lives in a register across the
        // barrier, so the buffer is deliberately not counted as device
        // traffic — the executor mode must not shift the cost model.
        tpv_session_->run(grid, [&](simt::Lane& lane) {
          const std::uint32_t t = lane.global_thread();
          if (t >= count) return;
          cstar_[t] = gather_if_active(lane, work[t]);
        });
        tpv_session_->run(grid, [&](simt::Lane& lane) {
          const std::uint32_t t = lane.global_thread();
          if (t >= count) return;
          commit(lane, work[t], cstar_[t]);
        });
      } else {
        tpv_session_->run(grid, [&](simt::Lane& lane) {
          const std::uint32_t t = lane.global_thread();
          if (t >= count) return;
          const Vertex v = work[t];
          const Vertex cstar = gather_if_active(lane, v);

          lane.syncwarp();  // lockstep boundary: warp gathers, then commits

          commit(lane, v, cstar);
        });
      }
    }
    return launched;
  }

  /// The TPV gather guarded by the pruning flag (Algorithm 1 lines 17-18).
  /// With pruning the flag read is a real tracked device access; without,
  /// the lane still pays one load for its worklist entry.
  Vertex gather_if_active(simt::Lane& lane, Vertex v) {
    if (cfg_.pruning) {
      if (!lane.dev_load(unprocessed_[v])) return kEmptyKey;
    } else {
      lane.count_load(1);  // worklist entry
    }
    lane.dev_store(unprocessed_[v], std::uint8_t{0});
    return gather_unshared(lane, v);
  }

  /// Gather phase for a single lane: clear the vertex's table, accumulate
  /// neighbour labels, return the most weighted label (Algorithm 1 lines
  /// 20-27, unshared hashtable path of Algorithm 2).
  Vertex gather_unshared(simt::Lane& lane, Vertex v) {
    const std::uint32_t deg = g_.degree(v);
    if (deg == 0) return kEmptyKey;
    if (cfg_.probing == Probing::kCoalesced) {
      return gather_coalesced(lane, v, deg);
    }
    const std::uint32_t p1 = hashtable_capacity(deg);
    if (cfg_.shared_memory_tables && p1 <= shared_cap_) {
      return gather_in_shared(lane, v, deg, p1);
    }
    if (coal_enabled_) {
      return gather_strided<simt::kWarpSize>(
          lane, v, deg, p1, coal_k_.data() + coal_tab_base_[v],
          coal_v_.data() + coal_tab_base_[v],
          coal_tgt_.data() + coal_edge_base_[v],
          coal_wts_.data() + coal_edge_base_[v]);
    }
    const EdgeIndex off = 2 * g_.offset(v);
    return gather_strided<1>(lane, v, deg, p1, buf_k_.data() + off,
                             buf_v_.data() + off, g_.neighbors(v).data(),
                             g_.weights_of(v).data());
  }

  /// Global-table gather over a slab whose logical element i sits at
  /// physical index i*Stride — 1 for the flat Figure-3 layout, kWarpSize
  /// for the cohort-interleaved coalesced layout. Probe order, accumulate
  /// order, and tie-breaks live in logical slot space, so both strides
  /// compute identical labels; only the tracked addresses differ.
  template <std::uint32_t Stride>
  Vertex gather_strided(simt::Lane& lane, Vertex v, std::uint32_t deg,
                        std::uint32_t p1, Vertex* keys, V* values,
                        const Vertex* tgt, const Weight* wt) {
    VertexTableView<V, Stride> table(keys, values, p1, hstats_for(lane));
    table.clear();
    lane.track_store_span(keys, p1, Stride);
    lane.track_store_span(values, p1, Stride);

    for (std::uint32_t e = 0; e < deg; ++e) {
      const Vertex u = tgt[static_cast<std::size_t>(e) * Stride];
      if (u == v) continue;
      // Target id, weight, neighbour's label: the three per-edge global
      // loads of the flat model, now with their real addresses.
      lane.track_load(tgt[static_cast<std::size_t>(e) * Stride]);
      lane.track_load(wt[static_cast<std::size_t>(e) * Stride]);
      const std::uint32_t s = table.accumulate(
          lane.dev_load(labels_[u]),
          static_cast<V>(wt[static_cast<std::size_t>(e) * Stride]),
          cfg_.probing);
      if (s < p1) {
        lane.track_store(values[static_cast<std::size_t>(s) * Stride]);
      }
    }
    lane.counters().edges_scanned += deg;
    lane.track_load_span(keys, p1, Stride);  // max-key scan
    return table.max_key();
  }

  /// Shared-memory-table gather (Section 4.2 footnote): the table lives in
  /// the block's shared arena, so its traffic is charged to the shared
  /// counters and not address-tracked (the coalescer models the global
  /// path only).
  Vertex gather_in_shared(simt::Lane& lane, Vertex v, std::uint32_t deg,
                          std::uint32_t p1) {
    std::byte* slice = lane.shared() + lane.thread_idx() * shared_slice_;
    V* values = reinterpret_cast<V*>(slice);
    auto* keys = reinterpret_cast<Vertex*>(slice + shared_keys_off_);
    VertexTableView<V> table(keys, values, p1, hstats_for(lane));
    table.clear();
    lane.count_shared_store(2 * p1);

    const auto nbrs = g_.neighbors(v);
    const auto wts = g_.weights_of(v);
    for (std::size_t e = 0; e < nbrs.size(); ++e) {
      if (nbrs[e] == v) continue;
      // Target id and weight stream from global; the label read is global
      // too; only the table write lands in shared memory.
      lane.track_load(nbrs[e]);
      lane.track_load(wts[e]);
      table.accumulate(lane.dev_load(labels_[nbrs[e]]),
                       static_cast<V>(wts[e]), cfg_.probing);
      lane.count_shared_store(1);
    }
    lane.counters().edges_scanned += deg;
    lane.count_shared_load(p1);  // max-key scan
    return table.max_key();
  }

  /// Coalesced-chaining variant of the gather (the appendix experiment).
  /// Needs a third global buffer for the chain links (H_n), which is why
  /// the paper treats it as an alternative design: +50% table memory.
  Vertex gather_coalesced(simt::Lane& lane, Vertex v, std::uint32_t deg) {
    const std::uint32_t p1 = hashtable_capacity(deg);
    const EdgeIndex off = 2 * g_.offset(v);
    Vertex* keys = buf_k_.data() + off;
    V* values = buf_v_.data() + off;
    std::uint32_t* links = buf_n_.data() + off;
    CoalescedTableView<V> table(keys, values, links, p1, hstats_for(lane));
    table.clear();
    lane.track_store_span(keys, p1);
    lane.track_store_span(values, p1);
    lane.track_store_span(links, p1);

    const auto nbrs = g_.neighbors(v);
    const auto wts = g_.weights_of(v);
    for (std::size_t e = 0; e < nbrs.size(); ++e) {
      if (nbrs[e] == v) continue;
      lane.track_load(nbrs[e]);
      lane.track_load(wts[e]);
      const std::uint32_t s = table.accumulate(lane.dev_load(labels_[nbrs[e]]),
                                               static_cast<V>(wts[e]));
      if (s < p1) lane.track_store(values[s]);
    }
    lane.counters().edges_scanned += deg;
    lane.track_load_span(keys, p1);
    return table.max_key();
  }

  /// Commit phase (Algorithm 1 lines 28-33): adopt c* unless pick-less
  /// forbids it, bump the changed count, re-activate neighbours.
  void commit(simt::Lane& lane, Vertex v, Vertex cstar) {
    const Vertex current = lane.dev_load(labels_[v]);
    if (cstar == kEmptyKey || cstar == current) return;
    if (pick_less_ && cstar > current) return;
    lane.dev_store(labels_[v], cstar);
    lane.atomic_add(delta_n_, std::uint32_t{1});
    if (cfg_.pruning) {
      for (const Vertex j : g_.neighbors(v)) {
        lane.dev_store(unprocessed_[j], std::uint8_t{1});
      }
    }
  }

  // ---- Block-per-vertex kernel: a whole block cooperates on one
  // high-degree vertex; the hashtable is shared, so slot claims use
  // atomicCAS and weight updates atomicAdd (Algorithm 2, shared path).
  std::uint64_t launch_block_per_vertex() {
    const std::vector<Vertex>& items = part_.high;
    if (items.empty()) return 0;
    // One vertex per block, so a window is one resident set of blocks.
    const std::size_t window = std::max(1u, bpv_cfg_.resident_blocks);
    const bool compact = compacting();
    std::uint64_t launched = 0;
    bool counted_launch = false;

    for (std::size_t base = 0; base < items.size(); base += window) {
      const std::size_t wcount = std::min(window, items.size() - base);
      const Vertex* work = items.data() + base;
      auto count = static_cast<std::uint32_t>(wcount);
      if (compact) {
        frontier_hi_.clear();
        for (std::size_t i = base; i < base + wcount; ++i) {
          if (unprocessed_[items[i]]) frontier_hi_.push_back(items[i]);
        }
        count = static_cast<std::uint32_t>(frontier_hi_.size());
        work = frontier_hi_.data();
        ctr_.frontier_vertices += count;
        ctr_.skipped_lanes += wcount - count;
        ctr_.global_loads += wcount;  // compaction kernel: flag scan
        ctr_.global_stores += count;  // compaction kernel: worklist write
        if (count == 0) continue;
      }
      if (!counted_launch) {
        ctr_.kernel_launches++;
        counted_launch = true;
      }
      launched += count;
      // The BPV kernel is built from syncthreads phases: it keeps full
      // fiber semantics rather than promoting its lane 0 once per block.
      bpv_session_->run(count, [&](simt::Lane& lane) {
        const Vertex v = work[lane.block_idx()];
        const std::uint32_t tid = lane.thread_idx();
        const std::uint32_t bdim = lane.block_dim();

        // Block-uniform pruning decision: lane 0 reads the flag once and
        // broadcasts through shared memory. Letting every lane read the
        // global flag would race with lane 0's clearing write (benign on
        // lockstep hardware, fatal under any other interleaving).
        auto* flags =
            reinterpret_cast<std::uint32_t*>(lane.shared() + scratch_.flag_off);
        std::uint32_t* moved = flags;     // set by lane 0 after the reduce
        std::uint32_t* skip = flags + 1;  // pruning verdict broadcast
        if (tid == 0) {
          if (cfg_.pruning) {
            *skip = !lane.dev_load(unprocessed_[v]);
          } else {
            lane.count_load(1);  // worklist entry
            *skip = 0;
          }
          if (!*skip) lane.dev_store(unprocessed_[v], std::uint8_t{0});
        }
        lane.syncthreads();
        if (*skip) return;

        const std::uint32_t deg = g_.degree(v);
        const std::uint32_t p1 = hashtable_capacity(deg);
        const std::uint32_t p2 = secondary_prime(p1);
        const EdgeIndex off = 2 * g_.offset(v);
        Vertex* keys = buf_k_.data() + off;
        V* values = buf_v_.data() + off;

        // Phase 1: parallel clear (Algorithm 1 line 19).
        for (std::uint32_t s = tid; s < p1; s += bdim) {
          keys[s] = kEmptyKey;
          values[s] = V{};
          lane.track_store(keys[s]);
          lane.track_store(values[s]);
        }
        lane.syncthreads();

        // Phase 2: parallel accumulate over the adjacency list.
        const auto nbrs = g_.neighbors(v);
        const auto wts = g_.weights_of(v);
        for (std::uint32_t e = tid; e < deg; e += bdim) {
          if (nbrs[e] == v) continue;
          lane.track_load(nbrs[e]);
          lane.track_load(wts[e]);
          shared_accumulate(lane, keys, values, p1, p2,
                            lane.dev_load(labels_[nbrs[e]]),
                            static_cast<V>(wts[e]), cfg_.probing,
                            hstats_for(lane));
        }
        if (tid == 0) lane.counters().edges_scanned += deg;
        lane.syncthreads();

        // Phase 3: parallel max-reduce (Algorithm 1 line 27).
        auto* best_w =
            reinterpret_cast<double*>(lane.shared() + scratch_.best_w_off);
        auto* best_k =
            reinterpret_cast<Vertex*>(lane.shared() + scratch_.best_k_off);
        Vertex lk = kEmptyKey;
        double lw = -1.0;
        for (std::uint32_t s = tid; s < p1; s += bdim) {
          lane.track_load(keys[s]);
          lane.track_load(values[s]);
          if (keys[s] != kEmptyKey && static_cast<double>(values[s]) > lw) {
            lk = keys[s];
            lw = static_cast<double>(values[s]);
          }
        }
        const Vertex cstar =
            simt::block_argmax(lane, lk, lw, best_k, best_w, kEmptyKey);

        if (tid == 0) {
          *moved = 0;
          const Vertex current = lane.dev_load(labels_[v]);
          if (cstar != kEmptyKey && cstar != current &&
              (!pick_less_ || cstar < current)) {
            lane.dev_store(labels_[v], cstar);
            lane.atomic_add(delta_n_, std::uint32_t{1});
            *moved = 1;
          }
        }
        lane.syncthreads();

        // Phase 4: parallel neighbour re-activation on a move.
        if (*moved && cfg_.pruning) {
          for (std::uint32_t e = tid; e < deg; e += bdim) {
            lane.dev_store(unprocessed_[nbrs[e]], std::uint8_t{1});
          }
        }
      });
    }
    return launched;
  }

  // ---- Cross-Check kernel (Section 4.1): a community change is "good" iff
  // the new community's leader vertex carries its own id as label; bad
  // changes revert to the pre-iteration label via atomicCAS.
  std::uint64_t launch_cross_check() {
    // Always a full sweep: the check needs every changed vertex, and the
    // kernel is barrier-free, so launching it in resident-set windows
    // through the retained session is exactly equivalent to one big grid.
    const Vertex n = g_.num_vertices();
    const std::uint32_t bdim = tpv_cfg_.block_dim;
    const std::size_t window =
        static_cast<std::size_t>(std::max(1u, tpv_cfg_.resident_blocks)) *
        bdim;
    ctr_.kernel_launches++;
    // Serial-backend session under the parallel backend (see the ctor);
    // otherwise the TPV session, whose policy already carries the right
    // sync mode for this kernel.
    simt::LaunchSession& session =
        chk_session_ ? *chk_session_ : *tpv_session_;
    for (Vertex base = 0; base < n; base += window) {
      const auto count =
          static_cast<std::uint32_t>(std::min<std::size_t>(window, n - base));
      const auto grid = static_cast<std::uint32_t>(ceil_div(count, bdim));
      session.run(grid, [&](simt::Lane& lane) {
        const std::uint32_t t = lane.global_thread();
        if (t >= count) return;
        const Vertex v = base + t;
        const Vertex cstar = lane.dev_load(labels_[v]);
        lane.track_load(prev_labels_[v]);
        if (cstar == prev_labels_[v]) return;
        if (lane.dev_load(labels_[cstar]) != cstar) {
          // Bad change: the adopted community has no leader. Revert, but
          // let at most one side of a swap do so (CAS against the adopted
          // label).
          const Vertex old =
              lane.atomic_cas(labels_[v], cstar, prev_labels_[v]);
          if (old == cstar) lane.atomic_add(delta_n_, std::uint32_t{1});
        }
      });
    }
    return n;
  }

  const Graph& g_;
  NuLpaConfig cfg_;
  DegreePartition part_;
  BlockScratchLayout scratch_;

  // Buffers the kernels access through the tracked dev_load/dev_store path
  // live in simt::device_vector: its set-stride alignment makes the
  // transaction and cache-set decomposition of every buffer identical
  // across engine instances, which is what lets tests compare mem counters
  // between separately constructed serial and parallel engines.
  simt::device_vector<Vertex> labels_;
  simt::device_vector<Vertex> prev_labels_;
  simt::device_vector<std::uint8_t> unprocessed_;
  simt::device_vector<Vertex> buf_k_;
  simt::device_vector<V> buf_v_;
  simt::device_vector<std::uint32_t> buf_n_;  // chaining links (optional)

  // Coalescing-aware layout (build_coalesced_layout): cohort-interleaved
  // copies of the low-degree CSR slices and table slabs, plus each
  // vertex's lane-adjusted base into them (indexed by vertex id, so the
  // mapping survives frontier compaction).
  bool coal_enabled_ = false;
  simt::device_vector<Vertex> coal_tgt_;
  simt::device_vector<Weight> coal_wts_;
  simt::device_vector<Vertex> coal_k_;
  simt::device_vector<V> coal_v_;
  std::vector<std::uint64_t> coal_edge_base_;
  std::vector<std::uint64_t> coal_tab_base_;

  // Shared-memory table layout (only when cfg_.shared_memory_tables).
  std::uint32_t shared_cap_ = 0;
  std::size_t shared_keys_off_ = 0;
  std::size_t shared_slice_ = 0;

  simt::PerfCounters ctr_;
  // One HashStats slot per simulator worker (hstats_for/hstats_total):
  // kernels bump their own worker's slot without synchronization, so the
  // stats stay exact on the parallel backend.
  std::vector<HashStats> hstats_w_;

  // Per-kernel launch configurations (fixed for the run) and the sessions
  // that retain fiber stacks and shared arenas across all launches.
  // Declared after ctr_, which the sessions reference.
  simt::LaunchConfig tpv_cfg_;
  simt::LaunchConfig bpv_cfg_;
  std::optional<simt::LaunchSession> tpv_session_;
  std::optional<simt::LaunchSession> bpv_session_;
  // Serial-backend stand-in for the cross-check kernel when the main
  // sessions are parallel: its CAS-revert sweep reads labels it may itself
  // have just reverted, so its result is order-dependent and only the
  // serial schedule is reproducible. Engaged only when cross-checking is
  // configured (off the paper's default path).
  std::optional<simt::LaunchSession> chk_session_;
  // Compacted per-window worklists, reused every iteration.
  std::vector<Vertex> frontier_lo_;
  std::vector<Vertex> frontier_hi_;
  // Fiberless TPV split: per-window gather results (the register the fused
  // kernel carries across its syncwarp).
  std::vector<Vertex> cstar_;

  std::uint32_t delta_n_ = 0;
  bool pick_less_ = false;
  observe::Tracer* tracer_ = nullptr;
  int iter_ = 0;
};

}  // namespace

NuLpaResult nu_lpa(const Graph& g, const NuLpaConfig& cfg,
                   observe::Tracer* tracer) {
  if (cfg.use_double_values) {
    return Engine<double>(g, cfg, tracer).run();
  }
  return Engine<float>(g, cfg, tracer).run();
}

NuLpaResult nu_lpa(const Graph& g, const NuLpaConfig& cfg) {
  return nu_lpa(g, cfg, nullptr);
}

NuLpaResult nu_lpa(const Graph& g) { return nu_lpa(g, NuLpaConfig{}); }

}  // namespace nulpa
