// ν-LPA — the paper's GPU Label Propagation Algorithm, executed on the
// SIMT simulator (src/simt). Algorithm 1 (host loop + lpaMove) and
// Algorithm 2 (hashtable accumulate) are implemented in nulpa.cpp and
// kernels.hpp; this header is the public entry point.
#pragma once

#include "core/config.hpp"
#include "core/report.hpp"
#include "graph/csr.hpp"
#include "observe/trace.hpp"

namespace nulpa {

/// ν-LPA's result is the unified RunReport with `has_counters` set: labels,
/// iteration count, host wall-clock, plus the simulated hardware events the
/// cost model consumes and the hashtable probe/fallback totals.
using NuLpaResult = RunReport;

/// Runs ν-LPA on `g`. Deterministic for a fixed graph and configuration
/// (the simulator schedules warps in a fixed order). An attached tracer
/// observes iteration boundaries, kernel launches, and per-iteration
/// counter deltas; it never alters labels, counters, or convergence.
NuLpaResult nu_lpa(const Graph& g, const NuLpaConfig& cfg,
                   observe::Tracer* tracer);
NuLpaResult nu_lpa(const Graph& g, const NuLpaConfig& cfg);
NuLpaResult nu_lpa(const Graph& g);

}  // namespace nulpa
