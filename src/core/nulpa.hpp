// ν-LPA — the paper's GPU Label Propagation Algorithm, executed on the
// SIMT simulator (src/simt). Algorithm 1 (host loop + lpaMove) and
// Algorithm 2 (hashtable accumulate) are implemented in nulpa.cpp and
// kernels.hpp; this header is the public entry point.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "graph/csr.hpp"
#include "hash/vertex_table.hpp"
#include "simt/counters.hpp"

namespace nulpa {

struct NuLpaResult {
  std::vector<Vertex> labels;  // community of each vertex (a vertex id)
  int iterations = 0;          // LPA iterations executed
  double seconds = 0.0;        // host wall-clock of the simulated run
  std::uint64_t edges_scanned = 0;
  simt::PerfCounters counters;  // simulated hardware events (cost model in)
  HashStats hash_stats;         // probe/fallback totals
};

/// Runs ν-LPA on `g`. Deterministic for a fixed graph and configuration
/// (the simulator schedules warps in a fixed order).
NuLpaResult nu_lpa(const Graph& g, const NuLpaConfig& cfg);
NuLpaResult nu_lpa(const Graph& g);

}  // namespace nulpa
