// The unified result type every algorithm in the library returns. The old
// per-algorithm result structs (ClusteringResult, NuLpaResult,
// GunrockSimtResult) are aliases of this one type, so quality metrics,
// benches, and the CLI consume a single shape regardless of which runner
// produced it.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "hash/vertex_table.hpp"
#include "simt/counters.hpp"

namespace nulpa {

struct RunReport {
  std::vector<Vertex> labels;       // community of each vertex
  int iterations = 0;               // passes over the vertex set
  double seconds = 0.0;             // measured host wall-clock of the run
  std::uint64_t edges_scanned = 0;  // algorithm-level work metric

  // Extensions populated only by simulator-backed algorithms (ν-LPA and
  // the Gunrock-style SIMT baseline). `has_counters` says whether the two
  // structs below carry real data or their zero defaults.
  bool has_counters = false;
  simt::PerfCounters counters{};  // simulated hardware events
  HashStats hash_stats{};         // probe/fallback totals

  // Modeled wall-clock on each algorithm's reference platform (A100 for
  // the GPU rows, 32-core Xeon for the multicore rows). Filled by the
  // registry runners (core/runner.hpp); 0 when the measured `seconds` is
  // the reported time.
  double modeled_seconds = 0.0;
};

}  // namespace nulpa
