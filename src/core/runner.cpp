#include "core/runner.hpp"

#include <stdexcept>

#include "observe/profiler.hpp"
#include "perfmodel/machine.hpp"

namespace nulpa {

namespace {

// Per-algorithm reference-platform accounting (DESIGN.md "Hardware
// substitutions"), previously duplicated by bench/compare and the CLI:
//  * nulpa / gunrock — modeled A100 time from simulator hardware counters
//    (gunrock's scaled for segmented-sort aggregation and frontier kernels);
//  * seq / flpa      — measured wall-clock (sequential in the paper too);
//  * plp / gve       — measured wall-clock scaled to 32 cores at 50%
//    parallel efficiency;
//  * louvain         — modeled A100 time from its edge-scan work.

RunReport run_nulpa(const Graph& g, const RunOptions& opts) {
  observe::ProfSpan runner_span("runner.nulpa");
  RunReport r = nu_lpa(g, opts.nulpa, opts.tracer);
  r.modeled_seconds = modeled_gpu_seconds(a100(), r.counters);
  return r;
}

RunReport run_sharded(const Graph& g, const RunOptions& opts) {
  observe::ProfSpan runner_span("runner.sharded");
  RunReport r = sharded_lpa(g, opts.sharded, opts.tracer);
  // Per-shard kernels are modeled A100 devices; the exchange is host-side
  // packing whose volume the comm counters report. The modeled time takes
  // the merged counters (sum over devices — a sequential-devices model,
  // conservative for a true multi-GPU overlap).
  r.modeled_seconds = modeled_gpu_seconds(a100(), r.counters);
  return r;
}

RunReport run_gve(const Graph& g, const RunOptions& opts) {
  observe::ProfSpan runner_span("runner.gve");
  RunReport r = gve_lpa(g, ThreadPool::global(), opts.gve, opts.tracer);
  r.modeled_seconds = modeled_cpu_seconds(r.seconds, 32, 0.5);
  return r;
}

RunReport run_flpa(const Graph& g, const RunOptions& opts) {
  observe::ProfSpan runner_span("runner.flpa");
  RunReport r = flpa(g, opts.flpa, opts.tracer);
  r.modeled_seconds = r.seconds;
  return r;
}

RunReport run_plp(const Graph& g, const RunOptions& opts) {
  observe::ProfSpan runner_span("runner.plp");
  RunReport r = plp(g, ThreadPool::global(), opts.plp, opts.tracer);
  r.modeled_seconds = modeled_cpu_seconds(r.seconds, 32, 0.5);
  return r;
}

RunReport run_seq(const Graph& g, const RunOptions& opts) {
  observe::ProfSpan runner_span("runner.seq");
  RunReport r = seq_lpa(g, opts.seq, opts.tracer);
  r.modeled_seconds = r.seconds;
  return r;
}

RunReport run_gunrock(const Graph& g, const RunOptions& opts) {
  observe::ProfSpan runner_span("runner.gunrock");
  RunReport r = gunrock_lpa_simt(g, opts.gunrock, opts.tracer);
  // Gunrock's label aggregation is a segmented *sort* in the real system:
  // ~4 radix passes, each reading and writing key+value for every edge,
  // plus the frontier machinery — about 8x the traffic of the hashed
  // single pass our work-equivalent kernel counts. The report keeps the
  // raw counters; only the modeled time gets the scaling.
  simt::PerfCounters scaled = r.counters;
  scaled.global_loads *= 8;
  scaled.global_stores *= 8;
  scaled.kernel_launches *= 4;  // advance / filter / sort / reduce per step
  r.modeled_seconds = modeled_gpu_seconds(a100(), scaled);
  return r;
}

RunReport run_louvain(const Graph& g, const RunOptions& opts) {
  observe::ProfSpan runner_span("runner.louvain");
  RunReport r = louvain(g, opts.louvain, opts.tracer);
  // cuGraph Louvain: per-edge hashmap work plus graph contraction dominate,
  // and each pass issues dozens of kernels — modeled as 16 words + 2
  // dependent random accesses per scanned edge and ~25 launches/pass.
  r.modeled_seconds = modeled_gpu_seconds_from_work(
      a100(), r.edges_scanned, 25 * r.iterations,
      /*words_per_edge=*/16.0, /*random_per_edge=*/2.0);
  return r;
}

}  // namespace

const std::vector<AlgorithmInfo>& algorithm_registry() {
  static const std::vector<AlgorithmInfo> kRegistry = {
      {"nulpa", "nu-LPA on the SIMT simulator (modeled A100 time)",
       run_nulpa},
      {"sharded",
       "multi-device sharded LPA with delta exchange (modeled A100 time)",
       run_sharded},
      {"gve", "GVE-LPA multicore baseline (modeled 32-core time)", run_gve},
      {"flpa", "Fast LPA, queue-driven sequential (measured time)", run_flpa},
      {"plp", "NetworKit-style parallel LPA (modeled 32-core time)", run_plp},
      {"seq", "textbook sequential LPA (measured time)", run_seq},
      {"gunrock",
       "Gunrock-style synchronous LPA on the simulator (modeled A100 time)",
       run_gunrock},
      {"louvain", "Louvain stand-in for cuGraph (modeled A100 time)",
       run_louvain},
  };
  return kRegistry;
}

const AlgorithmInfo* find_algorithm(std::string_view name) {
  for (const auto& info : algorithm_registry()) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

std::string algorithm_names() {
  std::string names;
  for (const auto& info : algorithm_registry()) {
    if (!names.empty()) names += ", ";
    names += info.name;
  }
  return names;
}

Probing parse_probing(std::string_view name) {
  if (name == "linear") return Probing::kLinear;
  if (name == "quadratic") return Probing::kQuadratic;
  if (name == "double") return Probing::kDouble;
  if (name == "quad-double") return Probing::kQuadDouble;
  if (name == "coalesced") return Probing::kCoalesced;
  throw std::runtime_error("unknown --probing " + std::string(name));
}

NuLpaConfig nulpa_config_from_flags(const CommonFlags& flags) {
  NuLpaConfig cfg =
      NuLpaConfig{}
          .with_swap(SwapPrevention{}
                         .with_pick_less(flags.pick_less)
                         .with_cross_check(flags.cross_check))
          .with_switch_degree(flags.switch_degree)
          .with_probing(parse_probing(flags.probing))
          .with_double_values(flags.double_values)
          .with_shared_memory_tables(flags.shared_tables)
          .with_pruning(flags.pruning)
          .with_coalesced_layout(flags.coalesced_layout)
          .with_exec(exec_policy_from_flags(flags));
  if (flags.tolerance) cfg = cfg.with_tolerance(*flags.tolerance);
  if (flags.max_iterations) {
    cfg = cfg.with_max_iterations(*flags.max_iterations);
  }
  return cfg;
}

simt::ExecPolicy exec_policy_from_flags(const CommonFlags& flags) {
  simt::ExecPolicy p;
  if (flags.parallel_sim || flags.threads > 1) {
    p = p.with_backend(simt::ExecPolicy::Backend::kParallel)
            .with_threads(flags.threads);
  }
  if (flags.seed) p = p.with_schedule_seed(*flags.seed);
  p = p.with_track_memory(flags.track_memory);
  p = p.with_scoreboard(flags.scoreboard);
  return p;
}

RunOptions run_options_from_flags(const CommonFlags& flags) {
  RunOptions opts;
  opts.profile_file = flags.profile_file;
  opts.metrics_histograms = flags.metrics_histograms;
  opts.nulpa = nulpa_config_from_flags(flags);
  opts.exec = exec_policy_from_flags(flags);
  // nulpa_config_from_flags() already derived the same policy; keep the
  // mirroring explicit so opts.exec is authoritative for all three.
  opts.nulpa.exec = opts.exec;
  opts.gunrock.exec = opts.exec;
  opts.sharded.exec = opts.exec;
  opts.sharded.shards = flags.shards == 0 ? 1 : flags.shards;
  if (!shard_mode_from_name(flags.shard_mode, opts.sharded.shard_mode)) {
    throw std::runtime_error("unknown --shard-mode " + flags.shard_mode);
  }
  if (flags.comm_mode != "auto") {
    comm::DataCommMode m{};
    if (!comm::comm_mode_from_name(flags.comm_mode, m)) {
      throw std::runtime_error("unknown --comm-mode " + flags.comm_mode);
    }
    opts.sharded.comm_mode = m;
  }
  if (flags.tolerance) {
    opts.sharded.tolerance = *flags.tolerance;
  }
  if (flags.max_iterations) {
    opts.sharded.max_iterations = *flags.max_iterations;
  }
  if (flags.tolerance) {
    opts.seq.tolerance = *flags.tolerance;
    opts.plp.tolerance = *flags.tolerance;
    opts.gve.tolerance = *flags.tolerance;
    opts.louvain.tolerance = *flags.tolerance;
  }
  if (flags.max_iterations) {
    opts.seq.max_iterations = *flags.max_iterations;
    opts.plp.max_iterations = *flags.max_iterations;
    opts.gve.max_iterations = *flags.max_iterations;
    opts.gunrock.iterations = *flags.max_iterations;
    opts.louvain.max_passes = *flags.max_iterations;
  }
  if (flags.seed) {
    opts.seq.seed = *flags.seed;
    opts.flpa.seed = *flags.seed;
    opts.plp.seed = *flags.seed;
  }
  return opts;
}

void apply_threads(const simt::ExecPolicy& policy) {
  if (policy.is_parallel() && policy.threads > 0) {
    ThreadPool::global().resize(policy.threads);
  }
}

}  // namespace nulpa
