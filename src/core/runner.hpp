// The uniform algorithm-runner API. Seven algorithms used to expose seven
// ad-hoc free-function signatures, so every tool (the CLI's --algo chain,
// bench/compare's sweep, the tests) re-implemented dispatch and flag
// plumbing. The registry maps each algorithm name to one Runner signature
// `(const Graph&, const RunOptions&) -> RunReport`; RunOptions carries
// every per-algorithm config plus the optional tracer, and each registered
// runner also fills RunReport::modeled_seconds with its reference-platform
// time (the per-algorithm accounting bench/compare documents).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "baselines/flpa.hpp"
#include "baselines/gunrock_lpa.hpp"
#include "baselines/gunrock_lpa_simt.hpp"
#include "baselines/gve_lpa.hpp"
#include "baselines/louvain.hpp"
#include "baselines/plp.hpp"
#include "baselines/seq_lpa.hpp"
#include "core/config.hpp"
#include "core/nulpa.hpp"
#include "core/report.hpp"
#include "core/sharded.hpp"
#include "observe/trace.hpp"
#include "util/cli.hpp"

namespace nulpa {

/// One options bag for every algorithm: a runner reads only its own config
/// (plus the shared tracer), so callers can fill the whole struct once and
/// sweep the registry.
struct RunOptions {
  NuLpaConfig nulpa{};
  SeqLpaConfig seq{};
  FlpaConfig flpa{};
  PlpConfig plp{};
  GveLpaConfig gve{};
  GunrockLpaConfig gunrock{};
  LouvainConfig louvain{};
  ShardedConfig sharded{};
  // How the SIMT simulator executes (backend, threads, determinism, sync,
  // schedule seed). The canonical copy: run_options_from_flags() mirrors it
  // into every simulator-backed per-algorithm config above (nulpa.exec,
  // gunrock.exec), so tools pick the backend through this one field.
  simt::ExecPolicy exec{};
  observe::Tracer* tracer = nullptr;
  // Host-side span profiling (src/observe/profiler.hpp): when
  // `profile_file` is non-empty the CLI enables the ProfilerRegistry for
  // the run and writes the drained spans there as Chrome trace-event JSON;
  // `metrics_histograms` additionally prints per-phase latency histograms
  // (p50/p95/p99). Pure observation — labels and PerfCounters are
  // byte-identical whether or not these are set.
  std::string profile_file;
  bool metrics_histograms = false;
};

using Runner = RunReport (*)(const Graph& g, const RunOptions& opts);

struct AlgorithmInfo {
  std::string_view name;
  std::string_view description;
  Runner run;
};

/// Every registered algorithm, in presentation order: "nulpa", "sharded",
/// "gve", "flpa", "plp", "seq", "gunrock", "louvain".
const std::vector<AlgorithmInfo>& algorithm_registry();

/// Registry lookup; nullptr when `name` is unknown.
const AlgorithmInfo* find_algorithm(std::string_view name);

/// Comma-separated registered names, for usage/error messages.
std::string algorithm_names();

/// Probing-policy names as the CLI spells them; throws on unknown names.
Probing parse_probing(std::string_view name);

/// ν-LPA configuration from the shared flag set.
NuLpaConfig nulpa_config_from_flags(const CommonFlags& flags);

/// Simulator execution policy from the shared flag set: --parallel-sim
/// selects the parallel backend, --threads its worker count, --seed the
/// deterministic schedule shuffle.
simt::ExecPolicy exec_policy_from_flags(const CommonFlags& flags);

/// Full options bag from the shared flag set: ν-LPA knobs map onto
/// NuLpaConfig; tolerance/max-iterations/seed map onto every algorithm
/// that has the matching knob, preserving per-algorithm defaults when a
/// flag is absent; the ExecPolicy from exec_policy_from_flags() lands in
/// opts.exec and every simulator-backed config. The tracer is attached
/// separately by the caller.
RunOptions run_options_from_flags(const CommonFlags& flags);

/// Sizes the process-wide ThreadPool for `policy`: resizes
/// ThreadPool::global() to `policy.threads` when the parallel backend is
/// selected with an explicit thread count, so sessions that share the
/// global pool get the requested width. No-op for serial policies or
/// threads == 0 (keep the hardware-sized pool).
void apply_threads(const simt::ExecPolicy& policy);

}  // namespace nulpa
