#include "core/sharded.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "graph/stats.hpp"
#include "hash/vertex_table.hpp"
#include "observe/profiler.hpp"
#include "simt/mem.hpp"
#include "util/bits.hpp"

namespace nulpa {

namespace {

/// Everything one simulated device owns: the local CSR mirrored into
/// device buffers, the double-buffered labels (masters + mirrors), the
/// per-vertex hashtable slabs, the changed-master bitset the comm layer
/// packs against, and the shard's private LaunchSession/counters.
struct ShardState {
  const ShardPlan::Shard* shard = nullptr;

  simt::device_vector<Vertex> targets;
  simt::device_vector<float> weights;
  simt::device_vector<Vertex> labels;  // current; mirrors refresh at barriers
  simt::device_vector<Vertex> prev;    // last-barrier snapshot, gather source
  simt::device_vector<Vertex> buf_k;   // hashtable keys, 2 slots per arc
  simt::device_vector<float> buf_v;    // hashtable weights

  comm::ChangedBitset changed;          // masters whose label moved this iter
  std::vector<std::uint8_t> active;     // per master: gather next iteration?
  std::vector<Vertex> frontier;

  simt::PerfCounters ctr;
  std::vector<HashStats> worker_stats;
  std::unique_ptr<simt::LaunchSession> session;
};

}  // namespace

RunReport sharded_lpa(const Graph& g, const ShardedConfig& cfg,
                      observe::Tracer* tracer) {
  const ShardPlan plan = make_shard_plan(g, cfg.shards, cfg.shard_mode);
  return sharded_lpa(g, plan, cfg, tracer);
}

RunReport sharded_lpa(const Graph& g, const ShardPlan& plan,
                      const ShardedConfig& cfg, observe::Tracer* tracer) {
  observe::ProfSpan run_span("run.sharded", "shards", plan.num_shards);
  observe::SpanTimer timer;
  RunReport res;
  res.has_counters = true;
  const Vertex n = g.num_vertices();
  res.labels.resize(n);
  for (Vertex v = 0; v < n; ++v) res.labels[v] = v;

  // Partition stats ride on run_start so trace-summary can report cut
  // quality without re-sharding the graph; O(E), so traced runs only.
  PartitionStats ps{};
  if (observe::active(tracer)) ps = compute_partition_stats(g, plan);
  const observe::RunTrace trace(tracer, "sharded", n, g.num_edges(),
                                plan.num_shards, ps.cut_arcs,
                                ps.replication_factor);
  if (n == 0) {
    res.seconds = timer.seconds();
    trace.run_end(0, true, 0, 0, res.seconds);
    return res;
  }

  const simt::ExecPolicy policy =
      cfg.exec.with_sync(simt::SyncMode::kBarrierFree);

  std::vector<ShardState> shards(plan.num_shards);
  for (std::uint32_t s = 0; s < plan.num_shards; ++s) {
    ShardState& st = shards[s];
    const ShardPlan::Shard& sh = plan.shards[s];
    st.shard = &sh;
    const Vertex locals = static_cast<Vertex>(sh.local_to_global.size());
    const EdgeIndex arcs = sh.local.num_edges();
    st.targets.assign(sh.local.targets().begin(), sh.local.targets().end());
    st.weights.assign(sh.local.weights().begin(), sh.local.weights().end());
    st.labels.resize(locals);
    for (Vertex l = 0; l < locals; ++l) st.labels[l] = sh.local_to_global[l];
    st.prev.resize(locals);
    st.buf_k.assign(2 * arcs, kEmptyKey);
    st.buf_v.assign(2 * arcs, 0.0f);
    st.changed = comm::ChangedBitset(sh.num_masters);
    st.active.assign(sh.num_masters, 1);
    st.frontier.reserve(sh.num_masters);
    st.session =
        std::make_unique<simt::LaunchSession>(cfg.launch, st.ctr, policy);
    st.worker_stats.assign(st.session->workers(), HashStats{});
  }

  // Comm-layer counters live outside any shard's session so a per-shard
  // merge can't double-count them; they fold into the report at the end.
  simt::PerfCounters comm_ctr;

  std::uint64_t total_changed = 0;
  bool converged = false;
  int it = 0;
  for (; it < cfg.max_iterations; ++it) {
    observe::ProfSpan iter_span("iteration", "iter",
                                static_cast<std::uint64_t>(it));
    observe::SpanTimer iter_timer;
    simt::PerfCounters iter0{};
    HashStats hash0{};
    if (trace.on()) {
      for (const ShardState& st : shards) {
        iter0 += st.ctr;
        for (const HashStats& h : st.worker_stats) hash0 += h;
      }
      iter0 += comm_ctr;
    }
    const bool pick_less =
        cfg.pick_less_every > 0 && it % cfg.pick_less_every == 0;

    // Frontier per shard (masters only; mirrors never gather).
    std::uint64_t active_total = 0;
    for (ShardState& st : shards) {
      const Vertex masters = st.shard->num_masters;
      st.frontier.clear();
      if (policy.frontier_compaction) {
        for (Vertex v = 0; v < masters; ++v) {
          if (st.active[v]) st.frontier.push_back(v);
        }
        st.ctr.global_loads += masters;
        st.ctr.global_stores += st.frontier.size();
        st.ctr.skipped_lanes += masters - st.frontier.size();
      } else {
        for (Vertex v = 0; v < masters; ++v) st.frontier.push_back(v);
      }
      st.ctr.frontier_vertices += st.frontier.size();
      active_total += st.frontier.size();
    }
    trace.iteration_start(it, active_total);

    // Barrier snapshot: gathers read prev, commits write labels. Mirrors
    // carry their owner's last-barrier label, so prev is globally
    // consistent regardless of how many shards hold copies.
    for (ShardState& st : shards) {
      std::copy(st.labels.begin(), st.labels.end(), st.prev.begin());
      st.changed.reset();
      std::fill(st.active.begin(), st.active.end(), std::uint8_t{0});
    }

    // Compute pass: one barrier-free launch per shard. Shard order is
    // irrelevant to the result (each shard reads only its own prev) —
    // intra-shard parallelism comes from the session's ExecPolicy backend.
    for (std::uint32_t s = 0; s < plan.num_shards; ++s) {
      ShardState& st = shards[s];
      const auto fsize = static_cast<std::uint32_t>(st.frontier.size());
      if (fsize == 0) continue;
      // Spans inside this launch land in the shard's trace-process lane.
      observe::ProfPidScope pid_scope(s);
      observe::ProfSpan shard_span("shard.launch", "frontier", fsize);
      const simt::PerfCounters ctr0 =
          trace.on() ? st.ctr.snapshot() : simt::PerfCounters{};
      ++st.ctr.kernel_launches;
      const auto grid = ceil_div(fsize, cfg.launch.block_dim);
      const auto& offsets = st.shard->local.offsets();
      st.session->run(grid, [&](simt::Lane& lane) {
        const std::uint32_t t = lane.global_thread();
        if (t >= fsize) return;
        const Vertex v = st.frontier[t];
        lane.count_load(1);  // worklist read
        const EdgeIndex off = offsets[v];
        const auto deg = static_cast<std::uint32_t>(offsets[v + 1] - off);
        lane.count_load(2);  // CSR row bounds
        if (deg == 0) return;

        const std::uint32_t p1 = hashtable_capacity(deg);
        const EdgeIndex toff = 2 * off;
        VertexTableView<float> table(st.buf_k.data() + toff,
                                     st.buf_v.data() + toff, p1,
                                     &st.worker_stats[lane.worker()]);
        table.clear();
        lane.track_store_span(st.buf_k.data() + toff, p1);
        lane.track_store_span(st.buf_v.data() + toff, p1);

        for (EdgeIndex e = off; e < off + deg; ++e) {
          const Vertex u = lane.dev_load(st.targets[e]);
          if (u == v) continue;  // self-loop
          const float w = lane.dev_load(st.weights[e]);
          const Vertex lbl = lane.dev_load(st.prev[u]);
          const std::uint32_t slot =
              table.accumulate(lbl, w, cfg.probing);
          lane.track_store(st.buf_k[toff + slot]);
          lane.track_store(st.buf_v[toff + slot]);
        }
        lane.counters().edges_scanned += deg;

        // Max weight, min label on ties — the deterministic reduction
        // order of the synchronous formulation (matches the Gunrock-style
        // baseline, so slot order never leaks into the result).
        const Vertex cur = lane.dev_load(st.prev[v]);
        Vertex best = cur;
        float best_w = -1.0f;
        lane.track_load_span(st.buf_k.data() + toff, p1);
        lane.track_load_span(st.buf_v.data() + toff, p1);
        for (std::uint32_t slot = 0; slot < p1; ++slot) {
          const Vertex key = st.buf_k[toff + slot];
          if (key == kEmptyKey) continue;
          const float w = st.buf_v[toff + slot];
          if (w > best_w || (w == best_w && key < best)) {
            best_w = w;
            best = key;
          }
        }
        if (best == cur) return;
        if (pick_less && best > cur) return;  // PL: only adopt smaller
        lane.dev_store(st.labels[v], best);
        st.changed.set(v);
      });
      if (trace.on()) {
        observe::TraceEvent ev =
            trace.make(observe::EventKind::kKernelLaunch, it);
        ev.kernel = "lpa";
        ev.work_items = fsize;
        ev.has_counters = true;
        ev.counters = st.ctr - ctr0;
        ev.edges_scanned = ev.counters.edges_scanned;
        ev.labels_changed = st.changed.count();
        trace.record(ev);
      }
    }

    // Local reactivation (host bookkeeping, like the baselines' diff
    // loops): a changed master wakes itself and its in-shard neighbors;
    // remote neighbors wake below when their mirror copy updates.
    std::uint64_t delta = 0;
    for (ShardState& st : shards) {
      const Vertex masters = st.shard->num_masters;
      st.changed.for_each_set([&](std::size_t v) {
        ++delta;
        st.active[v] = 1;
        for (const Vertex u : st.shard->local.neighbors(
                 static_cast<Vertex>(v))) {
          if (u < masters) st.active[u] = 1;
        }
      });
    }
    total_changed += delta;

    // Iteration barrier: ship every changed master to each peer that
    // mirrors it, and wake the masters adjacent to an updated mirror. The
    // encoding is per message (density decides, unless pinned by config).
    const simt::PerfCounters comm0 = comm_ctr.snapshot();
    {
      observe::ProfSpan barrier_span("exchange.barrier", "iter",
                                     static_cast<std::uint64_t>(it));
      for (std::uint32_t s = 0; s < plan.num_shards; ++s) {
        ShardState& src = shards[s];
        for (std::uint32_t t = 0; t < plan.num_shards; ++t) {
          if (t == s || src.shard->send_masters[t].empty()) continue;
          ShardState& dst = shards[t];
          const std::span<const Vertex> recv_list =
              dst.shard->recv_mirrors[s];
          comm::Message<Vertex> msg;
          {
            // Serialize in the source shard's lane, apply in the
            // destination's — the timeline shows who pays for each half.
            observe::ProfPidScope src_scope(s);
            observe::ProfSpan ser_span("comm.serialize", "dst", t);
            msg = comm::batch_get<Vertex>(
                src.shard->send_masters[t],
                std::span<const Vertex>(src.labels), src.changed,
                cfg.comm_mode, comm_ctr);
          }
          observe::ProfPidScope dst_scope(t);
          observe::ProfSpan apply_span("comm.apply", "src", s);
          comm::batch_set<Vertex>(
              msg, recv_list, std::span<Vertex>(dst.labels), comm_ctr,
              [&](std::size_t pos) {
                const Vertex m = recv_list[pos] - dst.shard->num_masters;
                const EdgeIndex b = dst.shard->mirror_adj_offsets[m];
                const EdgeIndex e = dst.shard->mirror_adj_offsets[m + 1];
                for (EdgeIndex i = b; i < e; ++i) {
                  dst.active[dst.shard->mirror_adj[i]] = 1;
                }
              });
        }
      }
    }
    if (trace.on()) {
      observe::TraceEvent ev =
          trace.make(observe::EventKind::kKernelLaunch, it);
      ev.kernel = "exchange";
      ev.has_counters = true;
      ev.counters = comm_ctr - comm0;
      ev.work_items = ev.counters.exchanged_labels;
      ev.labels_changed = delta;
      trace.record(ev);
    }

    if (trace.on()) {
      observe::TraceEvent ev =
          trace.make(observe::EventKind::kIterationEnd, it);
      ev.active_vertices = active_total;
      ev.labels_changed = delta;
      ev.seconds = iter_timer.seconds();
      ev.has_counters = true;
      for (const ShardState& st : shards) {
        ev.counters += st.ctr;
        for (const HashStats& h : st.worker_stats) ev.hash_stats += h;
      }
      ev.counters += comm_ctr;
      ev.counters -= iter0;
      ev.hash_stats -= hash0;
      ev.edges_scanned = ev.counters.edges_scanned;
      trace.record(ev);
    }

    // Tolerance convergence, on the global change count so the verdict is
    // shard-count-invariant; pick-less sweeps are skipped like the async
    // engine's (a PL iteration suppresses adoptions by design).
    if (!pick_less &&
        static_cast<double>(delta) < cfg.tolerance * n) {
      ++it;
      converged = true;
      break;
    }
  }

  // Gather master labels back to global id space.
  for (const ShardState& st : shards) {
    for (Vertex l = 0; l < st.shard->num_masters; ++l) {
      res.labels[st.shard->local_to_global[l]] = st.labels[l];
    }
  }

  for (const ShardState& st : shards) {
    res.counters += st.ctr;
    for (const HashStats& h : st.worker_stats) res.hash_stats += h;
  }
  res.counters += comm_ctr;
  res.iterations = it;
  res.edges_scanned = res.counters.edges_scanned;
  res.seconds = timer.seconds();
  if (trace.on()) {
    observe::TraceEvent ev = trace.make(observe::EventKind::kRunEnd, -1);
    ev.iterations = res.iterations;
    ev.converged = converged;
    ev.labels_changed = total_changed;
    ev.edges_scanned = res.edges_scanned;
    ev.seconds = res.seconds;
    ev.has_counters = true;
    ev.counters = res.counters;
    ev.hash_stats = res.hash_stats;
    trace.record(ev);
  }
  return res;
}

}  // namespace nulpa
