// Multi-device sharded LPA: the graph is edge-cut into N shards
// (graph/partition.hpp), each shard runs a label-propagation kernel on its
// own simt::LaunchSession over its masters, and mirror copies of remote
// neighbors are refreshed at every iteration barrier by the src/comm delta
// exchange (only labels the owner actually changed cross the wire).
//
// Determinism contract: every gather reads the *previous iteration's*
// label snapshot — the semi-synchronous formulation (Cordasco & Gargano)
// — so a vertex's new label is a pure function of the last barrier state.
// By induction over barriers, the final labels are byte-identical for any
// shard count, any backend/thread count, any schedule seed, and any
// DataCommMode; tests/shard_test.cpp pins the whole matrix. Pick-less on
// alternating iterations breaks the period-2 label swaps synchronous LPA
// is prone to (the async engine's PL4 guards the same failure mode).
#pragma once

#include <cstdint>
#include <optional>

#include "comm/exchange.hpp"
#include "core/report.hpp"
#include "graph/partition.hpp"
#include "hash/probing.hpp"
#include "observe/trace.hpp"
#include "simt/grid.hpp"

namespace nulpa {

struct ShardedConfig {
  std::uint32_t shards = 1;                     // --shards
  ShardMode shard_mode = ShardMode::kContiguous;  // --shard-mode
  // Message encoding: nullopt auto-picks per message by density
  // (comm::pick_comm_mode); a forced mode pins every message — the bench
  // pins kFullVector as the naive-broadcast reference.   --comm-mode
  std::optional<comm::DataCommMode> comm_mode;

  int max_iterations = 20;
  double tolerance = 0.05;
  // Pick-less (adopt only smaller labels) every Nth iteration, from
  // iteration 0; 0 disables. Synchronous swaps have period 2, so the
  // default guards every other sweep.
  int pick_less_every = 2;
  Probing probing = Probing::kQuadDouble;

  // Per-shard session execution (backend/threads/determinism/seed — the
  // same surface as NuLpaConfig::exec; the kernel itself is barrier-free).
  simt::ExecPolicy exec{};
  simt::LaunchConfig launch{.block_dim = 256, .resident_blocks = 8,
                            .shared_bytes = 0, .stack_bytes = 1 << 13};

  [[nodiscard]] ShardedConfig with_shards(std::uint32_t n) const {
    ShardedConfig c = *this;
    c.shards = n;
    return c;
  }
  [[nodiscard]] ShardedConfig with_shard_mode(ShardMode m) const {
    ShardedConfig c = *this;
    c.shard_mode = m;
    return c;
  }
  [[nodiscard]] ShardedConfig with_comm_mode(
      std::optional<comm::DataCommMode> m) const {
    ShardedConfig c = *this;
    c.comm_mode = m;
    return c;
  }
  [[nodiscard]] ShardedConfig with_max_iterations(int n) const {
    ShardedConfig c = *this;
    c.max_iterations = n;
    return c;
  }
  [[nodiscard]] ShardedConfig with_tolerance(double tau) const {
    ShardedConfig c = *this;
    c.tolerance = tau;
    return c;
  }
  [[nodiscard]] ShardedConfig with_pick_less(int every) const {
    ShardedConfig c = *this;
    c.pick_less_every = every;
    return c;
  }
  [[nodiscard]] ShardedConfig with_exec(simt::ExecPolicy p) const {
    ShardedConfig c = *this;
    c.exec = p;
    return c;
  }
};

/// Shards the graph per cfg and runs to convergence. The report's labels
/// are global (gathered from each shard's masters); counters are the
/// merged per-shard session counters plus the comm-layer counters
/// (exchanged_labels / exchange_bytes / full_broadcast_labels_saved /
/// mirror_updates).
RunReport sharded_lpa(const Graph& g, const ShardedConfig& cfg,
                      observe::Tracer* tracer = nullptr);

/// Same, over a caller-built plan (must match `g`); cfg.shards/shard_mode
/// are ignored. Lets benches/tests reuse one plan across runs and assert
/// against its compute_partition_stats.
RunReport sharded_lpa(const Graph& g, const ShardPlan& plan,
                      const ShardedConfig& cfg,
                      observe::Tracer* tracer = nullptr);

}  // namespace nulpa
