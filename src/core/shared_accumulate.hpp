// The shared (multi-lane) path of Algorithm 2: several lanes of a block
// accumulate into one vertex's hashtable concurrently, so slot claims go
// through atomicCAS and weight updates through atomicAdd. Probe sequences
// are identical to the unshared path (hash/probing.hpp), which tests verify.
#pragma once

#include "hash/probing.hpp"
#include "hash/vertex_table.hpp"
#include "simt/grid.hpp"
#include "util/bits.hpp"

namespace nulpa {

/// hashtableAccumulate, shared scenario (Algorithm 2 lines 11-16).
/// Returns true on success; falls back to an exhaustive CAS scan after
/// kMaxRetries so the operation never fails while distinct keys <= p1.
template <typename V>
bool shared_accumulate(simt::Lane& lane, Vertex* keys, V* values,
                       std::uint32_t p1, std::uint32_t p2, Vertex k, V v,
                       Probing probing, HashStats* stats) {
  if (stats) ++stats->inserts;
  std::uint64_t i = k;
  std::uint64_t di = initial_step(probing, k, p1, p2);
  for (int t = 0; t < kMaxRetries; ++t) {
    const auto s = static_cast<std::uint32_t>(i % p1);
    lane.track_load(keys[s]);
    if (keys[s] == k || keys[s] == kEmptyKey) {
      const Vertex old = lane.atomic_cas(keys[s], kEmptyKey, k);
      if (old == kEmptyKey || old == k) {
        lane.atomic_add(values[s], v);
        return true;
      }
    }
    if (stats) ++stats->probes;
    i += di;
    di = next_step(probing, di, k, p2);
  }
  // Exhaustive rescue scan (see hash/probing.hpp on why this exists).
  if (stats) ++stats->fallbacks;
  for (std::uint32_t s = 0; s < p1; ++s) {
    lane.track_load(keys[s]);
    if (keys[s] == k || keys[s] == kEmptyKey) {
      const Vertex old = lane.atomic_cas(keys[s], kEmptyKey, k);
      if (old == kEmptyKey || old == k) {
        lane.atomic_add(values[s], v);
        return true;
      }
    }
  }
  return false;
}

}  // namespace nulpa
