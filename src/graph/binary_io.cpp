#include "graph/binary_io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace nulpa {

namespace {

constexpr char kMagic[8] = {'N', 'U', 'L', 'P', 'A', 'C', 'S', 'R'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void write_array(std::ostream& out, const T* data, std::size_t count) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(T)));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("binary CSR: truncated header");
  return value;
}

template <typename T>
std::vector<T> read_array(std::istream& in, std::size_t count) {
  std::vector<T> data(count);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (!in) throw std::runtime_error("binary CSR: truncated payload");
  return data;
}

}  // namespace

void write_binary_csr(std::ostream& out, const Graph& g) {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, g.num_vertices());
  write_pod(out, g.num_edges());
  write_array(out, g.offsets().data(), g.offsets().size());
  write_array(out, g.targets().data(), g.targets().size());
  write_array(out, g.weights().data(), g.weights().size());
  if (!out) throw std::runtime_error("binary CSR: write failed");
}

void write_binary_csr_file(const std::string& path, const Graph& g) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  write_binary_csr(out, g);
}

Graph read_binary_csr(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("binary CSR: bad magic");
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion) {
    throw std::runtime_error("binary CSR: unsupported version " +
                             std::to_string(version));
  }
  const auto n = read_pod<Vertex>(in);
  const auto m = read_pod<EdgeIndex>(in);
  auto offsets = read_array<EdgeIndex>(in, static_cast<std::size_t>(n) + 1);
  auto targets = read_array<Vertex>(in, m);
  auto weights = read_array<Weight>(in, m);
  Graph g(std::move(offsets), std::move(targets), std::move(weights));
  if (!g.is_well_formed()) {
    throw std::runtime_error("binary CSR: validation failed");
  }
  return g;
}

Graph read_binary_csr_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open: " + path);
  return read_binary_csr(in);
}

}  // namespace nulpa
