// Binary CSR serialization: loading a multi-hundred-megabyte Matrix Market
// file dominates end-to-end time for the paper's workloads, so production
// pipelines convert once and reload the raw CSR arrays. Format:
//   magic "NULPACSR" | u32 version | u32 |V| | u64 |E| |
//   offsets (|V|+1 x u64) | targets (|E| x u32) | weights (|E| x f32)
// Little-endian, no padding. Version bumps on any layout change.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"

namespace nulpa {

void write_binary_csr(std::ostream& out, const Graph& g);
void write_binary_csr_file(const std::string& path, const Graph& g);

/// Throws std::runtime_error on bad magic, version, truncation, or a CSR
/// that fails validation.
Graph read_binary_csr(std::istream& in);
Graph read_binary_csr_file(const std::string& path);

}  // namespace nulpa
