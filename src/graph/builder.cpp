#include "graph/builder.hpp"

#include <algorithm>
#include <stdexcept>

namespace nulpa {

Graph GraphBuilder::build(const Options& opts) const {
  std::vector<EdgeTriple> arcs;
  arcs.reserve(edges_.size() * (opts.symmetrize ? 2 : 1));
  for (const EdgeTriple& e : edges_) {
    if (e.u >= n_ || e.v >= n_) {
      throw std::out_of_range("GraphBuilder: endpoint exceeds num_vertices");
    }
    if (opts.drop_self_loops && e.u == e.v) continue;
    arcs.push_back(e);
    if (opts.symmetrize && e.u != e.v) arcs.push_back({e.v, e.u, e.w});
  }

  std::sort(arcs.begin(), arcs.end(), [](const EdgeTriple& a,
                                         const EdgeTriple& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });

  if (opts.combine_duplicates && !arcs.empty()) {
    std::size_t out = 0;
    for (std::size_t i = 1; i < arcs.size(); ++i) {
      if (arcs[i].u == arcs[out].u && arcs[i].v == arcs[out].v) {
        arcs[out].w += arcs[i].w;
      } else {
        arcs[++out] = arcs[i];
      }
    }
    arcs.resize(out + 1);
  }

  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n_) + 1, 0);
  for (const EdgeTriple& a : arcs) ++offsets[a.u + 1];
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<Vertex> targets(arcs.size());
  std::vector<Weight> weights(arcs.size());
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    targets[i] = arcs[i].v;
    weights[i] = arcs[i].w;
  }
  return Graph(std::move(offsets), std::move(targets), std::move(weights));
}

}  // namespace nulpa
