// COO -> CSR construction with the clean-up steps the paper applies to its
// SuiteSparse inputs: drop self-loops, symmetrize (add reverse edges),
// de-duplicate parallel edges (summing weights), default weight 1.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace nulpa {

struct EdgeTriple {
  Vertex u;
  Vertex v;
  Weight w;
};

class GraphBuilder {
 public:
  /// `num_vertices == 0` lets the builder infer |V| from the max endpoint.
  explicit GraphBuilder(Vertex num_vertices = 0) : n_(num_vertices) {}

  GraphBuilder& reserve(std::size_t edges) {
    edges_.reserve(edges);
    return *this;
  }

  /// Records an undirected edge; the reverse arc is added at build time.
  GraphBuilder& add_edge(Vertex u, Vertex v, Weight w = 1.0f) {
    edges_.push_back({u, v, w});
    n_ = std::max(n_, std::max(u, v) + 1);
    return *this;
  }

  [[nodiscard]] std::size_t edge_count() const noexcept {
    return edges_.size();
  }

  struct Options {
    bool drop_self_loops = true;
    bool symmetrize = true;       // add (v, u) for every (u, v)
    bool combine_duplicates = true;  // sum weights of parallel edges
  };

  /// Sorts, symmetrizes, dedupes, and emits a CSR graph. The builder can be
  /// reused afterwards (its edge list is preserved).
  [[nodiscard]] Graph build(const Options& opts) const;
  [[nodiscard]] Graph build() const { return build(Options{}); }

 private:
  Vertex n_ = 0;
  std::vector<EdgeTriple> edges_;
};

}  // namespace nulpa
