#include "graph/csr.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nulpa {

Graph::Graph(std::vector<EdgeIndex> offsets, std::vector<Vertex> targets,
             std::vector<Weight> weights)
    : offsets_(std::move(offsets)),
      targets_(std::move(targets)),
      weights_(std::move(weights)) {
  if (offsets_.empty()) offsets_.push_back(0);
  if (offsets_.front() != 0 || offsets_.back() != targets_.size() ||
      targets_.size() != weights_.size()) {
    throw std::invalid_argument("Graph: inconsistent CSR arrays");
  }
}

double Graph::weighted_degree(Vertex v) const noexcept {
  double k = 0.0;
  for (const Weight w : weights_of(v)) k += w;
  return k;
}

double Graph::total_weight() const noexcept {
  double total = 0.0;
  for (const Weight w : weights_) total += w;
  return total / 2.0;
}

std::uint32_t Graph::max_degree() const noexcept {
  std::uint32_t best = 0;
  for (Vertex v = 0; v < num_vertices(); ++v) best = std::max(best, degree(v));
  return best;
}

bool Graph::is_symmetric() const {
  // For each arc (u, v, w), binary-search the reverse arc. Requires sorted
  // adjacency lists, which the builder guarantees.
  for (Vertex u = 0; u < num_vertices(); ++u) {
    const auto nbrs = neighbors(u);
    const auto wts = weights_of(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const Vertex v = nbrs[k];
      const auto rn = neighbors(v);
      const auto rw = weights_of(v);
      const auto it = std::lower_bound(rn.begin(), rn.end(), u);
      if (it == rn.end() || *it != u) return false;
      const auto pos = static_cast<std::size_t>(it - rn.begin());
      if (rw[pos] != wts[k]) return false;
    }
  }
  return true;
}

bool Graph::is_well_formed() const {
  for (std::size_t i = 0; i + 1 < offsets_.size(); ++i) {
    if (offsets_[i] > offsets_[i + 1]) return false;
  }
  const Vertex n = num_vertices();
  for (const Vertex t : targets_) {
    if (t >= n) return false;
  }
  for (const Weight w : weights_) {
    if (!std::isfinite(w) || w < 0) return false;
  }
  return true;
}

}  // namespace nulpa
