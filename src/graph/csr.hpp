// Compressed Sparse Row graph — the storage format every algorithm in this
// library consumes. Vertices are 32-bit ids and edge weights 32-bit floats,
// matching the configuration in Section 5.1.2 of the paper.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace nulpa {

using Vertex = std::uint32_t;
using EdgeIndex = std::uint64_t;
using Weight = float;

/// An undirected weighted graph in CSR form. Every undirected edge {u, v}
/// is stored twice (u->v and v->u), so `num_edges()` counts directed arcs —
/// the same convention as the paper's |E| "after adding reverse edges".
class Graph {
 public:
  Graph() = default;
  Graph(std::vector<EdgeIndex> offsets, std::vector<Vertex> targets,
        std::vector<Weight> weights);

  [[nodiscard]] Vertex num_vertices() const noexcept {
    return offsets_.empty() ? 0 : static_cast<Vertex>(offsets_.size() - 1);
  }
  [[nodiscard]] EdgeIndex num_edges() const noexcept {
    return static_cast<EdgeIndex>(targets_.size());
  }

  [[nodiscard]] EdgeIndex offset(Vertex v) const noexcept {
    return offsets_[v];
  }
  [[nodiscard]] std::uint32_t degree(Vertex v) const noexcept {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Neighbour ids of `v` (parallel to `weights_of(v)`).
  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const noexcept {
    return {targets_.data() + offsets_[v], degree(v)};
  }
  [[nodiscard]] std::span<const Weight> weights_of(Vertex v) const noexcept {
    return {weights_.data() + offsets_[v], degree(v)};
  }

  [[nodiscard]] std::span<const EdgeIndex> offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] std::span<const Vertex> targets() const noexcept {
    return targets_;
  }
  [[nodiscard]] std::span<const Weight> weights() const noexcept {
    return weights_;
  }

  /// Sum of all edge weights incident to `v` (the weighted degree K_i).
  [[nodiscard]] double weighted_degree(Vertex v) const noexcept;

  /// Total undirected edge weight m = sum_{ij} w_ij / 2.
  [[nodiscard]] double total_weight() const noexcept;

  [[nodiscard]] double average_degree() const noexcept {
    return num_vertices() == 0
               ? 0.0
               : static_cast<double>(num_edges()) / num_vertices();
  }

  [[nodiscard]] std::uint32_t max_degree() const noexcept;

  /// True when every arc (u, v) has a matching reverse arc (v, u) with the
  /// same weight — i.e. the CSR really encodes an undirected graph.
  [[nodiscard]] bool is_symmetric() const;

  /// True when offsets are monotone, targets in range, and weights finite.
  [[nodiscard]] bool is_well_formed() const;

 private:
  std::vector<EdgeIndex> offsets_{0};  // size |V|+1
  std::vector<Vertex> targets_;        // size |E| (directed arcs)
  std::vector<Weight> weights_;        // size |E|
};

}  // namespace nulpa
