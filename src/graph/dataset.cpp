#include "graph/dataset.hpp"

#include <cmath>

#include "graph/generators.hpp"
#include "util/bits.hpp"

namespace nulpa {

const std::vector<DatasetSpec>& dataset_specs() {
  // Scales roughly track the relative |V| of Table 1 (indochina 7.4M ...
  // kmer_V1r 214M), compressed so the largest instance stays laptop-sized.
  static const std::vector<DatasetSpec> specs = {
      {"indochina-2004", DatasetCategory::kWeb, 1.0},
      {"uk-2002", DatasetCategory::kWeb, 1.6},
      {"arabic-2005", DatasetCategory::kWeb, 1.8},
      {"uk-2005", DatasetCategory::kWeb, 2.4},
      {"webbase-2001", DatasetCategory::kWeb, 4.0},
      {"it-2004", DatasetCategory::kWeb, 2.5},
      {"sk-2005", DatasetCategory::kWeb, 2.8},
      {"com-LiveJournal", DatasetCategory::kSocial, 0.8},
      {"com-Orkut", DatasetCategory::kSocial, 0.6},
      {"asia_osm", DatasetCategory::kRoad, 1.4},
      {"europe_osm", DatasetCategory::kRoad, 3.0},
      {"kmer_A2a", DatasetCategory::kKmer, 5.0},
      {"kmer_V1r", DatasetCategory::kKmer, 6.0},
  };
  return specs;
}

DatasetInstance make_dataset(const DatasetSpec& spec, Vertex base_vertices,
                             std::uint64_t seed) {
  const auto n = static_cast<Vertex>(
      std::max(64.0, base_vertices * spec.scale));
  // Vary the seed per dataset so the suite is not 13 copies of one graph.
  const std::uint64_t s = seed * 0x9e3779b97f4a7c15ULL +
                          std::hash<std::string>{}(spec.name);
  switch (spec.category) {
    case DatasetCategory::kWeb:
      // Table 1 web crawls average degree ~8.6-41 with ~90% host-local
      // links: out-degree 8, strong intra-host locality.
      return {spec, generate_web(n, 8, 0.85, s)};
    case DatasetCategory::kSocial:
      // Social networks: larger, fuzzier communities and higher degree
      // (com-Orkut averages 76; scaled to keep the suite fast). Locality
      // 0.85 with ~48-member groups is the sweet spot where asynchronous
      // LPA still resolves the structure but with visibly lower modularity
      // than on web crawls — the Figure 7c pattern.
      return {spec, generate_web(n, 12, 0.85, s, 48, /*hub_bias=*/0.35)};
    case DatasetCategory::kRoad: {
      const auto side = static_cast<Vertex>(std::sqrt(static_cast<double>(n)));
      return {spec, generate_road(side, side, 0.0, s)};
    }
    case DatasetCategory::kKmer:
      return {spec, generate_kmer(n, 0.03, s)};
  }
  return {spec, Graph()};
}

std::vector<DatasetInstance> make_dataset_suite(Vertex base_vertices,
                                                std::uint64_t seed) {
  std::vector<DatasetInstance> out;
  out.reserve(dataset_specs().size());
  for (const DatasetSpec& spec : dataset_specs()) {
    out.push_back(make_dataset(spec, base_vertices, seed));
  }
  return out;
}

std::vector<DatasetInstance> make_large_subset(Vertex base_vertices,
                                               std::uint64_t seed) {
  // The paper's tuning experiments use the large web graphs plus a social
  // network; mirror that with the four biggest-scale specs.
  std::vector<DatasetInstance> out;
  for (const DatasetSpec& spec : dataset_specs()) {
    if (spec.name == "webbase-2001" || spec.name == "it-2004" ||
        spec.name == "uk-2005" || spec.name == "com-Orkut") {
      out.push_back(make_dataset(spec, base_vertices, seed));
    }
  }
  return out;
}

std::string to_string(DatasetCategory c) {
  switch (c) {
    case DatasetCategory::kWeb:
      return "web";
    case DatasetCategory::kSocial:
      return "social";
    case DatasetCategory::kRoad:
      return "road";
    case DatasetCategory::kKmer:
      return "kmer";
  }
  return "?";
}

}  // namespace nulpa
