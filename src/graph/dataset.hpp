// Scaled-down synthetic analogues of the 13 SuiteSparse graphs in Table 1.
// Every benchmark sweeps this suite, so relative comparisons land on the
// same workload mix the paper used: 7 web crawls, 2 social networks, 2 road
// networks, and 2 protein k-mer graphs.
#pragma once

#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace nulpa {

enum class DatasetCategory { kWeb, kSocial, kRoad, kKmer };

struct DatasetSpec {
  std::string name;          // name of the SuiteSparse graph it stands in for
  DatasetCategory category;
  double scale = 1.0;        // relative size within the suite
};

struct DatasetInstance {
  DatasetSpec spec;
  Graph graph;
};

/// The 13 dataset specs mirroring Table 1, in the paper's order.
const std::vector<DatasetSpec>& dataset_specs();

/// Builds one synthetic analogue. `base_vertices` controls the overall suite
/// size (each instance is base_vertices * spec.scale vertices, category
/// average degree per Table 1).
DatasetInstance make_dataset(const DatasetSpec& spec, Vertex base_vertices,
                             std::uint64_t seed);

/// Builds the whole suite. `base_vertices` defaults small enough that the
/// full 13-graph sweep runs in seconds on a laptop.
std::vector<DatasetInstance> make_dataset_suite(Vertex base_vertices = 4000,
                                                std::uint64_t seed = 42);

/// The "large graphs" subset the paper's tuning figures (Figs. 2, 4-6) use.
std::vector<DatasetInstance> make_large_subset(Vertex base_vertices = 4000,
                                               std::uint64_t seed = 42);

std::string to_string(DatasetCategory c);

}  // namespace nulpa
