#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/builder.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace nulpa {

Graph generate_erdos_renyi(Vertex n, double avg_degree, std::uint64_t seed) {
  if (n == 0) return Graph();
  Xoshiro256 rng(seed);
  // Sample the expected number of undirected edges and draw endpoints
  // uniformly. For sparse graphs this matches G(n, p) closely and is O(|E|).
  const auto edges = static_cast<EdgeIndex>(avg_degree * n / 2.0);
  GraphBuilder builder(n);
  builder.reserve(edges);
  for (EdgeIndex e = 0; e < edges; ++e) {
    const auto u = static_cast<Vertex>(rng.next_bounded(n));
    const auto v = static_cast<Vertex>(rng.next_bounded(n));
    if (u != v) builder.add_edge(u, v);
  }
  return builder.build();
}

Graph generate_rmat(Vertex n_pow2, EdgeIndex undirected_edges,
                    std::uint64_t seed, const RmatParams& params) {
  if (!is_pow2(n_pow2)) {
    throw std::invalid_argument("generate_rmat: n must be a power of two");
  }
  const double d = 1.0 - params.a - params.b - params.c;
  if (d < 0.0) throw std::invalid_argument("generate_rmat: a+b+c must be <= 1");

  Xoshiro256 rng(seed);
  const int levels = std::bit_width(static_cast<std::uint64_t>(n_pow2)) - 1;
  GraphBuilder builder(n_pow2);
  builder.reserve(undirected_edges);
  for (EdgeIndex e = 0; e < undirected_edges; ++e) {
    Vertex u = 0, v = 0;
    for (int level = 0; level < levels; ++level) {
      const double r = rng.next_double();
      u <<= 1;
      v <<= 1;
      if (r < params.a) {
        // top-left quadrant
      } else if (r < params.a + params.b) {
        v |= 1;
      } else if (r < params.a + params.b + params.c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u != v) builder.add_edge(u, v);
  }
  return builder.build();
}

Graph generate_web(Vertex n, std::uint32_t out_degree, double intra_host_prob,
                   std::uint64_t seed, std::uint32_t avg_host_size,
                   double hub_bias) {
  if (n == 0) return Graph();
  Xoshiro256 rng(seed);

  // Carve [0, n) into hosts: geometric sizes around avg_host_size, stored
  // as the host id of every page. Contiguous ids mirror crawl order, where
  // a host's pages are fetched together.
  std::vector<Vertex> host_begin;  // first page of each host
  for (Vertex v = 0; v < n;) {
    host_begin.push_back(v);
    // Geometric-ish size in [avg/4, ~2*avg]; at least 2 so intra links exist.
    const auto span = static_cast<Vertex>(
        2 + avg_host_size / 4 + rng.next_bounded(std::max(1u, 7 * avg_host_size / 4)));
    v = (v > n - span) ? n : v + span;  // guard against overflow at the tail
  }
  host_begin.push_back(n);  // sentinel

  GraphBuilder builder(n);
  builder.reserve(static_cast<std::size_t>(n) * out_degree);
  // Cross-host targets follow preferential attachment (a page appears in
  // `popular` once per cross-host link it has), reproducing the heavy
  // in-degree tail of real crawls — a few hub pages of very high degree,
  // which is what makes the two-kernel split of Section 4.3 matter.
  std::vector<Vertex> popular;
  popular.reserve(static_cast<std::size_t>(n) * out_degree / 4);
  std::size_t h = 0;
  for (Vertex v = 0; v < n; ++v) {
    while (host_begin[h + 1] <= v) ++h;
    const Vertex lo = host_begin[h];
    const Vertex hi = host_begin[h + 1];
    const Vertex host_size = hi - lo;
    for (std::uint32_t k = 0; k < out_degree; ++k) {
      Vertex target;
      if (host_size > 1 && rng.next_bool(intra_host_prob)) {
        target = lo + static_cast<Vertex>(rng.next_bounded(host_size));
      } else if (v > 0) {
        // Cross-host link to an earlier page: mostly degree-
        // proportional (hubs), occasionally uniform (fresh discovery).
        if (!popular.empty() && rng.next_bool(hub_bias)) {
          target = popular[rng.next_bounded(popular.size())];
        } else {
          target = static_cast<Vertex>(rng.next_bounded(v));
        }
        popular.push_back(target);
        popular.push_back(v);
      } else {
        continue;
      }
      if (target != v) builder.add_edge(v, target);
    }
  }
  return builder.build();
}

Graph generate_road(Vertex width, Vertex height, double extra_edge_prob,
                    std::uint64_t seed) {
  const std::uint64_t n64 = static_cast<std::uint64_t>(width) * height;
  if (n64 > 0xFFFFFFFFull) {
    throw std::invalid_argument("generate_road: grid too large for 32-bit ids");
  }
  const auto n = static_cast<Vertex>(n64);
  if (n == 0) return Graph();
  Xoshiro256 rng(seed);
  GraphBuilder builder(n);
  auto id = [width](Vertex x, Vertex y) { return y * width + x; };
  // A road network is close to a sparse planar subgraph: keep each lattice
  // segment with probability tuned so the average degree lands near the
  // 2.1 of asia_osm/europe_osm (arcs per vertex). Each kept segment adds 2
  // arcs, so keep_prob ~ 2.1 / (2 * 2 segments per vertex).
  const double keep_prob = 0.525 + extra_edge_prob;
  for (Vertex y = 0; y < height; ++y) {
    for (Vertex x = 0; x < width; ++x) {
      if (x + 1 < width && rng.next_bool(keep_prob)) {
        builder.add_edge(id(x, y), id(x + 1, y));
      }
      if (y + 1 < height && rng.next_bool(keep_prob)) {
        builder.add_edge(id(x, y), id(x, y + 1));
      }
    }
  }
  return builder.build();
}

Graph generate_kmer(Vertex n, double branch_prob, std::uint64_t seed) {
  if (n == 0) return Graph();
  Xoshiro256 rng(seed);
  GraphBuilder builder(n);
  // Chains of successive k-mers with occasional branch points: walk the
  // vertex ids, linking i -> i+1 unless a chain break occurs; at branch
  // points attach a link to a random earlier vertex (a shared k-mer).
  const double break_prob = 0.045;  // mean chain length ~ 22, like GenBank
  for (Vertex v = 0; v + 1 < n; ++v) {
    if (!rng.next_bool(break_prob)) builder.add_edge(v, v + 1);
    if (v > 0 && rng.next_bool(branch_prob)) {
      const auto other = static_cast<Vertex>(rng.next_bounded(v));
      if (other != v) builder.add_edge(v, other);
    }
  }
  return builder.build();
}

PlantedPartition generate_planted_partition(Vertex n, Vertex communities,
                                            double avg_degree_in,
                                            double avg_degree_out,
                                            std::uint64_t seed) {
  if (communities == 0 || n < communities) {
    throw std::invalid_argument("generate_planted_partition: bad sizes");
  }
  Xoshiro256 rng(seed);
  PlantedPartition result;
  result.ground_truth.resize(n);
  for (Vertex v = 0; v < n; ++v) result.ground_truth[v] = v % communities;

  std::vector<std::vector<Vertex>> members(communities);
  for (Vertex v = 0; v < n; ++v) members[v % communities].push_back(v);

  GraphBuilder builder(n);
  // Intra-community edges: per community, sample expected count.
  for (Vertex c = 0; c < communities; ++c) {
    const auto& m = members[c];
    if (m.size() < 2) continue;
    const auto count =
        static_cast<EdgeIndex>(avg_degree_in * static_cast<double>(m.size()) / 2.0);
    for (EdgeIndex e = 0; e < count; ++e) {
      const Vertex u = m[rng.next_bounded(m.size())];
      const Vertex v = m[rng.next_bounded(m.size())];
      if (u != v) builder.add_edge(u, v);
    }
  }
  // Inter-community edges.
  const auto inter =
      static_cast<EdgeIndex>(avg_degree_out * static_cast<double>(n) / 2.0);
  for (EdgeIndex e = 0; e < inter; ++e) {
    const auto u = static_cast<Vertex>(rng.next_bounded(n));
    const auto v = static_cast<Vertex>(rng.next_bounded(n));
    if (u != v && result.ground_truth[u] != result.ground_truth[v]) {
      builder.add_edge(u, v);
    }
  }
  result.graph = builder.build();
  return result;
}

Graph generate_ring_of_cliques(Vertex cliques, Vertex clique_size) {
  if (cliques == 0 || clique_size < 2) {
    throw std::invalid_argument("generate_ring_of_cliques: bad sizes");
  }
  GraphBuilder builder(cliques * clique_size);
  for (Vertex c = 0; c < cliques; ++c) {
    const Vertex base = c * clique_size;
    for (Vertex i = 0; i < clique_size; ++i) {
      for (Vertex j = i + 1; j < clique_size; ++j) {
        builder.add_edge(base + i, base + j);
      }
    }
    // Bridge from this clique's last vertex to the next clique's first.
    const Vertex next_base = ((c + 1) % cliques) * clique_size;
    if (cliques > 1) builder.add_edge(base + clique_size - 1, next_base);
  }
  return builder.build();
}

Graph generate_clique(Vertex n) {
  GraphBuilder builder(n);
  for (Vertex i = 0; i < n; ++i) {
    for (Vertex j = i + 1; j < n; ++j) builder.add_edge(i, j);
  }
  return builder.build();
}

Graph generate_path(Vertex n) {
  GraphBuilder builder(n);
  for (Vertex i = 0; i + 1 < n; ++i) builder.add_edge(i, i + 1);
  return builder.build();
}

Graph generate_barabasi_albert(Vertex n, std::uint32_t m, std::uint64_t seed) {
  if (n == 0) return Graph();
  Xoshiro256 rng(seed);
  GraphBuilder builder(n);
  // Target list with repetition implements preferential attachment: a
  // vertex appears once per incident edge, so sampling uniformly from the
  // list is degree-proportional sampling.
  std::vector<Vertex> targets;
  const Vertex bootstrap = std::min<Vertex>(n, m + 1);
  for (Vertex v = 1; v < bootstrap; ++v) {
    builder.add_edge(v, v - 1);
    targets.push_back(v);
    targets.push_back(v - 1);
  }
  for (Vertex v = bootstrap; v < n; ++v) {
    for (std::uint32_t k = 0; k < m; ++k) {
      const Vertex t = targets[rng.next_bounded(targets.size())];
      if (t != v) {
        builder.add_edge(v, t);
        targets.push_back(v);
        targets.push_back(t);
      }
    }
  }
  return builder.build();
}

}  // namespace nulpa
