// Synthetic graph generators standing in for the paper's SuiteSparse inputs
// (Table 1). One generator per dataset category; each matches the category's
// structural signature (degree distribution, locality, community structure)
// at laptop scale. See DESIGN.md for the substitution rationale.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace nulpa {

/// G(n, p)-style random graph specified by expected average degree.
Graph generate_erdos_renyi(Vertex n, double avg_degree, std::uint64_t seed);

/// Recursive-matrix (R-MAT) generator; the default (a,b,c,d) produces the
/// heavy-tailed degree distributions of social networks such as com-Orkut.
struct RmatParams {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;  // d = 1 - a - b - c
};
Graph generate_rmat(Vertex n_pow2, EdgeIndex undirected_edges,
                    std::uint64_t seed, const RmatParams& params = {});

/// Host-structured web crawl. Pages are grouped into hosts of geometric
/// size (contiguous id ranges, matching crawl order); each page links
/// within its host with probability `intra_host_prob` and to a random
/// earlier page otherwise. This reproduces the property that makes the LAW
/// crawls LPA-friendly: the overwhelming majority of links are host-local,
/// so modularity of the natural clustering is high (~0.9).
/// `hub_bias` is the fraction of cross-host links drawn preferentially
/// (degree-proportional) instead of uniformly; it controls how heavy the
/// in-degree tail gets.
Graph generate_web(Vertex n, std::uint32_t out_degree, double intra_host_prob,
                   std::uint64_t seed, std::uint32_t avg_host_size = 40,
                   double hub_bias = 0.85);

/// Road network: a jittered 2-D lattice where each junction keeps only a
/// couple of incident segments, giving the ~2.1 average degree of
/// asia_osm / europe_osm.
Graph generate_road(Vertex width, Vertex height, double extra_edge_prob,
                    std::uint64_t seed);

/// Protein k-mer graph: long chains (k-mer successions) with sparse branch
/// points, matching the ~2.1 average degree and huge community counts of
/// kmer_A2a / kmer_V1r.
Graph generate_kmer(Vertex n, double branch_prob, std::uint64_t seed);

/// Planted-partition (stochastic block model): `communities` equal-sized
/// groups with intra-/inter-community edge probabilities derived from
/// `avg_degree_in` / `avg_degree_out`. Used as ground truth for quality
/// tests (NMI) because the true membership is known.
struct PlantedPartition {
  Graph graph;
  std::vector<Vertex> ground_truth;  // community of each vertex
};
PlantedPartition generate_planted_partition(Vertex n, Vertex communities,
                                            double avg_degree_in,
                                            double avg_degree_out,
                                            std::uint64_t seed);

/// Ring of `k`-cliques joined by single bridge edges — the classic
/// community-detection stress test with a known optimal clustering.
Graph generate_ring_of_cliques(Vertex cliques, Vertex clique_size);

/// Complete graph on n vertices (unit weights).
Graph generate_clique(Vertex n);

/// Simple path 0-1-2-...-(n-1).
Graph generate_path(Vertex n);

/// Barabasi–Albert preferential attachment with `m` edges per new vertex.
Graph generate_barabasi_albert(Vertex n, std::uint32_t m, std::uint64_t seed);

}  // namespace nulpa
