#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graph/builder.hpp"

namespace nulpa {

namespace {

std::ifstream open_or_throw(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open file: " + path);
  return in;
}

}  // namespace

Graph read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || !line.starts_with("%%MatrixMarket")) {
    throw std::runtime_error("MatrixMarket: missing banner");
  }
  std::istringstream banner(line);
  std::string tag, object, format, field, symmetry;
  banner >> tag >> object >> format >> field >> symmetry;
  if (format != "coordinate") {
    throw std::runtime_error("MatrixMarket: only coordinate format supported");
  }
  const bool has_values = field == "real" || field == "integer";
  if (!has_values && field != "pattern") {
    throw std::runtime_error("MatrixMarket: unsupported field " + field);
  }

  // Skip comments, then read the size line.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::uint64_t rows = 0, cols = 0, entries = 0;
  {
    std::istringstream ss(line);
    if (!(ss >> rows >> cols >> entries)) {
      throw std::runtime_error("MatrixMarket: bad size line");
    }
  }
  if (rows != cols) {
    throw std::runtime_error("MatrixMarket: adjacency matrix must be square");
  }

  GraphBuilder builder(static_cast<Vertex>(rows));
  builder.reserve(entries);
  for (std::uint64_t i = 0; i < entries; ++i) {
    std::uint64_t u = 0, v = 0;
    double w = 1.0;
    if (!(in >> u >> v)) throw std::runtime_error("MatrixMarket: truncated");
    if (has_values && !(in >> w)) {
      throw std::runtime_error("MatrixMarket: missing value");
    }
    if (u == 0 || v == 0 || u > rows || v > rows) {
      throw std::runtime_error("MatrixMarket: index out of range");
    }
    builder.add_edge(static_cast<Vertex>(u - 1), static_cast<Vertex>(v - 1),
                     static_cast<Weight>(w));
  }
  return builder.build();
}

Graph read_matrix_market_file(const std::string& path) {
  auto in = open_or_throw(path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const Graph& g) {
  out << "%%MatrixMarket matrix coordinate real symmetric\n";
  std::uint64_t undirected = 0;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (const Vertex v : g.neighbors(u)) {
      if (u >= v) ++undirected;
    }
  }
  out << g.num_vertices() << ' ' << g.num_vertices() << ' ' << undirected
      << '\n';
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto wts = g.weights_of(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (u >= nbrs[k]) {
        out << (u + 1) << ' ' << (nbrs[k] + 1) << ' ' << wts[k] << '\n';
      }
    }
  }
}

void write_matrix_market_file(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open file for write: " + path);
  write_matrix_market(out, g);
}

Graph read_edge_list(std::istream& in) {
  GraphBuilder builder;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ss(line);
    std::uint64_t u = 0, v = 0;
    double w = 1.0;
    if (!(ss >> u >> v)) {
      throw std::runtime_error("edge list: malformed line: " + line);
    }
    ss >> w;  // optional weight
    builder.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v),
                     static_cast<Weight>(w));
  }
  return builder.build();
}

Graph read_edge_list_file(const std::string& path) {
  auto in = open_or_throw(path);
  return read_edge_list(in);
}

void write_edge_list(std::ostream& out, const Graph& g) {
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto wts = g.weights_of(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (u <= nbrs[k]) {
        out << u << ' ' << nbrs[k] << ' ' << wts[k] << '\n';
      }
    }
  }
}

}  // namespace nulpa
