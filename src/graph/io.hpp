// Matrix Market and whitespace edge-list readers/writers. The paper's inputs
// come from the SuiteSparse Matrix Collection, which distributes Matrix
// Market files; these routines let users run the library on the exact same
// files when they have them.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"

namespace nulpa {

/// Reads a Matrix Market coordinate file (`pattern` or `real`, `general` or
/// `symmetric`) as an undirected graph: self-loops dropped, reverse arcs
/// added, duplicates combined, missing weights defaulted to 1 — mirroring
/// Section 5.1.3. Throws std::runtime_error on malformed input.
Graph read_matrix_market(std::istream& in);
Graph read_matrix_market_file(const std::string& path);

/// Writes the graph as a symmetric real coordinate Matrix Market file.
/// Only the lower triangle (u >= v) is emitted.
void write_matrix_market(std::ostream& out, const Graph& g);
void write_matrix_market_file(const std::string& path, const Graph& g);

/// Reads `u v [w]` lines (0-based ids, '#'/'%' comments) as an undirected
/// graph with the same clean-up as the Matrix Market reader.
Graph read_edge_list(std::istream& in);
Graph read_edge_list_file(const std::string& path);

void write_edge_list(std::ostream& out, const Graph& g);

}  // namespace nulpa
