#include "graph/metis_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graph/builder.hpp"

namespace nulpa {

namespace {

/// Fetches the next non-comment line. Empty lines are legal vertex lines
/// (isolated vertices) but not a legal header, hence the flag.
bool next_content_line(std::istream& in, std::string& line,
                       bool allow_empty) {
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] == '%') continue;
    if (!line.empty() || allow_empty) return true;
  }
  return false;
}

}  // namespace

Graph read_metis(std::istream& in) {
  std::string line;
  if (!next_content_line(in, line, /*allow_empty=*/false)) {
    throw std::runtime_error("METIS: missing header");
  }
  std::istringstream header(line);
  std::uint64_t n = 0, m = 0;
  std::string fmt = "0";
  if (!(header >> n >> m)) throw std::runtime_error("METIS: bad header");
  header >> fmt;
  const bool edge_weights = fmt.size() >= 1 && fmt.back() == '1';
  if (fmt.size() >= 2 && fmt[fmt.size() - 2] == '1') {
    throw std::runtime_error("METIS: vertex weights not supported");
  }

  GraphBuilder builder(static_cast<Vertex>(n));
  builder.reserve(m);
  for (std::uint64_t u = 0; u < n; ++u) {
    if (!next_content_line(in, line, /*allow_empty=*/true)) {
      throw std::runtime_error("METIS: truncated at vertex " +
                               std::to_string(u + 1));
    }
    std::istringstream ss(line);
    std::uint64_t v = 0;
    while (ss >> v) {
      if (v == 0 || v > n) {
        throw std::runtime_error("METIS: neighbour id out of range");
      }
      double w = 1.0;
      if (edge_weights && !(ss >> w)) {
        throw std::runtime_error("METIS: missing edge weight");
      }
      // Each undirected edge appears in both endpoint lines; keep one.
      if (u < v - 1) {
        builder.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v - 1),
                         static_cast<Weight>(w));
      }
    }
  }
  return builder.build();
}

Graph read_metis_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open: " + path);
  return read_metis(in);
}

void write_metis(std::ostream& out, const Graph& g) {
  bool weighted = false;
  for (const Weight w : g.weights()) {
    if (w != 1.0f) {
      weighted = true;
      break;
    }
  }
  out << g.num_vertices() << ' ' << g.num_edges() / 2
      << (weighted ? " 001" : "") << '\n';
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto wts = g.weights_of(u);
    for (std::size_t e = 0; e < nbrs.size(); ++e) {
      if (e > 0) out << ' ';
      out << (nbrs[e] + 1);
      if (weighted) out << ' ' << wts[e];
    }
    out << '\n';
  }
}

void write_metis_file(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  write_metis(out, g);
}

}  // namespace nulpa
