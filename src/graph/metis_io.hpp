// METIS graph-file format (.graph) reader/writer. The paper's conclusion
// positions ν-LPA for graph partitioning; METIS format is the lingua franca
// of that ecosystem (METIS, KaHIP, PuLP, Mt-KaHyPar all speak it).
//
// Format: header "<#vertices> <#edges> [fmt]" where fmt 1 = edge weights;
// line i (1-based) lists vertex i's neighbours (1-based ids), optionally
// interleaved with weights. '%' starts a comment line.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"

namespace nulpa {

Graph read_metis(std::istream& in);
Graph read_metis_file(const std::string& path);

/// Writes with edge weights (fmt 001) when any weight differs from 1.
void write_metis(std::ostream& out, const Graph& g);
void write_metis_file(const std::string& path, const Graph& g);

}  // namespace nulpa
