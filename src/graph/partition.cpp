#include "graph/partition.hpp"

#include <algorithm>
#include <limits>

#include "util/rng.hpp"

namespace nulpa {

DegreePartition partition_by_degree(const Graph& g,
                                    std::uint32_t switch_degree) {
  DegreePartition p;
  const Vertex n = g.num_vertices();
  p.low.reserve(n);
  for (Vertex v = 0; v < n; ++v) {
    if (g.degree(v) < switch_degree) {
      p.low.push_back(v);
    } else {
      p.high.push_back(v);
    }
  }
  return p;
}

std::string_view shard_mode_name(ShardMode mode) noexcept {
  switch (mode) {
    case ShardMode::kContiguous: return "contiguous";
    case ShardMode::kHash: return "hash";
  }
  return "unknown";
}

bool shard_mode_from_name(std::string_view name, ShardMode& out) noexcept {
  if (name == "contiguous") {
    out = ShardMode::kContiguous;
    return true;
  }
  if (name == "hash") {
    out = ShardMode::kHash;
    return true;
  }
  return false;
}

namespace {

constexpr Vertex kNoLocal = std::numeric_limits<Vertex>::max();

/// Owner assignment. Contiguous mode balances *arcs*, not vertices: shard
/// boundaries are the points where the arc prefix sum crosses k/S of the
/// total, so a web graph's few heavy rows do not all land on one shard.
std::vector<std::uint32_t> assign_owners(const Graph& g,
                                         std::uint32_t num_shards,
                                         ShardMode mode) {
  const Vertex n = g.num_vertices();
  std::vector<std::uint32_t> owner(n, 0);
  if (num_shards <= 1) return owner;

  if (mode == ShardMode::kHash) {
    for (Vertex v = 0; v < n; ++v) {
      owner[v] = static_cast<std::uint32_t>(SplitMix64(v).next() % num_shards);
    }
    return owner;
  }

  // Contiguous: each vertex weighs degree+1 (the +1 keeps zero-degree
  // tails from collapsing onto the last shard).
  std::uint64_t total = 0;
  for (Vertex v = 0; v < n; ++v) total += g.degree(v) + 1;
  std::uint64_t seen = 0;
  std::uint32_t s = 0;
  for (Vertex v = 0; v < n; ++v) {
    // Advance the shard cursor while this vertex starts at or past the
    // next boundary; never past the last shard.
    while (s + 1 < num_shards &&
           seen * num_shards >= static_cast<std::uint64_t>(s + 1) * total) {
      ++s;
    }
    owner[v] = s;
    seen += g.degree(v) + 1;
  }
  return owner;
}

}  // namespace

ShardPlan make_shard_plan(const Graph& g, std::uint32_t num_shards,
                          ShardMode mode) {
  ShardPlan plan;
  plan.mode = mode;
  plan.num_shards = std::max<std::uint32_t>(num_shards, 1);
  const Vertex n = g.num_vertices();
  plan.owner = assign_owners(g, plan.num_shards, mode);
  plan.shards.resize(plan.num_shards);

  // Masters per shard, ascending global id.
  for (Vertex v = 0; v < n; ++v) {
    plan.shards[plan.owner[v]].local_to_global.push_back(v);
  }
  for (auto& sh : plan.shards) {
    sh.num_masters = static_cast<Vertex>(sh.local_to_global.size());
  }

  // Scratch global->local map, rebuilt per shard (kNoLocal = not present).
  std::vector<Vertex> to_local(n, kNoLocal);

  for (std::uint32_t s = 0; s < plan.num_shards; ++s) {
    ShardPlan::Shard& sh = plan.shards[s];
    for (Vertex l = 0; l < sh.num_masters; ++l) {
      to_local[sh.local_to_global[l]] = l;
    }

    // Mirrors: every distinct remote endpoint, sorted by global id so the
    // send/recv lists of both sides align without translation.
    std::vector<Vertex> mirrors;
    for (Vertex l = 0; l < sh.num_masters; ++l) {
      for (const Vertex u : g.neighbors(sh.local_to_global[l])) {
        if (plan.owner[u] != s && to_local[u] == kNoLocal) {
          to_local[u] = 0;  // mark seen; real id assigned after the sort
          mirrors.push_back(u);
        }
      }
    }
    std::sort(mirrors.begin(), mirrors.end());
    for (Vertex m = 0; m < static_cast<Vertex>(mirrors.size()); ++m) {
      to_local[mirrors[m]] = sh.num_masters + m;
      sh.local_to_global.push_back(mirrors[m]);
    }

    // Local CSR: full rows for masters, empty rows for mirrors.
    const Vertex locals = static_cast<Vertex>(sh.local_to_global.size());
    std::vector<EdgeIndex> offsets;
    offsets.reserve(locals + 1);
    offsets.push_back(0);
    std::vector<Vertex> targets;
    std::vector<Weight> weights;
    for (Vertex l = 0; l < sh.num_masters; ++l) {
      const Vertex v = sh.local_to_global[l];
      const auto nbrs = g.neighbors(v);
      const auto wts = g.weights_of(v);
      for (std::size_t e = 0; e < nbrs.size(); ++e) {
        targets.push_back(to_local[nbrs[e]]);
        weights.push_back(wts[e]);
      }
      offsets.push_back(targets.size());
    }
    for (Vertex m = sh.num_masters; m < locals; ++m) {
      offsets.push_back(targets.size());
    }
    sh.local = Graph(std::move(offsets), std::move(targets),
                     std::move(weights));

    // Mirror reverse adjacency (mirror index -> adjacent local masters),
    // built by counting then filling so the per-mirror lists stay in
    // ascending master order.
    const Vertex nm = sh.num_mirrors();
    sh.mirror_adj_offsets.assign(nm + 1, 0);
    for (Vertex l = 0; l < sh.num_masters; ++l) {
      for (const Vertex u : sh.local.neighbors(l)) {
        if (u >= sh.num_masters) {
          ++sh.mirror_adj_offsets[u - sh.num_masters + 1];
        }
      }
    }
    for (Vertex m = 0; m < nm; ++m) {
      sh.mirror_adj_offsets[m + 1] += sh.mirror_adj_offsets[m];
    }
    sh.mirror_adj.resize(sh.mirror_adj_offsets[nm]);
    std::vector<EdgeIndex> cursor(sh.mirror_adj_offsets.begin(),
                                  sh.mirror_adj_offsets.end() - 1);
    for (Vertex l = 0; l < sh.num_masters; ++l) {
      for (const Vertex u : sh.local.neighbors(l)) {
        if (u >= sh.num_masters) {
          sh.mirror_adj[cursor[u - sh.num_masters]++] = l;
        }
      }
    }

    // Receive lists: our mirrors grouped by owning shard. Mirrors are
    // globally sorted, so each per-peer list is ascending by global id.
    sh.recv_mirrors.assign(plan.num_shards, {});
    for (Vertex m = 0; m < nm; ++m) {
      const Vertex global = sh.local_to_global[sh.num_masters + m];
      sh.recv_mirrors[plan.owner[global]].push_back(sh.num_masters + m);
    }

    // Reset the scratch map for the next shard.
    for (const Vertex v : sh.local_to_global) to_local[v] = kNoLocal;
  }

  // Send lists, derived from the receivers so both sides are aligned by
  // construction: shard t mirrors global v of shard s at recv position i
  // => shard s sends master local(v) at position i.
  for (std::uint32_t s = 0; s < plan.num_shards; ++s) {
    plan.shards[s].send_masters.assign(plan.num_shards, {});
  }
  for (std::uint32_t t = 0; t < plan.num_shards; ++t) {
    const ShardPlan::Shard& receiver = plan.shards[t];
    for (std::uint32_t s = 0; s < plan.num_shards; ++s) {
      ShardPlan::Shard& sender = plan.shards[s];
      auto& out = sender.send_masters[t];
      out.reserve(receiver.recv_mirrors[s].size());
      for (const Vertex m : receiver.recv_mirrors[s]) {
        const Vertex global = receiver.local_to_global[m];
        // Masters are the ascending-global prefix of the sender's id
        // space, so the local id is the lower_bound position.
        const auto begin = sender.local_to_global.begin();
        const auto it = std::lower_bound(
            begin, begin + sender.num_masters, global);
        out.push_back(static_cast<Vertex>(it - begin));
      }
    }
  }
  return plan;
}

}  // namespace nulpa
