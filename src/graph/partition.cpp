#include "graph/partition.hpp"

namespace nulpa {

DegreePartition partition_by_degree(const Graph& g,
                                    std::uint32_t switch_degree) {
  DegreePartition p;
  const Vertex n = g.num_vertices();
  p.low.reserve(n);
  for (Vertex v = 0; v < n; ++v) {
    if (g.degree(v) < switch_degree) {
      p.low.push_back(v);
    } else {
      p.high.push_back(v);
    }
  }
  return p;
}

}  // namespace nulpa
