// Vertex partitioning, two independent axes:
//
//  * partition_by_degree — the paper's two-kernel split (Section 4.3):
//    vertices below the switch degree go to the thread-per-vertex kernel,
//    the rest to the block-per-vertex kernel.
//
//  * make_shard_plan — edge-cut sharding for multi-device execution: the
//    vertex set is split into N shards (contiguous edge-balanced ranges or
//    hashed ids), every vertex is *master* on exactly one shard, and each
//    shard materializes read-only *mirror* slots for the remote endpoints
//    of its masters' edges. The ShardPlan carries, per shard, a local CSR
//    (masters first, mirror rows empty), the local↔global id maps, and the
//    aligned per-peer send/receive lists the comm layer (src/comm) packs
//    its delta messages against — the Katana/Galois master/mirror scheme.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "graph/csr.hpp"

namespace nulpa {

struct DegreePartition {
  std::vector<Vertex> low;   // degree <  switch_degree
  std::vector<Vertex> high;  // degree >= switch_degree
};

/// Splits the vertex set by degree. Both lists preserve ascending id order,
/// which keeps warp assignments deterministic.
DegreePartition partition_by_degree(const Graph& g,
                                    std::uint32_t switch_degree);

/// How global vertex ids map onto shards.
enum class ShardMode : std::uint8_t {
  kContiguous,  // edge-balanced contiguous id ranges (locality-preserving)
  kHash,        // SplitMix64(id) % shards (load-spreading, locality-blind)
};

/// Wire/CLI name of a mode ("contiguous", "hash").
std::string_view shard_mode_name(ShardMode mode) noexcept;

/// Inverse of shard_mode_name. Returns false on an unknown name.
bool shard_mode_from_name(std::string_view name, ShardMode& out) noexcept;

/// An edge-cut sharding of one graph. Invariants (pinned by
/// tests/shard_test.cpp):
///
///  * every global vertex is master on exactly `owner[v]`, and the masters
///    of a shard appear in its local id space as [0, num_masters) in
///    ascending global order;
///  * mirrors occupy [num_masters, locals) in ascending global order, one
///    per distinct remote endpoint of the shard's master edges;
///  * the local CSR has one full adjacency row per master (targets remapped
///    to local ids, original edge order preserved) and an empty row per
///    mirror — a shard never owns a mirror's edges;
///  * shard s's send_masters[t] and shard t's recv_mirrors[s] have equal
///    length and are aligned index-by-index (both sorted by the mirrored
///    vertex's global id), so a packed message needs no id translation.
struct ShardPlan {
  struct Shard {
    Graph local;                          // masters + mirror stubs
    Vertex num_masters = 0;               // locals [0, num_masters) owned
    std::vector<Vertex> local_to_global;  // size = locals

    // Per peer shard t: local ids of *our* masters whose labels t mirrors.
    std::vector<std::vector<Vertex>> send_masters;
    // Per peer shard t: local ids of *our* mirrors owned by t, aligned
    // with t's send_masters[this shard].
    std::vector<std::vector<Vertex>> recv_mirrors;

    // Reverse adjacency mirror -> adjacent local masters (CSR over mirror
    // index m - num_masters): when a mirror's label updates at a barrier,
    // exactly these masters must re-enter the frontier.
    std::vector<EdgeIndex> mirror_adj_offsets;
    std::vector<Vertex> mirror_adj;

    [[nodiscard]] Vertex num_mirrors() const noexcept {
      return static_cast<Vertex>(local_to_global.size()) - num_masters;
    }
  };

  ShardMode mode = ShardMode::kContiguous;
  std::uint32_t num_shards = 1;
  std::vector<std::uint32_t> owner;  // global vertex -> owning shard
  std::vector<Shard> shards;
};

/// Builds the edge-cut sharding. `num_shards` is clamped to at least 1;
/// shards may be empty when num_shards exceeds the vertex count.
/// Deterministic: the same (graph, num_shards, mode) always yields the
/// same plan.
ShardPlan make_shard_plan(const Graph& g, std::uint32_t num_shards,
                          ShardMode mode = ShardMode::kContiguous);

}  // namespace nulpa
