// Degree-based vertex partitioning for the two-kernel strategy (Section 4.3):
// vertices below the switch degree go to the thread-per-vertex kernel, the
// rest to the block-per-vertex kernel.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace nulpa {

struct DegreePartition {
  std::vector<Vertex> low;   // degree <  switch_degree
  std::vector<Vertex> high;  // degree >= switch_degree
};

/// Splits the vertex set by degree. Both lists preserve ascending id order,
/// which keeps warp assignments deterministic.
DegreePartition partition_by_degree(const Graph& g,
                                    std::uint32_t switch_degree);

}  // namespace nulpa
