#include "graph/stats.hpp"

#include <algorithm>

namespace nulpa {

GraphStats compute_stats(const Graph& g) {
  GraphStats s;
  s.vertices = g.num_vertices();
  s.edges = g.num_edges();
  s.avg_degree = g.average_degree();
  s.max_degree = g.max_degree();
  s.total_weight = g.total_weight();
  return s;
}

PartitionStats compute_partition_stats(const Graph& g,
                                       const ShardPlan& plan) {
  PartitionStats s;
  s.shards = plan.num_shards;
  const Vertex n = g.num_vertices();
  for (Vertex v = 0; v < n; ++v) {
    for (const Vertex u : g.neighbors(v)) {
      if (plan.owner[v] != plan.owner[u]) ++s.cut_arcs;
    }
  }
  s.cut_fraction = g.num_edges() > 0
                       ? static_cast<double>(s.cut_arcs) / g.num_edges()
                       : 0.0;
  std::uint64_t locals = 0;
  EdgeIndex local_arcs = 0;
  s.min_masters = n;
  for (const ShardPlan::Shard& sh : plan.shards) {
    locals += sh.local_to_global.size();
    local_arcs += sh.local.num_edges();
    s.max_masters = std::max(s.max_masters, sh.num_masters);
    s.min_masters = std::min(s.min_masters, sh.num_masters);
    s.max_local_arcs = std::max(s.max_local_arcs, sh.local.num_edges());
  }
  s.replication_factor = n > 0 ? static_cast<double>(locals) / n : 1.0;
  const double avg_arcs =
      static_cast<double>(local_arcs) / std::max(plan.num_shards, 1u);
  s.arc_balance =
      avg_arcs > 0 ? static_cast<double>(s.max_local_arcs) / avg_arcs : 1.0;
  return s;
}

std::vector<std::uint64_t> degree_histogram(const Graph& g,
                                            std::uint32_t buckets) {
  std::vector<std::uint64_t> hist(buckets, 0);
  if (buckets == 0) return hist;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const std::uint32_t d = std::min(g.degree(v), buckets - 1);
    ++hist[d];
  }
  return hist;
}

}  // namespace nulpa
