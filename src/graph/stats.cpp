#include "graph/stats.hpp"

#include <algorithm>

namespace nulpa {

GraphStats compute_stats(const Graph& g) {
  GraphStats s;
  s.vertices = g.num_vertices();
  s.edges = g.num_edges();
  s.avg_degree = g.average_degree();
  s.max_degree = g.max_degree();
  s.total_weight = g.total_weight();
  return s;
}

std::vector<std::uint64_t> degree_histogram(const Graph& g,
                                            std::uint32_t buckets) {
  std::vector<std::uint64_t> hist(buckets, 0);
  if (buckets == 0) return hist;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const std::uint32_t d = std::min(g.degree(v), buckets - 1);
    ++hist[d];
  }
  return hist;
}

}  // namespace nulpa
