// Descriptive statistics used by the dataset table bench and the examples.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace nulpa {

struct GraphStats {
  Vertex vertices = 0;
  EdgeIndex edges = 0;  // directed arcs, as in Table 1
  double avg_degree = 0.0;
  std::uint32_t max_degree = 0;
  double total_weight = 0.0;  // m
};

GraphStats compute_stats(const Graph& g);

/// Degree histogram: result[d] = number of vertices of degree d
/// (capped at `max_degree` buckets; the final bucket aggregates the tail).
std::vector<std::uint64_t> degree_histogram(const Graph& g,
                                            std::uint32_t buckets);

}  // namespace nulpa
