// Descriptive statistics used by the dataset table bench and the examples.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/partition.hpp"

namespace nulpa {

struct GraphStats {
  Vertex vertices = 0;
  EdgeIndex edges = 0;  // directed arcs, as in Table 1
  double avg_degree = 0.0;
  std::uint32_t max_degree = 0;
  double total_weight = 0.0;  // m
};

GraphStats compute_stats(const Graph& g);

/// Quality of an edge-cut sharding: how much of the edge set crosses shard
/// boundaries, how many vertex copies (masters + mirrors) the plan
/// materializes per real vertex, and how evenly masters/edges spread.
/// Deterministic for a given (graph, plan) — the shard bench gates
/// replication_factor as an exact value.
struct PartitionStats {
  std::uint32_t shards = 1;
  EdgeIndex cut_arcs = 0;          // directed arcs with owner(u) != owner(v)
  double cut_fraction = 0.0;       // cut_arcs / num_edges
  double replication_factor = 1.0; // sum of shard locals / |V|
  Vertex max_masters = 0;          // heaviest shard by owned vertices
  Vertex min_masters = 0;
  EdgeIndex max_local_arcs = 0;    // heaviest shard by local CSR arcs
  double arc_balance = 1.0;        // max_local_arcs / (total arcs / shards)
};

PartitionStats compute_partition_stats(const Graph& g, const ShardPlan& plan);

/// Degree histogram: result[d] = number of vertices of degree d
/// (capped at `max_degree` buckets; the final bucket aggregates the tail).
std::vector<std::uint64_t> degree_histogram(const Graph& g,
                                            std::uint32_t buckets);

}  // namespace nulpa
