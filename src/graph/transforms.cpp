#include "graph/transforms.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "graph/builder.hpp"

namespace nulpa {

namespace {

/// Local label compaction (quality/communities.hpp has the public variant;
/// duplicating three lines here keeps the graph library free of a
/// dependency cycle with the quality library).
Vertex compact_in_place(std::vector<Vertex>& labels) {
  std::unordered_map<Vertex, Vertex> remap;
  remap.reserve(labels.size() / 4 + 1);
  for (Vertex& c : labels) {
    c = remap.emplace(c, static_cast<Vertex>(remap.size())).first->second;
  }
  return static_cast<Vertex>(remap.size());
}

}  // namespace

std::vector<Vertex> connected_components(const Graph& g, Vertex* out_count) {
  const Vertex n = g.num_vertices();
  constexpr Vertex kUnseen = 0xFFFFFFFFu;
  std::vector<Vertex> component(n, kUnseen);
  std::vector<Vertex> frontier;
  Vertex count = 0;
  for (Vertex start = 0; start < n; ++start) {
    if (component[start] != kUnseen) continue;
    const Vertex c = count++;
    component[start] = c;
    frontier.assign(1, start);
    while (!frontier.empty()) {
      const Vertex u = frontier.back();
      frontier.pop_back();
      for (const Vertex v : g.neighbors(u)) {
        if (component[v] == kUnseen) {
          component[v] = c;
          frontier.push_back(v);
        }
      }
    }
  }
  if (out_count != nullptr) *out_count = count;
  return component;
}

Graph coarsen_by_membership(const Graph& g, std::span<const Vertex> membership,
                            std::vector<Vertex>* out_coarse_id) {
  if (membership.size() != g.num_vertices()) {
    throw std::invalid_argument("coarsen_by_membership: size mismatch");
  }
  std::vector<Vertex> compact(membership.begin(), membership.end());
  const Vertex k = compact_in_place(compact);

  GraphBuilder builder(k);
  builder.reserve(g.num_edges() / 2 + k);
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto wts = g.weights_of(u);
    for (std::size_t e = 0; e < nbrs.size(); ++e) {
      if (u > nbrs[e]) continue;  // one direction; builder symmetrizes
      const Vertex cu = compact[u];
      const Vertex cv = compact[nbrs[e]];
      // An intra-community edge {u, v} becomes self-loop weight 2w: a CSR
      // stores a self-loop arc once, so doubling keeps the community's
      // weighted degree and the graph's total weight exact. Pre-existing
      // self-loops (u == v) already carry that convention.
      const Weight w = (cu == cv && u != nbrs[e]) ? 2 * wts[e] : wts[e];
      builder.add_edge(cu, cv, w);
    }
  }
  if (out_coarse_id != nullptr) *out_coarse_id = std::move(compact);
  GraphBuilder::Options opts;
  opts.drop_self_loops = false;  // intra-community weight must survive
  return builder.build(opts);
}

Graph permute_vertices(const Graph& g, std::span<const Vertex> perm) {
  const Vertex n = g.num_vertices();
  if (perm.size() != n) {
    throw std::invalid_argument("permute_vertices: size mismatch");
  }
  std::vector<std::uint8_t> seen(n, 0);
  for (const Vertex p : perm) {
    if (p >= n || seen[p]) {
      throw std::invalid_argument("permute_vertices: not a permutation");
    }
    seen[p] = 1;
  }
  GraphBuilder builder(n);
  builder.reserve(g.num_edges() / 2);
  for (Vertex u = 0; u < n; ++u) {
    const auto nbrs = g.neighbors(u);
    const auto wts = g.weights_of(u);
    for (std::size_t e = 0; e < nbrs.size(); ++e) {
      if (u > nbrs[e]) continue;
      builder.add_edge(perm[u], perm[nbrs[e]], wts[e]);
    }
  }
  return builder.build();
}

std::vector<Vertex> degree_order_permutation(const Graph& g) {
  const Vertex n = g.num_vertices();
  std::vector<Vertex> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](Vertex a, Vertex b) {
    return g.degree(a) > g.degree(b);
  });
  // order[i] = old vertex placed at new slot i; invert into perm[old] = new.
  std::vector<Vertex> perm(n);
  for (Vertex i = 0; i < n; ++i) perm[order[i]] = i;
  return perm;
}

Graph induced_subgraph(const Graph& g, std::span<const Vertex> vertices) {
  std::unordered_map<Vertex, Vertex> remap;
  remap.reserve(vertices.size());
  for (const Vertex v : vertices) {
    if (v >= g.num_vertices()) {
      throw std::out_of_range("induced_subgraph: vertex out of range");
    }
    remap.emplace(v, static_cast<Vertex>(remap.size()));
  }
  GraphBuilder builder(static_cast<Vertex>(remap.size()));
  for (const auto& [old_u, new_u] : remap) {
    const auto nbrs = g.neighbors(old_u);
    const auto wts = g.weights_of(old_u);
    for (std::size_t e = 0; e < nbrs.size(); ++e) {
      const auto it = remap.find(nbrs[e]);
      if (it == remap.end() || old_u > nbrs[e]) continue;
      builder.add_edge(new_u, it->second, wts[e]);
    }
  }
  return builder.build();
}

}  // namespace nulpa
