// Structural graph transforms used by community pipelines: connected
// components (sanity analysis of detected communities), membership-driven
// coarsening (the super-vertex graph Louvain-style methods iterate on, and
// the contraction step of LPA-based partitioners the paper's conclusion
// motivates), vertex permutation (degree/label reordering a la Layered
// Label Propagation), and subgraph extraction.
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace nulpa {

/// Connected components by BFS; returns the component id of every vertex
/// (ids are dense, ordered by first-seen vertex) and the component count
/// via `out_count` when non-null.
std::vector<Vertex> connected_components(const Graph& g,
                                         Vertex* out_count = nullptr);

/// Collapses each community of `membership` into a super-vertex. Edge
/// weights between communities are summed; intra-community weight becomes a
/// self-loop so total weight (and modularity) is preserved. `membership`
/// may be any labelling; it is compacted internally. Returns the coarse
/// graph and writes the compacted community of each original vertex into
/// `out_coarse_id` when non-null.
Graph coarsen_by_membership(const Graph& g, std::span<const Vertex> membership,
                            std::vector<Vertex>* out_coarse_id = nullptr);

/// Renumbers vertices: new id of v = perm[v]. `perm` must be a permutation
/// of [0, |V|).
Graph permute_vertices(const Graph& g, std::span<const Vertex> perm);

/// Permutation ordering vertices by descending degree (hubs first) —
/// improves locality for the block-per-vertex kernel.
std::vector<Vertex> degree_order_permutation(const Graph& g);

/// Induced subgraph on `vertices` (need not be sorted; duplicates are
/// ignored). Vertex i of the result corresponds to the i-th distinct entry.
Graph induced_subgraph(const Graph& g, std::span<const Vertex> vertices);

}  // namespace nulpa
