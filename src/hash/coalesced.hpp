// Coalesced-chaining hashtable view — the alternative design the paper's
// appendix evaluates (and rejects). Collisions are linked into chains whose
// nodes live in the same slot array, via an extra `nexts` array H_n.
#pragma once

#include <cstdint>

#include "hash/probing.hpp"
#include "hash/vertex_table.hpp"

namespace nulpa {

template <typename V>
class CoalescedTableView {
 public:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  CoalescedTableView(Vertex* keys, V* values, std::uint32_t* nexts,
                     std::uint32_t capacity, HashStats* stats = nullptr) noexcept
      : keys_(keys),
        values_(values),
        nexts_(nexts),
        p1_(capacity),
        cursor_(capacity),
        stats_(stats) {}

  [[nodiscard]] std::uint32_t capacity() const noexcept { return p1_; }

  void clear() noexcept {
    for (std::uint32_t s = 0; s < p1_; ++s) {
      keys_[s] = kEmptyKey;
      values_[s] = V{};
      nexts_[s] = kNil;
    }
    cursor_ = p1_;
  }

  /// Adds `v` to the weight of `k`. Walks the chain rooted at the home slot;
  /// on a miss, claims the highest-numbered free slot (the classic coalesced
  /// "cellar-less" policy) and links it onto the chain tail.
  std::uint32_t accumulate(Vertex k, V v) noexcept {
    if (stats_) ++stats_->inserts;
    const auto home = static_cast<std::uint32_t>(k % p1_);
    if (keys_[home] == kEmptyKey) {
      keys_[home] = k;
      values_[home] = v;
      return home;
    }
    // Walk the chain through this slot looking for the key.
    std::uint32_t s = home;
    for (;;) {
      if (keys_[s] == k) {
        values_[s] += v;
        return s;
      }
      if (nexts_[s] == kNil) break;
      if (stats_) ++stats_->probes;
      s = nexts_[s];
    }
    // Key absent: claim a free slot scanning down from the cursor.
    while (cursor_ > 0) {
      --cursor_;
      if (stats_) ++stats_->probes;
      if (keys_[cursor_] == kEmptyKey) {
        keys_[cursor_] = k;
        values_[cursor_] = v;
        nexts_[s] = cursor_;
        return cursor_;
      }
    }
    return p1_;  // table full — unreachable while distinct keys <= p1
  }

  [[nodiscard]] Vertex max_key() const noexcept {
    Vertex best = kEmptyKey;
    V best_w = V{};
    for (std::uint32_t s = 0; s < p1_; ++s) {
      if (keys_[s] != kEmptyKey && (best == kEmptyKey || values_[s] > best_w)) {
        best = keys_[s];
        best_w = values_[s];
      }
    }
    return best;
  }

  [[nodiscard]] V weight_of(Vertex k) const noexcept {
    for (std::uint32_t s = 0; s < p1_; ++s) {
      if (keys_[s] == k) return values_[s];
    }
    return V{};
  }

 private:
  Vertex* keys_;
  V* values_;
  std::uint32_t* nexts_;
  std::uint32_t p1_;
  std::uint32_t cursor_;
  HashStats* stats_;
};

}  // namespace nulpa
