#include "hash/probing.hpp"

namespace nulpa {

std::string to_string(Probing p) {
  switch (p) {
    case Probing::kLinear:
      return "linear";
    case Probing::kQuadratic:
      return "quadratic";
    case Probing::kDouble:
      return "double";
    case Probing::kQuadDouble:
      return "quadratic-double";
    case Probing::kCoalesced:
      return "coalesced";
  }
  return "?";
}

}  // namespace nulpa
