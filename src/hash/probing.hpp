// Collision-resolution policies for the per-vertex hashtables (Section 4.2,
// Algorithm 2). The probe position is i mod p1 where i advances by a step
// di; the policies differ only in how di evolves:
//   linear:      di stays 1
//   quadratic:   di doubles after every collision
//   double:      di is fixed at 1 + (k mod p2)      (second hash function)
//   quad-double: di <- 2*di + (k mod p2)            (the paper's hybrid)
// p1 is the table capacity (nextPow2-1 style, odd); p2 > p1 is the secondary
// "prime" nextPow2(p1+1)*2 - 1.
#pragma once

#include <cstdint>
#include <string>

#include "graph/csr.hpp"

namespace nulpa {

enum class Probing : std::uint8_t {
  kLinear,
  kQuadratic,
  kDouble,
  kQuadDouble,
  kCoalesced,  // chaining hybrid; handled by CoalescedTable, not probe_step
};

/// Initial step for the first collision of key `k`. For double hashing the
/// fixed stride must not be a multiple of the capacity p1, or the probe
/// sequence would revisit a single slot forever; the +1 adjustment is the
/// standard guard.
constexpr std::uint64_t initial_step(Probing p, std::uint32_t k,
                                     std::uint32_t p1,
                                     std::uint32_t p2) noexcept {
  switch (p) {
    case Probing::kDouble: {
      std::uint64_t d = 1 + (k % p2);
      if (p1 > 1 && d % p1 == 0) ++d;
      return d;
    }
    default:
      return 1;
  }
}

/// Step after a collision, given the previous step `di`.
constexpr std::uint64_t next_step(Probing p, std::uint64_t di, std::uint32_t k,
                                  std::uint32_t p2) noexcept {
  switch (p) {
    case Probing::kLinear:
      return 1;
    case Probing::kQuadratic:
      return 2 * di;
    case Probing::kDouble:
      return di;  // fixed second-hash stride
    case Probing::kQuadDouble:
      return 2 * di + (k % p2);
    case Probing::kCoalesced:
      return 1;
  }
  return 1;
}

std::string to_string(Probing p);

/// Maximum probe attempts before the implementation falls back to an
/// exhaustive scan. The fallback guarantees correctness at 100% load; the
/// paper instead sizes tables so this "scenario is avoided".
inline constexpr int kMaxRetries = 64;

/// Empty-slot sentinel (phi in Algorithm 2). Vertex ids are < 2^32 - 1.
inline constexpr Vertex kEmptyKey = 0xFFFFFFFFu;

}  // namespace nulpa
