// A non-owning view over one vertex's slice of the global hashtable buffers
// (Figure 3): keys live in buf_k[2*O_i ...] and values in buf_v[2*O_i ...],
// capacity p1 = nextPow2(degree+1) - 1 within the reserved 2*degree slots.
//
// This header implements the *unshared* operations of Algorithm 2 (one
// thread owns the table — the thread-per-vertex kernel and the host-side
// reference use these). The shared/atomic variant lives with the SIMT
// kernels, which reuse the probe-step policies from probing.hpp so both
// paths walk identical probe sequences.
#pragma once

#include <cstdint>
#include <span>

#include "hash/probing.hpp"
#include "util/bits.hpp"

namespace nulpa {

/// Statistics a table view reports into (optional). `probes` counts slot
/// inspections beyond the first; `fallbacks` counts exhaustive-scan rescues.
struct HashStats {
  std::uint64_t inserts = 0;
  std::uint64_t probes = 0;
  std::uint64_t fallbacks = 0;

  HashStats& operator+=(const HashStats& o) {
    inserts += o.inserts;
    probes += o.probes;
    fallbacks += o.fallbacks;
    return *this;
  }
  /// Span delta between two snapshots (stats only ever grow).
  HashStats& operator-=(const HashStats& o) {
    inserts -= o.inserts;
    probes -= o.probes;
    fallbacks -= o.fallbacks;
    return *this;
  }
  friend HashStats operator+(HashStats a, const HashStats& b) {
    return a += b;
  }
  friend HashStats operator-(HashStats a, const HashStats& b) {
    return a -= b;
  }
  friend bool operator==(const HashStats&, const HashStats&) = default;
};

/// `Stride` spaces logical slot `s` at physical index `s * Stride`. The
/// default (1) is the classic dense layout; the coalesced engine layout
/// passes the warp size so that 32 cohort lanes probing the same logical
/// slot touch 32 *adjacent* words (one transaction) instead of 32 distinct
/// cache lines. Probe sequences, tie-breaks, and returned slots are all in
/// logical slot space, so results are byte-identical across strides.
template <typename V, std::uint32_t Stride = 1>
class VertexTableView {
 public:
  /// `keys`/`values` must both have at least `capacity * Stride` elements.
  VertexTableView(Vertex* keys, V* values, std::uint32_t capacity,
                  HashStats* stats = nullptr) noexcept
      : keys_(keys),
        values_(values),
        p1_(capacity),
        p2_(secondary_prime(capacity)),
        stats_(stats) {}

  [[nodiscard]] std::uint32_t capacity() const noexcept { return p1_; }
  [[nodiscard]] std::uint32_t secondary() const noexcept { return p2_; }

  /// Resets every slot to empty. O(p1).
  void clear() noexcept {
    for (std::uint32_t s = 0; s < p1_; ++s) {
      keys_[at(s)] = kEmptyKey;
      values_[at(s)] = V{};
    }
  }

  /// hashtableAccumulate (Algorithm 2, unshared path): adds `v` to the
  /// weight of key `k`, inserting the key on first sight. Returns the slot
  /// used. Falls back to an exhaustive scan after kMaxRetries probes, which
  /// always succeeds while distinct keys <= capacity.
  std::uint32_t accumulate(Vertex k, V v, Probing probing) noexcept {
    if (stats_) ++stats_->inserts;
    std::uint64_t i = k;
    std::uint64_t di = initial_step(probing, k, p1_, p2_);
    for (int t = 0; t < kMaxRetries; ++t) {
      const auto s = static_cast<std::uint32_t>(i % p1_);
      if (keys_[at(s)] == k) {
        values_[at(s)] += v;
        return s;
      }
      if (keys_[at(s)] == kEmptyKey) {
        keys_[at(s)] = k;
        values_[at(s)] = v;
        return s;
      }
      if (stats_) ++stats_->probes;
      i += di;
      di = next_step(probing, di, k, p2_);
    }
    return accumulate_fallback(k, v);
  }

  /// hashtableMaxKey: the key with the largest accumulated weight. Strict
  /// LPA: the *first* slot (in slot order) holding the maximum wins, giving
  /// deterministic tie-breaks. Returns kEmptyKey on an empty table.
  [[nodiscard]] Vertex max_key() const noexcept {
    Vertex best = kEmptyKey;
    V best_w = V{};
    for (std::uint32_t s = 0; s < p1_; ++s) {
      if (keys_[at(s)] != kEmptyKey && (best == kEmptyKey || values_[at(s)] > best_w)) {
        best = keys_[at(s)];
        best_w = values_[at(s)];
      }
    }
    return best;
  }

  /// Weight currently stored for `k` (0 when absent). Linear scan — only
  /// used by tests.
  [[nodiscard]] V weight_of(Vertex k) const noexcept {
    for (std::uint32_t s = 0; s < p1_; ++s) {
      if (keys_[at(s)] == k) return values_[at(s)];
    }
    return V{};
  }

  [[nodiscard]] std::uint32_t occupied() const noexcept {
    std::uint32_t n = 0;
    for (std::uint32_t s = 0; s < p1_; ++s) {
      if (keys_[at(s)] != kEmptyKey) ++n;
    }
    return n;
  }

  /// Raw physical storage spans (`capacity * Stride` elements, logical
  /// slot s at index s * Stride). Contiguous only for Stride == 1.
  [[nodiscard]] std::span<const Vertex> keys() const noexcept {
    return {keys_, static_cast<std::size_t>(p1_) * Stride};
  }
  [[nodiscard]] std::span<const V> values() const noexcept {
    return {values_, static_cast<std::size_t>(p1_) * Stride};
  }

 private:
  /// Physical index of logical slot `s`.
  [[nodiscard]] static constexpr std::size_t at(std::uint32_t s) noexcept {
    return static_cast<std::size_t>(s) * Stride;
  }

  std::uint32_t accumulate_fallback(Vertex k, V v) noexcept {
    if (stats_) ++stats_->fallbacks;
    for (std::uint32_t s = 0; s < p1_; ++s) {
      if (keys_[at(s)] == k) {
        values_[at(s)] += v;
        return s;
      }
      if (keys_[at(s)] == kEmptyKey) {
        keys_[at(s)] = k;
        values_[at(s)] = v;
        return s;
      }
    }
    // Unreachable while the capacity invariant (distinct keys <= p1) holds.
    return p1_;
  }

  Vertex* keys_;
  V* values_;
  std::uint32_t p1_;
  std::uint32_t p2_;
  HashStats* stats_;
};

}  // namespace nulpa
