#include "observe/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/table.hpp"

namespace nulpa::observe {

namespace {

constexpr std::uint32_t kSub = Histogram::kSubBuckets;

/// Bucket index for a value: exact below 16, then 16 linear sub-buckets
/// per power of two.
std::size_t bucket_index(std::uint64_t v) noexcept {
  if (v < 16) return static_cast<std::size_t>(v);
  const int msb = std::bit_width(v) - 1;  // >= 4
  const std::uint64_t sub = (v >> (msb - 4)) & (kSub - 1);
  return 16 + static_cast<std::size_t>(msb - 4) * kSub +
         static_cast<std::size_t>(sub);
}

/// Inclusive-exclusive value range [lo, hi) covered by a bucket.
void bucket_bounds(std::size_t index, double& lo, double& hi) noexcept {
  if (index < 16) {
    lo = static_cast<double>(index);
    hi = lo + 1.0;
    return;
  }
  const std::size_t octave = (index - 16) / kSub;
  const std::size_t sub = (index - 16) % kSub;
  const int shift = static_cast<int>(octave);  // msb - 4
  const double width = std::ldexp(1.0, shift);
  lo = static_cast<double>(16 + sub) * width;
  hi = lo + width;
}

void json_escape_ascii(std::ostream& os, const std::string& s) {
  for (const char ch : s) {
    const auto u = static_cast<unsigned char>(ch);
    if (ch == '"' || ch == '\\') {
      os << '\\' << ch;
    } else if (u < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", u);
      os << buf;
    } else {
      os << ch;
    }
  }
}

void json_number(std::ostream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  os << buf;
}

}  // namespace

void Histogram::record(std::uint64_t value) noexcept {
  buckets_[bucket_index(value)]++;
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::merge(const Histogram& other) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Histogram::percentile(double p) const noexcept {
  if (count_ == 0) return 0.0;
  const double target =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    cum += buckets_[i];
    if (static_cast<double>(cum) < target) continue;
    double lo = 0.0;
    double hi = 0.0;
    bucket_bounds(i, lo, hi);
    const double into =
        target - static_cast<double>(cum - buckets_[i]);
    const double frac =
        std::clamp(into / static_cast<double>(buckets_[i]), 0.0, 1.0);
    const double v = lo + frac * (hi - lo);
    return std::clamp(v, static_cast<double>(min_),
                      static_cast<double>(max_));
  }
  return static_cast<double>(max_);
}

HistogramSummary summarize(const Histogram& h) noexcept {
  HistogramSummary s;
  s.count = h.count();
  s.mean = h.mean();
  s.p50 = h.percentile(50.0);
  s.p95 = h.percentile(95.0);
  s.p99 = h.percentile(99.0);
  s.min = h.min();
  s.max = h.max();
  return s;
}

std::uint64_t& MetricsRegistry::counter(const std::string& name) {
  return find_or_add(counters_, name);
}

double& MetricsRegistry::gauge(const std::string& name) {
  return find_or_add(gauges_, name);
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return find_or_add(histograms_, name);
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << '{';
  os << "\"counters\":{";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (i != 0) os << ',';
    os << '"';
    json_escape_ascii(os, counters_[i].name);
    os << "\":" << counters_[i].value;
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    if (i != 0) os << ',';
    os << '"';
    json_escape_ascii(os, gauges_[i].name);
    os << "\":";
    json_number(os, gauges_[i].value);
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    if (i != 0) os << ',';
    const HistogramSummary s = summarize(histograms_[i].value);
    os << '"';
    json_escape_ascii(os, histograms_[i].name);
    os << "\":{\"count\":" << s.count << ",\"mean\":";
    json_number(os, s.mean);
    os << ",\"p50\":";
    json_number(os, s.p50);
    os << ",\"p95\":";
    json_number(os, s.p95);
    os << ",\"p99\":";
    json_number(os, s.p99);
    os << ",\"min\":" << s.min << ",\"max\":" << s.max << '}';
  }
  os << "}}\n";
}

void MetricsRegistry::print_table(std::ostream& os, double unit_per_count,
                                  const char* unit_name) const {
  if (!counters_.empty() || !gauges_.empty()) {
    TextTable t({"metric", "value"});
    for (const auto& c : counters_) {
      t.add_row({c.name, fmt_count(static_cast<double>(c.value))});
    }
    for (const auto& g : gauges_) t.add_row({g.name, fmt(g.value, 4)});
    t.print(os);
  }
  if (histograms_.empty()) return;
  const std::string unit =
      unit_name[0] == '\0' ? std::string{} : " (" + std::string(unit_name) +
                                                 ")";
  TextTable t({"histogram" + unit, "count", "mean", "p50", "p95", "p99",
               "max"});
  for (const auto& h : histograms_) {
    const HistogramSummary s = summarize(h.value);
    t.add_row({h.name, fmt_count(static_cast<double>(s.count)),
               fmt(s.mean * unit_per_count, 4),
               fmt(s.p50 * unit_per_count, 4),
               fmt(s.p95 * unit_per_count, 4),
               fmt(s.p99 * unit_per_count, 4),
               fmt(static_cast<double>(s.max) * unit_per_count, 4)});
  }
  t.print(os);
}

}  // namespace nulpa::observe
