// Metrics registry: named counters, gauges, and log-bucketed latency
// histograms with p50/p95/p99 summaries, plus JSON and table emitters.
// The distribution-level complement to the tracer's per-event stream —
// per-iteration cost varies wildly across LPA sweeps (the early sweeps move
// almost every label, the tail moves a handful), which single means hide
// and histograms expose.
//
// Histogram buckets are logarithmic with 16 linear sub-buckets per octave
// (values below 16 are exact), so percentiles carry at most ~6% relative
// error at any magnitude while the whole histogram stays a fixed ~8 KB.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace nulpa::observe {

/// Log-bucketed histogram of non-negative integer samples (typically
/// nanoseconds). Fixed footprint, O(1) record, mergeable.
class Histogram {
 public:
  static constexpr std::uint32_t kSubBuckets = 16;  // per power of two
  // Values 0..15 land in exact buckets 0..15; larger values occupy
  // (bit_width - 4) octaves of 16 sub-buckets each, up to 2^64 - 1.
  static constexpr std::size_t kBuckets = 16 + 60 * kSubBuckets;

  void record(std::uint64_t value) noexcept;
  void merge(const Histogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept {
    return count_ == 0 ? 0 : min_;
  }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }

  /// Percentile in [0, 100]: walks the cumulative bucket counts and
  /// interpolates linearly inside the landing bucket, clamped to the
  /// observed [min, max]. 0 when empty.
  [[nodiscard]] double percentile(double p) const noexcept;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

/// The p50/p95/p99 digest emitters print.
struct HistogramSummary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
};

[[nodiscard]] HistogramSummary summarize(const Histogram& h) noexcept;

/// Insertion-ordered registry of named counters / gauges / histograms.
/// Not thread-safe by itself: producers either own one per thread and
/// merge, or (the common case here) populate it single-threaded from a
/// drained span snapshot.
class MetricsRegistry {
 public:
  /// Monotonic count (events, bytes). Creates at 0 on first use.
  std::uint64_t& counter(const std::string& name);
  /// Point-in-time value (ratios, rates). Creates at 0.0 on first use.
  double& gauge(const std::string& name);
  /// Latency/size distribution. Creates empty on first use.
  Histogram& histogram(const std::string& name);

  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":
  /// {name:{count,mean,p50,p95,p99,min,max}}}. Stable key order
  /// (insertion), so outputs diff cleanly.
  void write_json(std::ostream& os) const;

  /// Human-readable tables (counters/gauges two-column, histograms with
  /// percentile columns scaled by `unit_per_count`, e.g. 1e-9 renders
  /// nanosecond samples as seconds under `unit_name`).
  void print_table(std::ostream& os, double unit_per_count = 1.0,
                   const char* unit_name = "") const;

 private:
  template <typename T>
  struct Named {
    std::string name;
    T value{};
  };
  template <typename T>
  static T& find_or_add(std::vector<Named<T>>& entries,
                        const std::string& name) {
    for (auto& e : entries) {
      if (e.name == name) return e.value;
    }
    entries.push_back({name, T{}});
    return entries.back().value;
  }

  std::vector<Named<std::uint64_t>> counters_;
  std::vector<Named<double>> gauges_;
  std::vector<Named<Histogram>> histograms_;
};

}  // namespace nulpa::observe
