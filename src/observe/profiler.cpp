#include "observe/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>

#include "observe/metrics.hpp"
#include "util/table.hpp"

namespace nulpa::observe {

// ---------------------------------------------------------------------------
// Clock plumbing.

namespace {

class SteadyClockSource final : public ClockSource {
 public:
  std::uint64_t now_ns() override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

std::atomic<ClockSource*>& clock_slot() noexcept {
  static std::atomic<ClockSource*> slot{nullptr};
  return slot;
}

}  // namespace

ClockSource& steady_clock_source() noexcept {
  static SteadyClockSource source;
  return source;
}

ClockSource& active_clock() noexcept {
  ClockSource* c = clock_slot().load(std::memory_order_acquire);
  return c != nullptr ? *c : steady_clock_source();
}

ClockSource* set_clock(ClockSource* clock) noexcept {
  return clock_slot().exchange(clock, std::memory_order_acq_rel);
}

// ---------------------------------------------------------------------------
// Thread buffers and the registry.

namespace detail {

std::atomic<bool> prof_enabled{false};
thread_local std::uint32_t prof_current_pid = 0;

struct ProfThreadBuf {
  std::mutex mutex;  // owner pushes, drain snapshots; never both hot
  std::vector<ProfSpanRecord> spans;
  std::uint64_t dropped = 0;
  std::uint32_t tid = 0;
  std::string name;
};

namespace {

/// Registry state behind a function-local static so thread buffers created
/// during static init (the global ThreadPool's workers) order correctly.
struct RegistryState {
  std::mutex mutex;
  std::vector<std::shared_ptr<ProfThreadBuf>> bufs;
  std::uint32_t next_tid = 1;
};

RegistryState& registry_state() {
  static RegistryState state;
  return state;
}

}  // namespace

ProfThreadBuf& prof_thread_buf() {
  // The thread_local shared_ptr and the registry's copy jointly own the
  // buffer: a pool worker exiting (shutdown/resize) keeps its spans
  // drainable, which is what "no spans lost" means across resizes.
  thread_local std::shared_ptr<ProfThreadBuf> buf = [] {
    auto b = std::make_shared<ProfThreadBuf>();
    RegistryState& st = registry_state();
    std::lock_guard lock(st.mutex);
    b->tid = st.next_tid++;
    b->name = b->tid == 1 ? "main" : "thread-" + std::to_string(b->tid);
    st.bufs.push_back(b);
    return b;
  }();
  return *buf;
}

void prof_push(const ProfSpanRecord& rec) {
  ProfThreadBuf& buf = prof_thread_buf();
  std::lock_guard lock(buf.mutex);
  if (buf.spans.size() >= ProfilerRegistry::kMaxSpansPerThread) {
    buf.dropped++;
    return;
  }
  ProfSpanRecord r = rec;
  r.tid = buf.tid;
  buf.spans.push_back(r);
}

}  // namespace detail

ProfilerRegistry& ProfilerRegistry::instance() {
  static ProfilerRegistry registry;
  return registry;
}

void ProfilerRegistry::enable() {
  clear();
  detail::prof_enabled.store(true, std::memory_order_relaxed);
}

void ProfilerRegistry::disable() {
  detail::prof_enabled.store(false, std::memory_order_relaxed);
}

void ProfilerRegistry::clear() {
  detail::RegistryState& st = detail::registry_state();
  std::lock_guard lock(st.mutex);
  for (const auto& buf : st.bufs) {
    std::lock_guard buf_lock(buf->mutex);
    buf->spans.clear();
    buf->dropped = 0;
  }
}

std::vector<ProfSpanRecord> ProfilerRegistry::drain() const {
  detail::RegistryState& st = detail::registry_state();
  std::vector<ProfSpanRecord> out;
  std::lock_guard lock(st.mutex);
  for (const auto& buf : st.bufs) {
    std::lock_guard buf_lock(buf->mutex);
    out.insert(out.end(), buf->spans.begin(), buf->spans.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ProfSpanRecord& a, const ProfSpanRecord& b) {
                     return a.tid != b.tid ? a.tid < b.tid
                                           : a.start_ns < b.start_ns;
                   });
  return out;
}

std::uint64_t ProfilerRegistry::dropped() const {
  detail::RegistryState& st = detail::registry_state();
  std::uint64_t total = 0;
  std::lock_guard lock(st.mutex);
  for (const auto& buf : st.bufs) {
    std::lock_guard buf_lock(buf->mutex);
    total += buf->dropped;
  }
  return total;
}

void ProfilerRegistry::set_thread_name(std::string name) {
  detail::ProfThreadBuf& buf = detail::prof_thread_buf();
  std::lock_guard lock(buf.mutex);
  buf.name = std::move(name);
}

void set_thread_name(std::string name) {
  ProfilerRegistry::instance().set_thread_name(std::move(name));
}

// ---------------------------------------------------------------------------
// Chrome trace-event export.

namespace {

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char ch : s) {
    const auto u = static_cast<unsigned char>(ch);
    if (ch == '"' || ch == '\\') {
      os << '\\' << ch;
    } else if (u < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", u);
      os << buf;
    } else {
      os << ch;
    }
  }
  os << '"';
}

void write_us(std::ostream& os, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  os << buf;
}

}  // namespace

void ProfilerRegistry::write_chrome_trace(std::ostream& os) const {
  const std::vector<ProfSpanRecord> spans = drain();
  std::uint64_t t0 = ~std::uint64_t{0};
  for (const ProfSpanRecord& s : spans) t0 = std::min(t0, s.start_ns);
  if (spans.empty()) t0 = 0;

  os << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  // Process-name metadata: one lane per pid seen (0 = host, s + 1 =
  // shard s), so Perfetto groups shard timelines the way the simulated
  // devices are laid out.
  std::vector<std::uint32_t> pids;
  for (const ProfSpanRecord& s : spans) {
    if (std::find(pids.begin(), pids.end(), s.pid) == pids.end()) {
      pids.push_back(s.pid);
    }
  }
  std::sort(pids.begin(), pids.end());
  for (const std::uint32_t pid : pids) {
    sep();
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":";
    write_json_string(os, pid == 0 ? std::string("host")
                                   : "shard " + std::to_string(pid - 1));
    os << "}}";
  }

  // Thread-name metadata per (pid, tid) pair: the same OS thread appears
  // in every shard lane it emitted spans under (the sharded engine runs
  // several simulated devices on one host thread).
  {
    detail::RegistryState& st = detail::registry_state();
    std::lock_guard lock(st.mutex);
    for (const auto& buf : st.bufs) {
      std::string name;
      std::uint32_t tid = 0;
      {
        std::lock_guard buf_lock(buf->mutex);
        name = buf->name;
        tid = buf->tid;
      }
      for (const std::uint32_t pid : pids) {
        const bool present = std::any_of(
            spans.begin(), spans.end(), [&](const ProfSpanRecord& s) {
              return s.tid == tid && s.pid == pid;
            });
        if (!present) continue;
        sep();
        os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << pid
           << ",\"tid\":" << tid << ",\"args\":{\"name\":";
        write_json_string(os, name);
        os << "}}";
      }
    }
  }

  for (const ProfSpanRecord& s : spans) {
    sep();
    os << "{\"ph\":\"X\",\"name\":";
    write_json_string(os, s.name);
    os << ",\"cat\":\"nulpa\",\"ts\":";
    write_us(os, s.start_ns - t0);
    os << ",\"dur\":";
    write_us(os, s.dur_ns);
    os << ",\"pid\":" << s.pid << ",\"tid\":" << s.tid;
    if (s.arg_name != nullptr) {
      os << ",\"args\":{";
      write_json_string(os, s.arg_name);
      os << ':' << s.arg << '}';
    }
    os << '}';
  }
  os << "],\"displayTimeUnit\":\"ms\"";
  if (const std::uint64_t d = dropped(); d > 0) {
    os << ",\"metadata\":{\"nulpa_dropped_spans\":" << d << '}';
  }
  os << "}\n";
}

// ---------------------------------------------------------------------------
// Reading Chrome traces back (prof-summary).

namespace {

/// Minimal recursive JSON reader over an in-memory document. Only the
/// shapes the profiler writes are extracted (flat string/number fields of
/// the traceEvents objects); everything else is validated and skipped.
class JsonCursor {
 public:
  explicit JsonCursor(std::string text) : text_(std::move(text)) {}

  [[noreturn]] void bad(const std::string& why) const {
    throw std::runtime_error("chrome trace: " + why + " at offset " +
                             std::to_string(i_));
  }

  void skip_ws() {
    while (i_ < text_.size() &&
           (text_[i_] == ' ' || text_[i_] == '\t' || text_[i_] == '\n' ||
            text_[i_] == '\r')) {
      ++i_;
    }
  }

  [[nodiscard]] char peek() {
    skip_ws();
    if (i_ >= text_.size()) bad("unexpected end of input");
    return text_[i_];
  }

  void expect(char ch) {
    if (peek() != ch) bad(std::string("expected '") + ch + "'");
    ++i_;
  }

  bool consume(char ch) {
    if (i_ < text_.size() && peek() == ch) {
      ++i_;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string s;
    while (i_ < text_.size() && text_[i_] != '"') {
      char ch = text_[i_++];
      if (ch != '\\') {
        s.push_back(ch);
        continue;
      }
      if (i_ >= text_.size()) bad("truncated escape");
      const char esc = text_[i_++];
      switch (esc) {
        case 'n': s.push_back('\n'); break;
        case 't': s.push_back('\t'); break;
        case 'r': s.push_back('\r'); break;
        case 'b': s.push_back('\b'); break;
        case 'f': s.push_back('\f'); break;
        case 'u': {
          if (i_ + 4 > text_.size()) bad("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[i_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              bad("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode (BMP only — the writer never emits surrogates).
          if (code < 0x80) {
            s.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            s.push_back(static_cast<char>(0xC0 | (code >> 6)));
            s.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            s.push_back(static_cast<char>(0xE0 | (code >> 12)));
            s.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            s.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: s.push_back(esc);
      }
    }
    expect('"');
    return s;
  }

  double parse_number() {
    skip_ws();
    const char* start = text_.c_str() + i_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) bad("expected number");
    i_ += static_cast<std::size_t>(end - start);
    return v;
  }

  void skip_literal(const char* lit) {
    skip_ws();
    const std::size_t len = std::char_traits<char>::length(lit);
    if (text_.compare(i_, len, lit) != 0) bad("bad literal");
    i_ += len;
  }

  void skip_value() {
    switch (peek()) {
      case '"': parse_string(); return;
      case '{':
        ++i_;
        if (consume('}')) return;
        do {
          parse_string();
          expect(':');
          skip_value();
        } while (consume(','));
        expect('}');
        return;
      case '[':
        ++i_;
        if (consume(']')) return;
        do {
          skip_value();
        } while (consume(','));
        expect(']');
        return;
      case 't': skip_literal("true"); return;
      case 'f': skip_literal("false"); return;
      case 'n': skip_literal("null"); return;
      default: parse_number(); return;
    }
  }

 private:
  std::string text_;
  std::size_t i_ = 0;
};

}  // namespace

std::vector<ParsedSpan> parse_chrome_trace(std::istream& is) {
  std::string text{std::istreambuf_iterator<char>(is),
                   std::istreambuf_iterator<char>()};
  JsonCursor c(std::move(text));
  std::vector<ParsedSpan> out;

  // Either the {"traceEvents": [...]} envelope or a bare event array.
  if (c.peek() == '{') {
    c.expect('{');
    bool found = false;
    if (!c.consume('}')) {
      do {
        const std::string key = c.parse_string();
        c.expect(':');
        if (key == "traceEvents") {
          found = true;
          break;
        }
        c.skip_value();
      } while (c.consume(','));
    }
    if (!found) throw std::runtime_error("chrome trace: no traceEvents key");
  }

  c.expect('[');
  if (!c.consume(']')) {
    do {
      c.expect('{');
      std::string ph;
      std::string name;
      double ts = 0.0;
      double dur = 0.0;
      double pid = 0.0;
      double tid = 0.0;
      bool has_ts = false;
      bool has_dur = false;
      bool has_pid = false;
      bool has_tid = false;
      if (!c.consume('}')) {
        do {
          const std::string key = c.parse_string();
          c.expect(':');
          if (key == "ph") {
            ph = c.parse_string();
          } else if (key == "name") {
            name = c.parse_string();
          } else if (key == "ts") {
            ts = c.parse_number();
            has_ts = true;
          } else if (key == "dur") {
            dur = c.parse_number();
            has_dur = true;
          } else if (key == "pid") {
            pid = c.parse_number();
            has_pid = true;
          } else if (key == "tid") {
            tid = c.parse_number();
            has_tid = true;
          } else {
            c.skip_value();
          }
        } while (c.consume(','));
        c.expect('}');
      }
      if (ph == "X") {
        if (name.empty() || !has_ts || !has_dur || !has_pid || !has_tid) {
          throw std::runtime_error(
              "chrome trace: complete event missing one of "
              "name/ts/dur/pid/tid");
        }
        ParsedSpan s;
        s.name = std::move(name);
        s.ts_us = ts;
        s.dur_us = dur;
        s.pid = static_cast<std::uint32_t>(pid);
        s.tid = static_cast<std::uint32_t>(tid);
        out.push_back(std::move(s));
      }
    } while (c.consume(','));
    c.expect(']');
  }
  return out;
}

void print_prof_summary(const std::vector<ParsedSpan>& spans,
                        std::ostream& os) {
  struct PhaseAgg {
    std::string name;
    Histogram hist;  // nanosecond samples
    double total_us = 0.0;
  };
  std::vector<PhaseAgg> phases;
  for (const ParsedSpan& s : spans) {
    auto it = std::find_if(phases.begin(), phases.end(), [&](const PhaseAgg& p) {
      return p.name == s.name;
    });
    if (it == phases.end()) {
      phases.push_back({s.name, {}, 0.0});
      it = phases.end() - 1;
    }
    it->hist.record(static_cast<std::uint64_t>(s.dur_us * 1000.0));
    it->total_us += s.dur_us;
  }
  std::stable_sort(phases.begin(), phases.end(),
                   [](const PhaseAgg& a, const PhaseAgg& b) {
                     return a.total_us > b.total_us;
                   });
  TextTable t({"phase", "count", "total s", "p50 ms", "p95 ms", "p99 ms",
               "max ms"});
  for (const PhaseAgg& p : phases) {
    const HistogramSummary s = summarize(p.hist);
    t.add_row({p.name, fmt_count(static_cast<double>(s.count)),
               fmt(p.total_us * 1e-6, 4), fmt(s.p50 * 1e-6, 4),
               fmt(s.p95 * 1e-6, 4), fmt(s.p99 * 1e-6, 4),
               fmt(static_cast<double>(s.max) * 1e-6, 4)});
  }
  t.print(os);
}

}  // namespace nulpa::observe
