// Host-side span profiler: RAII ProfSpan guards write into per-thread ring
// buffers registered with a process-wide ProfilerRegistry, which drains them
// to Chrome trace-event JSON ("ph":"X" complete events) loadable in Perfetto
// or chrome://tracing. Complements src/observe/trace.{hpp,cpp}: the tracer
// records *what the algorithm did* (counters, label deltas) per iteration,
// the profiler records *where host time went* (nested spans with per-worker
// tid and per-shard pid attribution, nanosecond steady_clock stamps).
//
// Profiling is host-side only and off by default. Nothing here touches lane
// counters or label state, so labels and PerfCounters are byte-identical
// with profiling on or off at any backend/thread/shard count; when disabled
// a ProfSpan costs one relaxed atomic load (the same discipline as
// observe::active for the tracer).
//
// This header deliberately has no simulator dependencies (it lives in the
// standalone nulpa_prof library): the simt/parallel/comm layers emit spans,
// and nulpa_observe depends on simt — the profiler must sit *below* both.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace nulpa::observe {

// ---------------------------------------------------------------------------
// Pluggable clock (unit tests pin deterministic timestamps).

/// Monotonic nanosecond clock behind a virtual, so tests can script time.
class ClockSource {
 public:
  virtual ~ClockSource() = default;
  virtual std::uint64_t now_ns() = 0;
};

/// The process-wide steady_clock-backed source (the default).
ClockSource& steady_clock_source() noexcept;

/// The active clock. Defaults to steady_clock_source(); reads are lock-free.
ClockSource& active_clock() noexcept;

/// Swaps the active clock; returns the previous one. Pass nullptr to restore
/// the steady default. For single-threaded test setup only — swapping while
/// spans are in flight mixes time bases.
ClockSource* set_clock(ClockSource* clock) noexcept;

/// Drop-in for util/timer.hpp's Timer in producers whose `seconds` stamps
/// must be test-pinnable: reads the active observe clock instead of calling
/// std::chrono directly.
class SpanTimer {
 public:
  SpanTimer() : start_ns_(active_clock().now_ns()) {}
  void reset() { start_ns_ = active_clock().now_ns(); }
  [[nodiscard]] std::uint64_t ns() const {
    return active_clock().now_ns() - start_ns_;
  }
  [[nodiscard]] double seconds() const {
    return 1e-9 * static_cast<double>(ns());
  }

 private:
  std::uint64_t start_ns_;
};

// ---------------------------------------------------------------------------
// Span records.

/// One completed span. `name` and `arg_name` must point at static-storage
/// strings (phase names are compile-time literals); `pid` is the Chrome
/// trace process lane (0 = host, s + 1 = shard s), `tid` the registry-
/// assigned id of the emitting thread.
struct ProfSpanRecord {
  const char* name = nullptr;
  const char* arg_name = nullptr;  // nullptr: no args payload
  std::uint64_t arg = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
};

namespace detail {

/// Per-thread span buffer. The owning thread pushes under `mutex` (always
/// uncontended except while a drain snapshot runs); the registry keeps the
/// buffer alive after thread exit so pool resizes never lose spans.
struct ProfThreadBuf;

ProfThreadBuf& prof_thread_buf();
void prof_push(const ProfSpanRecord& rec);
extern std::atomic<bool> prof_enabled;
extern thread_local std::uint32_t prof_current_pid;

}  // namespace detail

// ---------------------------------------------------------------------------
// The registry.

/// Process-wide owner of every thread's span buffer.
class ProfilerRegistry {
 public:
  /// Spans each thread retains before dropping (drops are counted and
  /// reported by drain()/write_chrome_trace()). 1M records ≈ 56 MB/thread
  /// worst case; timeline viewers degrade well before that.
  static constexpr std::size_t kMaxSpansPerThread = 1u << 20;

  static ProfilerRegistry& instance();

  /// Clears all retained spans and starts capture.
  void enable();
  /// Stops capture; retained spans stay drainable.
  void disable();
  static bool enabled() noexcept {
    return detail::prof_enabled.load(std::memory_order_relaxed);
  }

  /// Discards every retained span and drop count (capture state unchanged).
  void clear();

  /// Snapshot of every thread's spans, in (tid, start_ns) order. Safe to
  /// call while other threads keep emitting; their in-flight spans land in
  /// the next drain.
  [[nodiscard]] std::vector<ProfSpanRecord> drain() const;

  /// Spans discarded because a thread buffer hit kMaxSpansPerThread.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Names the calling thread's timeline lane ("main", "pool-worker-3").
  /// Cheap and callable whether or not capture is enabled.
  void set_thread_name(std::string name);

  /// Writes the retained spans as a Chrome trace-event JSON document:
  /// {"traceEvents":[...]} with "ph":"M" process/thread-name metadata and
  /// one "ph":"X" complete event per span (ts/dur in microseconds,
  /// normalized to the earliest span).
  void write_chrome_trace(std::ostream& os) const;

 private:
  ProfilerRegistry() = default;
};

// ---------------------------------------------------------------------------
// Producer-side guards.

/// RAII span: stamps start on construction, pushes the completed record on
/// destruction. Near-zero when profiling is off (one relaxed load, no
/// clock read). Name/arg_name must be static-storage strings.
class ProfSpan {
 public:
  explicit ProfSpan(const char* name) noexcept {
    if (!ProfilerRegistry::enabled()) return;
    name_ = name;
    start_ns_ = active_clock().now_ns();
  }
  ProfSpan(const char* name, const char* arg_name, std::uint64_t arg) noexcept
      : ProfSpan(name) {
    arg_name_ = arg_name;
    arg_ = arg;
  }
  ProfSpan(const ProfSpan&) = delete;
  ProfSpan& operator=(const ProfSpan&) = delete;
  ~ProfSpan() {
    if (name_ == nullptr) return;
    ProfSpanRecord rec;
    rec.name = name_;
    rec.arg_name = arg_name_;
    rec.arg = arg_;
    rec.start_ns = start_ns_;
    rec.dur_ns = active_clock().now_ns() - start_ns_;
    rec.pid = detail::prof_current_pid;
    detail::prof_push(rec);
  }

 private:
  const char* name_ = nullptr;  // nullptr: capture was off at construction
  const char* arg_name_ = nullptr;
  std::uint64_t arg_ = 0;
  std::uint64_t start_ns_ = 0;
};

/// Scopes the calling thread's spans to a shard's process lane: spans
/// emitted inside the scope carry pid = shard_id + 1 (pid 0 stays the
/// host lane). Nest freely; restores the previous pid on exit.
class ProfPidScope {
 public:
  explicit ProfPidScope(std::uint32_t shard_id) noexcept
      : prev_(detail::prof_current_pid) {
    detail::prof_current_pid = shard_id + 1;
  }
  ProfPidScope(const ProfPidScope&) = delete;
  ProfPidScope& operator=(const ProfPidScope&) = delete;
  ~ProfPidScope() { detail::prof_current_pid = prev_; }

 private:
  std::uint32_t prev_;
};

/// Free-function shorthand for ProfilerRegistry::instance().set_thread_name.
void set_thread_name(std::string name);

// ---------------------------------------------------------------------------
// Reading profiles back (the `nulpa prof-summary` subcommand).

/// A span parsed back from a Chrome trace file (names are owned strings
/// here; the producer-side const char* optimization does not round-trip).
struct ParsedSpan {
  std::string name;
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
};

/// Parses a Chrome trace-event JSON document (either the {"traceEvents":
/// [...]} envelope or a bare array) and returns its "ph":"X" spans.
/// Throws std::runtime_error on malformed input or on complete events
/// missing required keys (name/ts/dur/pid/tid).
std::vector<ParsedSpan> parse_chrome_trace(std::istream& is);

/// Per-phase latency summary table (count, total, p50/p95/p99) for a set
/// of parsed spans, aggregated by name in first-appearance order.
void print_prof_summary(const std::vector<ParsedSpan>& spans,
                        std::ostream& os);

}  // namespace nulpa::observe
