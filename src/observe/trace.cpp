#include "observe/trace.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "observe/metrics.hpp"
#include "util/table.hpp"

namespace nulpa::observe {

namespace {

constexpr struct {
  EventKind kind;
  std::string_view name;
} kKindNames[] = {
    {EventKind::kRunStart, "run_start"},
    {EventKind::kIterationStart, "iteration_start"},
    {EventKind::kKernelLaunch, "kernel_launch"},
    {EventKind::kIterationEnd, "iteration_end"},
    {EventKind::kRunEnd, "run_end"},
};

/// Counter fields in wire order; shared by the writer and the parser.
constexpr struct {
  const char* key;
  std::uint64_t simt::PerfCounters::* member;
} kCounterFields[] = {
    {"c_loads", &simt::PerfCounters::global_loads},
    {"c_stores", &simt::PerfCounters::global_stores},
    {"c_sloads", &simt::PerfCounters::shared_loads},
    {"c_sstores", &simt::PerfCounters::shared_stores},
    {"c_atomics", &simt::PerfCounters::atomic_ops},
    {"c_inserts", &simt::PerfCounters::hash_inserts},
    {"c_probes", &simt::PerfCounters::hash_probes},
    {"c_fallbacks", &simt::PerfCounters::hash_fallbacks},
    {"c_wsyncs", &simt::PerfCounters::warp_syncs},
    {"c_bsyncs", &simt::PerfCounters::block_syncs},
    {"c_launches", &simt::PerfCounters::kernel_launches},
    {"c_switches", &simt::PerfCounters::fiber_switches},
    {"c_edges", &simt::PerfCounters::edges_scanned},
    {"c_threads", &simt::PerfCounters::threads_run},
    {"c_frontier", &simt::PerfCounters::frontier_vertices},
    {"c_skipped", &simt::PerfCounters::skipped_lanes},
    {"c_barchecks", &simt::PerfCounters::barrier_checks},
    {"c_flanes", &simt::PerfCounters::fiberless_lanes},
    {"c_promoted", &simt::PerfCounters::promoted_lanes},
    {"c_poolhits", &simt::PerfCounters::stack_pool_hits},
    {"c_zerofills", &simt::PerfCounters::shared_zero_fills},
    {"c_tracked", &simt::PerfCounters::tracked_accesses},
    {"c_txns", &simt::PerfCounters::global_transactions},
    {"c_coalesced", &simt::PerfCounters::coalesced_accesses},
    {"c_txn32", &simt::PerfCounters::txn_32b},
    {"c_txn64", &simt::PerfCounters::txn_64b},
    {"c_txn128", &simt::PerfCounters::txn_128b},
    {"c_chits", &simt::PerfCounters::cache_hits},
    {"c_cmisses", &simt::PerfCounters::cache_misses},
    {"c_cycles", &simt::PerfCounters::modeled_cycles},
    {"c_stallcyc", &simt::PerfCounters::stall_cycles},
    {"c_hiddencyc", &simt::PerfCounters::hidden_latency_cycles},
    {"c_stolen", &simt::PerfCounters::stolen_blocks},
    {"c_exchlabels", &simt::PerfCounters::exchanged_labels},
    {"c_exchbytes", &simt::PerfCounters::exchange_bytes},
    {"c_bcastsaved", &simt::PerfCounters::full_broadcast_labels_saved},
    {"c_mirrorupd", &simt::PerfCounters::mirror_updates},
};

/// Accumulates one flat JSON object; keys are emitted in insertion order so
/// traces diff cleanly between runs.
class JsonObjectWriter {
 public:
  void str(std::string_view key, std::string_view value) {
    begin(key);
    os_ << '"';
    for (const char ch : value) {
      switch (ch) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\t': os_ << "\\t"; break;
        default:
          // Remaining control characters are invalid raw inside a JSON
          // string (and a literal newline would also break the one-object-
          // per-line framing); emit the \uXXXX escape.
          if (static_cast<unsigned char>(ch) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned char>(ch));
            os_ << buf;
          } else {
            os_ << ch;
          }
      }
    }
    os_ << '"';
  }

  void num(std::string_view key, std::uint64_t value) {
    begin(key);
    os_ << value;
  }

  void num(std::string_view key, int value) {
    begin(key);
    os_ << value;
  }

  void num(std::string_view key, double value) {
    begin(key);
    // max_digits10 keeps seconds round-trippable; JSON has no Inf/NaN.
    os_ << fmt(value, 17);
  }

  void boolean(std::string_view key, bool value) {
    begin(key);
    os_ << (value ? "true" : "false");
  }

  [[nodiscard]] std::string finish() {
    os_ << '}';
    return os_.str();
  }

 private:
  void begin(std::string_view key) {
    os_ << (first_ ? '{' : ',') << '"' << key << "\":";
    first_ = false;
  }

  std::ostringstream os_;
  bool first_ = true;
};

void write_counters(JsonObjectWriter& w, const TraceEvent& ev,
                    const std::optional<MachineModel>& model) {
  if (!ev.has_counters) return;
  for (const auto& f : kCounterFields) w.num(f.key, ev.counters.*f.member);
  w.num("h_inserts", ev.hash_stats.inserts);
  w.num("h_probes", ev.hash_stats.probes);
  w.num("h_fallbacks", ev.hash_stats.fallbacks);
  if (model) {
    const GpuCostBreakdown b = modeled_gpu_breakdown(*model, ev.counters);
    w.num("m_total_s", b.total());
    w.num("m_stream_s", b.stream_s);
    w.num("m_random_s", b.random_s);
    w.num("m_atomic_s", b.atomic_s);
    w.num("m_launch_s", b.launch_s);
    w.num("m_shared_s", b.shared_s);
    w.num("m_pipeline_s", b.pipeline_s);
  } else if (ev.modeled_seconds > 0.0) {
    w.num("m_total_s", ev.modeled_seconds);
  }
}

// ---- Minimal parser for the flat JSON objects JsonlEmitter writes. Values
// are strings, numbers, or booleans; nesting is not part of the schema.

[[noreturn]] void malformed(std::size_t line_no, const std::string& why) {
  throw std::runtime_error("trace line " + std::to_string(line_no) +
                           ": " + why);
}

struct FlatJson {
  std::map<std::string, std::string> strings;
  std::map<std::string, std::string> numbers;  // raw text, converted per use
  std::map<std::string, bool> bools;
  std::size_t line_no = 0;

  // Conversions funnel std::sto* failures (invalid_argument/out_of_range)
  // into the parser's uniform runtime_error so callers catch one type.
  template <typename F>
  auto convert(const std::string& key, const std::string& raw, F&& fn) const {
    try {
      return fn(raw);
    } catch (const std::exception&) {
      malformed(line_no, "bad number \"" + raw + "\" for " + key);
    }
  }
  [[nodiscard]] std::uint64_t u64(const std::string& key) const {
    const auto it = numbers.find(key);
    if (it == numbers.end()) return 0;
    return convert(key, it->second,
                   [](const std::string& s) { return std::stoull(s); });
  }
  [[nodiscard]] double f64(const std::string& key) const {
    const auto it = numbers.find(key);
    if (it == numbers.end()) return 0.0;
    return convert(key, it->second,
                   [](const std::string& s) { return std::stod(s); });
  }
  [[nodiscard]] int i32(const std::string& key, int fallback) const {
    const auto it = numbers.find(key);
    if (it == numbers.end()) return fallback;
    return convert(key, it->second,
                   [](const std::string& s) { return std::stoi(s); });
  }
  [[nodiscard]] std::string str(const std::string& key) const {
    const auto it = strings.find(key);
    return it == strings.end() ? std::string{} : it->second;
  }
};

FlatJson parse_flat_object(const std::string& line, std::size_t line_no) {
  FlatJson out;
  out.line_no = line_no;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  const auto expect = [&](char ch) {
    skip_ws();
    if (i >= line.size() || line[i] != ch) {
      malformed(line_no, std::string("expected '") + ch + "'");
    }
    ++i;
  };
  const auto parse_string = [&]() -> std::string {
    expect('"');
    std::string s;
    while (i < line.size() && line[i] != '"') {
      char ch = line[i++];
      if (ch == '\\' && i < line.size()) {
        const char esc = line[i++];
        switch (esc) {
          case 'n': ch = '\n'; break;
          case 't': ch = '\t'; break;
          case 'r': ch = '\r'; break;
          case 'b': ch = '\b'; break;
          case 'f': ch = '\f'; break;
          case 'u': {
            // \uXXXX — the writer only emits these for control characters,
            // but decode any BMP code point (UTF-8) for robustness.
            if (i + 4 > line.size()) malformed(line_no, "truncated \\u");
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = line[i++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                malformed(line_no, "bad hex digit in \\u escape");
              }
            }
            if (code < 0x80) {
              s.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              s.push_back(static_cast<char>(0xC0 | (code >> 6)));
              s.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              s.push_back(static_cast<char>(0xE0 | (code >> 12)));
              s.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              s.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            continue;
          }
          default: ch = esc;
        }
      }
      s.push_back(ch);
    }
    expect('"');
    return s;
  };

  expect('{');
  skip_ws();
  if (i < line.size() && line[i] == '}') return out;
  while (true) {
    const std::string key = parse_string();
    expect(':');
    skip_ws();
    if (i >= line.size()) malformed(line_no, "truncated value");
    if (line[i] == '"') {
      out.strings[key] = parse_string();
    } else if (line.compare(i, 4, "true") == 0) {
      out.bools[key] = true;
      i += 4;
    } else if (line.compare(i, 5, "false") == 0) {
      out.bools[key] = false;
      i += 5;
    } else {
      const std::size_t start = i;
      while (i < line.size() && line[i] != ',' && line[i] != '}') ++i;
      std::string raw = line.substr(start, i - start);
      while (!raw.empty() && (raw.back() == ' ' || raw.back() == '\t')) {
        raw.pop_back();
      }
      if (raw.empty()) malformed(line_no, "empty value for " + key);
      out.numbers[key] = raw;
    }
    skip_ws();
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    break;
  }
  expect('}');
  return out;
}

}  // namespace

std::string_view kind_name(EventKind kind) noexcept {
  for (const auto& k : kKindNames) {
    if (k.kind == kind) return k.name;
  }
  return "unknown";
}

bool kind_from_name(std::string_view name, EventKind& out) noexcept {
  for (const auto& k : kKindNames) {
    if (k.name == name) {
      out = k.kind;
      return true;
    }
  }
  return false;
}

void JsonlEmitter::record(const TraceEvent& ev) {
  JsonObjectWriter w;
  w.str("kind", kind_name(ev.kind));
  w.str("algo", ev.algo);
  if (!ev.context.empty()) w.str("context", ev.context);
  if (ev.iteration >= 0) w.num("iter", ev.iteration);

  switch (ev.kind) {
    case EventKind::kRunStart:
      w.num("vertices", ev.vertices);
      w.num("edges", ev.edges);
      if (ev.shards > 0) {
        w.num("shards", ev.shards);
        w.num("cut_arcs", ev.cut_arcs);
        w.num("replication", ev.replication_factor);
      }
      break;
    case EventKind::kIterationStart:
      w.num("active", ev.active_vertices);
      break;
    case EventKind::kKernelLaunch:
      w.str("kernel", ev.kernel);
      w.num("work_items", ev.work_items);
      w.num("changed", ev.labels_changed);
      w.num("edges_scanned", ev.edges_scanned);
      w.num("seconds", ev.seconds);
      write_counters(w, ev, model_);
      break;
    case EventKind::kIterationEnd:
      w.num("active", ev.active_vertices);
      w.num("changed", ev.labels_changed);
      w.num("edges_scanned", ev.edges_scanned);
      w.num("seconds", ev.seconds);
      write_counters(w, ev, model_);
      break;
    case EventKind::kRunEnd:
      w.num("iterations", ev.iterations);
      w.boolean("converged", ev.converged);
      w.num("changed", ev.labels_changed);
      w.num("edges_scanned", ev.edges_scanned);
      w.num("seconds", ev.seconds);
      write_counters(w, ev, model_);
      break;
  }
  os_ << w.finish() << '\n';
}

void TableEmitter::record(const TraceEvent& ev) {
  pending_.push_back(ev);
  if (ev.kind == EventKind::kRunEnd) flush();
}

void TableEmitter::flush() {
  if (pending_.empty()) return;
  print_iteration_table(pending_, os_, model_);
  pending_.clear();
}

std::vector<TraceEvent> parse_trace_jsonl(std::istream& is) {
  std::vector<TraceEvent> events;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const FlatJson obj = parse_flat_object(line, line_no);

    TraceEvent ev;
    if (!kind_from_name(obj.str("kind"), ev.kind)) {
      malformed(line_no, "unknown kind \"" + obj.str("kind") + "\"");
    }
    ev.algo = obj.str("algo");
    ev.context = obj.str("context");
    ev.kernel = obj.str("kernel");
    ev.iteration = obj.i32("iter", -1);
    ev.vertices = obj.u64("vertices");
    ev.edges = obj.u64("edges");
    ev.shards = obj.u64("shards");
    ev.cut_arcs = obj.u64("cut_arcs");
    ev.replication_factor = obj.f64("replication");
    ev.active_vertices = obj.u64("active");
    ev.work_items = obj.u64("work_items");
    ev.labels_changed = obj.u64("changed");
    ev.edges_scanned = obj.u64("edges_scanned");
    ev.seconds = obj.f64("seconds");
    ev.iterations = obj.i32("iterations", 0);
    ev.modeled_seconds = obj.f64("m_total_s");
    if (const auto it = obj.bools.find("converged"); it != obj.bools.end()) {
      ev.converged = it->second;
    }
    if (obj.numbers.contains("c_loads")) {
      ev.has_counters = true;
      for (const auto& f : kCounterFields) {
        ev.counters.*f.member = obj.u64(f.key);
      }
      ev.hash_stats.inserts = obj.u64("h_inserts");
      ev.hash_stats.probes = obj.u64("h_probes");
      ev.hash_stats.fallbacks = obj.u64("h_fallbacks");
    }
    events.push_back(std::move(ev));
  }
  return events;
}

void print_iteration_table(const std::vector<TraceEvent>& events,
                           std::ostream& os,
                           const std::optional<MachineModel>& model) {
  const auto modeled = [&](const TraceEvent& ev) -> double {
    if (ev.has_counters && model) {
      return modeled_gpu_breakdown(*model, ev.counters).total();
    }
    return ev.modeled_seconds;
  };
  // Probe counts live in the host-side HashStats for ν-LPA's per-vertex
  // tables and in the device counters for kernels that count them in-lane;
  // the two views never both populate, so take whichever is nonzero.
  const auto probes = [](const TraceEvent& ev) -> std::uint64_t {
    return std::max(ev.hash_stats.probes, ev.counters.hash_probes);
  };

  // Split the stream into runs at run_start boundaries; a stream without
  // run markers renders as one anonymous run.
  std::size_t i = 0;
  while (i < events.size()) {
    std::size_t end = i + 1;
    while (end < events.size() &&
           events[end].kind != EventKind::kRunStart) {
      ++end;
    }

    const TraceEvent& head = events[i];
    os << "== " << (head.algo.empty() ? "trace" : head.algo);
    if (!head.context.empty()) os << " on " << head.context;
    if (head.kind == EventKind::kRunStart) {
      os << " (" << head.vertices << " vertices, " << head.edges
         << " arcs)";
    }
    os << '\n';
    if (head.kind == EventKind::kRunStart && head.shards > 0) {
      const double cut_pct =
          head.edges > 0 ? 100.0 * static_cast<double>(head.cut_arcs) /
                               static_cast<double>(head.edges)
                         : 0.0;
      os << "sharding: " << head.shards << " shards, cut arcs "
         << fmt_count(static_cast<double>(head.cut_arcs)) << " ("
         << fmt(cut_pct, 3) << "%), replication factor "
         << fmt(head.replication_factor, 3) << '\n';
    }

    TextTable table({"iter", "active", "changed", "edges", "mem words",
                     "atomics", "probes", "host s", "model s"});
    TraceEvent total;
    total.has_counters = false;
    const TraceEvent* run_end = nullptr;
    std::vector<std::string> kernels;
    // Per-kernel attribution: kernel_launch events carry the counter delta
    // of that one launch (the engine drains every coalescer window and the
    // scoreboard replay inside session.run(), so the delta is complete).
    // Aggregate by kernel name in first-appearance order.
    struct KernelAgg {
      std::string name;
      std::uint64_t launches = 0;
      simt::PerfCounters ctr;
    };
    std::vector<KernelAgg> per_kernel;
    // Host-seconds latency histograms per phase (kernel name or the whole
    // iteration), nanosecond samples.
    static const std::string kIterPhase = "iteration";
    struct PhaseLat {
      std::string name;
      Histogram hist;
    };
    std::vector<PhaseLat> phase_lat;
    for (std::size_t k = i; k < end; ++k) {
      const TraceEvent& ev = events[k];
      if (ev.kind == EventKind::kRunEnd) run_end = &ev;
      if (ev.kind == EventKind::kKernelLaunch && ev.iteration == 0) {
        kernels.push_back(ev.kernel + "(" +
                          fmt_count(static_cast<double>(ev.work_items)) +
                          ")");
      }
      if (ev.kind == EventKind::kKernelLaunch && ev.has_counters) {
        auto it = std::find_if(
            per_kernel.begin(), per_kernel.end(),
            [&](const KernelAgg& a) { return a.name == ev.kernel; });
        if (it == per_kernel.end()) {
          per_kernel.push_back({ev.kernel, 0, {}});
          it = per_kernel.end() - 1;
        }
        it->launches++;
        it->ctr += ev.counters;
      }
      // Phase-latency distributions from the host `seconds` stamps:
      // per-kernel launch times plus whole iterations.
      if ((ev.kind == EventKind::kKernelLaunch ||
           ev.kind == EventKind::kIterationEnd) &&
          ev.seconds > 0.0) {
        const std::string& phase = ev.kind == EventKind::kKernelLaunch
                                       ? ev.kernel
                                       : kIterPhase;
        auto it = std::find_if(
            phase_lat.begin(), phase_lat.end(),
            [&](const PhaseLat& p) { return p.name == phase; });
        if (it == phase_lat.end()) {
          phase_lat.push_back({phase, {}});
          it = phase_lat.end() - 1;
        }
        it->hist.record(static_cast<std::uint64_t>(ev.seconds * 1e9));
      }
      if (ev.kind != EventKind::kIterationEnd) continue;
      const std::uint64_t words =
          ev.counters.global_loads + ev.counters.global_stores +
          ev.counters.shared_loads + ev.counters.shared_stores;
      table.add_row({std::to_string(ev.iteration),
                     fmt_count(static_cast<double>(ev.active_vertices)),
                     fmt_count(static_cast<double>(ev.labels_changed)),
                     fmt_count(static_cast<double>(ev.edges_scanned)),
                     fmt_count(static_cast<double>(words)),
                     fmt_count(static_cast<double>(ev.counters.atomic_ops)),
                     fmt_count(static_cast<double>(probes(ev))),
                     fmt(ev.seconds, 3), fmt(modeled(ev), 3)});
      total.labels_changed += ev.labels_changed;
      total.edges_scanned += ev.edges_scanned;
      total.seconds += ev.seconds;
      total.counters += ev.counters;
      total.hash_stats += ev.hash_stats;
      total.has_counters = total.has_counters || ev.has_counters;
      total.modeled_seconds += modeled(ev);
    }
    const std::uint64_t total_words =
        total.counters.global_loads + total.counters.global_stores +
        total.counters.shared_loads + total.counters.shared_stores;
    table.add_row({"total", "",
                   fmt_count(static_cast<double>(total.labels_changed)),
                   fmt_count(static_cast<double>(total.edges_scanned)),
                   fmt_count(static_cast<double>(total_words)),
                   fmt_count(static_cast<double>(total.counters.atomic_ops)),
                   fmt_count(static_cast<double>(probes(total))),
                   fmt(total.seconds, 3), fmt(total.modeled_seconds, 3)});
    table.print(os);
    if (!kernels.empty()) {
      os << "kernels at iter 0:";
      for (const std::string& k : kernels) os << ' ' << k;
      os << '\n';
    }
    // Only render the per-kernel breakdown when some launch actually
    // tracked memory or moved inter-shard traffic — otherwise every
    // column would be zero.
    const bool any_kernel_txns = std::any_of(
        per_kernel.begin(), per_kernel.end(), [](const KernelAgg& a) {
          return a.ctr.global_transactions > 0 ||
                 a.ctr.exchanged_labels > 0 ||
                 a.ctr.full_broadcast_labels_saved > 0;
        });
    if (any_kernel_txns) {
      TextTable kt({"kernel", "launches", "txns", "misses", "cycles",
                    "stall", "hidden", "exch", "exch B"});
      for (const KernelAgg& a : per_kernel) {
        kt.add_row(
            {a.name, fmt_count(static_cast<double>(a.launches)),
             fmt_count(static_cast<double>(a.ctr.global_transactions)),
             fmt_count(static_cast<double>(a.ctr.cache_misses)),
             fmt_count(static_cast<double>(a.ctr.modeled_cycles)),
             fmt_count(static_cast<double>(a.ctr.stall_cycles)),
             fmt_count(static_cast<double>(a.ctr.hidden_latency_cycles)),
             fmt_count(static_cast<double>(a.ctr.exchanged_labels)),
             fmt_count(static_cast<double>(a.ctr.exchange_bytes))});
      }
      kt.print(os);
    }
    // Latency percentiles per phase — only worth a table when some phase
    // repeated (a single sample's p50 == p99 == the sample).
    const bool any_repeat = std::any_of(
        phase_lat.begin(), phase_lat.end(),
        [](const PhaseLat& p) { return p.hist.count() > 1; });
    if (any_repeat) {
      TextTable lt({"phase", "count", "p50 ms", "p95 ms", "p99 ms",
                    "max ms"});
      for (const PhaseLat& p : phase_lat) {
        const HistogramSummary s = summarize(p.hist);
        lt.add_row({p.name, fmt_count(static_cast<double>(s.count)),
                    fmt(s.p50 * 1e-6, 4), fmt(s.p95 * 1e-6, 4),
                    fmt(s.p99 * 1e-6, 4),
                    fmt(static_cast<double>(s.max) * 1e-6, 4)});
      }
      lt.print(os);
    }
    if (run_end != nullptr) {
      os << (run_end->converged ? "converged" : "stopped") << " after "
         << run_end->iterations << " iterations\n";
    }
    os << '\n';
    i = end;
  }
}

}  // namespace nulpa::observe
