// Iteration-level observability for every algorithm in the library.
//
// The paper's headline effects (PL4 breaking community-swap livelock, the
// hybrid probing scheme cutting probe chains, the switch-degree kernel
// split) are all per-iteration phenomena, but results only carry end-of-run
// aggregates. This subsystem records a TraceEvent stream — run/iteration
// boundaries, kernel launches with their TPV/BPV split sizes, label-change
// and active-vertex counts, per-span PerfCounters and hashtable deltas —
// behind a Tracer interface that costs nothing when no tracer is attached
// (producers guard every event behind observe::active(tracer)).
//
// Sinks: JsonlEmitter (one JSON object per line, machine-readable),
// TableEmitter (human-readable per-iteration table), CollectingTracer
// (in-memory, for tests and the `nulpa trace-summary` subcommand), and
// MultiTracer (fan-out). parse_trace_jsonl() reads back what JsonlEmitter
// wrote.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "hash/vertex_table.hpp"
#include "perfmodel/machine.hpp"
#include "simt/counters.hpp"

namespace nulpa::observe {

enum class EventKind : std::uint8_t {
  kRunStart,
  kIterationStart,
  kKernelLaunch,
  kIterationEnd,
  kRunEnd,
};

/// Stable wire name of a kind ("run_start", "iteration_end", ...).
std::string_view kind_name(EventKind kind) noexcept;

/// Inverse of kind_name. Returns false on an unknown name.
bool kind_from_name(std::string_view name, EventKind& out) noexcept;

/// One observation. Which fields are meaningful depends on `kind`; unused
/// fields keep their zero defaults and are omitted from the JSONL wire
/// format (see DESIGN.md "Trace schema" for the field table).
struct TraceEvent {
  EventKind kind = EventKind::kIterationEnd;
  std::string algo;     // algorithm that produced the event
  std::string context;  // caller-set run label (e.g. graph name); optional
  int iteration = -1;   // 0-based; -1 on run-level events

  // kRunStart: problem size.
  std::uint64_t vertices = 0;
  std::uint64_t edges = 0;

  // kRunStart, sharded runs only (shards == 0 means single-device): the
  // partition shape/quality from graph/stats.hpp, recorded so trace-summary
  // can report partition quality without re-sharding the graph.
  std::uint64_t shards = 0;
  std::uint64_t cut_arcs = 0;
  double replication_factor = 0.0;

  // kIterationStart / kIterationEnd: vertices eligible for processing this
  // sweep (|V| when the algorithm has no pruning).
  std::uint64_t active_vertices = 0;

  // kKernelLaunch: which kernel and how many work items it covers (for
  // ν-LPA: "tpv" low-degree lanes, "bpv" high-degree blocks, "cross-check").
  std::string kernel;
  std::uint64_t work_items = 0;

  // kKernelLaunch / kIterationEnd / kRunEnd: span totals.
  std::uint64_t labels_changed = 0;
  std::uint64_t edges_scanned = 0;
  double seconds = 0.0;  // host wall-clock of the span

  // Simulator-backed algorithms: hardware-event deltas for the span.
  bool has_counters = false;
  simt::PerfCounters counters{};
  HashStats hash_stats{};

  // Cost-model seconds of the span (filled by emitters from `counters`
  // when they carry a machine model, and by the JSONL parser on read).
  double modeled_seconds = 0.0;

  // kRunEnd: final report shape.
  int iterations = 0;
  bool converged = false;
};

/// Event sink. Producers emit through a `Tracer*` that is nullptr by
/// default; observe::active() keeps the disabled path to one pointer test.
class Tracer {
 public:
  virtual ~Tracer() = default;
  /// Sinks may report false to let producers skip event construction
  /// entirely (MultiTracer with no live sinks, for example).
  [[nodiscard]] virtual bool enabled() const noexcept { return true; }
  virtual void record(const TraceEvent& event) = 0;
};

/// The producer-side guard: `if (observe::active(tracer)) { ...record... }`.
[[nodiscard]] inline bool active(const Tracer* t) noexcept {
  return t != nullptr && t->enabled();
}

/// Buffers events in memory; the sink for tests and programmatic analysis.
class CollectingTracer : public Tracer {
 public:
  void record(const TraceEvent& event) override { events_.push_back(event); }
  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  void clear() noexcept { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

/// Writes one JSON object per event (JSON lines). When constructed with a
/// machine model, counter-carrying events also get the cost-model seconds
/// breakdown (m_total_s, m_stream_s, m_random_s, m_atomic_s, m_launch_s,
/// m_shared_s).
class JsonlEmitter : public Tracer {
 public:
  explicit JsonlEmitter(std::ostream& os,
                        std::optional<MachineModel> model = std::nullopt)
      : os_(os), model_(std::move(model)) {}

  void record(const TraceEvent& event) override;

 private:
  std::ostream& os_;
  std::optional<MachineModel> model_;
};

/// Buffers a run's events and prints a per-iteration table at run end (or
/// on flush() for truncated streams).
class TableEmitter : public Tracer {
 public:
  explicit TableEmitter(std::ostream& os,
                        std::optional<MachineModel> model = std::nullopt)
      : os_(os), model_(std::move(model)) {}
  ~TableEmitter() override { flush(); }

  void record(const TraceEvent& event) override;
  void flush();

 private:
  std::ostream& os_;
  std::optional<MachineModel> model_;
  std::vector<TraceEvent> pending_;
};

/// Producer-side wrapper for the common run/iteration emission pattern the
/// baselines share. All methods are no-ops when no tracer is attached;
/// check on() before doing any work whose only purpose is the event (e.g.
/// counting active vertices).
class RunTrace {
 public:
  RunTrace(Tracer* tracer, std::string algo, std::uint64_t vertices,
           std::uint64_t edges)
      : RunTrace(tracer, std::move(algo), vertices, edges, 0, 0, 0.0) {}

  /// Sharded runs: the run_start additionally carries the partition shape
  /// (shards > 0) so trace-summary reports it without re-sharding.
  RunTrace(Tracer* tracer, std::string algo, std::uint64_t vertices,
           std::uint64_t edges, std::uint64_t shards, std::uint64_t cut_arcs,
           double replication_factor)
      : tracer_(tracer), algo_(std::move(algo)) {
    if (!on()) return;
    TraceEvent ev = make(EventKind::kRunStart, -1);
    ev.vertices = vertices;
    ev.edges = edges;
    ev.shards = shards;
    ev.cut_arcs = cut_arcs;
    ev.replication_factor = replication_factor;
    tracer_->record(ev);
  }

  [[nodiscard]] bool on() const noexcept { return active(tracer_); }

  /// Event pre-filled with kind, algorithm, and iteration — for producers
  /// that attach extra payload (counters, kernel info) before record().
  [[nodiscard]] TraceEvent make(EventKind kind, int iteration) const {
    TraceEvent ev;
    ev.kind = kind;
    ev.algo = algo_;
    ev.iteration = iteration;
    return ev;
  }

  void record(const TraceEvent& ev) const {
    if (on()) tracer_->record(ev);
  }

  void iteration_start(int iteration, std::uint64_t active_vertices) const {
    if (!on()) return;
    TraceEvent ev = make(EventKind::kIterationStart, iteration);
    ev.active_vertices = active_vertices;
    tracer_->record(ev);
  }

  void iteration_end(int iteration, std::uint64_t active_vertices,
                     std::uint64_t labels_changed,
                     std::uint64_t edges_scanned, double seconds) const {
    if (!on()) return;
    TraceEvent ev = make(EventKind::kIterationEnd, iteration);
    ev.active_vertices = active_vertices;
    ev.labels_changed = labels_changed;
    ev.edges_scanned = edges_scanned;
    ev.seconds = seconds;
    tracer_->record(ev);
  }

  void run_end(int iterations, bool converged, std::uint64_t labels_changed,
               std::uint64_t edges_scanned, double seconds) const {
    if (!on()) return;
    TraceEvent ev = make(EventKind::kRunEnd, -1);
    ev.iterations = iterations;
    ev.converged = converged;
    ev.labels_changed = labels_changed;
    ev.edges_scanned = edges_scanned;
    ev.seconds = seconds;
    tracer_->record(ev);
  }

 private:
  Tracer* tracer_;
  std::string algo_;
};

/// Stamps a caller-supplied context (e.g. dataset name) on every event
/// before forwarding — for the bench harnesses, which stream many graphs'
/// runs into one trace file.
class ContextTracer : public Tracer {
 public:
  ContextTracer(Tracer* sink, std::string context)
      : sink_(sink), context_(std::move(context)) {}
  [[nodiscard]] bool enabled() const noexcept override {
    return active(sink_);
  }
  void record(const TraceEvent& event) override {
    TraceEvent ev = event;
    ev.context = context_;
    sink_->record(ev);
  }

 private:
  Tracer* sink_;
  std::string context_;
};

/// Fan-out to several sinks; used when both --trace and --metrics are set.
class MultiTracer : public Tracer {
 public:
  void add(Tracer* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }
  [[nodiscard]] bool enabled() const noexcept override {
    for (const Tracer* s : sinks_) {
      if (s->enabled()) return true;
    }
    return false;
  }
  void record(const TraceEvent& event) override {
    for (Tracer* s : sinks_) {
      if (s->enabled()) s->record(event);
    }
  }

 private:
  std::vector<Tracer*> sinks_;
};

/// Parses a JSONL trace back into events (inverse of JsonlEmitter for the
/// fields the schema defines; unknown keys are ignored). Throws
/// std::runtime_error on malformed lines.
std::vector<TraceEvent> parse_trace_jsonl(std::istream& is);

/// Renders the per-iteration table for a (possibly multi-run) event stream:
/// one table per run_start/run_end span, plus totals. Both `nulpa
/// trace-summary` and TableEmitter print through this.
void print_iteration_table(const std::vector<TraceEvent>& events,
                           std::ostream& os,
                           const std::optional<MachineModel>& model);

}  // namespace nulpa::observe
