// OpenMP-style parallel loops and reductions over [begin, end) index ranges.
// The NetworKit PLP baseline uses the *guided* schedule (as NetworKit does);
// GVE-LPA uses dynamic scheduling with a chunk size of 2048 (as in the
// GVE-LPA paper).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace nulpa {

enum class Schedule { kStatic, kDynamic, kGuided };

namespace detail {

/// Dispatches chunks of [begin, end) to `body(i, worker)` under `sched`.
template <typename Body>
void parallel_for_impl(ThreadPool& pool, std::uint64_t begin,
                       std::uint64_t end, Schedule sched,
                       std::uint64_t chunk, const Body& body) {
  const std::uint64_t n = end - begin;
  if (n == 0) return;
  const unsigned workers = pool.size();
  if (workers == 1 || n <= chunk) {
    for (std::uint64_t i = begin; i < end; ++i) body(i, 0u);
    return;
  }

  if (sched == Schedule::kStatic) {
    pool.run([&](unsigned w) {
      const std::uint64_t per = (n + workers - 1) / workers;
      const std::uint64_t lo = begin + std::min<std::uint64_t>(n, w * per);
      const std::uint64_t hi = begin + std::min<std::uint64_t>(n, (w + 1) * per);
      for (std::uint64_t i = lo; i < hi; ++i) body(i, w);
    });
    return;
  }

  std::atomic<std::uint64_t> next{begin};
  if (sched == Schedule::kDynamic) {
    pool.run([&](unsigned w) {
      for (;;) {
        const std::uint64_t lo = next.fetch_add(chunk, std::memory_order_relaxed);
        if (lo >= end) return;
        const std::uint64_t hi = std::min(end, lo + chunk);
        for (std::uint64_t i = lo; i < hi; ++i) body(i, w);
      }
    });
    return;
  }

  // Guided: chunk size decays as remaining / workers, floored at `chunk`.
  std::atomic<std::uint64_t> cursor{begin};
  pool.run([&](unsigned w) {
    for (;;) {
      std::uint64_t lo = cursor.load(std::memory_order_relaxed);
      std::uint64_t take, hi;
      do {
        if (lo >= end) return;
        take = std::max<std::uint64_t>(chunk, (end - lo) / workers);
        hi = std::min(end, lo + take);
      } while (!cursor.compare_exchange_weak(lo, hi, std::memory_order_relaxed));
      for (std::uint64_t i = lo; i < hi; ++i) body(i, w);
    }
  });
}

}  // namespace detail

/// parallel_for(pool, 0, n, Schedule::kGuided, [&](u64 i, unsigned worker){...});
template <typename Body>
void parallel_for(ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
                  Schedule sched, const Body& body,
                  std::uint64_t chunk = 256) {
  detail::parallel_for_impl(pool, begin, end, sched, chunk, body);
}

/// Sum-reduction over a range: each worker accumulates privately and the
/// partials are combined once — this is the "parallel reduce instead of a
/// shared atomic counter" optimization GVE-LPA applies over NetworKit.
template <typename T, typename Body>
T parallel_reduce(ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
                  Schedule sched, T init, const Body& body,
                  std::uint64_t chunk = 256) {
  std::vector<T> partial(pool.size(), T{});
  detail::parallel_for_impl(pool, begin, end, sched, chunk,
                            [&](std::uint64_t i, unsigned w) {
                              partial[w] += body(i, w);
                            });
  T total = init;
  for (const T& p : partial) total += p;
  return total;
}

}  // namespace nulpa
