#include "parallel/thread_pool.hpp"

#include <string>

#include "observe/profiler.hpp"

namespace nulpa {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads - 1);
  for (unsigned id = 1; id < threads; ++id) {
    workers_.emplace_back([this, id] { worker_loop(id); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
  // Leave the pool usable: run() still works on the caller thread, and
  // resize() can spawn a fresh set of workers against the same epoch
  // counter (the wait predicate requires a posted job, so a stale
  // seen_epoch can never mis-fire).
  std::lock_guard lock(mutex_);
  stopping_ = false;
}

void ThreadPool::resize(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  if (threads == size()) return;
  shutdown();
  workers_.reserve(threads - 1);
  for (unsigned id = 1; id < threads; ++id) {
    workers_.emplace_back([this, id] { worker_loop(id); });
  }
}

void ThreadPool::run(const std::function<void(unsigned)>& fn) {
  {
    std::lock_guard lock(mutex_);
    job_ = &fn;
    remaining_ = static_cast<unsigned>(workers_.size());
    ++epoch_;
  }
  start_cv_.notify_all();

  fn(0);  // caller participates as worker 0

  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
}

void ThreadPool::worker_loop(unsigned id) {
  observe::set_thread_name("pool-worker-" + std::to_string(id));
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      std::unique_lock lock(mutex_);
      start_cv_.wait(lock, [&] {
        return stopping_ || (job_ != nullptr && epoch_ != seen_epoch);
      });
      if (stopping_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    {
      observe::ProfSpan span("pool.job", "worker", id);
      (*job)(id);
    }
    {
      std::lock_guard lock(mutex_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace nulpa
