// A small fork-join thread pool with OpenMP-style loop schedules. The
// multicore baselines (NetworKit-style PLP, GVE-LPA) are written against
// this runtime so their scheduling behaviour (static / dynamic / guided)
// matches the implementations the paper compares against.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nulpa {

class ThreadPool {
 public:
  /// `threads == 0` picks the hardware concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;  // +1: caller thread
  }

  /// Runs `fn(worker_id)` on every worker (including the calling thread,
  /// which acts as worker 0) and blocks until all complete. Exceptions in
  /// workers terminate (parallel regions must not throw), matching OpenMP.
  void run(const std::function<void(unsigned)>& fn);

  /// Joins every background worker and leaves the pool at size() == 1 (the
  /// caller thread). run() remains valid afterwards — jobs just execute on
  /// the caller alone. Must not be called from inside run().
  void shutdown();

  /// Re-targets the pool at `threads` total workers (0 = hardware
  /// concurrency). A no-op when the size already matches; otherwise joins
  /// the old workers before spawning the new set, so no worker leaks and
  /// no job can race the reconfiguration. Must not be called from inside
  /// run().
  void resize(unsigned threads);

  /// A process-wide pool sized to the hardware; used by baselines unless a
  /// specific pool is supplied. resize() it to honour a --threads flag.
  static ThreadPool& global();

 private:
  void worker_loop(unsigned id);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  unsigned remaining_ = 0;
  bool stopping_ = false;
};

}  // namespace nulpa
