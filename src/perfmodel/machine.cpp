#include "perfmodel/machine.hpp"

#include <algorithm>

namespace nulpa {

MachineModel a100() {
  return {
      .name = "NVIDIA A100 (modeled)",
      .mem_bandwidth_Bps = 1.935e12,    // spec HBM2e bandwidth
      .random_access_per_s = 6.0e10,    // ~32B transactions at ~0.5 eff.
      .atomic_per_s = 2.0e10,           // global atomics, moderate contention
      .transactions_per_s = 2.0e11,     // LSU issue slots across 108 SMs
      .kernel_launch_s = 4.0e-6,
      .hardware_threads = 108 * 64,
      .sm_clock_hz = 1.41e9,            // boost clock
      .sm_count = 108,
  };
}

MachineModel xeon_gold_6226r_dual() {
  return {
      .name = "2x Xeon Gold 6226R (modeled)",
      .mem_bandwidth_Bps = 2.8e11,   // ~140 GB/s per socket
      .random_access_per_s = 2.4e9,  // ~75ns DRAM latency x 32 cores x MLP
      .atomic_per_s = 1.0e9,
      .transactions_per_s = 1.0e10,  // cache-line fills the cores can issue
      .kernel_launch_s = 0.0,
      .hardware_threads = 32,
      .sm_clock_hz = 2.9e9,          // core clock; "SM" = core here
      .sm_count = 32,
  };
}

GpuCostBreakdown modeled_gpu_breakdown(const MachineModel& m,
                                       const simt::PerfCounters& c) {
  GpuCostBreakdown b;
  // Streaming traffic. When the run tracked addresses (global_transactions
  // > 0), tracked accesses are charged at *measured* granularity: only
  // cache-missing transactions reach DRAM, each moving its coalesced size
  // (the 32/64/128B histogram average). Untracked accesses — and the whole
  // stream when tracking was off — fall back to the word-count model
  // (labels/weights are 32-bit words, Section 5.1.2), which keeps the
  // modeled times of host-only algorithms (Gunrock-style LPA, Louvain)
  // unchanged.
  const std::uint64_t words = c.global_loads + c.global_stores;
  const std::uint64_t untracked = words - std::min(c.tracked_accesses, words);
  double bytes = 4.0 * static_cast<double>(untracked);
  if (c.global_transactions > 0) {
    const double avg_txn_bytes =
        (32.0 * static_cast<double>(c.txn_32b) +
         64.0 * static_cast<double>(c.txn_64b) +
         128.0 * static_cast<double>(c.txn_128b)) /
        static_cast<double>(c.global_transactions);
    bytes += avg_txn_bytes * static_cast<double>(c.cache_misses);
    // Pipeline term: prefer the scoreboard replay's cycle accounting —
    // makespan cycles across the blocks, spread over the modeled SMs at
    // the SM clock. Counters recorded before the scoreboard existed have
    // modeled_cycles == 0; keep the old one-slot-per-transaction charge
    // for those so legacy traces still total sensibly.
    if (c.modeled_cycles > 0 && m.sm_clock_hz > 0.0 && m.sm_count > 0) {
      b.pipeline_s = static_cast<double>(c.modeled_cycles) /
                     (m.sm_clock_hz * static_cast<double>(m.sm_count));
    } else {
      b.pipeline_s = static_cast<double>(c.global_transactions) /
                     m.transactions_per_s;
    }
  }
  b.stream_s = bytes / m.mem_bandwidth_Bps;

  // Every hash insert is one random access; every extra probe is another,
  // and divergent re-probes serialize the warp, so they cost ~2x.
  const double random =
      static_cast<double>(c.hash_inserts) +
      2.0 * static_cast<double>(c.hash_probes + 8 * c.hash_fallbacks);
  b.random_s = random / m.random_access_per_s;

  b.atomic_s = static_cast<double>(c.atomic_ops) / m.atomic_per_s;

  b.launch_s = static_cast<double>(c.kernel_launches) * m.kernel_launch_s;

  // Shared memory runs an order of magnitude faster than HBM on the A100
  // (aggregate ~19 TB/s): charge it separately so shared-table variants
  // model correctly.
  const double shared_bytes =
      4.0 * static_cast<double>(c.shared_loads + c.shared_stores);
  b.shared_s = shared_bytes / 1.6e13;
  return b;
}

double modeled_gpu_seconds(const MachineModel& m,
                           const simt::PerfCounters& c) {
  // Additive bottleneck model: streaming traffic, dependent random
  // accesses (hashtable probes serialize divergent warps and cannot hide
  // behind the streams), and atomics each contribute.
  return modeled_gpu_breakdown(m, c).total();
}

double modeled_gpu_seconds_from_work(const MachineModel& m,
                                     std::uint64_t edges_scanned,
                                     int kernel_launches,
                                     double words_per_edge,
                                     double random_per_edge) {
  const double bytes = 4.0 * words_per_edge * static_cast<double>(edges_scanned);
  const double t_stream = bytes / m.mem_bandwidth_Bps;
  const double t_random = random_per_edge *
                          static_cast<double>(edges_scanned) /
                          m.random_access_per_s;
  return kernel_launches * m.kernel_launch_s + std::max(t_stream, t_random);
}

double modeled_cpu_seconds(double single_thread_seconds, unsigned threads,
                           double efficiency) {
  if (threads <= 1 || efficiency <= 0.0) return single_thread_seconds;
  const double speedup = 1.0 + (threads - 1) * efficiency;
  return single_thread_seconds / speedup;
}

}  // namespace nulpa
