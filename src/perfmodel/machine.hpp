// Analytic machine models that turn simulator counters into modeled wall-
// clock time. This is the documented substitution for running on the
// paper's A100 / dual-Xeon testbed — see DESIGN.md ("Hardware
// substitutions") and EXPERIMENTS.md for how modeled times are reported.
#pragma once

#include <string>

#include "simt/counters.hpp"

namespace nulpa {

/// Throughput-oriented description of a machine. Rates are deliberately
/// round, spec-sheet-derived numbers; the model is for *relative* shape,
/// not absolute prediction.
struct MachineModel {
  std::string name;
  double mem_bandwidth_Bps;    // streaming global/DRAM bandwidth
  double random_access_per_s;  // independent random word accesses / s
  double atomic_per_s;         // global atomic RMWs / s
  double transactions_per_s;   // coalesced global-memory transactions / s
  double kernel_launch_s;      // host->device launch latency
  unsigned hardware_threads;   // cores (CPU) or SMs*warps heuristic (GPU)
  double sm_clock_hz;          // SM core clock the cycle counters tick at
  unsigned sm_count;           // concurrent SMs sharing the modeled work
};

/// NVIDIA A100-SXM4-80GB: 1935 GB/s HBM2e, 108 SMs (Section 5.1.1).
MachineModel a100();

/// Dual Intel Xeon Gold 6226R (2 x 16 cores @ 2.9 GHz), the paper's CPU box.
MachineModel xeon_gold_6226r_dual();

/// Per-resource components of a modeled GPU kernel time: launch overhead,
/// streaming traffic, dependent random accesses, atomics, and shared-memory
/// traffic. The trace layer emits these per iteration so a reviewer can see
/// which resource binds where inside a run, not just the end-of-run total.
struct GpuCostBreakdown {
  double launch_s = 0.0;
  double stream_s = 0.0;
  double random_s = 0.0;
  double atomic_s = 0.0;
  double shared_s = 0.0;
  // Memory-pipeline occupancy: the scoreboard replay's modeled_cycles
  // (issue slots plus the latency the warp scheduler could NOT hide behind
  // other warps) converted to seconds at the SM clock and divided across
  // the modeled SM count. This replaces the old additive `txn_s` term —
  // one slot per transaction regardless of overlap — with an
  // overlap-aware pipeline term: well-overlapped kernels pay close to
  // pure issue occupancy, latency-bound kernels pay their exposed stalls.
  // When the run tracked addresses but the cycle counters are absent
  // (older traces), it falls back to transactions / transactions_per_s;
  // zero when the run did not track addresses at all.
  double pipeline_s = 0.0;

  [[nodiscard]] double total() const {
    return launch_s + stream_s + random_s + atomic_s + shared_s +
           pipeline_s;
  }
};

GpuCostBreakdown modeled_gpu_breakdown(const MachineModel& m,
                                       const simt::PerfCounters& c);

/// Modeled GPU kernel time from simulator counters: launch overhead plus
/// the largest of the bandwidth, random-access, and atomic bottlenecks
/// (graph kernels are memory-bound, so the binding resource dominates).
/// Hash probes beyond the first slot serialize divergent warps, so they are
/// charged as additional random accesses with a divergence factor.
/// Equals modeled_gpu_breakdown(m, c).total().
double modeled_gpu_seconds(const MachineModel& m,
                           const simt::PerfCounters& c);

/// Scales a single-thread CPU measurement to `threads` workers with the
/// given parallel efficiency — how we model the paper's 32-core runs of
/// NetworKit / GVE-LPA from this host's one core.
double modeled_cpu_seconds(double single_thread_seconds, unsigned threads,
                           double efficiency);

/// Modeled GPU time for an algorithm we only have as host code (the
/// Gunrock-style LPA and the Louvain stand-in for cuGraph): derives memory
/// traffic from the algorithm-level work counters. `words_per_edge` is the
/// average global-memory words touched per scanned edge (≈3 for LPA's
/// read-label/read-weight/update pattern; ~16 for Gunrock's segmented-sort
/// label aggregation — several radix passes over the edge list; ~16+ for
/// Louvain, which also builds aggregated graphs). `random_per_edge` is the
/// average dependent random accesses per edge (per-edge hashmap work in
/// Louvain's local moving).
double modeled_gpu_seconds_from_work(const MachineModel& m,
                                     std::uint64_t edges_scanned,
                                     int kernel_launches,
                                     double words_per_edge,
                                     double random_per_edge = 0.0);

}  // namespace nulpa
