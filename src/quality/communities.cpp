#include "quality/communities.hpp"

#include <unordered_map>

namespace nulpa {

bool is_valid_membership(const Graph& g, std::span<const Vertex> labels) {
  if (labels.size() != g.num_vertices()) return false;
  for (const Vertex c : labels) {
    if (c >= g.num_vertices()) return false;
  }
  return true;
}

Vertex count_communities(std::span<const Vertex> labels) {
  std::unordered_map<Vertex, Vertex> seen;
  seen.reserve(labels.size() / 4 + 1);
  for (const Vertex c : labels) seen.emplace(c, 0);
  return static_cast<Vertex>(seen.size());
}

Vertex compact_labels(std::span<Vertex> labels) {
  std::unordered_map<Vertex, Vertex> remap;
  remap.reserve(labels.size() / 4 + 1);
  for (Vertex& c : labels) {
    const auto [it, inserted] =
        remap.emplace(c, static_cast<Vertex>(remap.size()));
    c = it->second;
  }
  return static_cast<Vertex>(remap.size());
}

std::vector<Vertex> community_sizes(std::span<const Vertex> labels) {
  std::vector<Vertex> compact(labels.begin(), labels.end());
  const Vertex k = compact_labels(compact);
  std::vector<Vertex> sizes(k, 0);
  for (const Vertex c : compact) ++sizes[c];
  return sizes;
}

bool same_partition(std::span<const Vertex> a, std::span<const Vertex> b) {
  if (a.size() != b.size()) return false;
  std::unordered_map<Vertex, Vertex> a_to_b;
  std::unordered_map<Vertex, Vertex> b_to_a;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (const auto [it, ins] = a_to_b.emplace(a[i], b[i]);
        !ins && it->second != b[i]) {
      return false;
    }
    if (const auto [it, ins] = b_to_a.emplace(b[i], a[i]);
        !ins && it->second != a[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace nulpa
