// Community-membership utilities shared by the algorithms, tests, and
// benches: validation, compaction, size statistics.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace nulpa {

/// True when `labels` has one entry per vertex and every label is a valid
/// vertex id (LPA labels are always vertex ids of community "leaders").
bool is_valid_membership(const Graph& g, std::span<const Vertex> labels);

/// Number of distinct communities.
Vertex count_communities(std::span<const Vertex> labels);

/// Renumbers labels to the dense range [0, k) preserving community identity;
/// returns k. Order of first appearance determines the new ids, so the
/// mapping is deterministic.
Vertex compact_labels(std::span<Vertex> labels);

/// Vertices per community, indexed by compacted label id.
std::vector<Vertex> community_sizes(std::span<const Vertex> labels);

/// True when both memberships induce the same partition of the vertex set
/// (label values may differ).
bool same_partition(std::span<const Vertex> a, std::span<const Vertex> b);

}  // namespace nulpa
