#include "quality/metrics.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "quality/communities.hpp"

namespace nulpa {

double adjusted_rand_index(std::span<const Vertex> a,
                           std::span<const Vertex> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("ARI: size mismatch");
  }
  const auto n = static_cast<double>(a.size());
  if (a.size() < 2) return 1.0;

  std::vector<Vertex> ca(a.begin(), a.end());
  std::vector<Vertex> cb(b.begin(), b.end());
  const Vertex ka = compact_labels(ca);
  const Vertex kb = compact_labels(cb);

  std::vector<double> row(ka, 0.0), col(kb, 0.0);
  std::map<std::pair<Vertex, Vertex>, double> cell;
  for (std::size_t i = 0; i < a.size(); ++i) {
    row[ca[i]] += 1.0;
    col[cb[i]] += 1.0;
    cell[{ca[i], cb[i]}] += 1.0;
  }

  auto choose2 = [](double x) { return x * (x - 1.0) / 2.0; };
  double sum_cells = 0.0;
  for (const auto& [key, c] : cell) sum_cells += choose2(c);
  double sum_rows = 0.0;
  for (const double r : row) sum_rows += choose2(r);
  double sum_cols = 0.0;
  for (const double c : col) sum_cols += choose2(c);

  const double expected = sum_rows * sum_cols / choose2(n);
  const double max_index = 0.5 * (sum_rows + sum_cols);
  if (max_index == expected) return 1.0;  // both partitions trivial
  return (sum_cells - expected) / (max_index - expected);
}

double coverage(const Graph& g, std::span<const Vertex> labels) {
  if (!is_valid_membership(g, labels)) {
    throw std::invalid_argument("coverage: invalid membership");
  }
  const double total = 2.0 * g.total_weight();
  if (total == 0.0) return 1.0;
  double intra = 0.0;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto wts = g.weights_of(u);
    for (std::size_t e = 0; e < nbrs.size(); ++e) {
      if (labels[u] == labels[nbrs[e]]) intra += wts[e];
    }
  }
  return intra / total;
}

double edge_cut(const Graph& g, std::span<const Vertex> labels) {
  if (!is_valid_membership(g, labels)) {
    throw std::invalid_argument("edge_cut: invalid membership");
  }
  double cut = 0.0;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto wts = g.weights_of(u);
    for (std::size_t e = 0; e < nbrs.size(); ++e) {
      if (labels[u] != labels[nbrs[e]]) cut += wts[e];
    }
  }
  return cut / 2.0;  // each undirected edge visited from both endpoints
}

double max_conductance(const Graph& g, std::span<const Vertex> labels) {
  if (!is_valid_membership(g, labels)) {
    throw std::invalid_argument("max_conductance: invalid membership");
  }
  std::vector<Vertex> compact(labels.begin(), labels.end());
  const Vertex k = compact_labels(compact);
  std::vector<double> volume(k, 0.0), cut(k, 0.0);
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto wts = g.weights_of(u);
    for (std::size_t e = 0; e < nbrs.size(); ++e) {
      volume[compact[u]] += wts[e];
      if (compact[u] != compact[nbrs[e]]) cut[compact[u]] += wts[e];
    }
  }
  const double total = 2.0 * g.total_weight();
  double worst = 0.0;
  for (Vertex c = 0; c < k; ++c) {
    const double denom = std::min(volume[c], total - volume[c]);
    if (denom > 0.0) worst = std::max(worst, cut[c] / denom);
  }
  return worst;
}

}  // namespace nulpa
