// Additional clustering-quality metrics beyond modularity and NMI:
// adjusted Rand index against ground truth, and the structural metrics
// (coverage, conductance, edge cut) partitioner users care about — the
// application the paper's conclusion targets.
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace nulpa {

/// Adjusted Rand Index between two memberships, in [-1, 1]; 1 for
/// identical partitions, ~0 for independent ones. Chance-corrected, so it
/// is stricter than NMI on skewed community sizes.
double adjusted_rand_index(std::span<const Vertex> a,
                           std::span<const Vertex> b);

/// Fraction of edge weight falling inside communities (modularity's first
/// term, without the degree-tax). In [0, 1]; 1 means no cut edges.
double coverage(const Graph& g, std::span<const Vertex> labels);

/// Total weight of edges crossing community boundaries (each undirected
/// edge counted once).
double edge_cut(const Graph& g, std::span<const Vertex> labels);

/// Maximum conductance over all communities: cut(C) / min(vol(C),
/// vol(V \ C)). Lower is better; in [0, 1]. Communities with zero volume
/// are skipped.
double max_conductance(const Graph& g, std::span<const Vertex> labels);

}  // namespace nulpa
