#include "quality/modularity.hpp"

#include <stdexcept>
#include <vector>

#include "quality/communities.hpp"

namespace nulpa {

double modularity(const Graph& g, std::span<const Vertex> labels) {
  if (!is_valid_membership(g, labels)) {
    throw std::invalid_argument("modularity: invalid membership vector");
  }
  const double m = g.total_weight();
  if (m <= 0.0) return 0.0;

  // sigma_c: weight of intra-community arcs (each undirected edge counted
  // twice, cancelling one factor of 2). Sigma_c: community total degree.
  std::vector<double> sigma(g.num_vertices(), 0.0);
  std::vector<double> big_sigma(g.num_vertices(), 0.0);
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    const Vertex cu = labels[u];
    const auto nbrs = g.neighbors(u);
    const auto wts = g.weights_of(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      big_sigma[cu] += wts[k];
      if (labels[nbrs[k]] == cu) sigma[cu] += wts[k];
    }
  }

  double q = 0.0;
  const double inv2m = 1.0 / (2.0 * m);
  for (Vertex c = 0; c < g.num_vertices(); ++c) {
    if (big_sigma[c] == 0.0) continue;
    const double frac = big_sigma[c] * inv2m;
    q += sigma[c] * inv2m - frac * frac;
  }
  return q;
}

double delta_modularity(double k_i_to_c, double k_i_to_d, double k_i,
                        double sigma_total_c, double sigma_total_d, double m) {
  return (k_i_to_c - k_i_to_d) / m -
         k_i * (k_i + sigma_total_c - sigma_total_d) / (2.0 * m * m);
}

}  // namespace nulpa
