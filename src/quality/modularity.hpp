// Modularity (Equation 1) and delta-modularity (Equation 2) — the fitness
// metric every experiment in the paper reports.
#pragma once

#include <span>

#include "graph/csr.hpp"

namespace nulpa {

/// Q = sum_c [ sigma_c / 2m - (Sigma_c / 2m)^2 ]  (Equation 1).
/// `labels` must be a valid membership for `g`. Runs in O(|V| + |E|).
double modularity(const Graph& g, std::span<const Vertex> labels);

/// Delta modularity of moving vertex `i` from community `d` to `c`
/// (Equation 2): (K_i->c - K_i->d)/m - K_i (K_i + Sigma_c - Sigma_d)/(2 m^2).
/// Conventions follow the equation's derivation: Sigma_d includes vertex
/// i's degree (i is still a member of d), Sigma_c does not (i has not
/// joined c yet). Verified against direct modularity recomputation in tests.
double delta_modularity(double k_i_to_c, double k_i_to_d, double k_i,
                        double sigma_total_c, double sigma_total_d, double m);

}  // namespace nulpa
