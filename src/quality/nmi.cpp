#include "quality/nmi.hpp"

#include <cmath>
#include <map>
#include <stdexcept>
#include <vector>

#include "quality/communities.hpp"

namespace nulpa {

double normalized_mutual_information(std::span<const Vertex> a,
                                     std::span<const Vertex> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("NMI: size mismatch");
  }
  const auto n = static_cast<double>(a.size());
  if (a.empty()) return 1.0;

  std::vector<Vertex> ca(a.begin(), a.end());
  std::vector<Vertex> cb(b.begin(), b.end());
  const Vertex ka = compact_labels(ca);
  const Vertex kb = compact_labels(cb);

  std::vector<double> pa(ka, 0.0), pb(kb, 0.0);
  std::map<std::pair<Vertex, Vertex>, double> joint;
  for (std::size_t i = 0; i < a.size(); ++i) {
    pa[ca[i]] += 1.0;
    pb[cb[i]] += 1.0;
    joint[{ca[i], cb[i]}] += 1.0;
  }

  auto entropy = [n](const std::vector<double>& counts) {
    double h = 0.0;
    for (const double c : counts) {
      if (c > 0.0) h -= (c / n) * std::log(c / n);
    }
    return h;
  };
  const double ha = entropy(pa);
  const double hb = entropy(pb);

  double mi = 0.0;
  for (const auto& [cell, count] : joint) {
    const double pxy = count / n;
    const double px = pa[cell.first] / n;
    const double py = pb[cell.second] / n;
    mi += pxy * std::log(pxy / (px * py));
  }

  // Identical single-community partitions have zero entropy; treat them as
  // perfectly matched.
  if (ha + hb == 0.0) return 1.0;
  return 2.0 * mi / (ha + hb);
}

}  // namespace nulpa
