// Normalized Mutual Information between two community assignments. The
// paper cites LPA's high NMI against ground truth (Peng et al.); our quality
// tests verify the same on planted partitions where truth is known.
#pragma once

#include <span>

#include "graph/csr.hpp"

namespace nulpa {

/// NMI(a, b) in [0, 1]: 1 for identical partitions, ~0 for independent
/// ones. Normalization: arithmetic mean of the entropies (the convention of
/// Danon et al., matching NetworKit). Both spans must be the same length.
double normalized_mutual_information(std::span<const Vertex> a,
                                     std::span<const Vertex> b);

}  // namespace nulpa
