// Block- and warp-level cooperative collectives built on the simulator's
// barrier primitives — the equivalents of the CUB/cooperative-groups
// helpers real CUDA kernels lean on. All participants of the block must
// call these together (like __syncthreads-based collectives on hardware).
#pragma once

#include <cstdint>

#include "simt/grid.hpp"

namespace nulpa::simt {

/// Block-wide argmax reduce: each lane contributes (key, weight); lanes
/// receive the key of the maximal weight (ties: the lowest-indexed
/// contributing lane wins, matching a left-to-right tree reduce). The
/// caller provides `scratch_keys`/`scratch_weights` spanning block_dim
/// entries of shared memory. `invalid_key` marks non-contributing lanes.
template <typename Key, typename W>
Key block_argmax(Lane& lane, Key key, W weight, Key* scratch_keys,
                 W* scratch_weights, Key invalid_key) {
  const std::uint32_t tid = lane.thread_idx();
  scratch_keys[tid] = key;
  scratch_weights[tid] = weight;
  lane.syncthreads();

  // Binary tree reduce in shared memory — log2(block_dim) rounds, exactly
  // the shape a CUDA kernel would use.
  for (std::uint32_t stride = 1; stride < lane.block_dim(); stride *= 2) {
    const std::uint32_t peer = tid + stride;
    if (tid % (2 * stride) == 0 && peer < lane.block_dim()) {
      const bool take_peer =
          scratch_keys[peer] != invalid_key &&
          (scratch_keys[tid] == invalid_key ||
           scratch_weights[peer] > scratch_weights[tid]);
      if (take_peer) {
        scratch_keys[tid] = scratch_keys[peer];
        scratch_weights[tid] = scratch_weights[peer];
      }
    }
    lane.syncthreads();
  }
  const Key winner = scratch_keys[0];
  lane.syncthreads();  // everyone reads slot 0 before it is reused
  return winner;
}

/// Block-wide sum over one value per lane; every lane receives the total.
template <typename T>
T block_sum(Lane& lane, T value, T* scratch) {
  const std::uint32_t tid = lane.thread_idx();
  scratch[tid] = value;
  lane.syncthreads();
  for (std::uint32_t stride = 1; stride < lane.block_dim(); stride *= 2) {
    const std::uint32_t peer = tid + stride;
    if (tid % (2 * stride) == 0 && peer < lane.block_dim()) {
      scratch[tid] += scratch[peer];
    }
    lane.syncthreads();
  }
  const T total = scratch[0];
  lane.syncthreads();
  return total;
}

/// Warp-wide broadcast: every lane of the warp receives `value` from the
/// warp's lane `src`. Uses one shared slot per warp.
template <typename T>
T warp_broadcast(Lane& lane, T value, std::uint32_t src, T* warp_scratch) {
  if (lane.lane_in_warp() == src) {
    warp_scratch[lane.warp()] = value;
  }
  lane.syncwarp();
  const T out = warp_scratch[lane.warp()];
  lane.syncwarp();
  return out;
}

/// Block-wide ballot: counts lanes whose predicate is true (the collective
/// CUDA's __ballot_sync + popc idiom computes).
inline std::uint32_t block_count_if(Lane& lane, bool predicate,
                                    std::uint32_t* scratch) {
  return block_sum<std::uint32_t>(lane, predicate ? 1u : 0u, scratch);
}

}  // namespace nulpa::simt
