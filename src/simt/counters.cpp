#include "simt/counters.hpp"

#include <istream>
#include <ostream>
#include <string>

namespace nulpa::simt {

namespace {

/// Field table shared by the stream inserter and extractor so the two stay
/// in sync (the round-trip property the tests pin down).
struct Field {
  const char* key;
  std::uint64_t PerfCounters::* member;
};

constexpr Field kFields[] = {
    {"loads", &PerfCounters::global_loads},
    {"stores", &PerfCounters::global_stores},
    {"sloads", &PerfCounters::shared_loads},
    {"sstores", &PerfCounters::shared_stores},
    {"atomics", &PerfCounters::atomic_ops},
    {"inserts", &PerfCounters::hash_inserts},
    {"probes", &PerfCounters::hash_probes},
    {"fallbacks", &PerfCounters::hash_fallbacks},
    {"wsyncs", &PerfCounters::warp_syncs},
    {"bsyncs", &PerfCounters::block_syncs},
    {"launches", &PerfCounters::kernel_launches},
    {"switches", &PerfCounters::fiber_switches},
    {"edges", &PerfCounters::edges_scanned},
    {"threads", &PerfCounters::threads_run},
    {"frontier", &PerfCounters::frontier_vertices},
    {"skipped", &PerfCounters::skipped_lanes},
    {"barchecks", &PerfCounters::barrier_checks},
    {"flanes", &PerfCounters::fiberless_lanes},
    {"promoted", &PerfCounters::promoted_lanes},
    {"poolhits", &PerfCounters::stack_pool_hits},
    {"zerofills", &PerfCounters::shared_zero_fills},
    {"tracked", &PerfCounters::tracked_accesses},
    {"txns", &PerfCounters::global_transactions},
    {"coalesced", &PerfCounters::coalesced_accesses},
    {"txn32", &PerfCounters::txn_32b},
    {"txn64", &PerfCounters::txn_64b},
    {"txn128", &PerfCounters::txn_128b},
    {"chits", &PerfCounters::cache_hits},
    {"cmisses", &PerfCounters::cache_misses},
    {"cycles", &PerfCounters::modeled_cycles},
    {"stallcyc", &PerfCounters::stall_cycles},
    {"hiddencyc", &PerfCounters::hidden_latency_cycles},
    {"stolen", &PerfCounters::stolen_blocks},
    {"exchlabels", &PerfCounters::exchanged_labels},
    {"exchbytes", &PerfCounters::exchange_bytes},
    {"bcastsaved", &PerfCounters::full_broadcast_labels_saved},
    {"mirrorupd", &PerfCounters::mirror_updates},
};

}  // namespace

std::ostream& operator<<(std::ostream& os, const PerfCounters& c) {
  bool first = true;
  for (const Field& f : kFields) {
    if (!first) os << ' ';
    os << f.key << '=' << c.*f.member;
    first = false;
  }
  return os;
}

std::istream& operator>>(std::istream& is, PerfCounters& c) {
  c.reset();
  // Exactly one token per field, in any order — reading a fixed count (not
  // until extraction fails) leaves the stream usable for whatever follows.
  std::string token;
  for (std::size_t n = 0; n < std::size(kFields); ++n) {
    if (!(is >> token)) return is;
    const auto eq = token.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = token.substr(0, eq);
    for (const Field& f : kFields) {
      if (key == f.key) {
        c.*f.member = std::stoull(token.substr(eq + 1));
        break;
      }
    }
  }
  return is;
}

}  // namespace nulpa::simt
