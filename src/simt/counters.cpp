#include "simt/counters.hpp"

#include <ostream>

namespace nulpa::simt {

std::ostream& operator<<(std::ostream& os, const PerfCounters& c) {
  os << "loads=" << c.global_loads << " stores=" << c.global_stores
     << " atomics=" << c.atomic_ops << " probes=" << c.hash_probes
     << " inserts=" << c.hash_inserts << " fallbacks=" << c.hash_fallbacks
     << " edges=" << c.edges_scanned << " launches=" << c.kernel_launches
     << " switches=" << c.fiber_switches;
  return os;
}

}  // namespace nulpa::simt
