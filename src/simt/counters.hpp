// Hardware-event counters the simulator gathers while kernels run. These
// are the inputs to the analytic cost model (src/perfmodel) that stands in
// for A100 wall-clock time — see DESIGN.md.
#pragma once

#include <cstdint>
#include <iosfwd>

namespace nulpa::simt {

struct PerfCounters {
  // Memory traffic the kernels declare (words touched).
  std::uint64_t global_loads = 0;
  std::uint64_t global_stores = 0;
  std::uint64_t shared_loads = 0;   // per-SM shared memory (fast path)
  std::uint64_t shared_stores = 0;
  // Atomic RMW operations (CAS + add).
  std::uint64_t atomic_ops = 0;
  // Hashtable activity (probe = extra slot inspection after a collision).
  std::uint64_t hash_inserts = 0;
  std::uint64_t hash_probes = 0;
  std::uint64_t hash_fallbacks = 0;
  // Control flow.
  std::uint64_t warp_syncs = 0;
  std::uint64_t block_syncs = 0;
  std::uint64_t kernel_launches = 0;
  std::uint64_t fiber_switches = 0;
  // Algorithm-level work.
  std::uint64_t edges_scanned = 0;
  std::uint64_t threads_run = 0;
  // Frontier compaction: active vertices launched through compacted
  // worklists, and lanes never spawned because compaction dropped the
  // inactive entries they would have covered.
  std::uint64_t frontier_vertices = 0;
  std::uint64_t skipped_lanes = 0;
  // Barrier-release verdicts reached by the O(1) arrival counters — each
  // of these would have been a lane rescan in the pre-session scheduler.
  std::uint64_t barrier_checks = 0;
  // Executor modes: lanes that ran start-to-finish inline with no fiber,
  // lanes lazily promoted onto a fiber at their first blocking collective,
  // stack-pool checkouts served from the free list, and shared-arena
  // zero-fills actually performed (dirty slots only).
  std::uint64_t fiberless_lanes = 0;
  std::uint64_t promoted_lanes = 0;
  std::uint64_t stack_pool_hits = 0;
  std::uint64_t shared_zero_fills = 0;
  // Memory-hierarchy model (simt/mem.hpp): accesses issued through the
  // address-tracking dev_load/dev_store path, the 32/64/128B transactions
  // the per-warp coalescer grouped them into (with a size histogram),
  // accesses that merged into a line an earlier lane of their issue window
  // already opened, and the data-cache verdict per transaction. All zero
  // when ExecPolicy::track_memory is off.
  std::uint64_t tracked_accesses = 0;
  std::uint64_t global_transactions = 0;
  std::uint64_t coalesced_accesses = 0;
  std::uint64_t txn_32b = 0;
  std::uint64_t txn_64b = 0;
  std::uint64_t txn_128b = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  // Pipelined warp scheduler (simt/scoreboard.hpp): per-block SM-cycle
  // makespans summed over all blocks, the cycles the issue pipe sat idle
  // waiting on outstanding memory, and the latency cycles that overlapped
  // with other warps' issue instead of stalling. With the scoreboard off
  // the issue replay is fully serialized, so modeled_cycles grows by
  // hidden_latency_cycles and stall_cycles absorbs it — the exact identity
  // tests/pipeline_test.cpp pins down. All zero when track_memory is off.
  std::uint64_t modeled_cycles = 0;
  std::uint64_t stall_cycles = 0;
  std::uint64_t hidden_latency_cycles = 0;
  // Freerun parallel backend: resident blocks an idle shard adopted from
  // the heaviest shard mid-flight (always 0 in deterministic mode).
  std::uint64_t stolen_blocks = 0;
  // Multi-device delta exchange (src/comm): labels actually packed into
  // inter-shard messages, the wire bytes those messages cost under the
  // selected DataCommMode, the labels a naive full-mirror broadcast would
  // have sent but the changed-bitset filter dropped, and the mirror-copy
  // writes applied on the receiving side. All zero for single-shard runs.
  std::uint64_t exchanged_labels = 0;
  std::uint64_t exchange_bytes = 0;
  std::uint64_t full_broadcast_labels_saved = 0;
  std::uint64_t mirror_updates = 0;

  void reset() { *this = PerfCounters{}; }

  /// Copy of the current totals; subtract two snapshots for a span delta.
  [[nodiscard]] PerfCounters snapshot() const { return *this; }

  PerfCounters& operator+=(const PerfCounters& o) {
    global_loads += o.global_loads;
    global_stores += o.global_stores;
    shared_loads += o.shared_loads;
    shared_stores += o.shared_stores;
    atomic_ops += o.atomic_ops;
    hash_inserts += o.hash_inserts;
    hash_probes += o.hash_probes;
    hash_fallbacks += o.hash_fallbacks;
    warp_syncs += o.warp_syncs;
    block_syncs += o.block_syncs;
    kernel_launches += o.kernel_launches;
    fiber_switches += o.fiber_switches;
    edges_scanned += o.edges_scanned;
    threads_run += o.threads_run;
    frontier_vertices += o.frontier_vertices;
    skipped_lanes += o.skipped_lanes;
    barrier_checks += o.barrier_checks;
    fiberless_lanes += o.fiberless_lanes;
    promoted_lanes += o.promoted_lanes;
    stack_pool_hits += o.stack_pool_hits;
    shared_zero_fills += o.shared_zero_fills;
    tracked_accesses += o.tracked_accesses;
    global_transactions += o.global_transactions;
    coalesced_accesses += o.coalesced_accesses;
    txn_32b += o.txn_32b;
    txn_64b += o.txn_64b;
    txn_128b += o.txn_128b;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    modeled_cycles += o.modeled_cycles;
    stall_cycles += o.stall_cycles;
    hidden_latency_cycles += o.hidden_latency_cycles;
    stolen_blocks += o.stolen_blocks;
    exchanged_labels += o.exchanged_labels;
    exchange_bytes += o.exchange_bytes;
    full_broadcast_labels_saved += o.full_broadcast_labels_saved;
    mirror_updates += o.mirror_updates;
    return *this;
  }

  /// Per-span delta: `later -= earlier` is the work done between two
  /// snapshots (the per-iteration quantities the trace layer records).
  /// Subtraction saturates at zero: counters normally only grow, but a
  /// reset() between the two snapshots would otherwise wrap every field to
  /// a huge unsigned value and poison any trace or report built from the
  /// delta.
  PerfCounters& operator-=(const PerfCounters& o) {
    const auto sub = [](std::uint64_t a, std::uint64_t b) {
      return a >= b ? a - b : std::uint64_t{0};
    };
    global_loads = sub(global_loads, o.global_loads);
    global_stores = sub(global_stores, o.global_stores);
    shared_loads = sub(shared_loads, o.shared_loads);
    shared_stores = sub(shared_stores, o.shared_stores);
    atomic_ops = sub(atomic_ops, o.atomic_ops);
    hash_inserts = sub(hash_inserts, o.hash_inserts);
    hash_probes = sub(hash_probes, o.hash_probes);
    hash_fallbacks = sub(hash_fallbacks, o.hash_fallbacks);
    warp_syncs = sub(warp_syncs, o.warp_syncs);
    block_syncs = sub(block_syncs, o.block_syncs);
    kernel_launches = sub(kernel_launches, o.kernel_launches);
    fiber_switches = sub(fiber_switches, o.fiber_switches);
    edges_scanned = sub(edges_scanned, o.edges_scanned);
    threads_run = sub(threads_run, o.threads_run);
    frontier_vertices = sub(frontier_vertices, o.frontier_vertices);
    skipped_lanes = sub(skipped_lanes, o.skipped_lanes);
    barrier_checks = sub(barrier_checks, o.barrier_checks);
    fiberless_lanes = sub(fiberless_lanes, o.fiberless_lanes);
    promoted_lanes = sub(promoted_lanes, o.promoted_lanes);
    stack_pool_hits = sub(stack_pool_hits, o.stack_pool_hits);
    shared_zero_fills = sub(shared_zero_fills, o.shared_zero_fills);
    tracked_accesses = sub(tracked_accesses, o.tracked_accesses);
    global_transactions = sub(global_transactions, o.global_transactions);
    coalesced_accesses = sub(coalesced_accesses, o.coalesced_accesses);
    txn_32b = sub(txn_32b, o.txn_32b);
    txn_64b = sub(txn_64b, o.txn_64b);
    txn_128b = sub(txn_128b, o.txn_128b);
    cache_hits = sub(cache_hits, o.cache_hits);
    cache_misses = sub(cache_misses, o.cache_misses);
    modeled_cycles = sub(modeled_cycles, o.modeled_cycles);
    stall_cycles = sub(stall_cycles, o.stall_cycles);
    hidden_latency_cycles = sub(hidden_latency_cycles, o.hidden_latency_cycles);
    stolen_blocks = sub(stolen_blocks, o.stolen_blocks);
    exchanged_labels = sub(exchanged_labels, o.exchanged_labels);
    exchange_bytes = sub(exchange_bytes, o.exchange_bytes);
    full_broadcast_labels_saved =
        sub(full_broadcast_labels_saved, o.full_broadcast_labels_saved);
    mirror_updates = sub(mirror_updates, o.mirror_updates);
    return *this;
  }

  friend PerfCounters operator+(PerfCounters a, const PerfCounters& b) {
    return a += b;
  }
  friend PerfCounters operator-(PerfCounters a, const PerfCounters& b) {
    return a -= b;
  }
  friend bool operator==(const PerfCounters&, const PerfCounters&) = default;
};

/// Writes every field as `key=value` tokens; operator>> parses the same
/// format back (tokens may appear in any order, unknown keys are skipped).
std::ostream& operator<<(std::ostream& os, const PerfCounters& c);
std::istream& operator>>(std::istream& is, PerfCounters& c);

}  // namespace nulpa::simt
