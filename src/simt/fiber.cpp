#include "simt/fiber.hpp"

#include <cstdio>
#include <cstdlib>
#include <exception>

extern "C" void nulpa_fiber_switch(void** save_sp, void* new_sp);

// NULPA_TSAN_FIBERS is detected in fiber.hpp (grid.cpp consults it too).
#ifdef NULPA_TSAN_FIBERS
extern "C" {
void* __tsan_get_current_fiber(void);
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}
#endif

namespace nulpa::simt {

namespace {
constexpr std::uint64_t kCanary = 0xdeadbeefcafef00dULL;
thread_local Fiber* t_current = nullptr;
}  // namespace

void fiber_trampoline_entry() {
  Fiber* f = t_current;
  // Kernels must not throw: an exception escaping a fiber would unwind into
  // a hand-crafted stack frame. Fail fast with a diagnostic instead.
  try {
    f->entry_(f->arg_);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "simt: exception escaped kernel fiber: %s\n",
                 e.what());
    std::abort();
  } catch (...) {
    std::fprintf(stderr, "simt: unknown exception escaped kernel fiber\n");
    std::abort();
  }
  // entry_() may have handed this stack to a different Fiber (lazy
  // promotion); the identity that must finish is whoever owns it now.
  f = t_current;
  f->finished_ = true;
#ifdef NULPA_TSAN_FIBERS
  // Retire the TSAN context as soon as the logical thread ends: TSAN's
  // registry recycles destroyed contexts but holds only ~8k live ones, so
  // contexts must not linger on finished lanes waiting for a re-arming.
  __tsan_switch_to_fiber(f->tsan_sched_, 0);
  if (f->tsan_fiber_ != nullptr) {
    __tsan_destroy_fiber(f->tsan_fiber_);
    f->tsan_fiber_ = nullptr;
  }
#endif
  nulpa_fiber_switch(&f->sp_, f->sched_sp_);
  // A finished fiber must never be resumed.
  std::fprintf(stderr, "simt: finished fiber resumed\n");
  std::abort();
}

namespace {
// The trampoline is entered via `ret`, i.e. as if it were a function with
// no caller; it reads its Fiber from the thread-local set by resume().
void trampoline_thunk() { fiber_trampoline_entry(); }
}  // namespace

Fiber::~Fiber() {
#ifdef NULPA_TSAN_FIBERS
  if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
#endif
}

void Fiber::init(void* stack_base, std::size_t stack_bytes, Entry entry,
                 void* arg) {
  entry_ = entry;
  arg_ = arg;
  finished_ = false;
#ifdef NULPA_TSAN_FIBERS
  // Fresh TSAN context per arming: the previous occupant's happens-before
  // clocks must not leak into the new logical thread.
  if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
  tsan_fiber_ = __tsan_create_fiber(0);
#endif

  // Guard word at the low end of the stack (stacks grow down).
  canary_ = static_cast<std::uint64_t*>(stack_base);
  *canary_ = kCanary;

  // Build the initial frame fiber_switch() will consume: six callee-saved
  // register slots, then the return address (our trampoline) at a
  // 16-byte-aligned position so the trampoline observes the standard
  // rsp % 16 == 8 at function entry.
  auto top = reinterpret_cast<std::uintptr_t>(stack_base) + stack_bytes;
  top &= ~static_cast<std::uintptr_t>(15);
  auto* frame = reinterpret_cast<std::uint64_t*>(top);
  frame[-1] = 0;  // fake caller frame keeps the retaddr slot 16-aligned
  frame[-2] = reinterpret_cast<std::uint64_t>(&trampoline_thunk);
  for (int i = 3; i <= 8; ++i) frame[-i] = 0;  // rbp, rbx, r12..r15
  sp_ = frame - 8;
}

void Fiber::resume() {
  Fiber* prev = t_current;
  t_current = this;
#ifdef NULPA_TSAN_FIBERS
  tsan_sched_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
  nulpa_fiber_switch(&sched_sp_, sp_);
  t_current = prev;
}

void Fiber::yield() {
  Fiber* f = t_current;
#ifdef NULPA_TSAN_FIBERS
  __tsan_switch_to_fiber(f->tsan_sched_, 0);
#endif
  nulpa_fiber_switch(&f->sp_, f->sched_sp_);
}

void Fiber::handoff(Fiber& to) {
  Fiber* donor = t_current;
  // `to` inherits the running stack wholesale: the scheduler return point,
  // the canary, and the entry/arg the trampoline will consult when the
  // transplanted frames eventually return. The donor keeps nothing — it is
  // finished the moment control leaves this frame, and its canary is
  // detached so stack_intact() stays true after the stack changes owner.
  to.sched_sp_ = donor->sched_sp_;
  to.canary_ = donor->canary_;
  to.entry_ = donor->entry_;
  to.arg_ = donor->arg_;
  to.finished_ = false;
  donor->finished_ = true;
  donor->canary_ = nullptr;
#ifdef NULPA_TSAN_FIBERS
  // The TSAN identity follows the stack: `to` adopts the donor's context
  // (its own stale one, if any, is retired first).
  if (to.tsan_fiber_ != nullptr) __tsan_destroy_fiber(to.tsan_fiber_);
  to.tsan_fiber_ = donor->tsan_fiber_;
  to.tsan_sched_ = donor->tsan_sched_;
  donor->tsan_fiber_ = nullptr;
#endif
  t_current = &to;
  // Suspend as the new identity: saved sp lands in `to`, control returns
  // to whoever resumed the donor. The next to.resume() continues here.
#ifdef NULPA_TSAN_FIBERS
  __tsan_switch_to_fiber(to.tsan_sched_, 0);
#endif
  nulpa_fiber_switch(&to.sp_, to.sched_sp_);
}

Fiber* Fiber::current() noexcept { return t_current; }

bool Fiber::stack_intact() const noexcept {
  return canary_ == nullptr || *canary_ == kCanary;
}

}  // namespace nulpa::simt
