// User-level cooperative fibers — one per simulated GPU thread. A fiber
// runs until it yields (at a simulated barrier) or its entry returns; the
// scheduler in grid.cpp decides who runs next. The context switch is ~20
// instructions of assembly (fiber_switch.S), fast enough to simulate tens
// of millions of warp-synchronous steps per second on one host core.
#pragma once

#include <cstddef>
#include <cstdint>

// ThreadSanitizer needs to be told about every stack switch: without the
// fiber annotations it attributes a resumed fiber's frames to whatever the
// OS thread ran last and reports the simulator's cooperative scheduling —
// and any cross-thread fiber migration on the parallel backend — as races.
// Detected here so grid.cpp can also see it (it bounds simulated residency
// under TSAN; see ensure_capacity()).
#if defined(__SANITIZE_THREAD__)
#define NULPA_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define NULPA_TSAN_FIBERS 1
#endif
#endif

namespace nulpa::simt {

class Fiber {
 public:
  using Entry = void (*)(void*);

  Fiber() = default;
  ~Fiber();
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Arms the fiber to run `entry(arg)` on the given stack (not owned).
  /// May be called again after the fiber finishes to reuse the stack.
  void init(void* stack_base, std::size_t stack_bytes, Entry entry, void* arg);

  /// Transfers control into the fiber until it yields or finishes.
  /// Must not be called on a finished or never-initialized fiber.
  void resume();

  /// Called from inside the fiber: suspends it and returns to resume()'s
  /// caller. The next resume() continues after the yield.
  static void yield();

  /// Called from inside the currently-running fiber: transfers the running
  /// stack — with every live frame on it — to `to`, then suspends exactly
  /// like yield(). The next `to.resume()` continues after this call on the
  /// transplanted stack. This is the lazy-promotion primitive: a lane that
  /// started inline on the direct executor's stack hands that stack over
  /// and becomes an ordinary suspendable fiber, with no re-execution of the
  /// work already done. The donor Fiber object is left finished and must
  /// never be resumed again; `to` must not be a live fiber.
  static void handoff(Fiber& to);

  /// The fiber currently executing on this OS thread (nullptr outside).
  static Fiber* current() noexcept;

  [[nodiscard]] bool finished() const noexcept { return finished_; }

  /// Canary check: returns false if the guard word at the stack base was
  /// overwritten (stack overflow).
  [[nodiscard]] bool stack_intact() const noexcept;

 private:
  friend void fiber_trampoline_entry();

  void* sp_ = nullptr;        // fiber's saved stack pointer while suspended
  void* sched_sp_ = nullptr;  // scheduler's stack pointer while fiber runs
  Entry entry_ = nullptr;
  void* arg_ = nullptr;
  std::uint64_t* canary_ = nullptr;
  // ThreadSanitizer fiber identities (null outside -fsanitize=thread
  // builds): TSAN tracks each stack as its own "fiber" and must be told
  // about every context switch, or it reports the stack reuse across OS
  // threads as a race. Kept unconditionally so the layout is independent
  // of sanitizer flags.
  void* tsan_fiber_ = nullptr;  // this fiber's TSAN context
  void* tsan_sched_ = nullptr;  // resumer's TSAN context while fiber runs
  bool finished_ = true;
};

}  // namespace nulpa::simt
