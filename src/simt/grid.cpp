#include "simt/grid.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <stdexcept>

namespace nulpa::simt {

// Scheduling model (unchanged from the original scheduler, faster
// bookkeeping): blocks occupy `resident_blocks` slots (the simulated SMs);
// within a slot, lanes are resumed in thread-id order and each runs until
// its next barrier — so every lane of a warp finishes the segment before
// any lane crosses the warp barrier, which is the lockstep property the
// algorithms rely on. One outer pass steps every runnable lane of every
// resident block once; a block that drains frees its slot for the next
// block of the grid at the end of its slot's turn.

LaunchSession::LaunchSession(const LaunchConfig& cfg, PerfCounters& ctr)
    : cfg_(cfg), ctr_(ctr) {
  if (cfg.block_dim == 0) {
    throw std::invalid_argument("simt: block_dim must be > 0");
  }
  if (cfg.schedule_seed != 0) {
    shuffle_rng_ = Xoshiro256(cfg.schedule_seed);
  }
}

LaunchSession::~LaunchSession() = default;

void LaunchSession::ensure_capacity(std::uint32_t grid_dim) {
  // Never allocate more residency than the grid can use; fiber stacks
  // dominate the session's memory footprint. Buffers only ever grow, and
  // persist across run() calls — that is the point of the session.
  const std::uint32_t slots =
      std::min(std::max(1u, cfg_.resident_blocks), std::max(1u, grid_dim));
  if (slots <= slots_) return;
  const std::size_t lanes = static_cast<std::size_t>(slots) * cfg_.block_dim;
  stacks_ =
      std::make_unique_for_overwrite<std::byte[]>(lanes * cfg_.stack_bytes);
  lanes_ = std::make_unique<Lane[]>(lanes);
  shared_arena_ =
      cfg_.shared_bytes == 0
          ? nullptr
          : std::make_unique_for_overwrite<std::byte[]>(
                static_cast<std::size_t>(slots) * cfg_.shared_bytes);
  const std::uint32_t warps =
      (cfg_.block_dim + kWarpSize - 1) / kWarpSize;
  blocks_.assign(slots, ResidentBlock{});
  for (std::uint32_t s = 0; s < slots; ++s) {
    ResidentBlock& rb = blocks_[s];
    rb.first_lane = s * cfg_.block_dim;
    rb.shared = shared_arena_ == nullptr
                    ? nullptr
                    : shared_arena_.get() +
                          static_cast<std::size_t>(s) * cfg_.shared_bytes;
    rb.warp_ready.resize(warps);
    rb.warp_at_bar.resize(warps);
    rb.live_lanes.reserve(cfg_.block_dim);
  }
  slots_ = slots;
}

void LaunchSession::lane_entry(void* arg) {
  auto* lane = static_cast<Lane*>(arg);
  auto* self = static_cast<LaunchSession*>(lane->runner_context_);
  (*self->kernel_)(*lane);
}

void LaunchSession::init_block(ResidentBlock& rb, std::uint32_t block_idx) {
  rb.active = true;
  rb.block_idx = block_idx;
  rb.live = cfg_.block_dim;
  // Zero-fill the retained arena slice — the original scheduler re-ran
  // vector::assign here, reallocating per block.
  if (cfg_.shared_bytes != 0) {
    std::memset(rb.shared, 0, cfg_.shared_bytes);
  }
  rb.live_lanes.resize(cfg_.block_dim);
  std::iota(rb.live_lanes.begin(), rb.live_lanes.end(), 0u);
  for (std::size_t w = 0; w < rb.warp_ready.size(); ++w) {
    const std::uint32_t lo = static_cast<std::uint32_t>(w) * kWarpSize;
    rb.warp_ready[w] = std::min(kWarpSize, cfg_.block_dim - lo);
    rb.warp_at_bar[w] = 0;
  }
  rb.ready_total = cfg_.block_dim;
  rb.warp_bar_total = 0;
  rb.block_bar_total = 0;
  for (std::uint32_t t = 0; t < cfg_.block_dim; ++t) {
    Lane& lane = lanes_[rb.first_lane + t];
    lane.runner_context_ = this;
    lane.counters_ = &ctr_;
    lane.shared_ = rb.shared;
    lane.thread_idx_ = t;
    lane.block_idx_ = block_idx;
    lane.block_dim_ = cfg_.block_dim;
    lane.grid_dim_ = grid_dim_;
    lane.state_ = Lane::State::kReady;
    std::byte* stack =
        stacks_.get() +
        static_cast<std::size_t>(rb.first_lane + t) * cfg_.stack_bytes;
    lane.fiber_.init(stack, cfg_.stack_bytes, &lane_entry, &lane);
    ctr_.threads_run++;
  }
}

void LaunchSession::step(ResidentBlock& rb, Lane& lane) {
  ctr_.fiber_switches++;
  const std::uint32_t warp = lane.thread_idx_ / kWarpSize;
  rb.warp_ready[warp]--;
  rb.ready_total--;
  lane.fiber_.resume();
  if (!lane.fiber_.stack_intact()) {
    throw std::runtime_error(
        "simt: fiber stack overflow (raise LaunchConfig::stack_bytes)");
  }
  if (lane.fiber_.finished()) {
    lane.state_ = Lane::State::kDone;
    --rb.live;
  } else if (lane.state_ == Lane::State::kAtWarpBar) {
    rb.warp_at_bar[warp]++;
    rb.warp_bar_total++;
  } else {  // parked at the block barrier
    rb.block_bar_total++;
  }
  // The lane either finished or parked at a barrier; in both cases a
  // barrier it participates in may now be complete.
  try_release_warp(rb, warp);
  try_release_block(rb);
}

void LaunchSession::try_release_warp(ResidentBlock& rb, std::uint32_t warp) {
  if (rb.warp_ready[warp] > 0 || rb.warp_at_bar[warp] == 0) {
    ctr_.barrier_checks++;  // O(1) verdict; the old scheduler rescanned here
    return;
  }
  const std::uint32_t lo = warp * kWarpSize;
  const std::uint32_t hi = std::min(lo + kWarpSize, cfg_.block_dim);
  const std::uint32_t released = rb.warp_at_bar[warp];
  for (std::uint32_t t = lo; t < hi; ++t) {
    Lane& lane = lanes_[rb.first_lane + t];
    if (lane.state_ == Lane::State::kAtWarpBar) {
      lane.state_ = Lane::State::kReadyNext;
    }
  }
  rb.warp_at_bar[warp] = 0;
  rb.warp_ready[warp] += released;
  rb.warp_bar_total -= released;
  rb.ready_total += released;
}

void LaunchSession::try_release_block(ResidentBlock& rb) {
  if (rb.ready_total > 0 || rb.warp_bar_total > 0 ||
      rb.block_bar_total == 0) {
    ctr_.barrier_checks++;  // O(1) verdict; the old scheduler rescanned here
    return;
  }
  for (const std::uint32_t t : rb.live_lanes) {
    Lane& lane = lanes_[rb.first_lane + t];
    if (lane.state_ == Lane::State::kAtBlockBar) {
      lane.state_ = Lane::State::kReadyNext;
      rb.warp_ready[t / kWarpSize]++;
    }
  }
  rb.ready_total += rb.block_bar_total;
  rb.block_bar_total = 0;
}

void LaunchSession::run(std::uint32_t grid_dim, KernelRef kernel) {
  if (grid_dim == 0) return;
  ensure_capacity(grid_dim);
  grid_dim_ = grid_dim;
  kernel_ = &kernel;

  std::uint32_t next_block = 0;
  for (auto& rb : blocks_) {
    rb.active = false;
    if (next_block < grid_dim) init_block(rb, next_block++);
  }

  for (;;) {
    bool any_active = false;
    bool progress = false;
    for (std::size_t s = 0; s < blocks_.size(); ++s) {
      ResidentBlock& rb = blocks_[s];
      if (!rb.active) continue;
      any_active = true;
      if (cfg_.schedule_seed != 0) {
        // Fuzzed warp scheduling: resume live lanes in a fresh random
        // order each pass. Fisher-Yates with the seeded generator.
        for (std::size_t i = rb.live_lanes.size(); i > 1; --i) {
          std::swap(rb.live_lanes[i - 1],
                    rb.live_lanes[shuffle_rng_.next_bounded(i)]);
        }
      }
      const std::uint32_t live_before = rb.live;
      for (const std::uint32_t t : rb.live_lanes) {
        Lane& lane = lanes_[rb.first_lane + t];
        if (lane.state_ != Lane::State::kReady) continue;
        step(rb, lane);
        progress = true;
      }
      // Lanes a barrier released this pass become runnable next pass (see
      // Lane::State::kReadyNext). Under the default thread-order schedule
      // they were all stepped before the release, so this changes nothing;
      // under fuzzed orders it keeps the phases strict.
      for (const std::uint32_t t : rb.live_lanes) {
        Lane& lane = lanes_[rb.first_lane + t];
        if (lane.state_ == Lane::State::kReadyNext) {
          lane.state_ = Lane::State::kReady;
        }
      }
      if (rb.live != live_before) {
        // Drop drained lanes so later passes never revisit Done fibers.
        std::erase_if(rb.live_lanes, [&](std::uint32_t t) {
          return lanes_[rb.first_lane + t].state_ == Lane::State::kDone;
        });
      }
      if (rb.live == 0) {
        rb.active = false;
        if (next_block < grid_dim_) {
          init_block(rb, next_block++);
          progress = true;
        }
      }
    }
    if (!any_active) break;
    if (!progress) {
      kernel_ = nullptr;
      throw std::runtime_error(
          "simt: barrier deadlock — lanes waiting on a barrier no peer "
          "will reach");
    }
  }
  kernel_ = nullptr;
}

void Lane::syncwarp() {
  counters().warp_syncs++;
  state_ = State::kAtWarpBar;
  Fiber::yield();
}

void Lane::syncthreads() {
  counters().block_syncs++;
  state_ = State::kAtBlockBar;
  Fiber::yield();
}

std::byte* Lane::shared() const noexcept { return shared_; }

PerfCounters& Lane::counters() const noexcept { return *counters_; }

void launch(std::uint32_t grid_dim, const LaunchConfig& cfg, PerfCounters& ctr,
            KernelRef kernel) {
  if (cfg.block_dim == 0) {
    throw std::invalid_argument("simt::launch: block_dim must be > 0");
  }
  ctr.kernel_launches++;
  if (grid_dim == 0) return;
  LaunchSession session(cfg, ctr);
  session.run(grid_dim, kernel);
}

}  // namespace nulpa::simt
