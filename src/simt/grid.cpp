#include "simt/grid.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace nulpa::simt {

/// Runs one grid. Blocks are scheduled onto `resident_blocks` slots (the
/// simulated SMs); within a slot, lanes are resumed in thread-id order and
/// each runs until its next barrier — so every lane of a warp finishes the
/// segment before any lane crosses the warp barrier, which is the lockstep
/// property the algorithms rely on.
class Scheduler {
 public:
  Scheduler(std::uint32_t grid_dim, const LaunchConfig& cfg, PerfCounters& ctr,
            const Kernel& kernel)
      : grid_dim_(grid_dim), cfg_(cfg), ctr_(ctr), kernel_(kernel) {
    // Never allocate more residency than the grid can use; fiber stacks
    // dominate the scheduler's memory footprint.
    const std::uint32_t slots =
        std::min(std::max(1u, cfg.resident_blocks), std::max(1u, grid_dim));
    const std::size_t lanes = static_cast<std::size_t>(slots) * cfg.block_dim;
    stacks_ = std::make_unique_for_overwrite<std::byte[]>(
        lanes * cfg.stack_bytes);
    lanes_ = std::make_unique<Lane[]>(lanes);
    blocks_.resize(slots);
    lane_order_.resize(cfg.block_dim);
    std::iota(lane_order_.begin(), lane_order_.end(), 0u);
    if (cfg.schedule_seed != 0) {
      shuffle_rng_ = Xoshiro256(cfg.schedule_seed);
    }
  }

  void run() {
    std::uint32_t next_block = 0;
    for (auto& rb : blocks_) {
      rb.active = false;
      if (next_block < grid_dim_) init_block(rb, next_block++);
    }

    for (;;) {
      bool any_active = false;
      bool progress = false;
      for (std::size_t s = 0; s < blocks_.size(); ++s) {
        ResidentBlock& rb = blocks_[s];
        if (!rb.active) continue;
        any_active = true;
        if (cfg_.schedule_seed != 0) {
          // Fuzzed warp scheduling: resume lanes in a fresh random order
          // each pass. Fisher-Yates with the seeded generator.
          for (std::size_t i = lane_order_.size(); i > 1; --i) {
            std::swap(lane_order_[i - 1],
                      lane_order_[shuffle_rng_.next_bounded(i)]);
          }
        }
        for (const std::uint32_t t : lane_order_) {
          Lane& lane = lanes_[rb.first_lane + t];
          if (lane.state_ != Lane::State::kReady) continue;
          step(rb, lane);
          progress = true;
        }
        if (rb.live == 0) {
          rb.active = false;
          if (next_block < grid_dim_) {
            init_block(rb, next_block++);
            progress = true;
          }
        }
      }
      if (!any_active) return;
      if (!progress) {
        throw std::runtime_error(
            "simt: barrier deadlock — lanes waiting on a barrier no peer "
            "will reach");
      }
    }
  }

 private:
  struct ResidentBlock {
    bool active = false;
    std::uint32_t block_idx = 0;
    std::uint32_t first_lane = 0;
    std::uint32_t live = 0;  // lanes not yet Done
    std::vector<std::byte> shared;
  };

  static void lane_entry(void* arg) {
    auto* lane = static_cast<Lane*>(arg);
    auto* self = static_cast<Scheduler*>(lane->runner_context_);
    self->kernel_(*lane);
  }

  void init_block(ResidentBlock& rb, std::uint32_t block_idx) {
    const auto slot = static_cast<std::uint32_t>(&rb - blocks_.data());
    rb.active = true;
    rb.block_idx = block_idx;
    rb.first_lane = slot * cfg_.block_dim;
    rb.live = cfg_.block_dim;
    rb.shared.assign(cfg_.shared_bytes, std::byte{0});
    for (std::uint32_t t = 0; t < cfg_.block_dim; ++t) {
      Lane& lane = lanes_[rb.first_lane + t];
      lane.runner_context_ = this;
      lane.counters_ = &ctr_;
      lane.shared_ = rb.shared.data();
      lane.thread_idx_ = t;
      lane.block_idx_ = block_idx;
      lane.block_dim_ = cfg_.block_dim;
      lane.grid_dim_ = grid_dim_;
      lane.state_ = Lane::State::kReady;
      std::byte* stack =
          stacks_.get() +
          static_cast<std::size_t>(rb.first_lane + t) * cfg_.stack_bytes;
      lane.fiber_.init(stack, cfg_.stack_bytes, &lane_entry, &lane);
      ctr_.threads_run++;
    }
  }

  void step(ResidentBlock& rb, Lane& lane) {
    ctr_.fiber_switches++;
    lane.fiber_.resume();
    if (!lane.fiber_.stack_intact()) {
      throw std::runtime_error(
          "simt: fiber stack overflow (raise LaunchConfig::stack_bytes)");
    }
    if (lane.fiber_.finished()) {
      lane.state_ = Lane::State::kDone;
      --rb.live;
    }
    // The lane either finished or parked at a barrier; in both cases a
    // barrier it participates in may now be complete.
    try_release_warp(rb, lane.thread_idx_ / kWarpSize);
    try_release_block(rb);
  }

  void try_release_warp(ResidentBlock& rb, std::uint32_t warp) {
    const std::uint32_t lo = warp * kWarpSize;
    const std::uint32_t hi = std::min(lo + kWarpSize, cfg_.block_dim);
    bool any_waiting = false;
    for (std::uint32_t t = lo; t < hi; ++t) {
      const Lane& lane = lanes_[rb.first_lane + t];
      switch (lane.state_) {
        case Lane::State::kReady:
          return;  // a peer is still running its segment
        case Lane::State::kAtWarpBar:
          any_waiting = true;
          break;
        case Lane::State::kAtBlockBar:  // suspended beyond the warp barrier
        case Lane::State::kDone:        // exited lanes do not participate
          break;
      }
    }
    if (!any_waiting) return;
    for (std::uint32_t t = lo; t < hi; ++t) {
      Lane& lane = lanes_[rb.first_lane + t];
      if (lane.state_ == Lane::State::kAtWarpBar) {
        lane.state_ = Lane::State::kReady;
      }
    }
  }

  void try_release_block(ResidentBlock& rb) {
    bool any_waiting = false;
    for (std::uint32_t t = 0; t < cfg_.block_dim; ++t) {
      const Lane& lane = lanes_[rb.first_lane + t];
      if (lane.state_ == Lane::State::kReady ||
          lane.state_ == Lane::State::kAtWarpBar) {
        return;  // someone has not reached the block barrier yet
      }
      if (lane.state_ == Lane::State::kAtBlockBar) any_waiting = true;
    }
    if (!any_waiting) return;
    for (std::uint32_t t = 0; t < cfg_.block_dim; ++t) {
      Lane& lane = lanes_[rb.first_lane + t];
      if (lane.state_ == Lane::State::kAtBlockBar) {
        lane.state_ = Lane::State::kReady;
      }
    }
  }

  std::uint32_t grid_dim_;
  LaunchConfig cfg_;
  PerfCounters& ctr_;
  const Kernel& kernel_;
  std::unique_ptr<std::byte[]> stacks_;
  std::unique_ptr<Lane[]> lanes_;
  std::vector<ResidentBlock> blocks_;
  std::vector<std::uint32_t> lane_order_;
  nulpa::Xoshiro256 shuffle_rng_;
};

void Lane::syncwarp() {
  counters().warp_syncs++;
  state_ = State::kAtWarpBar;
  Fiber::yield();
}

void Lane::syncthreads() {
  counters().block_syncs++;
  state_ = State::kAtBlockBar;
  Fiber::yield();
}

std::byte* Lane::shared() const noexcept { return shared_; }

PerfCounters& Lane::counters() const noexcept { return *counters_; }

void launch(std::uint32_t grid_dim, const LaunchConfig& cfg, PerfCounters& ctr,
            const Kernel& kernel) {
  if (cfg.block_dim == 0) {
    throw std::invalid_argument("simt::launch: block_dim must be > 0");
  }
  ctr.kernel_launches++;
  if (grid_dim == 0) return;
  Scheduler scheduler(grid_dim, cfg, ctr, kernel);
  scheduler.run();
}

}  // namespace nulpa::simt
