#include "simt/grid.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "observe/profiler.hpp"
#include "parallel/thread_pool.hpp"

namespace nulpa::simt {

// Scheduling model (unchanged from the original scheduler, faster
// bookkeeping): blocks occupy `resident_blocks` slots (the simulated SMs);
// within a slot, lanes are resumed in thread-id order and each runs until
// its next barrier — so every lane of a warp finishes the segment before
// any lane crosses the warp barrier, which is the lockstep property the
// algorithms rely on. One outer pass steps every runnable lane of every
// resident block once; a block that drains frees its slot for the next
// block of the grid at the end of its slot's turn.
//
// The fiberless direct phase preserves that schedule exactly for runs
// whose lanes never block: under the lockstep scheduler a barrier-free
// lane completes in its first step, so every resident block drains within
// its own slot turn and the grid executes block 0, block 1, ... fully
// sequentially, each block's lanes in resume order. The direct executor
// produces the identical order with plain calls — which is why labels are
// byte-identical between the two paths. The moment a lane does block, it
// is promoted (stack handoff, no re-run) and the run continues under the
// pass loop below, semantics unchanged.
//
// The parallel backend reuses the exact same per-block machinery: slots
// are statically owned by shards (slot s belongs to shard s % workers),
// each shard steps its own slots with its own stack pool and counters, and
// in deterministic mode the lockstep scheduler synchronizes shards at
// every pass boundary (one ThreadPool fork-join per pass) so each block
// sees precisely the pass sequence the serial scheduler would give it.
// Schedule fuzz stays thread-count-invariant because a block's shuffle for
// pass n is derived statelessly from (seed, block_idx, n) — no shared RNG
// stream whose consumption order could depend on the interleaving.

namespace {

// schedule_mix (the stateless per-(block, pass) derivation) now lives in
// simt/scoreboard.{hpp,cpp}, shared with the scoreboard's ready-pick.

[[noreturn]] void throw_deadlock() {
  throw std::runtime_error(
      "simt: barrier deadlock — lanes waiting on a barrier no peer "
      "will reach");
}

}  // namespace

std::byte* StackPool::checkout(PerfCounters& ctr) {
  if (!free_.empty()) {
    std::byte* stack = free_.back();
    free_.pop_back();
    ctr.stack_pool_hits++;
    return stack;
  }
  if (slab_used_ == kStacksPerSlab) {
    slabs_.push_back(std::make_unique_for_overwrite<std::byte[]>(
        kStacksPerSlab * stack_bytes_));
    slab_used_ = 0;
  }
  return slabs_.back().get() + slab_used_++ * stack_bytes_;
}

LaunchSession::LaunchSession(const LaunchConfig& cfg, PerfCounters& ctr)
    : LaunchSession(cfg, ctr, ExecPolicy{}) {}

LaunchSession::LaunchSession(const LaunchConfig& cfg, PerfCounters& ctr,
                             const ExecPolicy& policy)
    : cfg_(cfg), policy_(policy), ctr_(ctr) {
  if (cfg.block_dim == 0) {
    throw std::invalid_argument("simt: block_dim must be > 0");
  }
  seed_ = policy.schedule_seed != 0 ? policy.schedule_seed : cfg.schedule_seed;
  track_ = policy.track_memory;
  workers_ = 1;
  if (policy.is_parallel()) {
    workers_ = policy.threads != 0 ? policy.threads
                                   : ThreadPool::global().size();
    workers_ = std::max(1u, workers_);
  }
  shards_.reserve(workers_);
  for (unsigned w = 0; w < workers_; ++w) {
    auto sh = std::make_unique<Shard>(cfg.stack_bytes);
    sh->id = w;
    sh->session = this;
    // The serial backend writes the session sink directly (no merge step,
    // identical to the pre-parallel scheduler); parallel shards write
    // private counters merged when the grid drains.
    sh->ctr = policy.is_parallel() ? &sh->local : &ctr_;
    shards_.push_back(std::move(sh));
  }
}

LaunchSession::~LaunchSession() = default;

void LaunchSession::ensure_capacity(std::uint32_t grid_dim) {
  // Never allocate more residency than the grid can use. Buffers only ever
  // grow, and persist across run() calls — that is the point of the
  // session. Fiber stacks are not allocated here at all: lanes check them
  // out of their shard's pool only when they actually need a fiber.
  std::uint32_t resident = std::max(1u, cfg_.resident_blocks);
#ifdef NULPA_TSAN_FIBERS
  // Every armed lane fiber is a live logical thread to ThreadSanitizer,
  // whose registry holds ~8k of them; the widest block-per-vertex sessions
  // (1024 resident x 32 lanes) would exceed that on their own. Capping the
  // simulated residency keeps TSAN runs alive; schedules stay
  // self-consistent within the TSAN build (every backend sees the same
  // cap), only cross-build byte comparisons see the narrower machine.
  resident = std::min(resident, 64u);
#endif
  const std::uint32_t slots = std::min(resident, std::max(1u, grid_dim));
  if (slots <= slots_) return;
  if (lanes_ != nullptr) {
    // The lane array is about to be replaced; return any stacks the old
    // lanes still hold (possible after a run that threw mid-flight).
    for (std::uint32_t s = 0; s < slots_; ++s) {
      StackPool& pool = shard_for(s).pool;
      for (std::uint32_t t = 0; t < cfg_.block_dim; ++t) {
        Lane& lane = lanes_[static_cast<std::size_t>(s) * cfg_.block_dim + t];
        if (lane.stack_ != nullptr) {
          pool.checkin(lane.stack_);
          lane.stack_ = nullptr;
        }
      }
    }
  }
  const std::size_t lanes = static_cast<std::size_t>(slots) * cfg_.block_dim;
  lanes_ = std::make_unique<Lane[]>(lanes);
  shared_arena_ =
      cfg_.shared_bytes == 0
          ? nullptr
          : std::make_unique_for_overwrite<std::byte[]>(
                static_cast<std::size_t>(slots) * cfg_.shared_bytes);
  const std::uint32_t warps =
      (cfg_.block_dim + kWarpSize - 1) / kWarpSize;
  // assign() resets every slot's shared_dirty to true: the fresh arena is
  // uninitialized memory.
  blocks_.assign(slots, ResidentBlock{});
  for (std::uint32_t s = 0; s < slots; ++s) {
    ResidentBlock& rb = blocks_[s];
    rb.first_lane = s * cfg_.block_dim;
    rb.shared = shared_arena_ == nullptr
                    ? nullptr
                    : shared_arena_.get() +
                          static_cast<std::size_t>(s) * cfg_.shared_bytes;
    rb.warp_ready.resize(warps);
    rb.warp_at_bar.resize(warps);
    rb.live_lanes.reserve(cfg_.block_dim);
  }
  slots_ = slots;
}

void LaunchSession::lane_entry(void* arg) {
  auto* lane = static_cast<Lane*>(arg);
  auto* shard = static_cast<Shard*>(lane->runner_context_);
  (*shard->session->kernel_)(*lane);
}

void LaunchSession::prepare_shared(Shard& sh, ResidentBlock& rb) {
  // Zero-fill the retained arena slice only if the previous occupant's
  // kernel could have written it (it asked for the pointer), or if the
  // slice has never been cleared.
  if (cfg_.shared_bytes == 0 || !rb.shared_dirty) return;
  std::memset(rb.shared, 0, cfg_.shared_bytes);
  rb.shared_dirty = false;
  sh.ctr->shared_zero_fills++;
}

void LaunchSession::init_block(Shard& sh, ResidentBlock& rb,
                               std::uint32_t block_idx) {
  rb.active = true;
  rb.block_idx = block_idx;
  rb.live = cfg_.block_dim;
  rb.pass_seq = 0;
  prepare_shared(sh, rb);
  // Fresh block, fresh tracker: empty logs and a cold per-SM cache, so the
  // block's memory stats depend only on its own access sequence (the
  // property that keeps merged counters thread-count-invariant).
  if (track_) {
    rb.mem.begin_block(cfg_.mem, cfg_.block_dim, sh.ctr);
    rb.mem.arm_pipeline(cfg_.pipeline, policy_.scoreboard, seed_, block_idx);
  }
  rb.live_lanes.resize(cfg_.block_dim);
  std::iota(rb.live_lanes.begin(), rb.live_lanes.end(), 0u);
  for (std::size_t w = 0; w < rb.warp_ready.size(); ++w) {
    const std::uint32_t lo = static_cast<std::uint32_t>(w) * kWarpSize;
    rb.warp_ready[w] = std::min(kWarpSize, cfg_.block_dim - lo);
    rb.warp_at_bar[w] = 0;
  }
  rb.ready_total = cfg_.block_dim;
  rb.warp_bar_total = 0;
  rb.block_bar_total = 0;
  for (std::uint32_t t = 0; t < cfg_.block_dim; ++t) {
    Lane& lane = lanes_[rb.first_lane + t];
    lane.runner_context_ = &sh;
    lane.counters_ = sh.ctr;
    lane.mem_ = track_ ? &rb.mem : nullptr;
    lane.shared_ = rb.shared;
    lane.shared_dirty_ = &rb.shared_dirty;
    lane.thread_idx_ = t;
    lane.block_idx_ = block_idx;
    lane.block_dim_ = cfg_.block_dim;
    lane.grid_dim_ = grid_dim_;
    lane.worker_ = sh.id;
    lane.state_ = Lane::State::kReady;
    if (lane.stack_ == nullptr) lane.stack_ = sh.pool.checkout(*sh.ctr);
    lane.fiber_.init(lane.stack_, cfg_.stack_bytes, &lane_entry, &lane);
    sh.ctr->threads_run++;
  }
}

void LaunchSession::init_block_direct(Shard& sh, ResidentBlock& rb,
                                      std::uint32_t block_idx) {
  // Same lane context as init_block, minus everything fiber: no stack
  // checkout, no fiber arming, no arrival counters (demote_block rebuilds
  // them from lane states in the rare case a lane promotes).
  rb.active = true;
  rb.block_idx = block_idx;
  rb.live = cfg_.block_dim;
  rb.pass_seq = 0;
  prepare_shared(sh, rb);
  if (track_) {
    rb.mem.begin_block(cfg_.mem, cfg_.block_dim, sh.ctr);
    rb.mem.arm_pipeline(cfg_.pipeline, policy_.scoreboard, seed_, block_idx);
  }
  rb.live_lanes.resize(cfg_.block_dim);
  std::iota(rb.live_lanes.begin(), rb.live_lanes.end(), 0u);
  for (std::uint32_t t = 0; t < cfg_.block_dim; ++t) {
    Lane& lane = lanes_[rb.first_lane + t];
    lane.runner_context_ = &sh;
    lane.counters_ = sh.ctr;
    lane.mem_ = track_ ? &rb.mem : nullptr;
    lane.shared_ = rb.shared;
    lane.shared_dirty_ = &rb.shared_dirty;
    lane.thread_idx_ = t;
    lane.block_idx_ = block_idx;
    lane.block_dim_ = cfg_.block_dim;
    lane.grid_dim_ = grid_dim_;
    lane.worker_ = sh.id;
    lane.state_ = Lane::State::kReady;
    sh.ctr->threads_run++;
  }
}

void LaunchSession::release_block_stacks(Shard& sh, ResidentBlock& rb) {
  for (std::uint32_t t = 0; t < cfg_.block_dim; ++t) {
    Lane& lane = lanes_[rb.first_lane + t];
    if (lane.stack_ != nullptr) {
      sh.pool.checkin(lane.stack_);
      lane.stack_ = nullptr;
    }
  }
}

void LaunchSession::shuffle_lanes(ResidentBlock& rb) {
  // Fuzzed warp scheduling: resume live lanes in a fresh random order.
  // Fisher-Yates with a generator derived from (seed, block, pass), so a
  // fuzzed schedule is a pure function of the block's own history.
  Xoshiro256 rng(schedule_mix(seed_, rb.block_idx, rb.pass_seq++));
  for (std::size_t i = rb.live_lanes.size(); i > 1; --i) {
    std::swap(rb.live_lanes[i - 1], rb.live_lanes[rng.next_bounded(i)]);
  }
}

void LaunchSession::step(Shard& sh, ResidentBlock& rb, Lane& lane) {
  sh.ctr->fiber_switches++;
  const std::uint32_t warp = lane.thread_idx_ / kWarpSize;
  rb.warp_ready[warp]--;
  rb.ready_total--;
  lane.fiber_.resume();
  if (!lane.fiber_.stack_intact()) {
    throw std::runtime_error(
        "simt: fiber stack overflow (raise LaunchConfig::stack_bytes)");
  }
  if (lane.fiber_.finished()) {
    lane.state_ = Lane::State::kDone;
    --rb.live;
  } else if (lane.state_ == Lane::State::kAtWarpBar) {
    rb.warp_at_bar[warp]++;
    rb.warp_bar_total++;
  } else {  // parked at the block barrier
    rb.block_bar_total++;
  }
  // The lane either finished or parked at a barrier; in both cases a
  // barrier it participates in may now be complete.
  try_release_warp(sh, rb, warp);
  try_release_block(sh, rb);
}

void LaunchSession::try_release_warp(Shard& sh, ResidentBlock& rb,
                                     std::uint32_t warp) {
  if (rb.warp_ready[warp] > 0 || rb.warp_at_bar[warp] == 0) {
    sh.ctr->barrier_checks++;  // O(1) verdict vs the old lane rescan
    return;
  }
  const std::uint32_t lo = warp * kWarpSize;
  const std::uint32_t hi = std::min(lo + kWarpSize, cfg_.block_dim);
  const std::uint32_t released = rb.warp_at_bar[warp];
  for (std::uint32_t t = lo; t < hi; ++t) {
    Lane& lane = lanes_[rb.first_lane + t];
    if (lane.state_ == Lane::State::kAtWarpBar) {
      lane.state_ = Lane::State::kReadyNext;
    }
  }
  rb.warp_at_bar[warp] = 0;
  rb.warp_ready[warp] += released;
  rb.warp_bar_total -= released;
  rb.ready_total += released;
  // The barrier completed: every lane of the warp finished the segment, so
  // its issue windows are fully populated — close them through the
  // coalescer and cache now, in the barrier-release order the serial
  // scheduler would use.
  if (track_) rb.mem.flush_warp(warp);
}

void LaunchSession::try_release_block(Shard& sh, ResidentBlock& rb) {
  if (rb.ready_total > 0 || rb.warp_bar_total > 0 ||
      rb.block_bar_total == 0) {
    sh.ctr->barrier_checks++;  // O(1) verdict vs the old lane rescan
    return;
  }
  for (const std::uint32_t t : rb.live_lanes) {
    Lane& lane = lanes_[rb.first_lane + t];
    if (lane.state_ == Lane::State::kAtBlockBar) {
      lane.state_ = Lane::State::kReadyNext;
      rb.warp_ready[t / kWarpSize]++;
    }
  }
  rb.ready_total += rb.block_bar_total;
  rb.block_bar_total = 0;
  if (track_) rb.mem.flush_all();  // block barrier closes every warp's windows
}

bool LaunchSession::pass_block(Shard& sh, ResidentBlock& rb) {
  if (seed_ != 0) shuffle_lanes(rb);
  bool progress = false;
  const std::uint32_t live_before = rb.live;
  for (const std::uint32_t t : rb.live_lanes) {
    Lane& lane = lanes_[rb.first_lane + t];
    if (lane.state_ != Lane::State::kReady) continue;
    step(sh, rb, lane);
    progress = true;
  }
  // Lanes a barrier released this pass become runnable next pass (see
  // Lane::State::kReadyNext). Under the default thread-order schedule
  // they were all stepped before the release, so this changes nothing;
  // under fuzzed orders it keeps the phases strict.
  for (const std::uint32_t t : rb.live_lanes) {
    Lane& lane = lanes_[rb.first_lane + t];
    if (lane.state_ == Lane::State::kReadyNext) {
      lane.state_ = Lane::State::kReady;
    }
  }
  if (rb.live != live_before) {
    // Drop drained lanes so later passes never revisit Done fibers.
    std::erase_if(rb.live_lanes, [&](std::uint32_t t) {
      return lanes_[rb.first_lane + t].state_ == Lane::State::kDone;
    });
  }
  if (rb.live == 0) {
    if (track_) {
      rb.mem.flush_all();  // drain: close the final windows
      observe::ProfSpan replay_span("simt.replay", "block", rb.block_idx);
      rb.mem.drain_pipeline();  // replay the block against the model SM
    }
    release_block_stacks(sh, rb);
    rb.active = false;
  }
  return progress;
}

void LaunchSession::direct_entry(void* arg) {
  auto* shard = static_cast<Shard*>(arg);
  shard->session->direct_loop(*shard);
}

void LaunchSession::direct_loop(Shard& sh) {
  // Runs on the shard's executor fiber. The epoch pins the stack's
  // ownership: a promotion donates this very stack to the promoted lane
  // and bumps the epoch, and when that lane's kernel eventually returns,
  // control lands back in this frame — which must then unwind immediately
  // instead of starting more lanes on a stack that now belongs to someone
  // else.
  const std::uint64_t epoch = sh.direct_epoch;
  ResidentBlock& rb = blocks_[sh.direct_slot];
  while (sh.direct_next < grid_dim_) {
    init_block_direct(sh, rb, sh.direct_next);
    sh.direct_next += sh.direct_stride;
    // Parallel direct runs charge the executor switch per block so the
    // total is invariant under the block-to-shard partition; the serial
    // backend keeps the historical one-switch-per-arming accounting.
    if (sh.switch_per_block) sh.ctr->fiber_switches++;
    if (seed_ != 0) shuffle_lanes(rb);
    for (const std::uint32_t t : rb.live_lanes) {
      Lane& lane = lanes_[rb.first_lane + t];
      sh.direct_lane = &lane;
      (*kernel_)(lane);
      if (sh.direct_epoch != epoch) return;
      lane.state_ = Lane::State::kDone;
      rb.live--;
      sh.ctr->fiberless_lanes++;
    }
    sh.direct_lane = nullptr;
    if (track_) {
      rb.mem.flush_all();  // inline drain: close the windows
      observe::ProfSpan replay_span("simt.replay", "block", rb.block_idx);
      rb.mem.drain_pipeline();
    }
    rb.active = false;
  }
  sh.direct_lane = nullptr;
}

void LaunchSession::promote(Shard& sh, Lane& lane) {
  // Called from inside the lane's kernel, mid-collective, while it runs
  // inline on the executor's stack. Hand that stack — kernel frame and all
  // — to the lane's fiber and suspend; nothing executed so far is re-run.
  // From here on the shard's current block belongs to the lockstep pass
  // loop (run_direct sees direct_promoted and demotes), so this fires at
  // most once per executor arming.
  sh.ctr->promoted_lanes++;
  sh.direct_promoted = true;
  sh.direct_lane = nullptr;
  sh.direct_epoch++;
  Fiber::handoff(lane.fiber_);
  // Resumed by step(): fall through into the collective's wait-side code.
}

bool LaunchSession::run_direct(Shard& sh) {
  if (sh.exec_stack == nullptr) sh.exec_stack = sh.pool.checkout(*sh.ctr);
  sh.direct_promoted = false;
  sh.direct_lane = nullptr;
  sh.exec_fiber.init(sh.exec_stack, cfg_.stack_bytes, &direct_entry, &sh);
  // The whole direct phase costs one context switch in and (if nothing
  // promotes) one out — versus two per lane on the fiber path.
  if (!sh.switch_per_block) sh.ctr->fiber_switches++;
  sh.exec_fiber.resume();
  if (!sh.direct_promoted) {
    if (!sh.exec_fiber.stack_intact()) {
      throw std::runtime_error(
          "simt: fiber stack overflow (raise LaunchConfig::stack_bytes)");
    }
    return false;
  }
  // A lane took the executor's stack mid-kernel. The shard's slot is
  // mid-flight: rebuild its lockstep bookkeeping; the caller schedules the
  // rest.
  demote_block(sh, blocks_[sh.direct_slot]);
  return true;
}

void LaunchSession::demote_block(Shard& sh, ResidentBlock& rb) {
  rb.active = true;
  std::fill(rb.warp_ready.begin(), rb.warp_ready.end(), 0u);
  std::fill(rb.warp_at_bar.begin(), rb.warp_at_bar.end(), 0u);
  rb.ready_total = 0;
  rb.warp_bar_total = 0;
  rb.block_bar_total = 0;
  rb.live = 0;
  rb.live_lanes.clear();
  std::uint32_t bar_warp = 0;
  bool saw_warp_bar = false;
  for (std::uint32_t t = 0; t < cfg_.block_dim; ++t) {
    Lane& lane = lanes_[rb.first_lane + t];
    const std::uint32_t w = t / kWarpSize;
    switch (lane.state_) {
      case Lane::State::kDone:
        continue;  // completed inline; stays off the resume list
      case Lane::State::kReady:
        // Never started: becomes an ordinary fiber lane.
        if (lane.stack_ == nullptr) lane.stack_ = sh.pool.checkout(*sh.ctr);
        lane.fiber_.init(lane.stack_, cfg_.stack_bytes, &lane_entry, &lane);
        rb.warp_ready[w]++;
        rb.ready_total++;
        break;
      case Lane::State::kAtWarpBar:
        rb.warp_at_bar[w]++;
        rb.warp_bar_total++;
        bar_warp = w;
        saw_warp_bar = true;
        break;
      case Lane::State::kAtBlockBar:
        rb.block_bar_total++;
        break;
      case Lane::State::kReadyNext:
        break;  // unreachable: the direct phase defers no releases
    }
    rb.live++;
    rb.live_lanes.push_back(t);
  }
  // The promoted lane's barrier may already be satisfied — every peer that
  // could arrive finished inline before it. The pass loop only re-checks
  // on arrivals, so check here; released lanes become kReadyNext, which
  // must flip to kReady now (the conversion normally happens after a pass
  // has stepped someone, and a lone released lane would otherwise stall
  // the loop into its deadlock verdict).
  if (saw_warp_bar) try_release_warp(sh, rb, bar_warp);
  try_release_block(sh, rb);
  for (const std::uint32_t t : rb.live_lanes) {
    Lane& lane = lanes_[rb.first_lane + t];
    if (lane.state_ == Lane::State::kReadyNext) {
      lane.state_ = Lane::State::kReady;
    }
  }
}

void LaunchSession::run_block_passes(Shard& sh, ResidentBlock& rb) {
  while (rb.active) {
    const bool progress = pass_block(sh, rb);
    if (!rb.active) break;
    if (!progress) throw_deadlock();
  }
}

void LaunchSession::run(std::uint32_t grid_dim, KernelRef kernel) {
  run_impl(grid_dim, kernel, policy_.sync);
}

void LaunchSession::run_impl(std::uint32_t grid_dim, KernelRef kernel,
                             SyncMode sync) {
  if (grid_dim == 0) return;
  observe::ProfSpan launch_span("simt.launch", "grid_dim", grid_dim);
  ensure_capacity(grid_dim);
  grid_dim_ = grid_dim;
  kernel_ = &kernel;
  try {
    if (policy_.is_parallel()) {
      run_parallel(sync);
    } else {
      run_serial(sync);
    }
  } catch (...) {
    kernel_ = nullptr;
    throw;
  }
  kernel_ = nullptr;
}

void LaunchSession::run_serial(SyncMode sync) {
  Shard& sh = *shards_[0];
  std::uint32_t next_block = 0;
  if (sync != SyncMode::kLockstep) {
    sh.direct_slot = 0;
    sh.direct_stride = 1;
    sh.direct_next = 0;
    sh.switch_per_block = false;
    if (!run_direct(sh)) return;
    // Sticky demotion: slot 0 already runs under lockstep bookkeeping;
    // fill the remaining slots and continue under the pass loop.
    next_block = sh.direct_next;
    for (std::size_t s = 1; s < blocks_.size(); ++s) {
      blocks_[s].active = false;
      if (next_block < grid_dim_) init_block(sh, blocks_[s], next_block++);
    }
  } else {
    for (auto& rb : blocks_) {
      rb.active = false;
      if (next_block < grid_dim_) init_block(sh, rb, next_block++);
    }
  }

  for (;;) {
    observe::ProfSpan pass_span("simt.pass");
    bool any_active = false;
    bool progress = false;
    for (auto& rb : blocks_) {
      if (!rb.active) continue;
      any_active = true;
      progress |= pass_block(sh, rb);
      if (!rb.active && next_block < grid_dim_) {
        init_block(sh, rb, next_block++);
        progress = true;
      }
    }
    if (!any_active) break;
    if (!progress) throw_deadlock();
  }
}

void LaunchSession::run_parallel(SyncMode sync) {
  // A run that threw mid-flight can leave stale active flags; every
  // parallel entry starts from a clean slate (the serial fill loops do the
  // equivalent reset inline).
  for (auto& rb : blocks_) rb.active = false;
  try {
    if (sync == SyncMode::kLockstep) {
      if (policy_.deterministic) {
        run_parallel_lockstep();
      } else {
        run_parallel_freerun();
      }
    } else {
      run_parallel_direct();
    }
  } catch (...) {
    merge_shard_counters();
    throw;
  }
  merge_shard_counters();
}

void LaunchSession::run_parallel_lockstep() {
  // Deterministic parallel lockstep: the host refills drained slots at
  // pass boundaries (same block-to-slot assignment as the serial refill —
  // ascending slot order), then one pool fork-join steps every shard's
  // slots for exactly one pass. Every block therefore experiences the
  // serial scheduler's pass sequence verbatim, just with different blocks'
  // passes overlapped — which is why labels and merged counters are
  // byte-identical for any thread count, including against the serial
  // backend. The join doubles as the happens-before edge between a pass's
  // writes and the next pass's reads.
  auto& pool = ThreadPool::global();
  const unsigned pool_width = pool.size();
  std::uint32_t next_block = 0;
  for (;;) {
    observe::ProfSpan pass_span("simt.pass");
    bool any_active = false;
    bool progress = false;
    for (std::uint32_t s = 0; s < slots_; ++s) {
      ResidentBlock& rb = blocks_[s];
      if (!rb.active && next_block < grid_dim_) {
        init_block(shard_for(s), rb, next_block++);
        progress = true;
      }
      any_active |= rb.active;
    }
    if (!any_active) break;
    pool.run([&](unsigned w) {
      // Shards stride over pool workers, so a pool smaller than the
      // logical width still covers every shard (oversubscription keeps
      // determinism tests honest on small hosts).
      for (unsigned id = w; id < workers_; id += pool_width) {
        Shard& sh = *shards_[id];
        sh.pass_progress = false;
        try {
          observe::ProfSpan shard_span("simt.shard_pass", "shard", id);
          bool stepped = false;
          for (std::uint32_t s = id; s < slots_; s += workers_) {
            ResidentBlock& rb = blocks_[s];
            if (rb.active) stepped |= pass_block(sh, rb);
          }
          sh.pass_progress = stepped;
        } catch (...) {
          sh.error = std::current_exception();
        }
      }
    });
    rethrow_shard_error();
    for (const auto& sh : shards_) progress |= sh->pass_progress;
    if (!progress) throw_deadlock();
  }
}

void LaunchSession::run_parallel_freerun() {
  // deterministic == false: shards run their slots untethered, claiming
  // fresh blocks from a shared cursor as their slots drain. No cross-shard
  // reproducibility (block-to-slot assignment is racy by design), but
  // still race-free: a slot is guarded by a per-slot lock its current
  // owner holds across every touch, which is also what lets an idle shard
  // *steal* a live block: once the grid cursor is exhausted and all of a
  // shard's own slots drained, it re-homes one resident block from the
  // heaviest remaining shard (most active slots) instead of exiting —
  // skewed block runtimes no longer serialize on one worker. Affinity is
  // tracked per slot so the victim stops scheduling a stolen slot and the
  // thief keeps it until the grid drains.
  auto& pool = ThreadPool::global();
  const unsigned pool_width = pool.size();
  std::atomic<std::uint32_t> next{0};
  const auto affinity =
      std::make_unique<std::atomic<unsigned>[]>(slots_);
  const auto slot_lock = std::make_unique<std::atomic_flag[]>(slots_);
  for (std::uint32_t s = 0; s < slots_; ++s) {
    affinity[s].store(s % workers_, std::memory_order_relaxed);
  }
  pool.run([&](unsigned w) {
    for (unsigned id = w; id < workers_; id += pool_width) {
      Shard& sh = *shards_[id];
      try {
        for (;;) {
          bool any_active = false;
          bool contended = false;
          bool progress = false;
          for (std::uint32_t s = 0; s < slots_; ++s) {
            if (affinity[s].load(std::memory_order_acquire) != id) continue;
            if (slot_lock[s].test_and_set(std::memory_order_acquire)) {
              // A thief is inspecting this slot right now; come back next
              // round rather than blocking.
              any_active = true;
              contended = true;
              continue;
            }
            ResidentBlock& rb = blocks_[s];
            if (affinity[s].load(std::memory_order_relaxed) == id) {
              if (!rb.active) {
                const std::uint32_t b =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (b < grid_dim_) {
                  init_block(sh, rb, b);
                  progress = true;
                }
              }
              if (rb.active) {
                any_active = true;
                progress |= pass_block(sh, rb);
              }
            }
            slot_lock[s].clear(std::memory_order_release);
          }
          if (!any_active) {
            // Own slots drained and the cursor is dry: try to adopt a live
            // block from the heaviest shard. Slot state may only be read
            // under the slot lock; a slot whose lock is held counts as
            // active (its owner is stepping it this instant).
            std::uint32_t victim_slot = slots_;
            unsigned victim_load = 0;
            for (unsigned v = 0; v < workers_; ++v) {
              if (v == id) continue;
              unsigned load = 0;
              std::uint32_t candidate = slots_;
              for (std::uint32_t s = 0; s < slots_; ++s) {
                if (affinity[s].load(std::memory_order_acquire) != v) {
                  continue;
                }
                if (slot_lock[s].test_and_set(std::memory_order_acquire)) {
                  ++load;
                  continue;
                }
                if (blocks_[s].active) {
                  ++load;
                  candidate = s;
                }
                slot_lock[s].clear(std::memory_order_release);
              }
              if (load >= 2 && load > victim_load &&
                  candidate != slots_) {
                victim_load = load;
                victim_slot = candidate;
              }
            }
            // A lone active block is left with its owner — adopting it
            // would just ping-pong the tail of the grid between shards.
            if (victim_slot == slots_) break;
            if (slot_lock[victim_slot].test_and_set(
                    std::memory_order_acquire)) {
              continue;  // victim mid-pass; retry next round
            }
            ResidentBlock& rb = blocks_[victim_slot];
            if (rb.active) {
              adopt_block(sh, rb);
              affinity[victim_slot].store(id, std::memory_order_release);
            }
            slot_lock[victim_slot].clear(std::memory_order_release);
            continue;
          }
          if (!progress && !contended) throw_deadlock();
        }
      } catch (...) {
        sh.error = std::current_exception();
      }
    }
  });
  rethrow_shard_error();
}

void LaunchSession::adopt_block(Shard& thief, ResidentBlock& rb) {
  // Caller holds the slot lock and the victim is parked between passes, so
  // every piece of block state is quiescent. Lanes keep their fibers and
  // stacks (slab memory outlives the session; drained stacks simply check
  // into the thief's pool); only the shard bindings move.
  for (std::uint32_t t = 0; t < cfg_.block_dim; ++t) {
    Lane& lane = lanes_[rb.first_lane + t];
    lane.runner_context_ = &thief;
    lane.counters_ = thief.ctr;
    lane.worker_ = thief.id;
  }
  if (track_) rb.mem.bind_counters(thief.ctr);
  thief.ctr->stolen_blocks++;
}

void LaunchSession::run_parallel_direct() {
  // Barrier-free grids are embarrassingly parallel: shard `id` owns grid
  // blocks id, id + W, id + 2W, ... and runs each to completion inline in
  // its own slot, exactly like the serial direct loop does for the whole
  // grid. Kernels launched this way are order-independent between blocks
  // (that is what barrier-free means across blocks), so the label output
  // is the serial output for any thread count. A promotion only disturbs
  // the promoting shard: it drains that one block under a local pass loop,
  // then re-arms its executor for the rest of its stride.
  auto& pool = ThreadPool::global();
  const unsigned pool_width = pool.size();
  const unsigned width = std::min<unsigned>(workers_, slots_);
  pool.run([&](unsigned w) {
    for (unsigned id = w; id < width; id += pool_width) {
      Shard& sh = *shards_[id];
      try {
        sh.direct_slot = id;
        sh.direct_stride = width;
        sh.direct_next = id;
        sh.switch_per_block = true;
        while (sh.direct_next < grid_dim_ ||
               blocks_[sh.direct_slot].active) {
          if (!run_direct(sh)) break;
          run_block_passes(sh, blocks_[sh.direct_slot]);
        }
      } catch (...) {
        sh.error = std::current_exception();
      }
    }
  });
  rethrow_shard_error();
}

void LaunchSession::merge_shard_counters() {
  observe::ProfSpan drain_span("simt.drain");
  for (const auto& sh : shards_) {
    if (sh->ctr == &sh->local) {
      ctr_ += sh->local;
      sh->local.reset();
    }
  }
}

void LaunchSession::rethrow_shard_error() {
  std::exception_ptr first;
  for (const auto& sh : shards_) {
    if (sh->error && !first) first = sh->error;
    sh->error = nullptr;
  }
  if (first) std::rethrow_exception(first);
}

void Lane::suspend() {
  auto* shard = static_cast<LaunchSession::Shard*>(runner_context_);
  if (shard->direct_lane == this) {
    shard->session->promote(*shard, *this);
  } else {
    Fiber::yield();
  }
}

void Lane::syncwarp() {
  counters().warp_syncs++;
  state_ = State::kAtWarpBar;
  suspend();
}

void Lane::syncthreads() {
  counters().block_syncs++;
  state_ = State::kAtBlockBar;
  suspend();
}

std::byte* Lane::shared() const noexcept {
  if (shared_dirty_ != nullptr) *shared_dirty_ = true;
  return shared_;
}

PerfCounters& Lane::counters() const noexcept { return *counters_; }

void launch(std::uint32_t grid_dim, const LaunchConfig& cfg, PerfCounters& ctr,
            KernelRef kernel, const ExecPolicy& policy) {
  if (cfg.block_dim == 0) {
    throw std::invalid_argument("simt::launch: block_dim must be > 0");
  }
  ctr.kernel_launches++;
  if (grid_dim == 0) return;
  LaunchSession session(cfg, ctr, policy);
  session.run(grid_dim, kernel);
}

}  // namespace nulpa::simt
