#include "simt/grid.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <stdexcept>

namespace nulpa::simt {

// Scheduling model (unchanged from the original scheduler, faster
// bookkeeping): blocks occupy `resident_blocks` slots (the simulated SMs);
// within a slot, lanes are resumed in thread-id order and each runs until
// its next barrier — so every lane of a warp finishes the segment before
// any lane crosses the warp barrier, which is the lockstep property the
// algorithms rely on. One outer pass steps every runnable lane of every
// resident block once; a block that drains frees its slot for the next
// block of the grid at the end of its slot's turn.
//
// The fiberless direct phase preserves that schedule exactly for runs
// whose lanes never block: under the lockstep scheduler a barrier-free
// lane completes in its first step, so every resident block drains within
// its own slot turn and the grid executes block 0, block 1, ... fully
// sequentially, each block's lanes in resume order. The direct executor
// produces the identical order with plain calls — which is why labels are
// byte-identical between the two paths. The moment a lane does block, it
// is promoted (stack handoff, no re-run) and the run continues under the
// pass loop below, semantics unchanged.

std::byte* StackPool::checkout(PerfCounters& ctr) {
  if (!free_.empty()) {
    std::byte* stack = free_.back();
    free_.pop_back();
    ctr.stack_pool_hits++;
    return stack;
  }
  if (slab_used_ == kStacksPerSlab) {
    slabs_.push_back(std::make_unique_for_overwrite<std::byte[]>(
        kStacksPerSlab * stack_bytes_));
    slab_used_ = 0;
  }
  return slabs_.back().get() + slab_used_++ * stack_bytes_;
}

LaunchSession::LaunchSession(const LaunchConfig& cfg, PerfCounters& ctr)
    : cfg_(cfg), ctr_(ctr), pool_(cfg.stack_bytes) {
  if (cfg.block_dim == 0) {
    throw std::invalid_argument("simt: block_dim must be > 0");
  }
  if (cfg.schedule_seed != 0) {
    shuffle_rng_ = Xoshiro256(cfg.schedule_seed);
  }
}

LaunchSession::~LaunchSession() = default;

void LaunchSession::ensure_capacity(std::uint32_t grid_dim) {
  // Never allocate more residency than the grid can use. Buffers only ever
  // grow, and persist across run() calls — that is the point of the
  // session. Fiber stacks are not allocated here at all: lanes check them
  // out of the pool only when they actually need a fiber.
  const std::uint32_t slots =
      std::min(std::max(1u, cfg_.resident_blocks), std::max(1u, grid_dim));
  if (slots <= slots_) return;
  if (lanes_ != nullptr) {
    // The lane array is about to be replaced; return any stacks the old
    // lanes still hold (possible after a run that threw mid-flight).
    const std::size_t old_lanes =
        static_cast<std::size_t>(slots_) * cfg_.block_dim;
    for (std::size_t i = 0; i < old_lanes; ++i) {
      if (lanes_[i].stack_ != nullptr) {
        pool_.checkin(lanes_[i].stack_);
      }
    }
  }
  const std::size_t lanes = static_cast<std::size_t>(slots) * cfg_.block_dim;
  lanes_ = std::make_unique<Lane[]>(lanes);
  shared_arena_ =
      cfg_.shared_bytes == 0
          ? nullptr
          : std::make_unique_for_overwrite<std::byte[]>(
                static_cast<std::size_t>(slots) * cfg_.shared_bytes);
  const std::uint32_t warps =
      (cfg_.block_dim + kWarpSize - 1) / kWarpSize;
  // assign() resets every slot's shared_dirty to true: the fresh arena is
  // uninitialized memory.
  blocks_.assign(slots, ResidentBlock{});
  for (std::uint32_t s = 0; s < slots; ++s) {
    ResidentBlock& rb = blocks_[s];
    rb.first_lane = s * cfg_.block_dim;
    rb.shared = shared_arena_ == nullptr
                    ? nullptr
                    : shared_arena_.get() +
                          static_cast<std::size_t>(s) * cfg_.shared_bytes;
    rb.warp_ready.resize(warps);
    rb.warp_at_bar.resize(warps);
    rb.live_lanes.reserve(cfg_.block_dim);
  }
  slots_ = slots;
}

void LaunchSession::lane_entry(void* arg) {
  auto* lane = static_cast<Lane*>(arg);
  auto* self = static_cast<LaunchSession*>(lane->runner_context_);
  (*self->kernel_)(*lane);
}

void LaunchSession::prepare_shared(ResidentBlock& rb) {
  // Zero-fill the retained arena slice only if the previous occupant's
  // kernel could have written it (it asked for the pointer), or if the
  // slice has never been cleared.
  if (cfg_.shared_bytes == 0 || !rb.shared_dirty) return;
  std::memset(rb.shared, 0, cfg_.shared_bytes);
  rb.shared_dirty = false;
  ctr_.shared_zero_fills++;
}

void LaunchSession::init_block(ResidentBlock& rb, std::uint32_t block_idx) {
  rb.active = true;
  rb.block_idx = block_idx;
  rb.live = cfg_.block_dim;
  prepare_shared(rb);
  rb.live_lanes.resize(cfg_.block_dim);
  std::iota(rb.live_lanes.begin(), rb.live_lanes.end(), 0u);
  for (std::size_t w = 0; w < rb.warp_ready.size(); ++w) {
    const std::uint32_t lo = static_cast<std::uint32_t>(w) * kWarpSize;
    rb.warp_ready[w] = std::min(kWarpSize, cfg_.block_dim - lo);
    rb.warp_at_bar[w] = 0;
  }
  rb.ready_total = cfg_.block_dim;
  rb.warp_bar_total = 0;
  rb.block_bar_total = 0;
  for (std::uint32_t t = 0; t < cfg_.block_dim; ++t) {
    Lane& lane = lanes_[rb.first_lane + t];
    lane.runner_context_ = this;
    lane.counters_ = &ctr_;
    lane.shared_ = rb.shared;
    lane.shared_dirty_ = &rb.shared_dirty;
    lane.thread_idx_ = t;
    lane.block_idx_ = block_idx;
    lane.block_dim_ = cfg_.block_dim;
    lane.grid_dim_ = grid_dim_;
    lane.state_ = Lane::State::kReady;
    if (lane.stack_ == nullptr) lane.stack_ = pool_.checkout(ctr_);
    lane.fiber_.init(lane.stack_, cfg_.stack_bytes, &lane_entry, &lane);
    ctr_.threads_run++;
  }
}

void LaunchSession::init_block_direct(ResidentBlock& rb,
                                      std::uint32_t block_idx) {
  // Same lane context as init_block, minus everything fiber: no stack
  // checkout, no fiber arming, no arrival counters (demote_block rebuilds
  // them from lane states in the rare case a lane promotes).
  rb.active = true;
  rb.block_idx = block_idx;
  rb.live = cfg_.block_dim;
  prepare_shared(rb);
  rb.live_lanes.resize(cfg_.block_dim);
  std::iota(rb.live_lanes.begin(), rb.live_lanes.end(), 0u);
  for (std::uint32_t t = 0; t < cfg_.block_dim; ++t) {
    Lane& lane = lanes_[rb.first_lane + t];
    lane.runner_context_ = this;
    lane.counters_ = &ctr_;
    lane.shared_ = rb.shared;
    lane.shared_dirty_ = &rb.shared_dirty;
    lane.thread_idx_ = t;
    lane.block_idx_ = block_idx;
    lane.block_dim_ = cfg_.block_dim;
    lane.grid_dim_ = grid_dim_;
    lane.state_ = Lane::State::kReady;
    ctr_.threads_run++;
  }
}

void LaunchSession::release_block_stacks(ResidentBlock& rb) {
  for (std::uint32_t t = 0; t < cfg_.block_dim; ++t) {
    Lane& lane = lanes_[rb.first_lane + t];
    if (lane.stack_ != nullptr) {
      pool_.checkin(lane.stack_);
      lane.stack_ = nullptr;
    }
  }
}

void LaunchSession::shuffle_lanes(ResidentBlock& rb) {
  // Fuzzed warp scheduling: resume live lanes in a fresh random order.
  // Fisher-Yates with the seeded generator.
  for (std::size_t i = rb.live_lanes.size(); i > 1; --i) {
    std::swap(rb.live_lanes[i - 1],
              rb.live_lanes[shuffle_rng_.next_bounded(i)]);
  }
}

void LaunchSession::step(ResidentBlock& rb, Lane& lane) {
  ctr_.fiber_switches++;
  const std::uint32_t warp = lane.thread_idx_ / kWarpSize;
  rb.warp_ready[warp]--;
  rb.ready_total--;
  lane.fiber_.resume();
  if (!lane.fiber_.stack_intact()) {
    throw std::runtime_error(
        "simt: fiber stack overflow (raise LaunchConfig::stack_bytes)");
  }
  if (lane.fiber_.finished()) {
    lane.state_ = Lane::State::kDone;
    --rb.live;
  } else if (lane.state_ == Lane::State::kAtWarpBar) {
    rb.warp_at_bar[warp]++;
    rb.warp_bar_total++;
  } else {  // parked at the block barrier
    rb.block_bar_total++;
  }
  // The lane either finished or parked at a barrier; in both cases a
  // barrier it participates in may now be complete.
  try_release_warp(rb, warp);
  try_release_block(rb);
}

void LaunchSession::try_release_warp(ResidentBlock& rb, std::uint32_t warp) {
  if (rb.warp_ready[warp] > 0 || rb.warp_at_bar[warp] == 0) {
    ctr_.barrier_checks++;  // O(1) verdict; the old scheduler rescanned here
    return;
  }
  const std::uint32_t lo = warp * kWarpSize;
  const std::uint32_t hi = std::min(lo + kWarpSize, cfg_.block_dim);
  const std::uint32_t released = rb.warp_at_bar[warp];
  for (std::uint32_t t = lo; t < hi; ++t) {
    Lane& lane = lanes_[rb.first_lane + t];
    if (lane.state_ == Lane::State::kAtWarpBar) {
      lane.state_ = Lane::State::kReadyNext;
    }
  }
  rb.warp_at_bar[warp] = 0;
  rb.warp_ready[warp] += released;
  rb.warp_bar_total -= released;
  rb.ready_total += released;
}

void LaunchSession::try_release_block(ResidentBlock& rb) {
  if (rb.ready_total > 0 || rb.warp_bar_total > 0 ||
      rb.block_bar_total == 0) {
    ctr_.barrier_checks++;  // O(1) verdict; the old scheduler rescanned here
    return;
  }
  for (const std::uint32_t t : rb.live_lanes) {
    Lane& lane = lanes_[rb.first_lane + t];
    if (lane.state_ == Lane::State::kAtBlockBar) {
      lane.state_ = Lane::State::kReadyNext;
      rb.warp_ready[t / kWarpSize]++;
    }
  }
  rb.ready_total += rb.block_bar_total;
  rb.block_bar_total = 0;
}

void LaunchSession::direct_entry(void* arg) {
  static_cast<LaunchSession*>(arg)->direct_loop();
}

void LaunchSession::direct_loop() {
  // Runs on the executor fiber. The epoch pins the stack's ownership: a
  // promotion donates this very stack to the promoted lane and bumps the
  // epoch, and when that lane's kernel eventually returns, control lands
  // back in this frame — which must then unwind immediately instead of
  // starting more lanes on a stack that now belongs to someone else.
  const std::uint64_t epoch = direct_epoch_;
  ResidentBlock& rb = blocks_[0];
  while (direct_next_ < grid_dim_) {
    init_block_direct(rb, direct_next_++);
    if (cfg_.schedule_seed != 0) shuffle_lanes(rb);
    for (const std::uint32_t t : rb.live_lanes) {
      Lane& lane = lanes_[rb.first_lane + t];
      direct_lane_ = &lane;
      (*kernel_)(lane);
      if (direct_epoch_ != epoch) return;
      lane.state_ = Lane::State::kDone;
      rb.live--;
      ctr_.fiberless_lanes++;
    }
    direct_lane_ = nullptr;
    rb.active = false;
  }
  direct_lane_ = nullptr;
}

void LaunchSession::promote(Lane& lane) {
  // Called from inside the lane's kernel, mid-collective, while it runs
  // inline on the executor's stack. Hand that stack — kernel frame and all
  // — to the lane's fiber and suspend; nothing executed so far is re-run.
  // From here on the run belongs to the lockstep pass loop (run_direct
  // sees direct_promoted_ and demotes), so this fires at most once per run.
  ctr_.promoted_lanes++;
  direct_promoted_ = true;
  direct_lane_ = nullptr;
  direct_epoch_++;
  Fiber::handoff(lane.fiber_);
  // Resumed by step(): fall through into the collective's wait-side code.
}

bool LaunchSession::run_direct(std::uint32_t& next_block) {
  if (exec_stack_ == nullptr) exec_stack_ = pool_.checkout(ctr_);
  direct_next_ = 0;
  direct_promoted_ = false;
  direct_lane_ = nullptr;
  exec_fiber_.init(exec_stack_, cfg_.stack_bytes, &direct_entry, this);
  // The whole direct phase costs one context switch in and (if nothing
  // promotes) one out — versus two per lane on the fiber path.
  ctr_.fiber_switches++;
  exec_fiber_.resume();
  if (!direct_promoted_) {
    if (!exec_fiber_.stack_intact()) {
      throw std::runtime_error(
          "simt: fiber stack overflow (raise LaunchConfig::stack_bytes)");
    }
    return false;
  }
  // A lane took the executor's stack mid-kernel. Slot 0 is mid-flight:
  // rebuild its lockstep bookkeeping; the caller schedules the rest.
  demote_block(blocks_[0]);
  next_block = direct_next_;
  return true;
}

void LaunchSession::demote_block(ResidentBlock& rb) {
  rb.active = true;
  std::fill(rb.warp_ready.begin(), rb.warp_ready.end(), 0u);
  std::fill(rb.warp_at_bar.begin(), rb.warp_at_bar.end(), 0u);
  rb.ready_total = 0;
  rb.warp_bar_total = 0;
  rb.block_bar_total = 0;
  rb.live = 0;
  rb.live_lanes.clear();
  std::uint32_t bar_warp = 0;
  bool saw_warp_bar = false;
  for (std::uint32_t t = 0; t < cfg_.block_dim; ++t) {
    Lane& lane = lanes_[rb.first_lane + t];
    const std::uint32_t w = t / kWarpSize;
    switch (lane.state_) {
      case Lane::State::kDone:
        continue;  // completed inline; stays off the resume list
      case Lane::State::kReady:
        // Never started: becomes an ordinary fiber lane.
        if (lane.stack_ == nullptr) lane.stack_ = pool_.checkout(ctr_);
        lane.fiber_.init(lane.stack_, cfg_.stack_bytes, &lane_entry, &lane);
        rb.warp_ready[w]++;
        rb.ready_total++;
        break;
      case Lane::State::kAtWarpBar:
        rb.warp_at_bar[w]++;
        rb.warp_bar_total++;
        bar_warp = w;
        saw_warp_bar = true;
        break;
      case Lane::State::kAtBlockBar:
        rb.block_bar_total++;
        break;
      case Lane::State::kReadyNext:
        break;  // unreachable: the direct phase defers no releases
    }
    rb.live++;
    rb.live_lanes.push_back(t);
  }
  // The promoted lane's barrier may already be satisfied — every peer that
  // could arrive finished inline before it. The pass loop only re-checks
  // on arrivals, so check here; released lanes become kReadyNext, which
  // must flip to kReady now (the conversion normally happens after a pass
  // has stepped someone, and a lone released lane would otherwise stall
  // the loop into its deadlock verdict).
  if (saw_warp_bar) try_release_warp(rb, bar_warp);
  try_release_block(rb);
  for (const std::uint32_t t : rb.live_lanes) {
    Lane& lane = lanes_[rb.first_lane + t];
    if (lane.state_ == Lane::State::kReadyNext) {
      lane.state_ = Lane::State::kReady;
    }
  }
}

void LaunchSession::run(std::uint32_t grid_dim, KernelRef kernel,
                        KernelTraits traits) {
  if (grid_dim == 0) return;
  ensure_capacity(grid_dim);
  grid_dim_ = grid_dim;
  kernel_ = &kernel;

  std::uint32_t next_block = 0;
  if (traits.sync != KernelTraits::Sync::kLockstep) {
    bool promoted;
    try {
      promoted = run_direct(next_block);
    } catch (...) {
      kernel_ = nullptr;
      throw;
    }
    if (!promoted) {
      kernel_ = nullptr;
      return;
    }
    // Sticky demotion: slot 0 already runs under lockstep bookkeeping;
    // fill the remaining slots and continue under the pass loop.
    for (std::size_t s = 1; s < blocks_.size(); ++s) {
      blocks_[s].active = false;
      if (next_block < grid_dim) init_block(blocks_[s], next_block++);
    }
  } else {
    for (auto& rb : blocks_) {
      rb.active = false;
      if (next_block < grid_dim) init_block(rb, next_block++);
    }
  }

  for (;;) {
    bool any_active = false;
    bool progress = false;
    for (std::size_t s = 0; s < blocks_.size(); ++s) {
      ResidentBlock& rb = blocks_[s];
      if (!rb.active) continue;
      any_active = true;
      if (cfg_.schedule_seed != 0) shuffle_lanes(rb);
      const std::uint32_t live_before = rb.live;
      for (const std::uint32_t t : rb.live_lanes) {
        Lane& lane = lanes_[rb.first_lane + t];
        if (lane.state_ != Lane::State::kReady) continue;
        step(rb, lane);
        progress = true;
      }
      // Lanes a barrier released this pass become runnable next pass (see
      // Lane::State::kReadyNext). Under the default thread-order schedule
      // they were all stepped before the release, so this changes nothing;
      // under fuzzed orders it keeps the phases strict.
      for (const std::uint32_t t : rb.live_lanes) {
        Lane& lane = lanes_[rb.first_lane + t];
        if (lane.state_ == Lane::State::kReadyNext) {
          lane.state_ = Lane::State::kReady;
        }
      }
      if (rb.live != live_before) {
        // Drop drained lanes so later passes never revisit Done fibers.
        std::erase_if(rb.live_lanes, [&](std::uint32_t t) {
          return lanes_[rb.first_lane + t].state_ == Lane::State::kDone;
        });
      }
      if (rb.live == 0) {
        release_block_stacks(rb);
        rb.active = false;
        if (next_block < grid_dim_) {
          init_block(rb, next_block++);
          progress = true;
        }
      }
    }
    if (!any_active) break;
    if (!progress) {
      kernel_ = nullptr;
      throw std::runtime_error(
          "simt: barrier deadlock — lanes waiting on a barrier no peer "
          "will reach");
    }
  }
  kernel_ = nullptr;
}

void Lane::suspend() {
  auto* self = static_cast<LaunchSession*>(runner_context_);
  if (self->direct_lane_ == this) {
    self->promote(*this);
  } else {
    Fiber::yield();
  }
}

void Lane::syncwarp() {
  counters().warp_syncs++;
  state_ = State::kAtWarpBar;
  suspend();
}

void Lane::syncthreads() {
  counters().block_syncs++;
  state_ = State::kAtBlockBar;
  suspend();
}

std::byte* Lane::shared() const noexcept {
  if (shared_dirty_ != nullptr) *shared_dirty_ = true;
  return shared_;
}

PerfCounters& Lane::counters() const noexcept { return *counters_; }

void launch(std::uint32_t grid_dim, const LaunchConfig& cfg, PerfCounters& ctr,
            KernelRef kernel, KernelTraits traits) {
  if (cfg.block_dim == 0) {
    throw std::invalid_argument("simt::launch: block_dim must be > 0");
  }
  ctr.kernel_launches++;
  if (grid_dim == 0) return;
  LaunchSession session(cfg, ctr);
  session.run(grid_dim, kernel, traits);
}

}  // namespace nulpa::simt
