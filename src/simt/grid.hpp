// Kernel launch machinery: grids of thread blocks, warps of 32 lanes, and
// the barrier semantics of SIMT hardware. Kernels are C++ callables taking
// a `Lane&` (the equivalent of CUDA's implicit threadIdx/blockIdx context).
//
// Lockstep model: lanes run cooperatively; between two sync points every
// lane of a warp (syncwarp) or block (syncthreads) executes its segment
// before any lane proceeds past the barrier. Kernels place a syncwarp()
// between their gather phase (reading neighbour labels) and commit phase
// (writing the new label) — exactly the implicit lockstep of real warps
// that causes the community-swap livelock of Section 4.1.
//
// Executor modes: most lanes never suspend (the thread-per-vertex kernels
// are barrier-free), so by default a run starts in the *fiberless*
// direct-execution mode — lane bodies are plain calls on one executor
// fiber's stack, no per-lane fiber, no per-lane context switches. The
// first blocking collective a lane hits triggers lazy promotion: the
// executor's stack is handed to the lane's fiber wholesale (no re-run, so
// pre-barrier side effects happen exactly once) and the rest of the run
// falls back to the lockstep fiber schedule below.
//
// Execution backends: an ExecPolicy fixed at session construction selects
// between the serial backend (one host thread walks every resident slot —
// the original simulator) and the parallel backend, which shards the
// resident slots across the process ThreadPool the way a GPU spreads
// blocks across SMs. Each shard owns its slots' stacks and a private
// PerfCounters merged into the session's sink when the grid drains. In
// deterministic mode (the default) the parallel lockstep scheduler runs
// pass-synchronized — one pool barrier per pass — which, combined with the
// stateless per-(block, pass) schedule derivation below, makes labels and
// merged counters byte-identical for every thread count. See DESIGN.md
// "Parallel backend & ExecPolicy".
//
// Two entry points:
//   - launch(): one-shot grid, allocates its fiber stacks per call.
//   - LaunchSession: reusable launch context. Lane array, the stack pools
//     and the shared-memory arena persist across run() calls, so
//     per-iteration kernels (ν-LPA launches two per iteration, twenty
//     iterations deep) pay the allocation cost once. Barrier release uses
//     per-warp and per-block arrival counters (O(1) per step instead of
//     rescanning the block), and drained lanes drop off the resume list so
//     Done fibers are never revisited.
#pragma once

#include <atomic>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <type_traits>
#include <vector>

#include "simt/counters.hpp"
#include "simt/fiber.hpp"
#include "simt/mem.hpp"
#include "util/rng.hpp"

namespace nulpa::simt {

struct LaunchConfig {
  std::uint32_t block_dim = 256;       // threads per block
  std::uint32_t resident_blocks = 4;   // blocks co-scheduled (SM residency)
  std::uint32_t shared_bytes = 0;      // per-block shared memory arena
  std::size_t stack_bytes = 1 << 14;   // per-fiber stack
  // 0 = deterministic lane order (lane 0 first — the default, reproducible
  // schedule). Non-zero seeds a per-pass shuffle of the lane resume order,
  // the simulator equivalent of fuzzing warp-scheduler interleavings: any
  // kernel that relies on a specific lane order between barriers (rather
  // than on the barriers themselves) will break under some seed. The
  // shuffle for (block, pass) is derived statelessly from the seed, so a
  // fuzzed schedule does not depend on the execution backend or thread
  // count. Barrier semantics are unchanged. ExecPolicy::schedule_seed
  // overrides this when non-zero.
  std::uint64_t schedule_seed = 0;
  // Geometry of the modeled memory hierarchy (coalescer line/sector sizes
  // and the per-SM data cache). Only consulted when the session's
  // ExecPolicy enables track_memory.
  MemGeometry mem{};
  // Latency parameters of the scoreboard replay (simt/scoreboard.hpp):
  // issue-pipe cycles per transaction and hit/miss return latencies. Only
  // consulted when track_memory is on.
  PipelineModel pipeline{};
};

/// How a kernel's lanes synchronize — the executor-mode axis of ExecPolicy.
enum class SyncMode : std::uint8_t {
  // Start fiberless and lazily promote on the first blocking collective.
  // Safe for any kernel — promotion transplants the running stack, so
  // work done before the collective is never repeated.
  kAuto,
  // Caller's promise that no lane ever blocks (ν-LPA TPV gather/commit,
  // the Gunrock advance, cross-check). Same direct execution as kAuto —
  // the promise is documentation plus a broken-promise canary: promotion
  // still works, but shows up in `promoted_lanes`.
  kBarrierFree,
  // Full fiber semantics from lane zero (the block-per-vertex kernel,
  // whose phases are built from syncthreads; spawning fibers upfront
  // avoids one pointless promotion per block).
  kLockstep,
};

/// The one knob surface for how a session executes its grids, fixed at
/// construction. Collapses what used to be per-call KernelTraits, the
/// engine-level fiberless/frontier_compaction bools, and the parallel
/// backend's thread-count/determinism settings.
struct ExecPolicy {
  using Sync = SyncMode;
  enum class Backend : std::uint8_t {
    kSerial,    // one host thread (the original simulator)
    kParallel,  // resident slots sharded across the process ThreadPool
  };

  Sync sync = Sync::kAuto;
  Backend backend = Backend::kSerial;
  // Parallel shard count; 0 = ThreadPool::global().size() at session
  // construction. May exceed the pool size (shards are multiplexed onto
  // the available workers), so determinism tests can pin logical widths
  // independently of the host.
  unsigned threads = 0;
  // Pass-synchronized parallel lockstep schedule: one pool barrier per
  // pass keeps every block's barrier phases aligned exactly as the serial
  // scheduler would, making labels and merged counters byte-identical
  // across thread counts. false lets shards free-run their slots (no
  // cross-thread reproducibility; still race-free).
  bool deterministic = true;
  // Overrides LaunchConfig::schedule_seed when non-zero (one surface for
  // --seed style flags; the per-(block, pass) derivation keeps fuzzed
  // schedules identical across backends and thread counts).
  std::uint64_t schedule_seed = 0;
  // Consumed by the engines sharing this policy (ν-LPA, Gunrock), not by
  // the session itself: launch only the active frontier each iteration.
  bool frontier_compaction = true;
  // Memory-hierarchy model (simt/mem.hpp): record the byte addresses of
  // accesses issued through Lane::dev_load/dev_store, coalesce per-warp
  // issue windows into 32/64/128B transactions and run them through the
  // per-SM data-cache model. Counters: PerfCounters::global_transactions
  // and friends; they stay zero (and tracking costs nothing) when off.
  bool track_memory = true;
  // Scoreboard scheduling in the cycle replay (simt/scoreboard.hpp): a
  // warp stalled on a modeled memory return yields the issue pipe to
  // other resident warps (latency hiding). false serializes the replay —
  // every window waits for its own return, the lockstep-scheduler cost.
  // Purely a timing-model knob: labels, the functional counters, and the
  // transaction/cache stream are byte-identical across both settings; only
  // modeled_cycles / stall_cycles / hidden_latency_cycles move, and those
  // by an exact documented transform. Needs track_memory.
  bool scoreboard = true;

  [[nodiscard]] constexpr bool is_parallel() const noexcept {
    return backend == Backend::kParallel;
  }

  [[nodiscard]] static constexpr ExecPolicy serial() noexcept { return {}; }
  [[nodiscard]] static constexpr ExecPolicy barrier_free() noexcept {
    ExecPolicy p;
    p.sync = Sync::kBarrierFree;
    return p;
  }
  [[nodiscard]] static constexpr ExecPolicy lockstep() noexcept {
    ExecPolicy p;
    p.sync = Sync::kLockstep;
    return p;
  }
  [[nodiscard]] static constexpr ExecPolicy parallel(
      unsigned threads = 0) noexcept {
    ExecPolicy p;
    p.backend = Backend::kParallel;
    p.threads = threads;
    return p;
  }

  [[nodiscard]] constexpr ExecPolicy with_sync(Sync s) const noexcept {
    ExecPolicy p = *this;
    p.sync = s;
    return p;
  }
  [[nodiscard]] constexpr ExecPolicy with_backend(Backend b) const noexcept {
    ExecPolicy p = *this;
    p.backend = b;
    return p;
  }
  [[nodiscard]] constexpr ExecPolicy with_threads(unsigned t) const noexcept {
    ExecPolicy p = *this;
    p.threads = t;
    return p;
  }
  [[nodiscard]] constexpr ExecPolicy with_deterministic(
      bool on) const noexcept {
    ExecPolicy p = *this;
    p.deterministic = on;
    return p;
  }
  [[nodiscard]] constexpr ExecPolicy with_schedule_seed(
      std::uint64_t seed) const noexcept {
    ExecPolicy p = *this;
    p.schedule_seed = seed;
    return p;
  }
  [[nodiscard]] constexpr ExecPolicy with_frontier_compaction(
      bool on) const noexcept {
    ExecPolicy p = *this;
    p.frontier_compaction = on;
    return p;
  }
  [[nodiscard]] constexpr ExecPolicy with_track_memory(bool on) const noexcept {
    ExecPolicy p = *this;
    p.track_memory = on;
    return p;
  }
  [[nodiscard]] constexpr ExecPolicy with_scoreboard(bool on) const noexcept {
    ExecPolicy p = *this;
    p.scoreboard = on;
    return p;
  }
};

/// Fixed-size fiber stacks carved from slabs with a free list. Checked out
/// when a lane actually needs a fiber (lockstep blocks, or the demoted
/// remainder of a promoted run) and returned when its block drains, so
/// fiberless launches hold no lane stacks at all. Thread-safety is by
/// ownership, not locking: each parallel shard owns a private pool, and a
/// slot's stacks always come from its owning shard's pool.
class StackPool {
 public:
  explicit StackPool(std::size_t stack_bytes) : stack_bytes_(stack_bytes) {}

  /// Returns a stack, preferring the free list (counted as a pool hit —
  /// the reuse the pool exists for) over carving a fresh slab slot.
  std::byte* checkout(PerfCounters& ctr);
  void checkin(std::byte* stack) { free_.push_back(stack); }

  [[nodiscard]] std::size_t stack_bytes() const noexcept {
    return stack_bytes_;
  }

 private:
  static constexpr std::size_t kStacksPerSlab = 16;

  std::size_t stack_bytes_;
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::vector<std::byte*> free_;
  std::size_t slab_used_ = kStacksPerSlab;  // slots carved off slabs_.back()
};

class LaunchSession;

/// Per-thread kernel context — the CUDA built-ins plus barriers, atomics,
/// and counter hooks. Only valid inside a running kernel.
class Lane {
 public:
  [[nodiscard]] std::uint32_t thread_idx() const noexcept { return thread_idx_; }
  [[nodiscard]] std::uint32_t block_idx() const noexcept { return block_idx_; }
  [[nodiscard]] std::uint32_t block_dim() const noexcept { return block_dim_; }
  [[nodiscard]] std::uint32_t grid_dim() const noexcept { return grid_dim_; }
  [[nodiscard]] std::uint32_t global_thread() const noexcept {
    return block_idx_ * block_dim_ + thread_idx_;
  }
  [[nodiscard]] std::uint32_t warp() const noexcept {
    return thread_idx_ / kWarpSize;
  }
  [[nodiscard]] std::uint32_t lane_in_warp() const noexcept {
    return thread_idx_ % kWarpSize;
  }
  /// The executing shard's index (always 0 on the serial backend). Kernels
  /// keeping per-worker side state (e.g. hash-probe statistics) index it
  /// with this, sized by LaunchSession::workers().
  [[nodiscard]] unsigned worker() const noexcept { return worker_; }

  /// __syncwarp(): no lane of this warp passes until all live lanes arrive.
  void syncwarp();
  /// __syncthreads(): block-wide barrier.
  void syncthreads();

  /// Per-block shared memory arena (cfg.shared_bytes long, zeroed at block
  /// start). Handing out the pointer marks the slot's arena dirty: the next
  /// block to occupy the slot pays a zero-fill, blocks whose kernels never
  /// ask for shared memory don't.
  [[nodiscard]] std::byte* shared() const noexcept;

  [[nodiscard]] PerfCounters& counters() const noexcept;

  // ---- Device atomics. Real read-modify-writes (std::atomic_ref,
  // relaxed), so they stay correct when the parallel backend runs blocks
  // on several host threads; on the serial backend they compile to the
  // plain operations they always were. Kernels must use them wherever the
  // CUDA code would: they are counted and they document (and now resolve)
  // the races the real hardware resolves. They never block, so they never
  // promote a fiberless lane.
  template <typename T>
  T atomic_add(T& slot, T v) const noexcept {
    counters().atomic_ops++;
    std::atomic_ref<T> ref(slot);
    if constexpr (std::is_integral_v<T>) {
      return ref.fetch_add(v, std::memory_order_relaxed);
    } else {
      T old = ref.load(std::memory_order_relaxed);
      while (!ref.compare_exchange_weak(old, old + v,
                                        std::memory_order_relaxed)) {
      }
      return old;
    }
  }

  std::uint32_t atomic_cas(std::uint32_t& slot, std::uint32_t expected,
                           std::uint32_t desired) const noexcept {
    counters().atomic_ops++;
    std::atomic_ref<std::uint32_t> ref(slot);
    std::uint32_t old = expected;
    ref.compare_exchange_strong(old, desired, std::memory_order_relaxed);
    return old;
  }

  std::uint32_t atomic_max(std::uint32_t& slot, std::uint32_t v) const noexcept {
    counters().atomic_ops++;
    std::atomic_ref<std::uint32_t> ref(slot);
    std::uint32_t old = ref.load(std::memory_order_relaxed);
    while (v > old &&
           !ref.compare_exchange_weak(old, v, std::memory_order_relaxed)) {
    }
    return old;
  }

  // ---- Tracked device-memory accesses. The real (relaxed-atomic) load or
  // store the parallel backend needs, plus word-count accounting, plus —
  // when the session's policy enables track_memory — an address record the
  // per-warp coalescer and data-cache model consume at the next issue
  // boundary (see simt/mem.hpp). Buffers accessed through these should be
  // allocated via simt::device_vector so transaction counts are
  // reproducible across allocations.
  template <typename T>
  [[nodiscard]] T dev_load(const T& slot) const noexcept {
    counters().global_loads++;
    if (mem_ != nullptr) {
      counters().tracked_accesses++;
      mem_->record(thread_idx_, &slot, sizeof(T));
    }
    return std::atomic_ref<T>(const_cast<T&>(slot))
        .load(std::memory_order_relaxed);
  }
  template <typename T>
  void dev_store(T& slot, T v) const noexcept {
    counters().global_stores++;
    if (mem_ != nullptr) {
      counters().tracked_accesses++;
      mem_->record(thread_idx_, &slot, sizeof(T));
    }
    std::atomic_ref<T>(slot).store(v, std::memory_order_relaxed);
  }

  // Record-only variants for values the kernel already read or wrote by
  // other means (a plain read of its own table, a stream the view's clear()
  // wrote): same counting and tracking as dev_load/dev_store, no access.
  template <typename T>
  void track_load(const T& slot) const noexcept {
    counters().global_loads++;
    if (mem_ != nullptr) {
      counters().tracked_accesses++;
      mem_->record(thread_idx_, &slot, sizeof(T));
    }
  }
  template <typename T>
  void track_store(const T& slot) const noexcept {
    counters().global_stores++;
    if (mem_ != nullptr) {
      counters().tracked_accesses++;
      mem_->record(thread_idx_, &slot, sizeof(T));
    }
  }
  /// Strided-span variants: `n` accesses at base[0], base[stride], ... —
  /// the shape of a per-vertex table walk (stride 1 flat, kWarpSize when
  /// the slab is laid out warp-interleaved).
  template <typename T>
  void track_load_span(const T* base, std::uint64_t n,
                       std::uint32_t stride = 1) const noexcept {
    counters().global_loads += n;
    if (mem_ != nullptr) {
      counters().tracked_accesses += n;
      for (std::uint64_t i = 0; i < n; ++i) {
        mem_->record(thread_idx_, base + i * stride, sizeof(T));
      }
    }
  }
  template <typename T>
  void track_store_span(const T* base, std::uint64_t n,
                        std::uint32_t stride = 1) const noexcept {
    counters().global_stores += n;
    if (mem_ != nullptr) {
      counters().tracked_accesses += n;
      for (std::uint64_t i = 0; i < n; ++i) {
        mem_->record(thread_idx_, base + i * stride, sizeof(T));
      }
    }
  }

  // ---- Memory-traffic accounting hooks (words, not bytes). Untracked:
  // counted against the stream term of the cost model at full bandwidth.
  void count_load(std::uint64_t n = 1) const noexcept {
    counters().global_loads += n;
  }
  void count_store(std::uint64_t n = 1) const noexcept {
    counters().global_stores += n;
  }
  void count_shared_load(std::uint64_t n = 1) const noexcept {
    counters().shared_loads += n;
  }
  void count_shared_store(std::uint64_t n = 1) const noexcept {
    counters().shared_stores += n;
  }

 private:
  friend class LaunchSession;

  // kReadyNext: released from a barrier mid-pass; runnable from the next
  // pass on. Deferring the resume keeps barrier-separated phases strict
  // under schedule fuzzing — no lane crosses a barrier in the same pass
  // its peers are still arriving in — which in turn makes the scheduler's
  // gather cohorts independent of lane order (the property frontier
  // compaction's byte-identity relies on).
  enum class State : std::uint8_t {
    kReady, kReadyNext, kAtWarpBar, kAtBlockBar, kDone
  };

  /// Parks this lane at the barrier state already stored in `state_`:
  /// yields its fiber, or — when the lane is running inline in the direct
  /// executor — promotes it onto a fiber first (see LaunchSession::promote).
  void suspend();

  void* runner_context_ = nullptr;  // owning LaunchSession::Shard
  PerfCounters* counters_ = nullptr;
  BlockMem* mem_ = nullptr;  // owning slot's tracker; null = tracking off
  std::byte* shared_ = nullptr;
  bool* shared_dirty_ = nullptr;  // owning slot's dirty flag
  std::byte* stack_ = nullptr;    // pool stack while the lane owns a fiber
  Fiber fiber_;
  State state_ = State::kDone;
  std::uint32_t thread_idx_ = 0;
  std::uint32_t block_idx_ = 0;
  std::uint32_t block_dim_ = 0;
  std::uint32_t grid_dim_ = 0;
  unsigned worker_ = 0;
};

using Kernel = std::function<void(Lane&)>;

/// Non-owning reference to any `void(Lane&)` callable: one indirect call,
/// no type erasure allocation. The referenced callable must outlive the
/// run() it is passed to (trivially true for launch-scoped lambdas).
class KernelRef {
 public:
  template <typename K>
    requires(!std::is_same_v<std::remove_cvref_t<K>, KernelRef> &&
             std::invocable<K&, Lane&>)
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like
  // std::function — call sites pass lambdas directly.
  KernelRef(K&& kernel) noexcept
      : obj_(const_cast<void*>(static_cast<const void*>(
            std::addressof(kernel)))),
        call_([](void* obj, Lane& lane) {
          (*static_cast<std::remove_reference_t<K>*>(obj))(lane);
        }) {}

  void operator()(Lane& lane) const { call_(obj_, lane); }

 private:
  void* obj_;
  void (*call_)(void*, Lane&);
};

/// Reusable launch context bound to one LaunchConfig, counter sink, and
/// ExecPolicy. run() executes one grid with the same semantics as launch()
/// but without bumping PerfCounters::kernel_launches — callers that
/// assemble a logical kernel from several window launches (the
/// frontier-compacted engines) bump it once per logical kernel themselves.
///
/// On the parallel backend, kernels run concurrently on pool workers: the
/// kernel body must only touch shared data through Lane's atomics (or
/// std::atomic_ref), and cross-block label visibility follows the barrier
/// structure — see DESIGN.md "Parallel backend & ExecPolicy" for the
/// determinism contract per SyncMode.
class LaunchSession {
 public:
  LaunchSession(const LaunchConfig& cfg, PerfCounters& ctr);
  LaunchSession(const LaunchConfig& cfg, PerfCounters& ctr,
                const ExecPolicy& policy);
  ~LaunchSession();
  LaunchSession(const LaunchSession&) = delete;
  LaunchSession& operator=(const LaunchSession&) = delete;

  /// Runs `grid_dim` blocks of `cfg.block_dim` threads to completion under
  /// the session's ExecPolicy. Throws std::runtime_error on barrier
  /// deadlock or stack overflow.
  void run(std::uint32_t grid_dim, KernelRef kernel);

  [[nodiscard]] const LaunchConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const ExecPolicy& policy() const noexcept { return policy_; }
  /// Number of shards (1 on the serial backend). Lane::worker() < this.
  [[nodiscard]] unsigned workers() const noexcept { return workers_; }

 private:
  friend class Lane;

  /// One simulated SM slot with its arrival counters. `warp_ready` /
  /// `warp_at_bar` track, per warp, how many lanes are runnable vs parked
  /// at the warp barrier; the block-level totals do the same across the
  /// whole block. Barrier release is then a counter compare instead of a
  /// lane rescan (the seed scheduler's O(block_dim) per step).
  struct ResidentBlock {
    bool active = false;
    // The slot's arena slice needs a zero-fill before the next block runs.
    // Starts true (the arena is allocated uninitialized) and is set again
    // whenever a kernel obtains the arena pointer via Lane::shared().
    bool shared_dirty = true;
    std::uint32_t block_idx = 0;
    std::uint32_t first_lane = 0;
    std::uint32_t live = 0;  // lanes not yet Done
    std::byte* shared = nullptr;
    std::vector<std::uint32_t> warp_ready;
    std::vector<std::uint32_t> warp_at_bar;
    std::uint32_t ready_total = 0;
    std::uint32_t warp_bar_total = 0;
    std::uint32_t block_bar_total = 0;
    // Non-Done lanes in resume order; rebuilt once per pass so drained
    // lanes are never revisited.
    std::vector<std::uint32_t> live_lanes;
    // Schedule-fuzz pass counter: shuffle #n of this block draws its lane
    // order from mix(seed, block_idx, n), independent of every other
    // block and of the backend.
    std::uint64_t pass_seq = 0;
    // Memory-hierarchy tracker for the block occupying this slot (access
    // logs, coalescer, per-SM data cache). Re-armed at block init, flushed
    // at barrier releases and block drain; idle when tracking is off.
    BlockMem mem;
  };

  /// Per-worker execution state. The serial backend is one shard whose
  /// counter pointer aliases the session sink; parallel shards accumulate
  /// into `local`, merged at drain. Each shard owns the stacks, the
  /// executor fiber, and the slots `s` with `s % workers_ == id`, so no
  /// two threads ever touch the same pool, fiber, or ResidentBlock.
  struct Shard {
    explicit Shard(std::size_t stack_bytes) : pool(stack_bytes) {}

    unsigned id = 0;
    LaunchSession* session = nullptr;
    PerfCounters* ctr = nullptr;  // &local (parallel) or the session sink
    PerfCounters local;
    StackPool pool;

    // Direct-execution state. The executor fiber owns one pool stack for
    // the shard's lifetime; after a promotion that stack belongs to the
    // promoted lane until its fiber finishes (always before run() returns).
    Fiber exec_fiber;
    std::byte* exec_stack = nullptr;
    Lane* direct_lane = nullptr;   // lane currently running inline, if any
    bool direct_promoted = false;  // a promotion interrupted the direct loop
    std::uint32_t direct_slot = 0;    // ResidentBlock the direct loop uses
    std::uint32_t direct_next = 0;    // next block the direct loop inits
    std::uint32_t direct_stride = 1;  // block stride (parallel round-robin)
    // Parallel direct runs charge one fiber_switch per block (T-invariant)
    // instead of the serial backend's one per executor arming.
    bool switch_per_block = false;
    // Bumped by promote(); the executor loop frame — now living on the
    // promoted lane's stack — compares it against the value it captured
    // and unwinds instead of running more lanes on a stack it no longer
    // owns.
    std::uint64_t direct_epoch = 0;

    bool pass_progress = false;       // out-param of a synchronized pass
    std::exception_ptr error;         // first failure, rethrown on the host
  };

  static void lane_entry(void* arg);
  static void direct_entry(void* arg);

  void ensure_capacity(std::uint32_t grid_dim);
  [[nodiscard]] Shard& shard_for(std::uint32_t slot) noexcept {
    return *shards_[slot % workers_];
  }
  void prepare_shared(Shard& sh, ResidentBlock& rb);
  void init_block(Shard& sh, ResidentBlock& rb, std::uint32_t block_idx);
  void init_block_direct(Shard& sh, ResidentBlock& rb,
                         std::uint32_t block_idx);
  void release_block_stacks(Shard& sh, ResidentBlock& rb);
  void shuffle_lanes(ResidentBlock& rb);
  void step(Shard& sh, ResidentBlock& rb, Lane& lane);
  void try_release_warp(Shard& sh, ResidentBlock& rb, std::uint32_t warp);
  void try_release_block(Shard& sh, ResidentBlock& rb);

  /// One scheduler pass over `rb`: shuffle (if fuzzing), step every ready
  /// lane, flip deferred releases, drop drained lanes, and — when the
  /// block drains — return its stacks and free the slot. Returns whether
  /// any lane stepped. Shared by the serial loop, the synchronized
  /// parallel passes, and the post-promotion block drain.
  bool pass_block(Shard& sh, ResidentBlock& rb);

  /// Direct phase: runs whole blocks inline on the shard's executor fiber
  /// (blocks direct_next, direct_next + stride, ...). Returns false when
  /// they drained fiberless; returns true when a lane promoted, leaving
  /// the shard's slot mid-flight (demoted to lockstep bookkeeping) and
  /// `direct_next` at the next block the caller still has to schedule.
  bool run_direct(Shard& sh);
  void direct_loop(Shard& sh);
  /// Rebuilds the slot's lockstep bookkeeping from the lane states the
  /// interrupted direct phase left behind: inline-finished lanes are Done,
  /// the promoted lane is parked at its barrier, untouched lanes get
  /// fibers and run under the pass loop.
  void demote_block(Shard& sh, ResidentBlock& rb);
  /// Lazy promotion (called from Lane::suspend while the lane runs inline):
  /// hands the executor's stack to the lane's fiber and suspends it there.
  void promote(Shard& sh, Lane& lane);
  /// Pass loop over a single block until it drains (used after a promotion
  /// interrupts a parallel direct run).
  void run_block_passes(Shard& sh, ResidentBlock& rb);

  void run_impl(std::uint32_t grid_dim, KernelRef kernel, SyncMode sync);
  void run_serial(SyncMode sync);
  void run_parallel(SyncMode sync);
  void run_parallel_lockstep();
  void run_parallel_freerun();
  void run_parallel_direct();
  /// Freerun work stealing: re-binds a live block's lanes and tracker to
  /// the thief shard, so the remaining passes charge the thief's counters
  /// and check stacks into the thief's pool at drain.
  void adopt_block(Shard& thief, ResidentBlock& rb);
  void merge_shard_counters();
  void rethrow_shard_error();

  LaunchConfig cfg_;
  ExecPolicy policy_;
  PerfCounters& ctr_;
  std::uint64_t seed_ = 0;      // effective schedule seed (policy > cfg)
  bool track_ = true;           // policy_.track_memory, hoisted for the hooks
  unsigned workers_ = 1;        // shard count, fixed at construction
  std::uint32_t grid_dim_ = 0;  // grid of the run() in progress
  std::uint32_t slots_ = 0;     // allocated residency
  const KernelRef* kernel_ = nullptr;
  std::unique_ptr<Lane[]> lanes_;
  std::unique_ptr<std::byte[]> shared_arena_;
  std::vector<ResidentBlock> blocks_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Launches `grid_dim` blocks of `cfg.block_dim` threads running `kernel`,
/// and blocks until the grid drains. Counter totals accumulate into `ctr`.
/// Throws std::runtime_error on barrier deadlock or stack overflow.
/// One-shot: allocates a fresh LaunchSession per call; iteration-hot code
/// should hold a LaunchSession instead.
void launch(std::uint32_t grid_dim, const LaunchConfig& cfg, PerfCounters& ctr,
            KernelRef kernel, const ExecPolicy& policy = {});

}  // namespace nulpa::simt
