// Kernel launch machinery: grids of thread blocks, warps of 32 lanes, and
// the barrier semantics of SIMT hardware. Kernels are C++ callables taking
// a `Lane&` (the equivalent of CUDA's implicit threadIdx/blockIdx context).
//
// Lockstep model: lanes run cooperatively; between two sync points every
// lane of a warp (syncwarp) or block (syncthreads) executes its segment
// before any lane proceeds past the barrier. Kernels place a syncwarp()
// between their gather phase (reading neighbour labels) and commit phase
// (writing the new label) — exactly the implicit lockstep of real warps
// that causes the community-swap livelock of Section 4.1.
//
// Executor modes: most lanes never suspend (the thread-per-vertex kernels
// are barrier-free), so by default a run starts in the *fiberless*
// direct-execution mode — lane bodies are plain calls on one executor
// fiber's stack, no per-lane fiber, no per-lane context switches. The
// first blocking collective a lane hits triggers lazy promotion: the
// executor's stack is handed to the lane's fiber wholesale (no re-run, so
// pre-barrier side effects happen exactly once) and the rest of the run
// falls back to the lockstep fiber schedule below. KernelTraits lets
// launches pick a mode statically; see DESIGN.md "executor modes".
//
// Two entry points:
//   - launch(): one-shot grid, allocates its fiber stacks per call.
//   - LaunchSession: reusable launch context. Lane array, the stack pool
//     and the shared-memory arena persist across run() calls, so
//     per-iteration kernels (ν-LPA launches two per iteration, twenty
//     iterations deep) pay the allocation cost once. Barrier release uses
//     per-warp and per-block arrival counters (O(1) per step instead of
//     rescanning the block), and drained lanes drop off the resume list so
//     Done fibers are never revisited.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <vector>

#include "simt/counters.hpp"
#include "simt/fiber.hpp"
#include "util/rng.hpp"

namespace nulpa::simt {

inline constexpr std::uint32_t kWarpSize = 32;

struct LaunchConfig {
  std::uint32_t block_dim = 256;       // threads per block
  std::uint32_t resident_blocks = 4;   // blocks co-scheduled (SM residency)
  std::uint32_t shared_bytes = 0;      // per-block shared memory arena
  std::size_t stack_bytes = 1 << 14;   // per-fiber stack
  // 0 = deterministic lane order (lane 0 first — the default, reproducible
  // schedule). Non-zero seeds a per-pass shuffle of the lane resume order,
  // the simulator equivalent of fuzzing warp-scheduler interleavings: any
  // kernel that relies on a specific lane order between barriers (rather
  // than on the barriers themselves) will break under some seed. Barrier
  // semantics are unchanged.
  std::uint64_t schedule_seed = 0;
};

/// Static execution-mode hint a launch passes alongside its kernel.
struct KernelTraits {
  enum class Sync : std::uint8_t {
    // Start fiberless and lazily promote on the first blocking collective.
    // Safe for any kernel — promotion transplants the running stack, so
    // work done before the collective is never repeated.
    kAuto,
    // Caller's promise that no lane ever blocks (ν-LPA TPV gather/commit,
    // the Gunrock advance, cross-check). Same direct execution as kAuto —
    // the promise is documentation plus a broken-promise canary: promotion
    // still works, but shows up in `promoted_lanes`.
    kBarrierFree,
    // Full fiber semantics from lane zero (the block-per-vertex kernel,
    // whose phases are built from syncthreads; spawning fibers upfront
    // avoids one pointless promotion per block).
    kLockstep,
  };

  Sync sync = Sync::kAuto;

  [[nodiscard]] static constexpr KernelTraits barrier_free() noexcept {
    return {Sync::kBarrierFree};
  }
  [[nodiscard]] static constexpr KernelTraits lockstep() noexcept {
    return {Sync::kLockstep};
  }
};

/// Fixed-size fiber stacks carved from slabs with a free list. Checked out
/// when a lane actually needs a fiber (lockstep blocks, or the demoted
/// remainder of a promoted run) and returned when its block drains, so
/// fiberless launches hold no lane stacks at all.
class StackPool {
 public:
  explicit StackPool(std::size_t stack_bytes) : stack_bytes_(stack_bytes) {}

  /// Returns a stack, preferring the free list (counted as a pool hit —
  /// the reuse the pool exists for) over carving a fresh slab slot.
  std::byte* checkout(PerfCounters& ctr);
  void checkin(std::byte* stack) { free_.push_back(stack); }

  [[nodiscard]] std::size_t stack_bytes() const noexcept {
    return stack_bytes_;
  }

 private:
  static constexpr std::size_t kStacksPerSlab = 16;

  std::size_t stack_bytes_;
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::vector<std::byte*> free_;
  std::size_t slab_used_ = kStacksPerSlab;  // slots carved off slabs_.back()
};

class LaunchSession;

/// Per-thread kernel context — the CUDA built-ins plus barriers, atomics,
/// and counter hooks. Only valid inside a running kernel.
class Lane {
 public:
  [[nodiscard]] std::uint32_t thread_idx() const noexcept { return thread_idx_; }
  [[nodiscard]] std::uint32_t block_idx() const noexcept { return block_idx_; }
  [[nodiscard]] std::uint32_t block_dim() const noexcept { return block_dim_; }
  [[nodiscard]] std::uint32_t grid_dim() const noexcept { return grid_dim_; }
  [[nodiscard]] std::uint32_t global_thread() const noexcept {
    return block_idx_ * block_dim_ + thread_idx_;
  }
  [[nodiscard]] std::uint32_t warp() const noexcept {
    return thread_idx_ / kWarpSize;
  }
  [[nodiscard]] std::uint32_t lane_in_warp() const noexcept {
    return thread_idx_ % kWarpSize;
  }

  /// __syncwarp(): no lane of this warp passes until all live lanes arrive.
  void syncwarp();
  /// __syncthreads(): block-wide barrier.
  void syncthreads();

  /// Per-block shared memory arena (cfg.shared_bytes long, zeroed at block
  /// start). Handing out the pointer marks the slot's arena dirty: the next
  /// block to occupy the slot pays a zero-fill, blocks whose kernels never
  /// ask for shared memory don't.
  [[nodiscard]] std::byte* shared() const noexcept;

  [[nodiscard]] PerfCounters& counters() const noexcept;

  // ---- Device atomics. The simulator is single-threaded, so these are
  // plain read-modify-writes, but kernels must still use them wherever the
  // CUDA code would: they are counted and they document the races the real
  // hardware resolves. They never block, so they never promote a fiberless
  // lane.
  template <typename T>
  T atomic_add(T& slot, T v) const noexcept {
    counters().atomic_ops++;
    const T old = slot;
    slot = old + v;
    return old;
  }

  std::uint32_t atomic_cas(std::uint32_t& slot, std::uint32_t expected,
                           std::uint32_t desired) const noexcept {
    counters().atomic_ops++;
    const std::uint32_t old = slot;
    if (old == expected) slot = desired;
    return old;
  }

  std::uint32_t atomic_max(std::uint32_t& slot, std::uint32_t v) const noexcept {
    counters().atomic_ops++;
    const std::uint32_t old = slot;
    if (v > old) slot = v;
    return old;
  }

  // ---- Memory-traffic accounting hooks (words, not bytes).
  void count_load(std::uint64_t n = 1) const noexcept {
    counters().global_loads += n;
  }
  void count_store(std::uint64_t n = 1) const noexcept {
    counters().global_stores += n;
  }
  void count_shared_load(std::uint64_t n = 1) const noexcept {
    counters().shared_loads += n;
  }
  void count_shared_store(std::uint64_t n = 1) const noexcept {
    counters().shared_stores += n;
  }

 private:
  friend class LaunchSession;

  // kReadyNext: released from a barrier mid-pass; runnable from the next
  // pass on. Deferring the resume keeps barrier-separated phases strict
  // under schedule fuzzing — no lane crosses a barrier in the same pass
  // its peers are still arriving in — which in turn makes the scheduler's
  // gather cohorts independent of lane order (the property frontier
  // compaction's byte-identity relies on).
  enum class State : std::uint8_t {
    kReady, kReadyNext, kAtWarpBar, kAtBlockBar, kDone
  };

  /// Parks this lane at the barrier state already stored in `state_`:
  /// yields its fiber, or — when the lane is running inline in the direct
  /// executor — promotes it onto a fiber first (see LaunchSession::promote).
  void suspend();

  void* runner_context_ = nullptr;  // owning LaunchSession
  PerfCounters* counters_ = nullptr;
  std::byte* shared_ = nullptr;
  bool* shared_dirty_ = nullptr;  // owning slot's dirty flag
  std::byte* stack_ = nullptr;    // pool stack while the lane owns a fiber
  Fiber fiber_;
  State state_ = State::kDone;
  std::uint32_t thread_idx_ = 0;
  std::uint32_t block_idx_ = 0;
  std::uint32_t block_dim_ = 0;
  std::uint32_t grid_dim_ = 0;
};

using Kernel = std::function<void(Lane&)>;

/// Non-owning reference to any `void(Lane&)` callable: one indirect call,
/// no type erasure allocation. The referenced callable must outlive the
/// run() it is passed to (trivially true for launch-scoped lambdas).
class KernelRef {
 public:
  template <typename K>
    requires(!std::is_same_v<std::remove_cvref_t<K>, KernelRef> &&
             std::invocable<K&, Lane&>)
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like
  // std::function — call sites pass lambdas directly.
  KernelRef(K&& kernel) noexcept
      : obj_(const_cast<void*>(static_cast<const void*>(
            std::addressof(kernel)))),
        call_([](void* obj, Lane& lane) {
          (*static_cast<std::remove_reference_t<K>*>(obj))(lane);
        }) {}

  void operator()(Lane& lane) const { call_(obj_, lane); }

 private:
  void* obj_;
  void (*call_)(void*, Lane&);
};

/// Reusable launch context bound to one LaunchConfig and counter sink.
/// run() executes one grid with the same semantics as launch() but without
/// bumping PerfCounters::kernel_launches — callers that assemble a logical
/// kernel from several window launches (the frontier-compacted engines)
/// bump it once per logical kernel themselves.
class LaunchSession {
 public:
  LaunchSession(const LaunchConfig& cfg, PerfCounters& ctr);
  ~LaunchSession();
  LaunchSession(const LaunchSession&) = delete;
  LaunchSession& operator=(const LaunchSession&) = delete;

  /// Runs `grid_dim` blocks of `cfg.block_dim` threads to completion.
  /// Throws std::runtime_error on barrier deadlock or stack overflow.
  void run(std::uint32_t grid_dim, KernelRef kernel, KernelTraits traits = {});

  [[nodiscard]] const LaunchConfig& config() const noexcept { return cfg_; }

 private:
  friend class Lane;

  /// One simulated SM slot with its arrival counters. `warp_ready` /
  /// `warp_at_bar` track, per warp, how many lanes are runnable vs parked
  /// at the warp barrier; the block-level totals do the same across the
  /// whole block. Barrier release is then a counter compare instead of a
  /// lane rescan (the seed scheduler's O(block_dim) per step).
  struct ResidentBlock {
    bool active = false;
    // The slot's arena slice needs a zero-fill before the next block runs.
    // Starts true (the arena is allocated uninitialized) and is set again
    // whenever a kernel obtains the arena pointer via Lane::shared().
    bool shared_dirty = true;
    std::uint32_t block_idx = 0;
    std::uint32_t first_lane = 0;
    std::uint32_t live = 0;  // lanes not yet Done
    std::byte* shared = nullptr;
    std::vector<std::uint32_t> warp_ready;
    std::vector<std::uint32_t> warp_at_bar;
    std::uint32_t ready_total = 0;
    std::uint32_t warp_bar_total = 0;
    std::uint32_t block_bar_total = 0;
    // Non-Done lanes in resume order; rebuilt once per pass so drained
    // lanes are never revisited.
    std::vector<std::uint32_t> live_lanes;
  };

  static void lane_entry(void* arg);
  static void direct_entry(void* arg);

  void ensure_capacity(std::uint32_t grid_dim);
  void prepare_shared(ResidentBlock& rb);
  void init_block(ResidentBlock& rb, std::uint32_t block_idx);
  void init_block_direct(ResidentBlock& rb, std::uint32_t block_idx);
  void release_block_stacks(ResidentBlock& rb);
  void shuffle_lanes(ResidentBlock& rb);
  void step(ResidentBlock& rb, Lane& lane);
  void try_release_warp(ResidentBlock& rb, std::uint32_t warp);
  void try_release_block(ResidentBlock& rb);

  /// Direct phase: runs whole blocks inline on the executor fiber, in
  /// block order, starting from block `next_block`. Returns false when the
  /// grid drained fiberless; returns true when a lane promoted, leaving
  /// slot 0 mid-flight (demoted to lockstep bookkeeping) and `next_block`
  /// at the first block the lockstep pass loop still has to schedule.
  bool run_direct(std::uint32_t& next_block);
  void direct_loop();
  /// Rebuilds slot 0's lockstep bookkeeping from the lane states the
  /// interrupted direct phase left behind: inline-finished lanes are Done,
  /// the promoted lane is parked at its barrier, untouched lanes get
  /// fibers and run under the pass loop.
  void demote_block(ResidentBlock& rb);
  /// Lazy promotion (called from Lane::suspend while the lane runs inline):
  /// hands the executor's stack to the lane's fiber and suspends it there.
  void promote(Lane& lane);

  LaunchConfig cfg_;
  PerfCounters& ctr_;
  std::uint32_t grid_dim_ = 0;  // grid of the run() in progress
  std::uint32_t slots_ = 0;     // allocated residency
  const KernelRef* kernel_ = nullptr;
  StackPool pool_;
  std::unique_ptr<Lane[]> lanes_;
  std::unique_ptr<std::byte[]> shared_arena_;
  std::vector<ResidentBlock> blocks_;
  nulpa::Xoshiro256 shuffle_rng_;

  // Direct-execution state. The executor fiber owns one pool stack for the
  // session's lifetime; after a promotion that stack belongs to the
  // promoted lane until its fiber finishes (always before run() returns).
  Fiber exec_fiber_;
  std::byte* exec_stack_ = nullptr;
  Lane* direct_lane_ = nullptr;   // lane currently running inline, if any
  bool direct_promoted_ = false;  // a promotion interrupted the direct phase
  std::uint32_t direct_next_ = 0;  // next block the direct loop would init
  // Bumped by promote(); the executor loop frame — now living on the
  // promoted lane's stack — compares it against the value it captured and
  // unwinds instead of running more lanes on a stack it no longer owns.
  std::uint64_t direct_epoch_ = 0;
};

/// Launches `grid_dim` blocks of `cfg.block_dim` threads running `kernel`,
/// and blocks until the grid drains. Counter totals accumulate into `ctr`.
/// Throws std::runtime_error on barrier deadlock or stack overflow.
/// One-shot: allocates a fresh LaunchSession per call; iteration-hot code
/// should hold a LaunchSession instead.
void launch(std::uint32_t grid_dim, const LaunchConfig& cfg, PerfCounters& ctr,
            KernelRef kernel, KernelTraits traits = {});

}  // namespace nulpa::simt
