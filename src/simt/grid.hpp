// Kernel launch machinery: grids of thread blocks, warps of 32 lanes, and
// the barrier semantics of SIMT hardware. Kernels are C++ callables taking
// a `Lane&` (the equivalent of CUDA's implicit threadIdx/blockIdx context).
//
// Lockstep model: lanes run cooperatively; between two sync points every
// lane of a warp (syncwarp) or block (syncthreads) executes its segment
// before any lane proceeds past the barrier. Kernels place a syncwarp()
// between their gather phase (reading neighbour labels) and commit phase
// (writing the new label) — exactly the implicit lockstep of real warps
// that causes the community-swap livelock of Section 4.1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "simt/counters.hpp"
#include "simt/fiber.hpp"

namespace nulpa::simt {

inline constexpr std::uint32_t kWarpSize = 32;

struct LaunchConfig {
  std::uint32_t block_dim = 256;       // threads per block
  std::uint32_t resident_blocks = 4;   // blocks co-scheduled (SM residency)
  std::uint32_t shared_bytes = 0;      // per-block shared memory arena
  std::size_t stack_bytes = 1 << 14;   // per-fiber stack
  // 0 = deterministic lane order (lane 0 first — the default, reproducible
  // schedule). Non-zero seeds a per-pass shuffle of the lane resume order,
  // the simulator equivalent of fuzzing warp-scheduler interleavings: any
  // kernel that relies on a specific lane order between barriers (rather
  // than on the barriers themselves) will break under some seed. Barrier
  // semantics are unchanged.
  std::uint64_t schedule_seed = 0;
};

class Scheduler;

/// Per-thread kernel context — the CUDA built-ins plus barriers, atomics,
/// and counter hooks. Only valid inside a running kernel.
class Lane {
 public:
  [[nodiscard]] std::uint32_t thread_idx() const noexcept { return thread_idx_; }
  [[nodiscard]] std::uint32_t block_idx() const noexcept { return block_idx_; }
  [[nodiscard]] std::uint32_t block_dim() const noexcept { return block_dim_; }
  [[nodiscard]] std::uint32_t grid_dim() const noexcept { return grid_dim_; }
  [[nodiscard]] std::uint32_t global_thread() const noexcept {
    return block_idx_ * block_dim_ + thread_idx_;
  }
  [[nodiscard]] std::uint32_t warp() const noexcept {
    return thread_idx_ / kWarpSize;
  }
  [[nodiscard]] std::uint32_t lane_in_warp() const noexcept {
    return thread_idx_ % kWarpSize;
  }

  /// __syncwarp(): no lane of this warp passes until all live lanes arrive.
  void syncwarp();
  /// __syncthreads(): block-wide barrier.
  void syncthreads();

  /// Per-block shared memory arena (cfg.shared_bytes long, zeroed at block
  /// start).
  [[nodiscard]] std::byte* shared() const noexcept;

  [[nodiscard]] PerfCounters& counters() const noexcept;

  // ---- Device atomics. The simulator is single-threaded, so these are
  // plain read-modify-writes, but kernels must still use them wherever the
  // CUDA code would: they are counted and they document the races the real
  // hardware resolves.
  template <typename T>
  T atomic_add(T& slot, T v) const noexcept {
    counters().atomic_ops++;
    const T old = slot;
    slot = old + v;
    return old;
  }

  std::uint32_t atomic_cas(std::uint32_t& slot, std::uint32_t expected,
                           std::uint32_t desired) const noexcept {
    counters().atomic_ops++;
    const std::uint32_t old = slot;
    if (old == expected) slot = desired;
    return old;
  }

  std::uint32_t atomic_max(std::uint32_t& slot, std::uint32_t v) const noexcept {
    counters().atomic_ops++;
    const std::uint32_t old = slot;
    if (v > old) slot = v;
    return old;
  }

  // ---- Memory-traffic accounting hooks (words, not bytes).
  void count_load(std::uint64_t n = 1) const noexcept {
    counters().global_loads += n;
  }
  void count_store(std::uint64_t n = 1) const noexcept {
    counters().global_stores += n;
  }
  void count_shared_load(std::uint64_t n = 1) const noexcept {
    counters().shared_loads += n;
  }
  void count_shared_store(std::uint64_t n = 1) const noexcept {
    counters().shared_stores += n;
  }

 private:
  friend class Scheduler;

  enum class State : std::uint8_t { kReady, kAtWarpBar, kAtBlockBar, kDone };

  void* runner_context_ = nullptr;  // owning Scheduler
  PerfCounters* counters_ = nullptr;
  std::byte* shared_ = nullptr;
  Fiber fiber_;
  State state_ = State::kDone;
  std::uint32_t thread_idx_ = 0;
  std::uint32_t block_idx_ = 0;
  std::uint32_t block_dim_ = 0;
  std::uint32_t grid_dim_ = 0;
};

using Kernel = std::function<void(Lane&)>;

/// Launches `grid_dim` blocks of `cfg.block_dim` threads running `kernel`,
/// and blocks until the grid drains. Counter totals accumulate into `ctr`.
/// Throws std::runtime_error on barrier deadlock or stack overflow.
void launch(std::uint32_t grid_dim, const LaunchConfig& cfg, PerfCounters& ctr,
            const Kernel& kernel);

}  // namespace nulpa::simt
