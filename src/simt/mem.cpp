#include "simt/mem.hpp"

#include <algorithm>
#include <bit>

namespace nulpa::simt {

void DataCache::configure(const MemGeometry& geo) {
  sets_ = std::max(1u, geo.cache_sets);
  ways_ = std::max(1u, geo.cache_ways);
  tags_.assign(static_cast<std::size_t>(sets_) * ways_, kInvalid);
}

void DataCache::reset() {
  std::fill(tags_.begin(), tags_.end(), kInvalid);
}

bool DataCache::access(std::uint64_t line) {
  std::uint64_t* set = tags_.data() +
                       static_cast<std::size_t>(line % sets_) * ways_;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (set[w] != line) continue;
    // Hit: move to front (most recently used).
    for (; w > 0; --w) set[w] = set[w - 1];
    set[0] = line;
    return true;
  }
  // Miss: fill at the front, evicting the LRU way.
  for (std::uint32_t w = ways_ - 1; w > 0; --w) set[w] = set[w - 1];
  set[0] = line;
  return false;
}

void BlockMem::begin_block(const MemGeometry& geo, std::uint32_t block_dim,
                           PerfCounters* ctr) {
  if (block_dim_ != block_dim || log_.empty()) {
    geo_ = geo;
    block_dim_ = block_dim;
    log_.resize(block_dim);
    cache_.configure(geo);
  } else {
    cache_.reset();
  }
  for (auto& l : log_) l.clear();
  ctr_ = ctr;
}

void BlockMem::flush_warp(std::uint32_t warp) {
  const std::uint32_t lo = warp * kWarpSize;
  if (lo >= block_dim_) return;
  const std::uint32_t hi = std::min(lo + kWarpSize, block_dim_);
  std::size_t windows = 0;
  for (std::uint32_t t = lo; t < hi; ++t) {
    windows = std::max(windows, log_[t].size());
  }
  for (std::size_t w = 0; w < windows; ++w) coalesce_window(lo, hi, w);
  for (std::uint32_t t = lo; t < hi; ++t) log_[t].clear();
}

void BlockMem::flush_all() {
  for (std::uint32_t warp = 0; warp * kWarpSize < block_dim_; ++warp) {
    flush_warp(warp);
  }
}

void BlockMem::coalesce_window(std::uint32_t lane_lo, std::uint32_t lane_hi,
                               std::size_t window) {
  // Group the window's accesses by 128B line, in first-touch (lane) order.
  // The handful of distinct lines per window makes the linear scan cheaper
  // than any map.
  lines_.clear();
  sectors_.clear();
  const std::uint64_t line_bytes = geo_.line_bytes;
  const std::uint64_t sector_bytes = geo_.sector_bytes;
  for (std::uint32_t t = lane_lo; t < lane_hi; ++t) {
    if (window >= log_[t].size()) continue;
    const Access a = log_[t][window];
    // An access can straddle a sector (not in practice: word accesses on
    // word addresses), so mark every sector the byte range touches.
    const std::uint64_t first = a.addr / line_bytes;
    const std::uint64_t last = (a.addr + std::max(1u, a.bytes) - 1) /
                               line_bytes;
    for (std::uint64_t line = first; line <= last; ++line) {
      const std::uint64_t line_base = line * line_bytes;
      const std::uint64_t beg = std::max<std::uint64_t>(a.addr, line_base);
      const std::uint64_t end = std::min<std::uint64_t>(
          a.addr + std::max(1u, a.bytes), line_base + line_bytes);
      std::uint32_t mask = 0;
      for (std::uint64_t s = (beg - line_base) / sector_bytes;
           s <= (end - 1 - line_base) / sector_bytes; ++s) {
        mask |= 1u << s;
      }
      std::size_t i = 0;
      for (; i < lines_.size(); ++i) {
        if (lines_[i] == line) break;
      }
      if (i == lines_.size()) {
        lines_.push_back(line);
        sectors_.push_back(mask);
      } else {
        sectors_[i] |= mask;
        if (line == first) ctr_->coalesced_accesses++;
      }
    }
  }
  // One transaction per distinct line; its size is the touched-sector span.
  std::uint32_t hits = 0;
  std::uint32_t misses = 0;
  for (std::size_t i = 0; i < lines_.size(); ++i) {
    ctr_->global_transactions++;
    const int touched = std::popcount(sectors_[i]);
    if (touched <= 1) {
      ctr_->txn_32b++;
    } else if (touched == 2) {
      ctr_->txn_64b++;
    } else {
      ctr_->txn_128b++;
    }
    if (cache_.access(lines_[i])) {
      ++hits;
    } else {
      ++misses;
    }
  }
  ctr_->cache_hits += hits;
  ctr_->cache_misses += misses;
  // Feed the window's cost to the scoreboard replay (issue cycles from the
  // transaction count, return latency from the cache verdicts).
  if (!lines_.empty()) {
    pipeline_.add_window(lane_lo / kWarpSize,
                         static_cast<std::uint32_t>(lines_.size()), hits,
                         misses);
  }
}

}  // namespace nulpa::simt
