// Transaction-level memory hierarchy model: a per-warp coalescer and a
// small set-associative data cache fed by the actual byte addresses lanes
// touch through Lane::dev_load/dev_store (and the span helpers).
//
// Model (the A100's global-memory path, simplified to what the counters
// need):
//   * Lanes append (address, size) records to a per-lane log as they
//     execute. The log is drained at *issue boundaries* — warp-barrier
//     release, block-barrier release, and block drain — which are exactly
//     the points where every lane of the warp has finished the same code
//     segment, so grouping position-wise (the i-th access of each lane of
//     a warp forms issue window i) reconstructs the per-instruction warp
//     windows a real warp scheduler would issue, independent of the order
//     the simulator happened to step the lanes in.
//   * Each window is coalesced: the distinct 128-byte lines it touches
//     become one transaction each (PerfCounters::global_transactions);
//     accesses that landed on a line some earlier lane of the window
//     already opened count as coalesced_accesses. A transaction's size is
//     the span of 32-byte sectors actually touched within its line —
//     1 sector -> 32B, 2 -> 64B, 3-4 -> 128B (txn_32b/64b/128b).
//   * Every transaction then probes a per-SM set-associative LRU data
//     cache (cache_hits/cache_misses). The cache is reset whenever a new
//     block occupies the slot, so a block's hit pattern depends only on
//     its own access sequence — which is what makes the merged counters
//     byte-identical across the serial and parallel backends for any
//     thread count (per-block stats sum order-independently at drain).
//
// Determinism caveat: transaction counts depend on buffer *alignment*.
// Buffers whose addresses the kernels track must come from device_vector
// (below), which aligns allocations to a cache-set stride, so two runs —
// or a serial and a parallel engine in the same process — decompose every
// buffer into lines and sets identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "simt/counters.hpp"
#include "simt/scoreboard.hpp"

namespace nulpa::simt {

/// Lanes per warp (the SIMT issue width the coalescer groups by).
inline constexpr std::uint32_t kWarpSize = 32;

/// Geometry of the modeled memory hierarchy. Defaults follow the A100's
/// global path: 128B cache lines split into 32B sectors, and a small
/// per-SM L1 slice (64 sets x 4 ways x 128B = 32 KiB).
struct MemGeometry {
  std::uint32_t line_bytes = 128;
  std::uint32_t sector_bytes = 32;
  std::uint32_t cache_sets = 64;
  std::uint32_t cache_ways = 4;

  /// Alignment that makes line *and* set decomposition of a buffer
  /// independent of where the allocator placed it.
  [[nodiscard]] constexpr std::size_t alloc_align() const noexcept {
    return static_cast<std::size_t>(line_bytes) * cache_sets;
  }
};

/// Minimal aligned allocator for buffers whose addresses kernels track.
/// Alignment is the default geometry's set stride (8 KiB) — the model's
/// stand-in for device allocation granularity (cudaMalloc returns
/// similarly coarse-aligned pointers).
template <typename T>
struct DeviceAlloc {
  using value_type = T;
  static constexpr std::size_t kAlign = 128 * 64;

  DeviceAlloc() noexcept = default;
  template <typename U>
  // NOLINTNEXTLINE(google-explicit-constructor): allocator rebind protocol.
  DeviceAlloc(const DeviceAlloc<U>&) noexcept {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = (n * sizeof(T) + kAlign - 1) / kAlign * kAlign;
    void* p = std::aligned_alloc(kAlign, bytes);
    if (p == nullptr) throw std::bad_alloc{};
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <typename U>
  friend bool operator==(const DeviceAlloc&, const DeviceAlloc<U>&) noexcept {
    return true;
  }
};

/// std::vector whose data() is aligned to the cache-set stride, so tracked
/// address streams are reproducible across allocations (see file comment).
template <typename T>
using device_vector = std::vector<T, DeviceAlloc<T>>;

/// Set-associative LRU cache over line addresses. Deterministic: state is
/// a pure function of the access sequence since the last reset().
class DataCache {
 public:
  void configure(const MemGeometry& geo);
  /// Invalidates every line (called when a new block takes the slot).
  void reset();
  /// Looks up / fills `line` (an address >> line shift). True on hit.
  bool access(std::uint64_t line);

 private:
  static constexpr std::uint64_t kInvalid = ~std::uint64_t{0};

  std::uint32_t sets_ = 0;
  std::uint32_t ways_ = 0;
  // tags_[set * ways_ ... ] in recency order, most recent first.
  std::vector<std::uint64_t> tags_;
};

/// Per-resident-slot tracking state: the per-lane access logs, the
/// coalescer, and the slot's data cache. Owned by the scheduler; kernels
/// reach it only through Lane's tracked-access API. Single-threaded by
/// construction — a slot is only ever touched by its owning shard.
class BlockMem {
 public:
  /// Access record: byte address plus access width.
  struct Access {
    std::uint64_t addr;
    std::uint32_t bytes;
  };

  /// Re-arms the tracker for a new block in this slot: clears the logs,
  /// resets the cache, and (re)binds the counter sink the flushes charge.
  void begin_block(const MemGeometry& geo, std::uint32_t block_dim,
                   PerfCounters* ctr);

  /// Arms the scoreboard replay for the block begin_block just set up:
  /// every coalesced window from here to drain_pipeline() feeds the
  /// per-warp cost queues (see simt/scoreboard.hpp).
  void arm_pipeline(const PipelineModel& model, bool scoreboard,
                    std::uint64_t seed, std::uint32_t block_idx) {
    pipeline_.begin_block((block_dim_ + kWarpSize - 1) / kWarpSize, model,
                          scoreboard, seed, block_idx);
  }

  /// Replays the block's issue windows against the model SM and charges
  /// the cycle counters. Call once, at true block drain — the barrier
  /// flushes in between only close windows, they do not end the block.
  void drain_pipeline() {
    if (ctr_ != nullptr) pipeline_.drain(*ctr_);
  }

  /// Re-points the counter sink mid-block — the freerun work-stealing
  /// path adopts a live block into another shard, whose local counters
  /// must receive the remaining flushes and the pipeline drain.
  void bind_counters(PerfCounters* ctr) noexcept { ctr_ = ctr; }

  void record(std::uint32_t thread_idx, const void* p,
              std::uint32_t bytes) {
    log_[thread_idx].push_back(
        {reinterpret_cast<std::uint64_t>(p), bytes});
  }

  /// Closes the issue windows of one warp: groups the warp's logged
  /// accesses position-wise, coalesces each window into transactions, runs
  /// them through the cache, charges the counters, and clears the logs.
  void flush_warp(std::uint32_t warp);
  /// flush_warp over every warp of the block.
  void flush_all();

 private:
  void coalesce_window(std::uint32_t lane_lo, std::uint32_t lane_hi,
                       std::size_t window);

  MemGeometry geo_;
  std::uint32_t block_dim_ = 0;
  PerfCounters* ctr_ = nullptr;
  DataCache cache_;
  SmPipeline pipeline_;
  std::vector<std::vector<Access>> log_;  // one log per lane of the block
  // Scratch for coalesce_window: distinct lines of the window (first-touch
  // order) and the 32B-sector mask each accumulated.
  std::vector<std::uint64_t> lines_;
  std::vector<std::uint32_t> sectors_;
};

}  // namespace nulpa::simt
