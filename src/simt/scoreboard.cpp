#include "simt/scoreboard.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace nulpa::simt {

std::uint64_t schedule_mix(std::uint64_t seed, std::uint64_t block,
                           std::uint64_t pass) {
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (block + 1)) ^
                (0x94d049bb133111ebULL * (pass + 1)));
  return sm.next();
}

void SmPipeline::begin_block(std::uint32_t warps, const PipelineModel& model,
                             bool scoreboard, std::uint64_t seed,
                             std::uint32_t block_idx) {
  windows_.resize(warps);
  for (auto& q : windows_) q.clear();
  model_ = model;
  scoreboard_ = scoreboard;
  seed_ = seed;
  block_idx_ = block_idx;
  armed_ = true;
}

void SmPipeline::add_window(std::uint32_t warp, std::uint32_t transactions,
                            std::uint32_t cache_hits,
                            std::uint32_t cache_misses) {
  if (!armed_ || warp >= windows_.size()) return;
  windows_[warp].push_back(
      {static_cast<std::uint64_t>(transactions) * model_.issue_cycles_per_txn,
       static_cast<std::uint64_t>(cache_hits) * model_.cache_hit_cycles +
           static_cast<std::uint64_t>(cache_misses) *
               model_.cache_miss_cycles});
}

void SmPipeline::drain(PerfCounters& ctr) {
  if (!armed_) return;
  armed_ = false;
  std::uint64_t total_issue = 0;
  std::uint64_t total_latency = 0;
  std::size_t remaining = 0;
  for (const auto& q : windows_) {
    remaining += q.size();
    for (const Window& w : q) {
      total_issue += w.issue;
      total_latency += w.latency;
    }
  }
  if (remaining == 0) return;

  if (!scoreboard_) {
    // Serialized issue: every window waits for its own return before the
    // next one enters the pipe — the lockstep-scheduler cost.
    ctr.modeled_cycles += total_issue + total_latency;
    ctr.stall_cycles += total_latency;
    return;
  }

  // Pipelined replay. Per warp: index of its next pending window and the
  // cycle its outstanding return lands (ready to issue again from there).
  const std::uint32_t warps = static_cast<std::uint32_t>(windows_.size());
  next_.assign(warps, 0);
  ready_.assign(warps, 0);
  std::uint64_t cycle = 0;
  std::uint64_t stall = 0;
  std::uint64_t last_return = 0;
  std::uint64_t issue_seq = 0;
  std::uint32_t rr = 0;  // round-robin cursor: warp after the last issuer
  while (remaining > 0) {
    // Pick the ready warp closest after the rotation point; under schedule
    // fuzz the rotation is drawn from schedule_mix so the interleaving is
    // seed-dependent yet backend- and thread-count-invariant.
    const std::uint32_t rot =
        seed_ != 0 ? static_cast<std::uint32_t>(
                         schedule_mix(seed_, block_idx_, issue_seq) % warps)
                   : rr;
    std::uint32_t pick = warps;
    std::uint32_t pick_rank = warps;
    std::uint64_t earliest = ~std::uint64_t{0};
    for (std::uint32_t w = 0; w < warps; ++w) {
      if (next_[w] >= windows_[w].size()) continue;
      earliest = std::min(earliest, ready_[w]);
      if (ready_[w] > cycle) continue;
      const std::uint32_t rank = (w + warps - rot) % warps;
      if (rank < pick_rank) {
        pick = w;
        pick_rank = rank;
      }
    }
    if (pick == warps) {
      // Every pending warp is waiting on memory: the issue pipe stalls
      // until the earliest outstanding return.
      stall += earliest - cycle;
      cycle = earliest;
      continue;
    }
    const Window win = windows_[pick][next_[pick]++];
    --remaining;
    cycle += win.issue;
    ready_[pick] = cycle + win.latency;
    last_return = std::max(last_return, ready_[pick]);
    rr = (pick + 1) % warps;
    ++issue_seq;
  }
  // The block is not done until its last return lands; the pipe idles
  // through that tail just like a mid-run stall.
  const std::uint64_t makespan = std::max(cycle, last_return);
  stall += makespan - cycle;
  ctr.modeled_cycles += makespan;
  ctr.stall_cycles += stall;
  ctr.hidden_latency_cycles += total_latency - stall;
}

}  // namespace nulpa::simt
