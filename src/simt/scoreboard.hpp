// GPU-style memory scoreboard: a cycle-level replay of the coalescer's
// per-warp issue windows that models how much memory latency a warp
// scheduler can hide behind other resident warps' issue.
//
// The functional simulator (simt/grid.hpp) deliberately keeps stepping
// lanes in its canonical lockstep order — labels and the transaction/cache
// counters depend on that order and must stay byte-identical whatever the
// timing model says. The scoreboard therefore runs *after the fact*: as
// BlockMem drains a warp's issue windows through the coalescer, each
// window's cost (issue cycles from its transaction count, return latency
// from its cache verdicts) is appended to a per-warp queue, and when the
// block drains the queues are replayed against a model SM:
//
//   * Windows of one warp are an in-order dependence chain — window i+1
//     cannot issue until window i's data returned (a real scoreboard
//     blocks the warp on its outstanding registers).
//   * The SM has one issue pipe: issuing a window occupies it for
//     `issue_cycles_per_txn * transactions` cycles; while a warp waits on
//     a return, any *other* ready warp may issue — that overlap is the
//     latency hiding this model measures.
//   * When no warp is ready the pipe stalls until the earliest return.
//
// Per block the replay charges three counters (see simt/counters.hpp):
//   modeled_cycles          — the block's makespan on the model SM
//   stall_cycles            — cycles the issue pipe sat idle
//   hidden_latency_cycles   — latency that overlapped issue instead
// with the exact identities (Σ over a block)
//   makespan   = Σ issue + stall
//   hidden     = Σ latency − stall
// With the scoreboard disabled (ExecPolicy::scoreboard = false) the replay
// degenerates to fully serialized issue — every window waits for its own
// return — so modeled = Σ issue + Σ latency, stall = Σ latency, hidden = 0.
// The two modes are thus related by a pure counter transform
// (modeled_off = modeled_on + hidden_on, stall_off = stall_on + hidden_on),
// which tests assert byte-exactly.
//
// Determinism: the replay is a pure function of the block's own window
// stream (which the coalescer produces in canonical flush order) plus the
// session's schedule seed, so summed counters are byte-identical across
// the serial and parallel backends at any thread count. The ready-warp
// pick is round-robin by default and keyed off schedule_mix(seed, block,
// issue_seq) under schedule fuzz — same derivation discipline as the lane
// shuffle, so fuzzed replays stay backend-invariant too.
#pragma once

#include <cstdint>
#include <vector>

#include "simt/counters.hpp"

namespace nulpa::simt {

/// Stateless schedule derivation shared by the lane shuffle (grid.cpp) and
/// the scoreboard's fuzzed ready-pick: the value for (block, pass) depends
/// only on the seed and those two coordinates, never on which backend,
/// shard, or pool worker runs the block.
std::uint64_t schedule_mix(std::uint64_t seed, std::uint64_t block,
                           std::uint64_t pass);

/// Latency parameters of the model SM's memory path. The numbers are
/// effective (throughput-inclusive) service times in SM cycles, A100-ish:
/// the LSU sustains about one transaction per cycle (each replay of an
/// uncoalesced request occupies one issue slot), L1-hit returns land in
/// tens of cycles, DRAM-miss returns in hundreds.
struct PipelineModel {
  std::uint32_t issue_cycles_per_txn = 1;
  // The model cache (32 KiB) stands in for the whole on-chip hierarchy
  // (192 KiB L1 at ~33 cycles plus the 40 MB L2 at ~200), so a hit is
  // charged a blended on-chip return, a miss the DRAM round trip.
  std::uint32_t cache_hit_cycles = 40;
  std::uint32_t cache_miss_cycles = 320;
};

/// Per-resident-slot replay state. Owned by BlockMem (one per slot), armed
/// per block, fed by coalesce_window, drained when the block drains.
/// Single-threaded by construction, like the rest of the slot state.
class SmPipeline {
 public:
  /// Re-arms for a new block: clears the window queues and captures the
  /// replay parameters. `seed`/`block_idx` feed the fuzzed ready-pick.
  void begin_block(std::uint32_t warps, const PipelineModel& model,
                   bool scoreboard, std::uint64_t seed,
                   std::uint32_t block_idx);

  /// Appends one coalesced issue window's cost to `warp`'s queue.
  void add_window(std::uint32_t warp, std::uint32_t transactions,
                  std::uint32_t cache_hits, std::uint32_t cache_misses);

  /// Replays the block's windows and charges modeled_cycles /
  /// stall_cycles / hidden_latency_cycles to `ctr`; disarms.
  void drain(PerfCounters& ctr);

  [[nodiscard]] bool armed() const noexcept { return armed_; }

 private:
  struct Window {
    std::uint64_t issue;    // issue-pipe occupancy, cycles
    std::uint64_t latency;  // return latency after issue, cycles
  };

  std::vector<std::vector<Window>> windows_;  // one queue per warp
  // Replay scratch, kept across blocks to avoid per-drain allocation:
  // per-warp next pending window and outstanding-return cycle.
  std::vector<std::size_t> next_;
  std::vector<std::uint64_t> ready_;
  PipelineModel model_{};
  bool scoreboard_ = true;
  bool armed_ = false;
  std::uint64_t seed_ = 0;
  std::uint32_t block_idx_ = 0;
};

}  // namespace nulpa::simt
