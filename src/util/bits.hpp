// Small integer helpers used by the hashtable sizing logic (Section 4.2 of
// the paper sizes each per-vertex table as nextPow2(degree) - 1).
#pragma once

#include <bit>
#include <cstdint>

namespace nulpa {

/// Smallest power of two >= x (x = 0 maps to 1).
constexpr std::uint64_t next_pow2(std::uint64_t x) noexcept {
  return x <= 1 ? 1 : std::bit_ceil(x);
}

constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// Hashtable capacity for a vertex of degree `d`. The paper writes
/// nextPow2(d) - 1, but that under-allocates when d is an exact power of
/// two (d distinct neighbour labels would not fit in d-1 slots); we use
/// nextPow2(d + 1) - 1, which is always in [d, 2d] — it holds every
/// distinct label and fits the paper's reserved block of 2d slots. The
/// Mersenne-style capacity keeps `mod` cheap and is always odd, hence
/// co-prime with the power-of-two-derived secondary step.
constexpr std::uint32_t hashtable_capacity(std::uint32_t degree) noexcept {
  if (degree == 0) return 1;
  const std::uint64_t cap = next_pow2(static_cast<std::uint64_t>(degree) + 1) - 1;
  return static_cast<std::uint32_t>(cap);
}

/// Secondary "prime" for double hashing: p2 = nextPow2(p1) - 1, which is
/// > p1 and odd, hence co-prime with any power-of-two stride and with p1.
constexpr std::uint32_t secondary_prime(std::uint32_t p1) noexcept {
  const std::uint64_t p = next_pow2(static_cast<std::uint64_t>(p1) + 1);
  return static_cast<std::uint32_t>(2 * p - 1);
}

/// Integer ceil-division.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

}  // namespace nulpa
