// Minimal command-line option parsing for the examples and bench harnesses.
// Supports `--key value` and `--key=value`; unknown keys are reported.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace nulpa {

class CliArgs {
 public:
  CliArgs(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string_view arg(argv[i]);
      if (!arg.starts_with("--")) {
        positional_.emplace_back(arg);
        continue;
      }
      arg.remove_prefix(2);
      if (auto eq = arg.find('='); eq != std::string_view::npos) {
        options_[std::string(arg.substr(0, eq))] =
            std::string(arg.substr(eq + 1));
      } else if (i + 1 < argc && (std::string_view(argv[i + 1]) == "-" ||
                                  std::string_view(argv[i + 1])[0] != '-')) {
        // A lone "-" is a value (conventionally stdout/stdin), not a flag.
        options_[std::string(arg)] = argv[++i];
      } else {
        options_[std::string(arg)] = "true";  // bare flag
      }
    }
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return options_.contains(key);
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    auto it = options_.find(key);
    return it == options_.end() ? fallback : it->second;
  }

  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const {
    auto it = options_.find(key);
    return it == options_.end() ? fallback : std::stoll(it->second);
  }

  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const {
    auto it = options_.find(key);
    return it == options_.end() ? fallback : std::stod(it->second);
  }

  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const {
    auto it = options_.find(key);
    if (it == options_.end()) return fallback;
    return it->second == "true" || it->second == "1" || it->second == "yes";
  }

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

/// The algorithm-facing flags the CLI, benches, and tests all accept,
/// parsed once by parse_common_flags() instead of each tool re-reading the
/// raw CliArgs. ν-LPA-specific knobs carry the paper's defaults;
/// cross-algorithm knobs stay unset (std::nullopt) unless given so every
/// algorithm keeps its own published default.
struct CommonFlags {
  std::string algo = "nulpa";  // --algo

  // ν-LPA knobs (paper's final design).
  int pick_less = 4;                      // --pick-less
  int cross_check = 0;                    // --cross-check
  std::uint32_t switch_degree = 32;       // --switch-degree
  std::string probing = "quad-double";    // --probing
  bool double_values = false;             // --double-values
  bool shared_tables = false;             // --shared-tables
  bool pruning = true;                    // --pruning
  bool coalesced_layout = true;           // --coalesced-layout

  // Cross-algorithm knobs.
  std::optional<double> tolerance;        // --tolerance
  std::optional<int> max_iterations;      // --max-iterations
  std::optional<std::uint64_t> seed;      // --seed (tie-break + schedule RNG)

  // Simulator execution backend (simt::ExecPolicy; see DESIGN.md
  // "Parallel backend & ExecPolicy").
  bool parallel_sim = false;  // --parallel-sim: shard blocks across threads
  unsigned threads = 0;       // --threads N: simulator workers (0 = hardware)
  // Memory-hierarchy model: track addresses through the per-warp coalescer
  // and data cache (simt/mem.hpp). Off zeroes the transaction/cache
  // counters and removes the tracking overhead.
  bool track_memory = true;   // --track-memory
  // Scoreboard timing replay: model latency hiding across resident warps
  // (simt/scoreboard.hpp). Off serializes the replay — labels and the
  // functional counters are identical either way; only the cycle counters
  // move, by the documented exact transform.
  bool scoreboard = true;     // --scoreboard

  // Multi-device sharding (the "sharded" registry algorithm; see DESIGN.md
  // "Sharding & delta exchange"). shards > 1 with the default algorithm
  // routes to "sharded" automatically.
  std::uint32_t shards = 1;              // --shards N: simulated devices
  std::string shard_mode = "contiguous";  // --shard-mode contiguous|hash
  std::string comm_mode = "auto";  // --comm-mode auto|none|bitset|offsets|full

  // Observability sinks (empty = disabled; "-" = stdout).
  std::string trace_file;    // --trace FILE -> JSONL event stream
  std::string metrics_file;  // --metrics FILE -> per-iteration table
  std::string profile_file;  // --profile FILE -> Chrome trace-event JSON
  // --metrics-histograms: per-phase latency histograms (p50/p95/p99) from
  // the profiler spans, printed after the run.
  bool metrics_histograms = false;
};

inline CommonFlags parse_common_flags(const CliArgs& args) {
  CommonFlags f;
  f.algo = args.get("algo", f.algo);
  f.pick_less = static_cast<int>(args.get_int("pick-less", f.pick_less));
  f.cross_check =
      static_cast<int>(args.get_int("cross-check", f.cross_check));
  f.switch_degree = static_cast<std::uint32_t>(
      args.get_int("switch-degree", f.switch_degree));
  f.probing = args.get("probing", f.probing);
  f.double_values = args.get_bool("double-values", f.double_values);
  f.shared_tables = args.get_bool("shared-tables", f.shared_tables);
  f.pruning = args.get_bool("pruning", f.pruning);
  f.coalesced_layout = args.get_bool("coalesced-layout", f.coalesced_layout);
  if (args.has("tolerance")) f.tolerance = args.get_double("tolerance", 0.0);
  if (args.has("max-iterations")) {
    f.max_iterations = static_cast<int>(args.get_int("max-iterations", 0));
  }
  if (args.has("seed")) {
    f.seed = static_cast<std::uint64_t>(args.get_int("seed", 0));
  }
  f.shards = static_cast<std::uint32_t>(args.get_int("shards", f.shards));
  f.shard_mode = args.get("shard-mode", f.shard_mode);
  f.comm_mode = args.get("comm-mode", f.comm_mode);
  f.parallel_sim = args.get_bool("parallel-sim", f.parallel_sim);
  f.threads = static_cast<unsigned>(args.get_int("threads", f.threads));
  f.track_memory = args.get_bool("track-memory", f.track_memory);
  f.scoreboard = args.get_bool("scoreboard", f.scoreboard);
  f.trace_file = args.get("trace", "");
  f.metrics_file = args.get("metrics", "");
  f.profile_file = args.get("profile", "");
  f.metrics_histograms =
      args.get_bool("metrics-histograms", f.metrics_histograms);
  return f;
}

}  // namespace nulpa
