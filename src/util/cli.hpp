// Minimal command-line option parsing for the examples and bench harnesses.
// Supports `--key value` and `--key=value`; unknown keys are reported.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace nulpa {

class CliArgs {
 public:
  CliArgs(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string_view arg(argv[i]);
      if (!arg.starts_with("--")) {
        positional_.emplace_back(arg);
        continue;
      }
      arg.remove_prefix(2);
      if (auto eq = arg.find('='); eq != std::string_view::npos) {
        options_[std::string(arg.substr(0, eq))] =
            std::string(arg.substr(eq + 1));
      } else if (i + 1 < argc && std::string_view(argv[i + 1])[0] != '-') {
        options_[std::string(arg)] = argv[++i];
      } else {
        options_[std::string(arg)] = "true";  // bare flag
      }
    }
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return options_.contains(key);
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    auto it = options_.find(key);
    return it == options_.end() ? fallback : it->second;
  }

  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const {
    auto it = options_.find(key);
    return it == options_.end() ? fallback : std::stoll(it->second);
  }

  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const {
    auto it = options_.find(key);
    return it == options_.end() ? fallback : std::stod(it->second);
  }

  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const {
    auto it = options_.find(key);
    if (it == options_.end()) return fallback;
    return it->second == "true" || it->second == "1" || it->second == "yes";
  }

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace nulpa
