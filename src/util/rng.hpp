// Deterministic pseudo-random number generation for graph generators and
// randomized tests. We avoid std::mt19937 in hot paths: xoshiro256** is
// ~4x faster and has well-understood statistical quality.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace nulpa {

/// SplitMix64 — used to seed other generators from a single 64-bit seed.
/// Every distinct input produces a well-mixed output; passes BigCrush when
/// used as a stream.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — general-purpose generator for all randomized code in
/// this library. Satisfies the C++ UniformRandomBitGenerator requirements so
/// it can drive <random> distributions where convenient.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction;
  /// the modulo bias is negligible for the bounds used in this library
  /// (bound << 2^64), which keeps the hot path branch-free.
  std::uint64_t next_bounded(std::uint64_t bound) noexcept {
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float next_float() noexcept {
    return static_cast<float>(next() >> 40) * 0x1.0p-24f;
  }

  bool next_bool(double p) noexcept { return next_double() < p; }

  /// A statistically independent generator for a worker identified by
  /// `stream`; used to give each thread / fiber its own stream.
  Xoshiro256 split(std::uint64_t stream) const noexcept {
    SplitMix64 sm(state_[0] ^ (0x5851f42d4c957f2dULL * (stream + 1)));
    Xoshiro256 out(sm.next());
    return out;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace nulpa
