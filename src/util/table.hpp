// Fixed-width text table printer: the bench harnesses use this to emit the
// same rows/series the paper's tables and figures report.
#pragma once

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace nulpa {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  TextTable& add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
      width[c] = headers_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
        width[c] = std::max(width[c], row[c].size());

    auto line = [&](const std::vector<std::string>& cells) {
      os << "|";
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        const std::string& v = c < cells.size() ? cells[c] : empty_;
        os << ' ' << v << std::string(width[c] - v.size() + 1, ' ') << '|';
      }
      os << '\n';
    };
    auto rule = [&] {
      os << "|";
      for (std::size_t c = 0; c < headers_.size(); ++c)
        os << std::string(width[c] + 2, '-') << '|';
      os << '\n';
    };

    rule();
    line(headers_);
    rule();
    for (const auto& row : rows_) line(row);
    rule();
  }

 private:
  inline static const std::string empty_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `prec` significant decimals, trimming wide exponents
/// the way the paper's tables do.
inline std::string fmt(double v, int prec = 4) {
  std::ostringstream ss;
  ss << std::setprecision(prec) << v;
  return ss.str();
}

/// Human-readable large count, e.g. 7.41M, 1.21B (used by the Table 1 bench).
inline std::string fmt_count(double v) {
  const char* suffix = "";
  if (v >= 1e9) {
    v /= 1e9;
    suffix = "B";
  } else if (v >= 1e6) {
    v /= 1e6;
    suffix = "M";
  } else if (v >= 1e3) {
    v /= 1e3;
    suffix = "K";
  }
  std::ostringstream ss;
  ss << std::setprecision(3) << v << suffix;
  return ss.str();
}

}  // namespace nulpa
