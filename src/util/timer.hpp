// Wall-clock timing for the benchmark harnesses.
#pragma once

#include <chrono>

namespace nulpa {

class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last reset.
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Runs `fn` `repeats` times and returns the mean wall-clock seconds.
template <typename Fn>
double time_mean_seconds(int repeats, Fn&& fn) {
  double total = 0.0;
  for (int r = 0; r < repeats; ++r) {
    Timer t;
    fn();
    total += t.seconds();
  }
  return total / repeats;
}

}  // namespace nulpa
