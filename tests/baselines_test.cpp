// Tests for the comparison baselines: each must recover planted community
// structure, and their relative quality ordering must match the paper's
// findings (Louvain > async LPA > synchronous Gunrock-style LPA).
#include <gtest/gtest.h>

#include <numeric>

#include "baselines/flpa.hpp"
#include "baselines/gunrock_lpa.hpp"
#include "baselines/gve_lpa.hpp"
#include "baselines/louvain.hpp"
#include "baselines/plp.hpp"
#include "baselines/seq_lpa.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "quality/communities.hpp"
#include "quality/modularity.hpp"
#include "quality/nmi.hpp"

namespace nulpa {
namespace {

const Graph& ring() {
  static const Graph g = generate_ring_of_cliques(10, 6);
  return g;
}

std::vector<Vertex> ring_truth() {
  std::vector<Vertex> t(ring().num_vertices());
  for (Vertex v = 0; v < t.size(); ++v) t[v] = v / 6;
  return t;
}

TEST(SeqLpa, FindsRingCliques) {
  const auto res = seq_lpa(ring(), SeqLpaConfig{});
  EXPECT_TRUE(is_valid_membership(ring(), res.labels));
  EXPECT_GT(normalized_mutual_information(res.labels, ring_truth()), 0.95);
  EXPECT_GT(res.edges_scanned, 0u);
}

TEST(SeqLpa, SynchronousVariantOscillatesOnBipartite) {
  // Complete bipartite K_{8,8}: synchronous LPA famously flip-flops.
  GraphBuilder b(16);
  for (Vertex u = 0; u < 8; ++u) {
    for (Vertex v = 8; v < 16; ++v) b.add_edge(u, v);
  }
  const Graph g = b.build();
  SeqLpaConfig sync;
  sync.asynchronous = false;
  sync.tolerance = 0.0;
  const auto res = seq_lpa(g, sync);
  EXPECT_EQ(res.iterations, sync.max_iterations) << "should not converge";
}

TEST(SeqLpa, AsynchronousConvergesOnBipartite) {
  GraphBuilder b(16);
  for (Vertex u = 0; u < 8; ++u) {
    for (Vertex v = 8; v < 16; ++v) b.add_edge(u, v);
  }
  const auto res = seq_lpa(b.build(), SeqLpaConfig{});
  EXPECT_LT(res.iterations, 20);
}

TEST(Flpa, FindsRingCliques) {
  const auto res = flpa(ring(), FlpaConfig{});
  EXPECT_GT(normalized_mutual_information(res.labels, ring_truth()), 0.95);
}

TEST(Flpa, TerminatesOnPathGraph) {
  const auto res = flpa(generate_path(500), FlpaConfig{});
  EXPECT_TRUE(is_valid_membership(generate_path(500), res.labels));
}

TEST(Flpa, SeedChangesTieBreaksButStaysValid) {
  FlpaConfig a, b;
  a.seed = 1;
  b.seed = 99;
  const auto ra = flpa(ring(), a);
  const auto rb = flpa(ring(), b);
  EXPECT_TRUE(is_valid_membership(ring(), ra.labels));
  EXPECT_TRUE(is_valid_membership(ring(), rb.labels));
}

TEST(Plp, FindsHostCommunitiesOnWebGraph) {
  // PLP's smallest-dominant tie-break cannot untangle the all-tie first
  // iteration of the ring-of-cliques, so test it on a host-structured web
  // graph, its natural workload.
  const Graph g = generate_web(2000, 6, 0.85, 3);
  ThreadPool pool(2);
  const auto res = plp(g, pool, PlpConfig{});
  EXPECT_TRUE(is_valid_membership(g, res.labels));
  EXPECT_GT(modularity(g, res.labels), 0.5);
}

TEST(Plp, RespectsToleranceKnob) {
  const Graph g = generate_web(1000, 6, 0.7, 3);
  ThreadPool pool(1);
  PlpConfig tight;  // 1e-5, NetworKit default
  PlpConfig loose;
  loose.tolerance = 1e-2;  // the paper's suggested faster setting
  const auto rt = plp(g, pool, tight);
  const auto rl = plp(g, pool, loose);
  EXPECT_LE(rl.iterations, rt.iterations);
  EXPECT_NEAR(modularity(g, rl.labels), modularity(g, rt.labels), 0.05);
}

TEST(GveLpa, FindsHostCommunitiesOnWebGraph) {
  const Graph g = generate_web(2000, 6, 0.85, 3);
  ThreadPool pool(2);
  const auto res = gve_lpa(g, pool, GveLpaConfig{});
  EXPECT_TRUE(is_valid_membership(g, res.labels));
  EXPECT_GT(modularity(g, res.labels), 0.5);
}

TEST(GveLpa, DeterministicWithOneWorker) {
  ThreadPool pool(1);
  const Graph g = generate_web(800, 5, 0.7, 7);
  const auto a = gve_lpa(g, pool, GveLpaConfig{});
  const auto b = gve_lpa(g, pool, GveLpaConfig{});
  EXPECT_EQ(a.labels, b.labels);
}

TEST(GunrockLpa, RunsFixedIterations) {
  const auto res = gunrock_lpa(ring(), GunrockLpaConfig{});
  EXPECT_EQ(res.iterations, 5);
  EXPECT_TRUE(is_valid_membership(ring(), res.labels));
}

TEST(Louvain, FindsRingCliquesExactly) {
  const auto res = louvain(ring(), LouvainConfig{});
  EXPECT_GT(normalized_mutual_information(res.labels, ring_truth()), 0.99);
}

TEST(Louvain, EmptyAndTinyGraphs) {
  EXPECT_NO_THROW(louvain(Graph{}, LouvainConfig{}));
  const auto res = louvain(generate_clique(2), LouvainConfig{});
  EXPECT_EQ(res.labels.size(), 2u);
}

TEST(Louvain, AggregationPreservesModularityMonotonicity) {
  const Graph g = generate_web(1200, 6, 0.7, 11);
  LouvainConfig one_pass;
  one_pass.max_passes = 1;
  LouvainConfig multi;
  multi.max_passes = 10;
  const double q1 = modularity(g, louvain(g, one_pass).labels);
  const double qn = modularity(g, louvain(g, multi).labels);
  EXPECT_GE(qn, q1 - 1e-9) << "more passes must not lose quality";
}

// The quality ordering underlying Figure 7c: Louvain above async LPA above
// the synchronous fixed-iteration Gunrock formulation.
TEST(QualityOrdering, MatchesPaper) {
  const auto pp = generate_planted_partition(800, 8, 12.0, 2.0, 17);
  const Graph& g = pp.graph;
  const double q_louvain = modularity(g, louvain(g, LouvainConfig{}).labels);
  const double q_lpa = modularity(g, seq_lpa(g, SeqLpaConfig{}).labels);
  const double q_gunrock =
      modularity(g, gunrock_lpa(g, GunrockLpaConfig{}).labels);
  EXPECT_GE(q_louvain, q_lpa - 0.02);
  EXPECT_GT(q_lpa, q_gunrock);
}

struct BaselineCase {
  std::string name;
  ClusteringResult (*run)(const Graph& g);
};

class BaselineProperty : public ::testing::TestWithParam<BaselineCase> {};

// Every algorithm must produce a valid membership and decent NMI on an
// easy planted partition.
TEST_P(BaselineProperty, RecoversEasyPlantedPartition) {
  const auto pp = generate_planted_partition(500, 5, 14.0, 1.0, 29);
  const auto res = GetParam().run(pp.graph);
  ASSERT_TRUE(is_valid_membership(pp.graph, res.labels));
  EXPECT_GT(normalized_mutual_information(res.labels, pp.ground_truth), 0.7)
      << GetParam().name;
}

TEST_P(BaselineProperty, HandlesEdgelessGraph) {
  GraphBuilder b(10);
  const Graph g = b.build();
  const auto res = GetParam().run(g);
  EXPECT_EQ(res.labels.size(), 10u);
  for (Vertex v = 0; v < 10; ++v) EXPECT_EQ(res.labels[v], v);
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselines, BaselineProperty,
    ::testing::Values(
        BaselineCase{"seq_lpa",
                     [](const Graph& g) { return seq_lpa(g, SeqLpaConfig{}); }},
        BaselineCase{"flpa",
                     [](const Graph& g) { return flpa(g, FlpaConfig{}); }},
        BaselineCase{"plp",
                     [](const Graph& g) { return plp(g, PlpConfig{}); }},
        BaselineCase{"gve_lpa",
                     [](const Graph& g) { return gve_lpa(g, GveLpaConfig{}); }},
        BaselineCase{"louvain",
                     [](const Graph& g) { return louvain(g, LouvainConfig{}); }}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace nulpa
