// Tests for the remaining util surfaces: command-line parsing (the `nulpa`
// tool and every bench depend on it), the text-table printer, the numeric
// formatters, and counter stream output.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "simt/counters.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace nulpa {
namespace {

CliArgs parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return CliArgs(static_cast<int>(argv.size()),
                 const_cast<char**>(argv.data()));
}

TEST(CliArgs, KeyValuePairs) {
  const auto args = parse({"--scale", "4000", "--name", "web"});
  EXPECT_EQ(args.get_int("scale", 0), 4000);
  EXPECT_EQ(args.get("name", ""), "web");
  EXPECT_TRUE(args.has("scale"));
  EXPECT_FALSE(args.has("missing"));
}

TEST(CliArgs, EqualsSyntax) {
  const auto args = parse({"--tolerance=0.25", "--algo=flpa"});
  EXPECT_DOUBLE_EQ(args.get_double("tolerance", 0.0), 0.25);
  EXPECT_EQ(args.get("algo", ""), "flpa");
}

TEST(CliArgs, BareFlagsAreTrue) {
  const auto args = parse({"--verbose", "--count", "3"});
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_EQ(args.get_int("count", 0), 3);
}

TEST(CliArgs, BoolSpellings) {
  const auto args = parse({"--a", "true", "--b", "1", "--c", "yes", "--d",
                           "no"});
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_TRUE(args.get_bool("b", false));
  EXPECT_TRUE(args.get_bool("c", false));
  EXPECT_FALSE(args.get_bool("d", true));
}

TEST(CliArgs, FallbacksWhenAbsent) {
  const auto args = parse({});
  EXPECT_EQ(args.get("x", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("x", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("x", 1.5), 1.5);
  EXPECT_TRUE(args.get_bool("x", true));
}

TEST(CliArgs, PositionalArguments) {
  const auto args = parse({"input.mtx", "--algo", "plp", "more.bin"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.mtx");
  EXPECT_EQ(args.positional()[1], "more.bin");
}

TEST(TextTable, AlignsColumnsAndPadsShortRows) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name"});  // short row: second cell empty
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| long-name"), std::string::npos);
  // Every line has the same width.
  std::istringstream lines(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Format, SignificantDigits) {
  EXPECT_EQ(fmt(1.23456, 3), "1.23");
  EXPECT_EQ(fmt(1000.0, 4), "1000");
}

TEST(Format, HumanCounts) {
  EXPECT_EQ(fmt_count(950), "950");
  EXPECT_EQ(fmt_count(7410000), "7.41M");
  EXPECT_EQ(fmt_count(1210000000), "1.21B");
  EXPECT_EQ(fmt_count(2500), "2.5K");
}

TEST(Timer, MeasuresElapsedAndResets) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  const double first = t.seconds();
  EXPECT_GT(first, 0.0);
  t.reset();
  EXPECT_LT(t.seconds(), first + 1.0);
  EXPECT_NEAR(t.millis(), t.seconds() * 1e3, 1.0);
}

TEST(Timer, MeanOverRepeats) {
  int calls = 0;
  const double mean = time_mean_seconds(5, [&] { ++calls; });
  EXPECT_EQ(calls, 5);
  EXPECT_GE(mean, 0.0);
}

TEST(Counters, StreamOutputMentionsEveryField) {
  simt::PerfCounters c;
  c.global_loads = 11;
  c.atomic_ops = 22;
  c.hash_probes = 33;
  std::ostringstream os;
  os << c;
  const std::string s = os.str();
  EXPECT_NE(s.find("loads=11"), std::string::npos);
  EXPECT_NE(s.find("atomics=22"), std::string::npos);
  EXPECT_NE(s.find("probes=33"), std::string::npos);
}

TEST(Counters, AccumulateAndReset) {
  simt::PerfCounters a, b;
  a.global_loads = 5;
  a.shared_stores = 2;
  b.global_loads = 7;
  b.shared_stores = 1;
  a.exchanged_labels = 4;
  a.exchange_bytes = 64;
  b.exchanged_labels = 6;
  b.full_broadcast_labels_saved = 9;
  b.mirror_updates = 2;
  a += b;
  EXPECT_EQ(a.global_loads, 12u);
  EXPECT_EQ(a.shared_stores, 3u);
  EXPECT_EQ(a.exchanged_labels, 10u);
  EXPECT_EQ(a.exchange_bytes, 64u);
  EXPECT_EQ(a.full_broadcast_labels_saved, 9u);
  EXPECT_EQ(a.mirror_updates, 2u);
  // Saturating span subtraction covers the comm fields too.
  simt::PerfCounters d = a - b;
  EXPECT_EQ(d.exchanged_labels, 4u);
  EXPECT_EQ(d.full_broadcast_labels_saved, 0u);
  a.reset();
  EXPECT_EQ(a.global_loads, 0u);
  EXPECT_EQ(a.exchanged_labels, 0u);
}

TEST(Counters, SnapshotDeltaIsolatesASpan) {
  // The pattern every traced kernel uses: snapshot before, subtract after.
  simt::PerfCounters live;
  live.global_loads = 100;
  live.atomic_ops = 10;
  const simt::PerfCounters before = live.snapshot();
  live.global_loads += 40;
  live.atomic_ops += 5;
  live.hash_probes += 7;
  const simt::PerfCounters delta = live - before;
  EXPECT_EQ(delta.global_loads, 40u);
  EXPECT_EQ(delta.atomic_ops, 5u);
  EXPECT_EQ(delta.hash_probes, 7u);
  EXPECT_EQ(delta.global_stores, 0u);
  // snapshot() is a copy: mutating the live counters left it alone.
  EXPECT_EQ(before.global_loads, 100u);
  // Deltas recompose: before + (live - before) == live.
  EXPECT_EQ(before + delta, live);
}

TEST(Counters, StreamRoundTripPreservesEveryField) {
  simt::PerfCounters c;
  // Distinct primes in every field so any swapped/missed field is caught.
  c.global_loads = 2;
  c.global_stores = 3;
  c.shared_loads = 5;
  c.shared_stores = 7;
  c.atomic_ops = 11;
  c.hash_inserts = 13;
  c.hash_probes = 17;
  c.hash_fallbacks = 19;
  c.warp_syncs = 23;
  c.block_syncs = 29;
  c.kernel_launches = 31;
  c.fiber_switches = 37;
  c.edges_scanned = 41;
  c.threads_run = 43;
  c.frontier_vertices = 47;
  c.skipped_lanes = 53;
  c.barrier_checks = 59;
  c.fiberless_lanes = 61;
  c.promoted_lanes = 67;
  c.stack_pool_hits = 71;
  c.shared_zero_fills = 73;
  c.tracked_accesses = 79;
  c.global_transactions = 83;
  c.coalesced_accesses = 89;
  c.txn_32b = 97;
  c.txn_64b = 101;
  c.txn_128b = 103;
  c.cache_hits = 107;
  c.cache_misses = 109;
  c.modeled_cycles = 113;
  c.stall_cycles = 127;
  c.hidden_latency_cycles = 131;
  c.stolen_blocks = 137;
  c.exchanged_labels = 139;
  c.exchange_bytes = 149;
  c.full_broadcast_labels_saved = 151;
  c.mirror_updates = 157;

  std::ostringstream os;
  os << c;
  simt::PerfCounters back;
  back.global_loads = 999;  // must be overwritten, not accumulated
  std::istringstream is(os.str());
  is >> back;
  EXPECT_TRUE(static_cast<bool>(is));
  EXPECT_EQ(back, c);
}

}  // namespace
}  // namespace nulpa
