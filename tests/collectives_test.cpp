// Tests for the block/warp collectives (simt/collectives.hpp) and the
// simulator-hosted Gunrock LPA baseline built on top of them.
#include <gtest/gtest.h>

#include <vector>

#include "baselines/gunrock_lpa.hpp"
#include "baselines/gunrock_lpa_simt.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "quality/communities.hpp"
#include "quality/modularity.hpp"
#include "simt/collectives.hpp"

namespace nulpa {
namespace {

using simt::Lane;
using simt::LaunchConfig;
using simt::PerfCounters;

struct ArgmaxScratch {
  std::vector<std::uint32_t> keys;
  std::vector<double> weights;
  explicit ArgmaxScratch(std::uint32_t block_dim)
      : keys(block_dim), weights(block_dim) {}
};

TEST(BlockArgmax, FindsTheHeaviestContribution) {
  LaunchConfig cfg;
  cfg.block_dim = 64;
  PerfCounters ctr;
  ArgmaxScratch scratch(cfg.block_dim);
  std::uint32_t winner = 0;
  simt::launch(1, cfg, ctr, [&](Lane& lane) {
    // Lane t contributes key 100+t with weight t; lane 63 must win.
    const std::uint32_t key = 100 + lane.thread_idx();
    const double w = lane.thread_idx();
    const std::uint32_t got = simt::block_argmax(
        lane, key, w, scratch.keys.data(), scratch.weights.data(),
        0xFFFFFFFFu);
    if (lane.thread_idx() == 0) winner = got;
  });
  EXPECT_EQ(winner, 163u);
}

TEST(BlockArgmax, EveryLaneReceivesTheSameWinner) {
  LaunchConfig cfg;
  cfg.block_dim = 48;
  PerfCounters ctr;
  ArgmaxScratch scratch(cfg.block_dim);
  std::vector<std::uint32_t> got(cfg.block_dim);
  simt::launch(1, cfg, ctr, [&](Lane& lane) {
    got[lane.thread_idx()] = simt::block_argmax(
        lane, lane.thread_idx(), double(lane.thread_idx() % 7),
        scratch.keys.data(), scratch.weights.data(), 0xFFFFFFFFu);
  });
  for (const auto w : got) EXPECT_EQ(w, got[0]);
}

TEST(BlockArgmax, SkipsInvalidLanes) {
  LaunchConfig cfg;
  cfg.block_dim = 32;
  PerfCounters ctr;
  ArgmaxScratch scratch(cfg.block_dim);
  std::uint32_t winner = 0;
  simt::launch(1, cfg, ctr, [&](Lane& lane) {
    // Only lane 5 contributes a valid key.
    const bool valid = lane.thread_idx() == 5;
    const std::uint32_t got = simt::block_argmax(
        lane, valid ? 42u : 0xFFFFFFFFu, valid ? 1.0 : 999.0,
        scratch.keys.data(), scratch.weights.data(), 0xFFFFFFFFu);
    if (lane.thread_idx() == 0) winner = got;
  });
  EXPECT_EQ(winner, 42u);
}

TEST(BlockArgmax, TieGoesToLowestLane) {
  LaunchConfig cfg;
  cfg.block_dim = 16;
  PerfCounters ctr;
  ArgmaxScratch scratch(cfg.block_dim);
  std::uint32_t winner = 0;
  simt::launch(1, cfg, ctr, [&](Lane& lane) {
    const std::uint32_t got = simt::block_argmax(
        lane, 200 + lane.thread_idx(), 1.0,  // all tie
        scratch.keys.data(), scratch.weights.data(), 0xFFFFFFFFu);
    if (lane.thread_idx() == 0) winner = got;
  });
  EXPECT_EQ(winner, 200u);
}

TEST(BlockSum, AddsAllLanes) {
  LaunchConfig cfg;
  cfg.block_dim = 128;
  PerfCounters ctr;
  std::vector<std::uint64_t> scratch(cfg.block_dim);
  std::uint64_t total = 0;
  simt::launch(1, cfg, ctr, [&](Lane& lane) {
    const std::uint64_t sum = simt::block_sum<std::uint64_t>(
        lane, lane.thread_idx(), scratch.data());
    if (lane.thread_idx() == 0) total = sum;
  });
  EXPECT_EQ(total, 127u * 128u / 2);
}

TEST(BlockCountIf, CountsPredicates) {
  LaunchConfig cfg;
  cfg.block_dim = 64;
  PerfCounters ctr;
  std::vector<std::uint32_t> scratch(cfg.block_dim);
  std::uint32_t count = 0;
  simt::launch(1, cfg, ctr, [&](Lane& lane) {
    const std::uint32_t c = simt::block_count_if(
        lane, lane.thread_idx() % 4 == 0, scratch.data());
    if (lane.thread_idx() == 0) count = c;
  });
  EXPECT_EQ(count, 16u);
}

TEST(WarpBroadcast, DistributesWithinWarpOnly) {
  LaunchConfig cfg;
  cfg.block_dim = 64;  // two warps
  PerfCounters ctr;
  std::vector<std::uint32_t> warp_scratch(2);
  std::vector<std::uint32_t> got(cfg.block_dim);
  simt::launch(1, cfg, ctr, [&](Lane& lane) {
    // Lane 0 of each warp broadcasts its global thread id.
    got[lane.thread_idx()] = simt::warp_broadcast<std::uint32_t>(
        lane, lane.global_thread(), 0, warp_scratch.data());
  });
  for (std::uint32_t t = 0; t < 32; ++t) EXPECT_EQ(got[t], 0u);
  for (std::uint32_t t = 32; t < 64; ++t) EXPECT_EQ(got[t], 32u);
}

TEST(GunrockSimt, MatchesHostGunrockLabels) {
  // The simulator-hosted synchronous LPA and the plain host loop implement
  // the same algorithm; on a deterministic workload the labels must agree.
  const Graph g = generate_web(600, 6, 0.85, 11);
  const auto host = gunrock_lpa(g, GunrockLpaConfig{});
  const auto sim = gunrock_lpa_simt(g, GunrockLpaConfig{});
  EXPECT_EQ(sim.iterations, host.iterations);
  // Tie-break orders differ (hash-slot vs scan), so compare quality rather
  // than exact labels.
  EXPECT_NEAR(modularity(g, sim.labels), modularity(g, host.labels), 0.06);
  EXPECT_GT(sim.counters.global_loads, 0u);
  EXPECT_EQ(sim.counters.kernel_launches,
            static_cast<std::uint64_t>(sim.iterations));
}

TEST(GunrockSimt, SynchronousSwapOnBipartitePair) {
  // Without symmetry breaking, the double-buffered update swaps a pair's
  // labels every iteration: after an odd number of iterations they are
  // exchanged, after an even number restored.
  GraphBuilder b(2);
  b.add_edge(0, 1);
  GunrockLpaConfig cfg;
  cfg.iterations = 3;
  const auto r = gunrock_lpa_simt(b.build(), cfg);
  EXPECT_EQ(r.labels[0], 1u);
  EXPECT_EQ(r.labels[1], 0u);
}

TEST(GunrockSimt, EmptyGraph) {
  const auto r = gunrock_lpa_simt(Graph{}, GunrockLpaConfig{});
  EXPECT_TRUE(r.labels.empty());
}

}  // namespace
}  // namespace nulpa
