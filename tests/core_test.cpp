// Tests for ν-LPA itself: correctness on graphs with known community
// structure, the community-swap livelock and its PL/CC mitigations
// (Section 4.1), kernel-partitioning equivalence (Section 4.3), float vs
// double values (Section 4.4), determinism, and counter plumbing.
#include <gtest/gtest.h>

#include <numeric>

#include "core/nulpa.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "quality/communities.hpp"
#include "quality/modularity.hpp"
#include "quality/nmi.hpp"

namespace nulpa {
namespace {

/// A perfect matching: k disjoint edges. Every pair is symmetric, so under
/// lockstep execution both endpoints adopt each other's label each
/// iteration — the canonical swap-livelock workload.
Graph matching_graph(Vertex pairs) {
  GraphBuilder b(2 * pairs);
  for (Vertex p = 0; p < pairs; ++p) b.add_edge(2 * p, 2 * p + 1);
  return b.build();
}

NuLpaConfig no_swap_prevention() {
  NuLpaConfig cfg;
  cfg.swap.pick_less_every = 0;
  cfg.swap.cross_check_every = 0;
  return cfg;
}

TEST(NuLpa, EmptyGraph) {
  const auto res = nu_lpa(Graph{});
  EXPECT_TRUE(res.labels.empty());
  EXPECT_EQ(res.iterations, 0);
}

TEST(NuLpa, SingletonAndIsolatedVerticesKeepOwnLabel) {
  GraphBuilder b(4);
  b.add_edge(0, 1);  // 2 and 3 are isolated
  const auto res = nu_lpa(b.build());
  EXPECT_EQ(res.labels[2], 2u);
  EXPECT_EQ(res.labels[3], 3u);
  EXPECT_EQ(res.labels[0], res.labels[1]);
}

TEST(NuLpa, CliqueCollapsesToOneCommunity) {
  const auto res = nu_lpa(generate_clique(16));
  EXPECT_EQ(count_communities(res.labels), 1u);
}

TEST(NuLpa, RingOfCliquesFindsTheCliques) {
  const Graph g = generate_ring_of_cliques(12, 6);
  const auto res = nu_lpa(g);
  ASSERT_TRUE(is_valid_membership(g, res.labels));

  std::vector<Vertex> truth(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) truth[v] = v / 6;
  EXPECT_GT(normalized_mutual_information(res.labels, truth), 0.95);
  EXPECT_GT(modularity(g, res.labels), 0.7);
}

// The heart of Section 4.1: without any symmetry breaking the matching
// graph livelocks (every pair swaps forever, ΔN never drops), so the run
// exhausts MAX_ITERATIONS without converging. PL4 breaks the symmetry.
TEST(SwapPrevention, LivelockWithoutMitigation) {
  const Graph g = matching_graph(64);
  const auto res = nu_lpa(g, no_swap_prevention());
  EXPECT_EQ(res.iterations, 20) << "expected to hit MAX_ITERATIONS";
  // Pairs are still split: both endpoints carry different labels.
  int split = 0;
  for (Vertex p = 0; p < 64; ++p) {
    split += res.labels[2 * p] != res.labels[2 * p + 1];
  }
  EXPECT_GT(split, 0) << "livelocked pairs should remain unmerged";
}

TEST(SwapPrevention, PickLessResolvesSwaps) {
  const Graph g = matching_graph(64);
  NuLpaConfig cfg;  // default PL4
  const auto res = nu_lpa(g, cfg);
  EXPECT_LT(res.iterations, 20) << "PL4 should converge";
  for (Vertex p = 0; p < 64; ++p) {
    EXPECT_EQ(res.labels[2 * p], res.labels[2 * p + 1]) << "pair " << p;
    // Pick-Less favours the smaller id, which is the pair's leader.
    EXPECT_EQ(res.labels[2 * p], 2 * p);
  }
}

TEST(SwapPrevention, CrossCheckResolvesSwaps) {
  const Graph g = matching_graph(64);
  NuLpaConfig cfg;
  cfg.swap.pick_less_every = 0;
  cfg.swap.cross_check_every = 1;
  const auto res = nu_lpa(g, cfg);
  for (Vertex p = 0; p < 64; ++p) {
    EXPECT_EQ(res.labels[2 * p], res.labels[2 * p + 1]) << "pair " << p;
  }
}

TEST(SwapPrevention, HybridResolvesSwaps) {
  const Graph g = matching_graph(32);
  NuLpaConfig cfg;
  cfg.swap.pick_less_every = 2;
  cfg.swap.cross_check_every = 3;
  const auto res = nu_lpa(g, cfg);
  for (Vertex p = 0; p < 32; ++p) {
    EXPECT_EQ(res.labels[2 * p], res.labels[2 * p + 1]);
  }
}

TEST(SwapPrevention, LabelFormatting) {
  SwapPrevention s;
  EXPECT_EQ(s.label(), "PL4");
  s = {.pick_less_every = 0, .cross_check_every = 2};
  EXPECT_EQ(s.label(), "CC2");
  s = {.pick_less_every = 1, .cross_check_every = 3};
  EXPECT_EQ(s.label(), "H(PL1,CC3)");
  s = {.pick_less_every = 0, .cross_check_every = 0};
  EXPECT_EQ(s.label(), "none");
}

TEST(NuLpa, DeterministicAcrossRuns) {
  const Graph g = generate_web(2000, 6, 0.82, 9);
  const auto a = nu_lpa(g);
  const auto b = nu_lpa(g);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.counters.global_loads, b.counters.global_loads);
}

// Section 4.3: forcing every vertex through either kernel must produce
// communities of the same quality (tie-break order may differ slightly).
TEST(KernelPartition, BothKernelsProduceEquivalentQuality) {
  const Graph g = generate_web(1500, 8, 0.82, 4);

  NuLpaConfig all_tpv;
  all_tpv.switch_degree = 0xFFFFFFFF;  // everything thread-per-vertex
  NuLpaConfig all_bpv;
  all_bpv.switch_degree = 0;  // everything block-per-vertex
  NuLpaConfig mixed;          // default 32

  const auto r_tpv = nu_lpa(g, all_tpv);
  const auto r_bpv = nu_lpa(g, all_bpv);
  const auto r_mix = nu_lpa(g, mixed);

  const double q_tpv = modularity(g, r_tpv.labels);
  const double q_bpv = modularity(g, r_bpv.labels);
  const double q_mix = modularity(g, r_mix.labels);
  EXPECT_NEAR(q_tpv, q_bpv, 0.08);
  EXPECT_NEAR(q_mix, q_tpv, 0.08);
  EXPECT_TRUE(is_valid_membership(g, r_bpv.labels));
}

TEST(KernelPartition, HighDegreeVerticesGoThroughBlockKernel) {
  // A star graph: hub degree 99 -> block kernel; leaves -> thread kernel.
  GraphBuilder b(100);
  for (Vertex v = 1; v < 100; ++v) b.add_edge(0, v);
  const Graph g = b.build();
  const auto res = nu_lpa(g);
  EXPECT_TRUE(is_valid_membership(g, res.labels));
  EXPECT_EQ(count_communities(res.labels), 1u);  // star is one community
  EXPECT_GT(res.counters.block_syncs, 0u) << "block kernel must have run";
}

TEST(Datatype, FloatAndDoubleValuesAgreeOnQuality) {
  const Graph g = generate_web(1500, 6, 0.82, 21);
  NuLpaConfig f32, f64;
  f64.use_double_values = true;
  const auto rf = nu_lpa(g, f32);
  const auto rd = nu_lpa(g, f64);
  EXPECT_NEAR(modularity(g, rf.labels), modularity(g, rd.labels), 0.02);
}

TEST(Pruning, DoesNotDegradeQuality) {
  const Graph g = generate_web(1500, 6, 0.82, 33);
  NuLpaConfig with_pruning;
  NuLpaConfig without;
  without.pruning = false;
  const auto a = nu_lpa(g, with_pruning);
  const auto b = nu_lpa(g, without);
  EXPECT_NEAR(modularity(g, a.labels), modularity(g, b.labels), 0.05);
  // Pruning must reduce work after the first iteration.
  EXPECT_LT(a.edges_scanned, b.edges_scanned);
}

TEST(Counters, ArePopulated) {
  const Graph g = generate_ring_of_cliques(8, 5);
  const auto res = nu_lpa(g);
  EXPECT_GT(res.counters.global_loads, 0u);
  EXPECT_GT(res.counters.global_stores, 0u);
  EXPECT_GT(res.counters.kernel_launches, 0u);
  EXPECT_GT(res.counters.edges_scanned, 0u);
  EXPECT_GT(res.hash_stats.inserts, 0u);
  EXPECT_EQ(res.edges_scanned, res.counters.edges_scanned);
}

TEST(Tolerance, LooserToleranceConvergesNoSlower) {
  const Graph g = generate_web(2000, 6, 0.82, 8);
  NuLpaConfig tight;
  tight.tolerance = 1e-6;
  NuLpaConfig loose;
  loose.tolerance = 0.2;
  const auto rt = nu_lpa(g, tight);
  const auto rl = nu_lpa(g, loose);
  EXPECT_LE(rl.iterations, rt.iterations);
}

class ProbingQuality : public ::testing::TestWithParam<Probing> {};

// Figure 4 is about speed; quality must be unaffected by probing choice.
TEST_P(ProbingQuality, CommunityQualityIndependentOfProbing) {
  const Graph g = generate_web(1200, 6, 0.82, 13);
  NuLpaConfig cfg;
  cfg.probing = GetParam();
  const auto res = nu_lpa(g, cfg);
  ASSERT_TRUE(is_valid_membership(g, res.labels));
  EXPECT_GT(modularity(g, res.labels), 0.3);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ProbingQuality,
                         ::testing::Values(Probing::kLinear,
                                           Probing::kQuadratic,
                                           Probing::kDouble,
                                           Probing::kQuadDouble),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

class SwitchDegreeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SwitchDegreeSweep, AllSwitchDegreesAreCorrect) {
  const Graph g = generate_web(800, 6, 0.82, 17);
  NuLpaConfig cfg;
  cfg.switch_degree = GetParam();
  const auto res = nu_lpa(g, cfg);
  ASSERT_TRUE(is_valid_membership(g, res.labels));
  // Tiny switch degrees route nearly every vertex through one-vertex
  // blocks; when the graph far exceeds the simulated number of resident
  // blocks, that over-serializes execution relative to real hardware and
  // label epidemics cost quality. The paper's operating point (32) and its
  // neighbourhood must deliver full quality.
  if (GetParam() >= 16) {
    EXPECT_GT(modularity(g, res.labels), 0.3);
  }
}

INSTANTIATE_TEST_SUITE_P(Fig5Sweep, SwitchDegreeSweep,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u, 64u, 128u,
                                           256u));

TEST(NuLpa, PlantedPartitionRecovered) {
  const auto pp = generate_planted_partition(600, 6, 16.0, 1.0, 5);
  const auto res = nu_lpa(pp.graph);
  EXPECT_GT(normalized_mutual_information(res.labels, pp.ground_truth), 0.8);
}

TEST(NuLpa, LabelsAreAlwaysCommunityLeaders) {
  // Every final label must be a real vertex id (LPA invariant).
  const Graph g = generate_web(1000, 5, 0.82, 3);
  const auto res = nu_lpa(g);
  for (const Vertex c : res.labels) EXPECT_LT(c, g.num_vertices());
}

}  // namespace
}  // namespace nulpa
