// Equivalence suites: the optimized kernels must agree with slow,
// obviously-correct reference computations. These are the tests that caught
// the block-uniform pruning race during development (DESIGN.md, decision 4).
#include <gtest/gtest.h>

#include <unordered_map>

#include "baselines/gunrock_lpa_simt.hpp"
#include "baselines/seq_lpa.hpp"
#include "core/nulpa.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "quality/communities.hpp"
#include "quality/modularity.hpp"
#include "util/rng.hpp"

namespace nulpa {
namespace {

/// Random graph with strictly distinct edge weights, so every vertex has a
/// unique best label and tie-break order cannot mask differences.
Graph distinct_weight_graph(Vertex n, int edges, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  GraphBuilder b(n);
  for (int e = 0; e < edges; ++e) {
    const auto u = static_cast<Vertex>(rng.next_bounded(n));
    const auto v = static_cast<Vertex>(rng.next_bounded(n));
    if (u != v) {
      b.add_edge(u, v, 1.0f + 0.001f * static_cast<float>(e));
    }
  }
  return b.build();
}

/// One reference LPA iteration over `order`, asynchronous, strict
/// first-max (scan order). With distinct weights the winner is unique, so
/// this matches any sequentially-processed implementation exactly.
std::vector<Vertex> reference_iteration_ordered(
    const Graph& g, const std::vector<Vertex>& order) {
  std::vector<Vertex> labels(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) labels[v] = v;
  std::unordered_map<Vertex, double> acc;
  for (const Vertex v : order) {
    acc.clear();
    const auto nbrs = g.neighbors(v);
    const auto wts = g.weights_of(v);
    Vertex best = labels[v];
    double best_w = -1.0;
    for (std::size_t e = 0; e < nbrs.size(); ++e) {
      if (nbrs[e] == v) continue;
      const double w = (acc[labels[nbrs[e]]] += wts[e]);
      if (w > best_w) {
        best_w = w;
        best = labels[nbrs[e]];
      }
    }
    labels[v] = best;
  }
  return labels;
}

std::vector<Vertex> ascending_order(const Graph& g) {
  std::vector<Vertex> order(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) order[v] = v;
  return order;
}

std::vector<Vertex> reference_iteration(const Graph& g) {
  return reference_iteration_ordered(g, ascending_order(g));
}

NuLpaConfig sequentialized(std::uint32_t switch_degree) {
  NuLpaConfig cfg;
  cfg.switch_degree = switch_degree;
  cfg.max_iterations = 1;
  cfg.swap.pick_less_every = 0;
  cfg.pruning = false;
  // One lane/block in flight => strictly sequential ascending processing.
  cfg.launch.block_dim = 1;
  cfg.launch.resident_blocks = 1;
  cfg.bpv_block_dim = 4;
  cfg.bpv_resident_blocks = 1;
  return cfg;
}

TEST(Equivalence, ThreadPerVertexMatchesReference) {
  const Graph g = distinct_weight_graph(300, 2500, 7);
  const auto ref = reference_iteration(g);
  const auto r = nu_lpa(g, sequentialized(0xFFFFFFFFu));
  EXPECT_EQ(r.labels, ref);
}

TEST(Equivalence, BlockPerVertexMatchesReference) {
  const Graph g = distinct_weight_graph(300, 2500, 8);
  const auto ref = reference_iteration(g);
  const auto r = nu_lpa(g, sequentialized(0));
  EXPECT_EQ(r.labels, ref);
}

TEST(Equivalence, MixedKernelsMatchReference) {
  // The engine launches the thread-per-vertex kernel (low-degree vertices)
  // before the block-per-vertex kernel, so the asynchronous processing
  // order is low-partition-then-high-partition, each ascending.
  const Graph g = distinct_weight_graph(300, 2500, 9);
  std::vector<Vertex> order;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) < 16) order.push_back(v);
  }
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) >= 16) order.push_back(v);
  }
  const auto ref = reference_iteration_ordered(g, order);
  const auto r = nu_lpa(g, sequentialized(16));
  EXPECT_EQ(r.labels, ref);
}

TEST(Equivalence, PruningIsTransparentOnDistinctWeights) {
  // With unique maxima and no Pick-Less, pruning must not change any label
  // decision: a skipped vertex has an unchanged neighbourhood, so a
  // recompute would pick the same label. (With PL enabled this does not
  // hold — a vertex blocked by PL and then pruned misses the later non-PL
  // iteration in which it could have moved; that documented interplay is
  // why both configs here disable PL.)
  const Graph g = distinct_weight_graph(400, 3000, 10);
  NuLpaConfig with_p;
  with_p.swap.pick_less_every = 0;
  NuLpaConfig without = with_p;
  without.pruning = false;
  EXPECT_EQ(nu_lpa(g, with_p).labels, nu_lpa(g, without).labels);
}

TEST(Equivalence, SharedAndGlobalTablesBitIdentical) {
  const Graph g = distinct_weight_graph(400, 3000, 11);
  NuLpaConfig global_cfg;
  NuLpaConfig shared_cfg;
  shared_cfg.shared_memory_tables = true;
  EXPECT_EQ(nu_lpa(g, global_cfg).labels, nu_lpa(g, shared_cfg).labels);
}

TEST(Equivalence, ProbingPoliciesAgreeOnDistinctWeights) {
  // The probe sequence decides *where* a key lives, never what the max is.
  const Graph g = distinct_weight_graph(350, 2800, 12);
  std::vector<Vertex> first;
  for (const Probing p : {Probing::kLinear, Probing::kQuadratic,
                          Probing::kDouble, Probing::kQuadDouble,
                          Probing::kCoalesced}) {
    NuLpaConfig cfg;
    cfg.probing = p;
    cfg.switch_degree = 0xFFFFFFFFu;  // coalesced is TPV-only
    const auto r = nu_lpa(g, cfg);
    if (first.empty()) {
      first = r.labels;
    } else {
      EXPECT_EQ(r.labels, first) << to_string(p);
    }
  }
}

TEST(Equivalence, WeightsAreRespected) {
  // Vertex 0 has two neighbours; the heavier edge must win regardless of
  // label ids.
  GraphBuilder b(3);
  b.add_edge(0, 1, 1.0f);
  b.add_edge(0, 2, 5.0f);
  NuLpaConfig cfg;
  cfg.max_iterations = 1;
  cfg.swap.pick_less_every = 0;
  const auto r = nu_lpa(b.build(), cfg);
  EXPECT_EQ(r.labels[0], 2u);
}

TEST(Equivalence, SeqLpaStrictMatchesReferenceOneIteration) {
  const Graph g = distinct_weight_graph(300, 2500, 13);
  SeqLpaConfig cfg;
  cfg.max_iterations = 1;
  cfg.random_tie_break = false;
  cfg.tolerance = 0.0;
  EXPECT_EQ(seq_lpa(g, cfg).labels, reference_iteration(g));
}

TEST(Equivalence, ConvergedStateIsAFixedPoint) {
  // Running ν-LPA again from its own output must change nothing: every
  // vertex already holds a maximal-weight label. (Feed labels back via a
  // one-iteration reference sweep.)
  const Graph g = generate_web(800, 6, 0.85, 14);
  const auto r = nu_lpa(g);
  std::unordered_map<Vertex, double> acc;
  int improvable = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    acc.clear();
    const auto nbrs = g.neighbors(v);
    const auto wts = g.weights_of(v);
    if (nbrs.empty()) continue;
    for (std::size_t e = 0; e < nbrs.size(); ++e) {
      if (nbrs[e] != v) acc[r.labels[nbrs[e]]] += wts[e];
    }
    double best = -1.0;
    for (const auto& [c, w] : acc) best = std::max(best, w);
    const auto mine = acc.find(r.labels[v]);
    const double my_w = mine == acc.end() ? -1.0 : mine->second;
    if (my_w < best) ++improvable;
  }
  // Tolerance 0.05 allows a small residue of improvable vertices.
  EXPECT_LT(improvable, static_cast<int>(0.10 * g.num_vertices()));
}

// Frontier compaction must be invisible in the labels: the compacted
// worklists preserve each resident window's gather cohort, so every run
// below must agree byte-for-byte with its full-range twin — across graph
// shapes, schedule seeds, and kernel splits.

NuLpaConfig fuzz_config(std::uint64_t schedule_seed) {
  NuLpaConfig cfg;
  cfg.launch.schedule_seed = schedule_seed;
  return cfg;
}

void expect_compaction_transparent(const Graph& g, const NuLpaConfig& cfg,
                                   const char* what) {
  const auto full =
      nu_lpa(g, cfg.with_exec(cfg.exec.with_frontier_compaction(false)));
  const auto comp =
      nu_lpa(g, cfg.with_exec(cfg.exec.with_frontier_compaction(true)));
  EXPECT_EQ(full.labels, comp.labels) << what;
  EXPECT_EQ(full.iterations, comp.iterations) << what;
  // The compacted run must never launch more lane slots than it skips
  // plus processes — i.e. the counters actually reflect compaction.
  EXPECT_EQ(full.counters.edges_scanned, comp.counters.edges_scanned)
      << what;
}

TEST(Equivalence, FrontierCompactionByteIdenticalOnDistinctWeights) {
  const Graph g = distinct_weight_graph(700, 2800, 77);
  expect_compaction_transparent(g, NuLpaConfig{}, "distinct weights");
}

TEST(Equivalence, FrontierCompactionByteIdenticalOnTieHeavyGraph) {
  // Unit weights everywhere: winners decided purely by tie-break order, so
  // any cohort perturbation compaction introduced would surface here.
  const Graph g = generate_erdos_renyi(900, 6.0, 1234);
  expect_compaction_transparent(g, NuLpaConfig{}, "tie-heavy");
}

TEST(Equivalence, FrontierCompactionByteIdenticalWithMixedKernels) {
  // Hub-rich web graph exercises both the TPV and BPV paths (degree
  // threshold 8 forces plenty of block-per-vertex work).
  const Graph g = generate_web(1200, 7, 0.85, 5);
  expect_compaction_transparent(
      g, NuLpaConfig{}.with_switch_degree(8), "mixed kernels");
}

TEST(Equivalence, FrontierCompactionByteIdenticalUnderScheduleFuzz) {
  const Graph g = generate_web(800, 6, 0.85, 23);
  for (const std::uint64_t seed : {1ULL, 7ULL, 99ULL, 424242ULL}) {
    expect_compaction_transparent(
        g, fuzz_config(seed),
        ("schedule_seed=" + std::to_string(seed)).c_str());
  }
}

TEST(Equivalence, FrontierCompactionByteIdenticalUnderFuzzWithTies) {
  // The hardest combination: random lane order AND tie-decided winners.
  const Graph g = generate_erdos_renyi(600, 5.0, 31);
  for (const std::uint64_t seed : {3ULL, 17ULL, 1234ULL}) {
    expect_compaction_transparent(
        g, fuzz_config(seed).with_swap(SwapPrevention::none()),
        ("ties schedule_seed=" + std::to_string(seed)).c_str());
  }
}

// The fiberless executor must be invisible in every algorithm-level
// observable: the split TPV kernels replay the fused kernel's
// window-wide gather-then-commit schedule, so labels, iteration counts,
// and edges scanned must match the fiber path byte-for-byte. Only the
// scheduler-cost counters (fiber_switches, fiberless_lanes, ...) may move.

void expect_fiberless_transparent(const Graph& g, const NuLpaConfig& cfg,
                                  const char* what) {
  const auto fibered = nu_lpa(g, cfg.with_exec(simt::ExecPolicy::lockstep()));
  const auto direct = nu_lpa(g, cfg.with_exec(simt::ExecPolicy{}));
  EXPECT_EQ(fibered.labels, direct.labels) << what;
  EXPECT_EQ(fibered.iterations, direct.iterations) << what;
  EXPECT_EQ(fibered.counters.edges_scanned, direct.counters.edges_scanned)
      << what;
}

TEST(Equivalence, FiberlessByteIdenticalOnDistinctWeights) {
  const Graph g = distinct_weight_graph(700, 2800, 78);
  expect_fiberless_transparent(g, NuLpaConfig{}, "distinct weights");
}

TEST(Equivalence, FiberlessByteIdenticalOnTieHeavyGraph) {
  // Unit weights everywhere: the winner is decided purely by gather order,
  // so any schedule divergence between the executors would surface here.
  const Graph g = generate_erdos_renyi(900, 6.0, 4321);
  expect_fiberless_transparent(g, NuLpaConfig{}, "tie-heavy");
}

TEST(Equivalence, FiberlessByteIdenticalWithMixedKernels) {
  // Threshold 8 forces plenty of BPV work: the BPV kernel stays on fibers
  // in both configs, so this checks the split boundary between executors.
  const Graph g = generate_web(1200, 7, 0.85, 6);
  expect_fiberless_transparent(
      g, NuLpaConfig{}.with_switch_degree(8), "mixed kernels");
}

TEST(Equivalence, FiberlessByteIdenticalUnderScheduleFuzz) {
  // Both executors must consume the schedule RNG identically: the direct
  // loop shuffles once per block in block order, exactly like the lockstep
  // pass loop does for blocks that drain in one turn.
  const Graph g = generate_web(800, 6, 0.85, 24);
  for (const std::uint64_t seed : {1ULL, 7ULL, 99ULL, 424242ULL}) {
    expect_fiberless_transparent(
        g, fuzz_config(seed),
        ("schedule_seed=" + std::to_string(seed)).c_str());
  }
}

TEST(Equivalence, FiberlessByteIdenticalUnderFuzzWithTies) {
  const Graph g = generate_erdos_renyi(600, 5.0, 32);
  for (const std::uint64_t seed : {3ULL, 17ULL, 1234ULL}) {
    expect_fiberless_transparent(
        g, fuzz_config(seed).with_swap(SwapPrevention::none()),
        ("ties schedule_seed=" + std::to_string(seed)).c_str());
  }
}

TEST(Equivalence, FiberlessByteIdenticalWithCrossCheckSchedule) {
  // The cross-check kernel shares the TPV session and inherits the
  // executor choice; the periodic extra launch must not desynchronize the
  // two paths.
  const Graph g = generate_web(900, 6, 0.85, 25);
  NuLpaConfig cfg;
  cfg.swap.cross_check_every = 2;
  expect_fiberless_transparent(g, cfg, "cross-check every 2");
}

TEST(Equivalence, GunrockFiberlessByteIdentical) {
  const Graph g = generate_web(2000, 6, 0.85, 9);
  GunrockLpaConfig cfg;
  cfg.exec = simt::ExecPolicy{};
  const auto direct = gunrock_lpa_simt(g, cfg);
  cfg.exec = simt::ExecPolicy::lockstep();
  const auto fibered = gunrock_lpa_simt(g, cfg);
  EXPECT_EQ(direct.labels, fibered.labels);
  EXPECT_EQ(direct.counters.edges_scanned, fibered.counters.edges_scanned);
  // The advance kernel is barrier-free, so the direct run spawns no lane
  // fibers and never promotes.
  EXPECT_GT(direct.counters.fiberless_lanes, 0u);
  EXPECT_EQ(direct.counters.promoted_lanes, 0u);
  EXPECT_EQ(fibered.counters.fiberless_lanes, 0u);
}

}  // namespace
}  // namespace nulpa
