// The fiberless direct executor and its lazy-promotion escape hatch: lanes
// run inline with no fiber until their first blocking collective, at which
// point the executor's stack is handed to the lane's fiber — no re-run, so
// pre-barrier side effects happen exactly once — and the run falls back to
// the lockstep schedule. These tests pin promotion at every collective,
// the counters that make the mode observable (fiberless_lanes,
// promoted_lanes, stack_pool_hits, shared_zero_fills), and the saturating
// counter deltas.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "simt/collectives.hpp"
#include "simt/counters.hpp"
#include "simt/grid.hpp"

namespace nulpa::simt {
namespace {

TEST(Fiberless, BarrierFreeKernelRunsWithoutFibers) {
  LaunchConfig cfg;
  cfg.block_dim = 64;
  cfg.resident_blocks = 2;
  PerfCounters ctr;
  std::vector<int> hits(64 * 5, 0);
  launch(5, cfg, ctr, [&](Lane& lane) { hits[lane.global_thread()]++; },
         ExecPolicy::barrier_free());
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i], 1) << "thread " << i;
  }
  EXPECT_EQ(ctr.fiberless_lanes, 64u * 5);
  EXPECT_EQ(ctr.promoted_lanes, 0u);
  EXPECT_EQ(ctr.threads_run, 64u * 5);
  // One context switch into the executor for the whole grid — the fiber
  // path pays one per lane.
  EXPECT_EQ(ctr.fiber_switches, 1u);
}

TEST(Fiberless, LockstepTraitSkipsTheDirectPhase) {
  LaunchConfig cfg;
  cfg.block_dim = 32;
  PerfCounters ctr;
  launch(2, cfg, ctr, [&](Lane&) {}, ExecPolicy::lockstep());
  EXPECT_EQ(ctr.fiberless_lanes, 0u);
  EXPECT_EQ(ctr.promoted_lanes, 0u);
  EXPECT_EQ(ctr.fiber_switches, 2u * 32);
}

// Promotion at syncwarp: the promoting lane's pre-barrier work must be
// visible exactly once, and the warp lockstep property must hold for the
// demoted remainder of the run.
TEST(Promotion, SyncwarpPromotesAndKeepsWarpLockstep) {
  LaunchConfig cfg;
  cfg.block_dim = 64;  // two warps
  PerfCounters ctr;
  std::vector<int> progress(64, 0);
  bool violated = false;
  launch(1, cfg, ctr, [&](Lane& lane) {
    progress[lane.thread_idx()]++;
    lane.syncwarp();
    const std::uint32_t base = lane.warp() * kWarpSize;
    for (std::uint32_t t = base; t < base + kWarpSize; ++t) {
      if (progress[t] != 1) violated = true;
    }
  });
  EXPECT_FALSE(violated);
  // Exactly one lane promotes (the first to reach the barrier); the rest
  // of the run is demoted to the fiber path, so no second promotion.
  EXPECT_EQ(ctr.promoted_lanes, 1u);
  EXPECT_EQ(ctr.warp_syncs, 64u);
  for (const int p : progress) EXPECT_EQ(p, 1);
}

// Promotion at syncthreads with non-idempotent pre-barrier side effects:
// a re-run-style promotion would double-increment; stack handoff must not.
TEST(Promotion, SyncthreadsPreservesNonIdempotentPrefix) {
  LaunchConfig cfg;
  cfg.block_dim = 128;
  PerfCounters ctr;
  std::vector<int> counter(128, 0);
  bool violated = false;
  launch(1, cfg, ctr, [&](Lane& lane) {
    for (int round = 0; round < 4; ++round) {
      counter[lane.thread_idx()]++;
      lane.syncthreads();
      for (const int c : counter) {
        if (c != round + 1) violated = true;
      }
      lane.syncthreads();
    }
  });
  EXPECT_FALSE(violated);
  EXPECT_EQ(ctr.promoted_lanes, 1u);
  for (const int c : counter) EXPECT_EQ(c, 4);
}

// Promotion through the shuffle-equivalent collective (warp_broadcast is
// built on syncwarp, like __shfl_sync's implicit lockstep).
TEST(Promotion, WarpShuffleBroadcastPromotes) {
  LaunchConfig cfg;
  cfg.block_dim = 64;
  cfg.shared_bytes = 2 * sizeof(std::uint32_t);  // one slot per warp
  PerfCounters ctr;
  std::vector<std::uint32_t> got(64, 0);
  launch(1, cfg, ctr, [&](Lane& lane) {
    auto* scratch = reinterpret_cast<std::uint32_t*>(lane.shared());
    // Lane 3 of each warp broadcasts its global thread id.
    got[lane.thread_idx()] =
        warp_broadcast(lane, lane.thread_idx(), 3u, scratch);
  });
  for (std::uint32_t t = 0; t < 64; ++t) {
    EXPECT_EQ(got[t], (t / kWarpSize) * kWarpSize + 3) << "lane " << t;
  }
  EXPECT_EQ(ctr.promoted_lanes, 1u);
}

// Promotion through the vote-equivalent collective (block_count_if is the
// __ballot_sync + popc idiom, built on syncthreads).
TEST(Promotion, BlockVotePromotes) {
  LaunchConfig cfg;
  cfg.block_dim = 96;
  cfg.shared_bytes = 96 * sizeof(std::uint32_t);
  PerfCounters ctr;
  std::vector<std::uint32_t> votes(96, 0);
  launch(1, cfg, ctr, [&](Lane& lane) {
    auto* scratch = reinterpret_cast<std::uint32_t*>(lane.shared());
    votes[lane.thread_idx()] =
        block_count_if(lane, lane.thread_idx() % 3 == 0, scratch);
  });
  for (const std::uint32_t v : votes) EXPECT_EQ(v, 32u);  // ceil(96/3)
  EXPECT_EQ(ctr.promoted_lanes, 1u);
}

// Atomics are read-modify-writes, not collectives: they never block, so a
// kernel made only of atomic_add stays entirely fiberless.
TEST(Promotion, AtomicAddDoesNotPromote) {
  LaunchConfig cfg;
  cfg.block_dim = 64;
  PerfCounters ctr;
  std::uint32_t sum = 0;
  launch(4, cfg, ctr, [&](Lane& lane) {
    lane.atomic_add(sum, std::uint32_t{1});
  });
  EXPECT_EQ(sum, 256u);
  EXPECT_EQ(ctr.promoted_lanes, 0u);
  EXPECT_EQ(ctr.fiberless_lanes, 256u);
  EXPECT_EQ(ctr.fiber_switches, 1u);
}

// A lane that promotes mid-gather: local accumulator state built up before
// the barrier must survive the stack handoff, under every schedule seed —
// including seeds where the first inline (and thus promoting) lane is not
// lane zero.
TEST(Promotion, MidGatherStateSurvivesUnderScheduleFuzz) {
  for (const std::uint64_t seed : {0ULL, 1ULL, 7ULL, 99ULL, 424242ULL}) {
    LaunchConfig cfg;
    cfg.block_dim = 64;
    cfg.schedule_seed = seed;
    PerfCounters ctr;
    std::vector<std::uint64_t> out(64, 0);
    std::vector<int> phase1(64, 0);
    bool violated = false;
    launch(1, cfg, ctr, [&](Lane& lane) {
      // Gather phase 1: data-dependent partial sum in a stack local.
      std::uint64_t acc = 1;
      for (std::uint32_t i = 0; i <= lane.thread_idx(); ++i) {
        acc = acc * 31 + i;
      }
      phase1[lane.thread_idx()] = 1;
      lane.syncwarp();  // the first lane scheduled promotes right here
      const std::uint32_t base = lane.warp() * kWarpSize;
      for (std::uint32_t t = base; t < base + kWarpSize; ++t) {
        if (phase1[t] != 1) violated = true;
      }
      // Gather phase 2: continue from the preserved local.
      for (std::uint32_t i = 0; i < 8; ++i) acc = acc * 31 + i;
      out[lane.thread_idx()] = acc;
    });
    EXPECT_FALSE(violated) << "seed " << seed;
    EXPECT_EQ(ctr.promoted_lanes, 1u) << "seed " << seed;
    for (std::uint32_t t = 0; t < 64; ++t) {
      std::uint64_t acc = 1;
      for (std::uint32_t i = 0; i <= t; ++i) acc = acc * 31 + i;
      for (std::uint32_t i = 0; i < 8; ++i) acc = acc * 31 + i;
      ASSERT_EQ(out[t], acc) << "seed " << seed << " lane " << t;
    }
  }
}

// Early-returning lanes complete inline as fiberless lanes even in a run
// that later promotes; the promoted run still releases every barrier.
TEST(Promotion, MixesFiberlessAndPromotedLanes) {
  LaunchConfig cfg;
  cfg.block_dim = 64;
  PerfCounters ctr;
  int through = 0;
  launch(1, cfg, ctr, [&](Lane& lane) {
    if (lane.thread_idx() % 2 == 0) return;  // finishes inline, no fiber
    lane.syncwarp();
    lane.syncthreads();
    ++through;
  });
  EXPECT_EQ(through, 32);
  // Lane 0 returns inline before lane 1 promotes.
  EXPECT_GE(ctr.fiberless_lanes, 1u);
  EXPECT_EQ(ctr.promoted_lanes, 1u);
}

// The direct phase and the lockstep fiber path must execute identical
// schedules: same lane order, same barrier phases, same final state.
TEST(Fiberless, MatchesLockstepByteForByte) {
  const auto run_mode = [](ExecPolicy policy) {
    LaunchConfig cfg;
    cfg.block_dim = 32;
    cfg.resident_blocks = 2;
    PerfCounters ctr;
    std::vector<std::uint32_t> order;
    std::vector<std::uint32_t> label = {0, 1};
    launch(3, cfg, ctr, [&](Lane& lane) {
      order.push_back(lane.global_thread());
      const std::uint32_t v = lane.global_thread();
      std::uint32_t adopted = 0xFFFFFFFF;
      if (v < 2) adopted = label[1 - v];
      lane.syncwarp();
      if (v < 2) label[v] = adopted;
      order.push_back(1000 + lane.global_thread());
    }, policy);
    order.push_back(label[0]);
    order.push_back(label[1]);
    return order;
  };
  EXPECT_EQ(run_mode(ExecPolicy{}), run_mode(ExecPolicy::lockstep()));
}

TEST(StackPool, HitsAccrueWhenBlocksRecycleStacks) {
  LaunchConfig cfg;
  cfg.block_dim = 8;
  cfg.resident_blocks = 1;
  PerfCounters ctr;
  // Lockstep grid of 4 blocks through 1 slot: blocks 2..4 must reuse the
  // stacks block 1 returned when it drained.
  launch(4, cfg, ctr, [&](Lane& lane) { lane.syncthreads(); },
         ExecPolicy::lockstep());
  EXPECT_GE(ctr.stack_pool_hits, 3u * 8);
}

TEST(StackPool, FiberlessRunsCheckOutNoLaneStacks) {
  LaunchConfig cfg;
  cfg.block_dim = 256;
  cfg.resident_blocks = 1;
  PerfCounters ctr;
  LaunchSession session(cfg, ctr, ExecPolicy::barrier_free());
  for (int r = 0; r < 3; ++r) {
    session.run(8, [&](Lane&) {});
  }
  // The executor's own stack is carved once and kept; no per-lane
  // checkouts means no free-list traffic at all.
  EXPECT_EQ(ctr.stack_pool_hits, 0u);
  EXPECT_EQ(ctr.fiberless_lanes, 3u * 8 * 256);
}

TEST(SharedArena, ZeroFillsAreSkippedForSlotsKernelsNeverTouched) {
  LaunchConfig cfg;
  cfg.block_dim = 4;
  cfg.shared_bytes = 64;
  cfg.resident_blocks = 1;
  PerfCounters ctr;
  LaunchSession session(cfg, ctr);
  // Run 1 touches the arena in every block: each of the 3 block inits pays
  // a zero-fill (the first because the arena starts uninitialized, the
  // rest because the previous block dirtied the slot).
  session.run(3, [&](Lane& lane) {
    auto* words = reinterpret_cast<std::uint32_t*>(lane.shared());
    words[lane.thread_idx()] = 0xA5A5A5A5u;
  });
  EXPECT_EQ(ctr.shared_zero_fills, 3u);
  // Run 2 never asks for the arena: only the first block init pays (the
  // slot is still dirty from run 1); after that the slot is known clean.
  session.run(3, [&](Lane&) {});
  EXPECT_EQ(ctr.shared_zero_fills, 4u);
  // Run 3 reads the arena: it must still see zeros even though two of the
  // three inits skipped their memset.
  bool zeroed = true;
  session.run(3, [&](Lane& lane) {
    auto* words = reinterpret_cast<std::uint32_t*>(lane.shared());
    if (words[lane.thread_idx()] != 0) zeroed = false;
  });
  EXPECT_TRUE(zeroed);
}

// Satellite regression: a reset() between two snapshots used to wrap every
// delta field to ~2^64; deltas must saturate at zero instead.
TEST(Counters, DeltaSaturatesAfterMidRunReset) {
  PerfCounters c;
  c.global_loads = 5;
  c.fiber_switches = 2;
  c.fiberless_lanes = 9;
  const PerfCounters before = c.snapshot();
  c.reset();  // mid-run reset: totals fall below the snapshot
  c.global_loads = 3;
  const PerfCounters delta = c - before;
  EXPECT_EQ(delta.global_loads, 0u);
  EXPECT_EQ(delta.fiber_switches, 0u);
  EXPECT_EQ(delta.fiberless_lanes, 0u);
  // Ordinary forward deltas are unaffected.
  PerfCounters later = before;
  later.global_loads += 7;
  EXPECT_EQ((later - before).global_loads, 7u);
}

TEST(Counters, ExecutorFieldsRoundTripThroughStreams) {
  PerfCounters c;
  c.fiberless_lanes = 11;
  c.promoted_lanes = 3;
  c.stack_pool_hits = 5;
  c.shared_zero_fills = 2;
  std::stringstream ss;
  ss << c;
  PerfCounters back;
  ss >> back;
  EXPECT_EQ(back, c);
}

}  // namespace
}  // namespace nulpa::simt
