// File-level IO tests (the stream-level round-trips live in graph_test /
// transforms_test): real temp files, error paths for missing/corrupt files,
// and CLI-relevant format detection invariants.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/binary_io.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace nulpa {
namespace {

class FileIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("nulpa_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(FileIoTest, MatrixMarketFileRoundTrip) {
  const Graph g = generate_web(300, 5, 0.85, 2);
  const std::string p = path("g.mtx");
  write_matrix_market_file(p, g);
  const Graph h = read_matrix_market_file(p);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.num_edges(), g.num_edges());
}

TEST_F(FileIoTest, BinaryCsrFileRoundTrip) {
  const Graph g = generate_kmer(500, 0.03, 3);
  const std::string p = path("g.bin");
  write_binary_csr_file(p, g);
  const Graph h = read_binary_csr_file(p);
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_TRUE(h.is_symmetric());
}

TEST_F(FileIoTest, BinaryIsSmallerToLoadAndLossless) {
  const Graph g = generate_web(1000, 6, 0.85, 4);
  write_matrix_market_file(path("g.mtx"), g);
  write_binary_csr_file(path("g.bin"), g);
  const Graph a = read_matrix_market_file(path("g.mtx"));
  const Graph b = read_binary_csr_file(path("g.bin"));
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (Vertex v = 0; v < a.num_vertices(); ++v) {
    ASSERT_EQ(a.degree(v), b.degree(v));
  }
}

TEST_F(FileIoTest, MissingFilesThrow) {
  EXPECT_THROW(read_matrix_market_file(path("absent.mtx")),
               std::runtime_error);
  EXPECT_THROW(read_edge_list_file(path("absent.txt")), std::runtime_error);
  EXPECT_THROW(read_binary_csr_file(path("absent.bin")), std::runtime_error);
}

TEST_F(FileIoTest, CorruptBinaryThrows) {
  const std::string p = path("corrupt.bin");
  {
    std::ofstream out(p, std::ios::binary);
    out << "NULPACSR";  // valid magic, then garbage
    out << "xxxxxxxxxxxxxxxx";
  }
  EXPECT_THROW(read_binary_csr_file(p), std::runtime_error);
}

TEST_F(FileIoTest, EdgeListFileWithWeights) {
  const std::string p = path("weighted.txt");
  {
    std::ofstream out(p);
    out << "# weighted edge list\n0 1 2.5\n1 2 0.5\n";
  }
  const Graph g = read_edge_list_file(p);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_FLOAT_EQ(g.weights_of(0)[0], 2.5f);
}

}  // namespace
}  // namespace nulpa
