// Frontier-compaction pipeline: counter accounting, the scheduler-cost
// regression ceiling, and the baselines sharing the launch path. The label
// byte-identity guarantees live in equivalence_test.cpp; these tests pin
// the *performance* contract — compaction must actually shrink what the
// simulator spawns, and must never regress past the recorded ceiling.
#include <gtest/gtest.h>

#include "baselines/gunrock_lpa_simt.hpp"
#include "core/nulpa.hpp"
#include "graph/generators.hpp"

namespace nulpa {
namespace {

/// The fixed geometric graph all regression numbers below were recorded
/// on: a 64x64 road grid with 2% shortcut edges, seed 7 (4096 vertices).
Graph regression_graph() { return generate_road(64, 64, 0.02, 7); }

TEST(FrontierRegression, FiberSwitchesStayUnderRecordedCeiling) {
  // Recorded on the session-scheduler + per-window-compaction
  // implementation: 33794 fiber switches over 7 iterations (the full-range
  // launch needs 57344). The ceiling leaves ~18% headroom for benign
  // scheduling changes; anything above it means lanes are being spawned or
  // revisited that compaction used to skip.
  const auto r = nu_lpa(regression_graph());
  EXPECT_LE(r.counters.fiber_switches, 40000u);
  EXPECT_EQ(r.iterations, 7);
}

TEST(FrontierRegression, CompactionSpawnsFewerFibersThanFullRange) {
  // Pinned on the fiber path: under the default fiberless executor the
  // road graph's all-TPV launches spawn (almost) no fibers in either mode,
  // so the fiber-switch comparison is only meaningful with fiberless off.
  const Graph g = regression_graph();
  const NuLpaConfig fibered = NuLpaConfig{}.with_exec(simt::ExecPolicy::lockstep());
  const auto compacted = nu_lpa(g, fibered);
  const auto full = nu_lpa(
      g, fibered.with_exec(
             fibered.exec.with_frontier_compaction(false)));
  EXPECT_LT(compacted.counters.fiber_switches,
            full.counters.fiber_switches);
  EXPECT_LT(compacted.counters.threads_run, full.counters.threads_run);
  EXPECT_EQ(compacted.labels, full.labels);
}

TEST(FrontierRegression, FiberlessRunSpawnsNoLaneFibers) {
  // The road regression graph is all-TPV at switch degree 32, and the
  // split TPV kernels are barrier-free: every lane must run fiberless and
  // none may promote. The only context switches left are the one-per-run
  // executor resumes — orders of magnitude under the fiber path's ceiling.
  const auto r = nu_lpa(regression_graph());
  EXPECT_GT(r.counters.fiberless_lanes, 0u);
  EXPECT_EQ(r.counters.promoted_lanes, 0u);
  EXPECT_EQ(r.counters.fiberless_lanes, r.counters.threads_run);
  EXPECT_LT(r.counters.fiber_switches, 1000u);
  EXPECT_EQ(r.iterations, 7);
}

TEST(FrontierCounters, CompactedRunAccountsEveryLaneSlot) {
  // Per iteration the compaction scan walks both degree partitions once,
  // so launched actives plus skipped slots must equal iterations * |V|.
  const Graph g = regression_graph();
  const auto r = nu_lpa(g);
  EXPECT_GT(r.counters.skipped_lanes, 0u);
  EXPECT_GT(r.counters.frontier_vertices, 0u);
  EXPECT_EQ(r.counters.frontier_vertices + r.counters.skipped_lanes,
            static_cast<std::uint64_t>(r.iterations) * g.num_vertices());
}

TEST(FrontierCounters, FullRangeRunReportsNoFrontier) {
  const auto r = nu_lpa(
      regression_graph(),
      NuLpaConfig{}.with_exec(
          simt::ExecPolicy{}.with_frontier_compaction(false)));
  EXPECT_EQ(r.counters.frontier_vertices, 0u);
  EXPECT_EQ(r.counters.skipped_lanes, 0u);
}

TEST(FrontierCounters, CompactionIsInertWithoutPruning) {
  // Without pruning every vertex stays active, so the compacted launch
  // degenerates to the full range — and the engine skips the scan
  // entirely rather than charging for a no-op compaction kernel.
  const Graph g = regression_graph();
  NuLpaConfig cfg;
  cfg.pruning = false;
  const auto on =
      nu_lpa(g, cfg.with_exec(cfg.exec.with_frontier_compaction(true)));
  const auto off =
      nu_lpa(g, cfg.with_exec(cfg.exec.with_frontier_compaction(false)));
  EXPECT_EQ(on.labels, off.labels);
  EXPECT_EQ(on.counters, off.counters);
}

TEST(GunrockFrontier, MatchesFullSweepAndKeepsLaunchSchedule) {
  // The Gunrock SIMT baseline shares the session launch path. Synchronous
  // LPA reads a snapshot, so its changed-neighborhood frontier is label
  // identical by construction — and its fixed schedule must still report
  // one launch per iteration either way.
  const Graph g = generate_web(2000, 6, 0.85, 9);
  GunrockLpaConfig cfg;
  const auto compacted = gunrock_lpa_simt(g, cfg);
  cfg.exec.frontier_compaction = false;
  const auto full = gunrock_lpa_simt(g, cfg);
  EXPECT_EQ(compacted.labels, full.labels);
  EXPECT_EQ(compacted.counters.kernel_launches,
            static_cast<std::uint64_t>(compacted.iterations));
  EXPECT_EQ(full.counters.kernel_launches,
            static_cast<std::uint64_t>(full.iterations));
  EXPECT_EQ(full.counters.frontier_vertices,
            static_cast<std::uint64_t>(full.iterations) * g.num_vertices());
}

}  // namespace
}  // namespace nulpa
