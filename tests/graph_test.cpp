// Tests for src/graph: CSR invariants, builder clean-up rules, IO
// round-trips, and generator structural properties (parameterized sweeps).
#include <gtest/gtest.h>

#include <sstream>

#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/dataset.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/partition.hpp"
#include "graph/stats.hpp"

namespace nulpa {
namespace {

Graph triangle() {
  GraphBuilder b(3);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
  return b.build();
}

TEST(Csr, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.is_well_formed());
}

TEST(Csr, TriangleBasics) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 6u);  // arcs
  for (Vertex v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_DOUBLE_EQ(g.total_weight(), 3.0);
  EXPECT_DOUBLE_EQ(g.weighted_degree(0), 2.0);
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_TRUE(g.is_well_formed());
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0);
}

TEST(Csr, NeighborsAreSorted) {
  GraphBuilder b(5);
  b.add_edge(0, 4).add_edge(0, 2).add_edge(0, 1).add_edge(0, 3);
  const Graph g = b.build();
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 4u);
  for (std::size_t i = 1; i < nbrs.size(); ++i) {
    EXPECT_LT(nbrs[i - 1], nbrs[i]);
  }
}

TEST(Csr, RejectsInconsistentArrays) {
  EXPECT_THROW(Graph({0, 2}, {1}, {1.0f}), std::invalid_argument);
  EXPECT_THROW(Graph({1, 2}, {1, 0}, {1.0f, 1.0f}), std::invalid_argument);
}

TEST(Builder, SymmetrizeAddsReverseArcs) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.neighbors(1).size(), 1u);
  EXPECT_EQ(g.neighbors(1)[0], 0u);
}

TEST(Builder, DropsSelfLoopsByDefault) {
  GraphBuilder b(2);
  b.add_edge(0, 0).add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Builder, KeepsSelfLoopsWhenAsked) {
  GraphBuilder b(2);
  b.add_edge(0, 0, 3.0f).add_edge(0, 1);
  GraphBuilder::Options opts;
  opts.drop_self_loops = false;
  const Graph g = b.build(opts);
  EXPECT_EQ(g.degree(0), 2u);  // self-loop stored once plus the edge
  EXPECT_FLOAT_EQ(g.weights_of(0)[0], 3.0f);
}

TEST(Builder, CombinesDuplicateEdgeWeights) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 1.0f).add_edge(0, 1, 2.0f).add_edge(1, 0, 4.0f);
  const Graph g = b.build();
  ASSERT_EQ(g.degree(0), 1u);
  EXPECT_FLOAT_EQ(g.weights_of(0)[0], 7.0f);
  EXPECT_TRUE(g.is_symmetric());
}

TEST(Builder, InfersVertexCount) {
  GraphBuilder b;
  b.add_edge(3, 9);
  EXPECT_EQ(b.build().num_vertices(), 10u);
}

TEST(Builder, RejectsOutOfRangeEndpoint) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  // Adding through add_edge grows n_, so force the error via explicit n.
  GraphBuilder small(1);
  EXPECT_NO_THROW(small.add_edge(0, 5));  // grows
  EXPECT_EQ(small.build().num_vertices(), 6u);
}

TEST(Io, MatrixMarketRoundTrip) {
  const Graph g = generate_ring_of_cliques(4, 5);
  std::stringstream ss;
  write_matrix_market(ss, g);
  const Graph h = read_matrix_market(ss);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(h.degree(v), g.degree(v)) << v;
    const auto a = g.neighbors(v);
    const auto b = h.neighbors(v);
    for (std::size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k], b[k]);
  }
}

TEST(Io, MatrixMarketPatternSymmetric) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "% comment line\n"
      "3 3 2\n"
      "2 1\n"
      "3 2\n");
  const Graph g = read_matrix_market(ss);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.is_symmetric());
}

TEST(Io, MatrixMarketRejectsGarbage) {
  std::stringstream no_banner("1 1 0\n");
  EXPECT_THROW(read_matrix_market(no_banner), std::runtime_error);
  std::stringstream bad_format(
      "%%MatrixMarket matrix array real general\n2 2\n");
  EXPECT_THROW(read_matrix_market(bad_format), std::runtime_error);
  std::stringstream truncated(
      "%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 2\n");
  EXPECT_THROW(read_matrix_market(truncated), std::runtime_error);
  std::stringstream out_of_range(
      "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 5\n");
  EXPECT_THROW(read_matrix_market(out_of_range), std::runtime_error);
}

TEST(Io, EdgeListRoundTrip) {
  const Graph g = generate_erdos_renyi(100, 6.0, 7);
  std::stringstream ss;
  write_edge_list(ss, g);
  const Graph h = read_edge_list(ss);
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_TRUE(h.is_symmetric());
}

TEST(Io, EdgeListSkipsComments) {
  std::stringstream ss("# a comment\n0 1\n% another\n1 2 2.5\n");
  const Graph g = read_edge_list(ss);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_FLOAT_EQ(g.weights_of(1)[1], 2.5f);
}

TEST(Generators, CliqueIsComplete) {
  const Graph g = generate_clique(6);
  EXPECT_EQ(g.num_edges(), 30u);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5u);
}

TEST(Generators, PathIsAPath) {
  const Graph g = generate_path(5);
  EXPECT_EQ(g.num_edges(), 8u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
}

TEST(Generators, RingOfCliquesStructure) {
  const Graph g = generate_ring_of_cliques(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  // Each clique contributes 6 undirected edges; 3 bridges.
  EXPECT_EQ(g.num_edges(), 2u * (3 * 6 + 3));
  EXPECT_TRUE(g.is_symmetric());
}

TEST(Generators, RmatRequiresPowerOfTwo) {
  EXPECT_THROW(generate_rmat(100, 10, 1), std::invalid_argument);
}

TEST(Generators, PlantedPartitionGroundTruthShape) {
  const auto pp = generate_planted_partition(100, 5, 8.0, 1.0, 3);
  EXPECT_EQ(pp.ground_truth.size(), 100u);
  for (const Vertex c : pp.ground_truth) EXPECT_LT(c, 5u);
  EXPECT_TRUE(pp.graph.is_symmetric());
}

TEST(Generators, DeterministicForSameSeed) {
  const Graph a = generate_erdos_renyi(500, 8.0, 42);
  const Graph b = generate_erdos_renyi(500, 8.0, 42);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  const Graph c = generate_erdos_renyi(500, 8.0, 43);
  EXPECT_NE(a.num_edges(), c.num_edges());
}

struct GenCase {
  std::string name;
  Graph (*make)(std::uint64_t seed);
  double min_avg_degree;
  double max_avg_degree;
};

class GeneratorProperty : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorProperty, ProducesWellFormedSymmetricGraph) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Graph g = GetParam().make(seed);
    ASSERT_GT(g.num_vertices(), 0u);
    EXPECT_TRUE(g.is_well_formed());
    EXPECT_TRUE(g.is_symmetric());
    EXPECT_GE(g.average_degree(), GetParam().min_avg_degree);
    EXPECT_LE(g.average_degree(), GetParam().max_avg_degree);
    // No self loops.
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      for (const Vertex u : g.neighbors(v)) ASSERT_NE(u, v);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeneratorProperty,
    ::testing::Values(
        GenCase{"erdos_renyi",
                [](std::uint64_t s) { return generate_erdos_renyi(2000, 8.0, s); },
                6.0, 10.0},
        GenCase{"rmat",
                [](std::uint64_t s) {
                  return generate_rmat(2048, 8192, s);
                },
                4.0, 9.0},
        GenCase{"web",
                [](std::uint64_t s) { return generate_web(2000, 6, 0.7, s); },
                6.0, 13.0},
        GenCase{"road",
                [](std::uint64_t s) { return generate_road(50, 50, 0.0, s); },
                1.6, 2.6},
        GenCase{"kmer",
                [](std::uint64_t s) { return generate_kmer(3000, 0.03, s); },
                1.5, 2.6},
        GenCase{"barabasi",
                [](std::uint64_t s) {
                  return generate_barabasi_albert(2000, 4, s);
                },
                5.0, 9.0}),
    [](const auto& info) { return info.param.name; });

TEST(Dataset, SuiteHasThirteenGraphsMirroringTable1) {
  const auto suite = make_dataset_suite(500, 1);
  ASSERT_EQ(suite.size(), 13u);
  int web = 0, social = 0, road = 0, kmer = 0;
  for (const auto& d : suite) {
    EXPECT_TRUE(d.graph.is_well_formed()) << d.spec.name;
    EXPECT_GT(d.graph.num_vertices(), 0u) << d.spec.name;
    switch (d.spec.category) {
      case DatasetCategory::kWeb: ++web; break;
      case DatasetCategory::kSocial: ++social; break;
      case DatasetCategory::kRoad: ++road; break;
      case DatasetCategory::kKmer: ++kmer; break;
    }
  }
  EXPECT_EQ(web, 7);
  EXPECT_EQ(social, 2);
  EXPECT_EQ(road, 2);
  EXPECT_EQ(kmer, 2);
}

TEST(Dataset, RoadAndKmerMatchTable1AverageDegrees) {
  const auto suite = make_dataset_suite(2000, 1);
  for (const auto& d : suite) {
    if (d.spec.category == DatasetCategory::kRoad ||
        d.spec.category == DatasetCategory::kKmer) {
      EXPECT_NEAR(d.graph.average_degree(), 2.1, 0.5) << d.spec.name;
    }
  }
}

TEST(Partition, SplitsByDegreeAndPreservesOrder) {
  const Graph g = generate_web(1000, 6, 0.7, 5);
  const auto part = partition_by_degree(g, 32);
  EXPECT_EQ(part.low.size() + part.high.size(), g.num_vertices());
  for (const Vertex v : part.low) EXPECT_LT(g.degree(v), 32u);
  for (const Vertex v : part.high) EXPECT_GE(g.degree(v), 32u);
  for (std::size_t i = 1; i < part.low.size(); ++i) {
    EXPECT_LT(part.low[i - 1], part.low[i]);
  }
  for (std::size_t i = 1; i < part.high.size(); ++i) {
    EXPECT_LT(part.high[i - 1], part.high[i]);
  }
}

TEST(Partition, ExtremeSwitchDegrees) {
  const Graph g = triangle();
  EXPECT_EQ(partition_by_degree(g, 0).low.size(), 0u);
  EXPECT_EQ(partition_by_degree(g, 1000).high.size(), 0u);
}

TEST(Stats, ComputesBasics) {
  const GraphStats s = compute_stats(triangle());
  EXPECT_EQ(s.vertices, 3u);
  EXPECT_EQ(s.edges, 6u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 2.0);
  EXPECT_EQ(s.max_degree, 2u);
  EXPECT_DOUBLE_EQ(s.total_weight, 3.0);
}

TEST(Stats, DegreeHistogramTailBucket) {
  const Graph g = generate_clique(10);  // all degree 9
  const auto hist = degree_histogram(g, 5);
  EXPECT_EQ(hist[4], 10u);  // everything lands in the tail bucket
}

}  // namespace
}  // namespace nulpa
