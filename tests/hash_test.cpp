// Tests for the per-vertex hashtables: every probing policy must agree with
// a reference std::unordered_map accumulator on randomized workloads, the
// probe-step recurrences must match Algorithm 2, and the coalesced variant
// must behave identically from the outside.
#include <gtest/gtest.h>

#include <map>
#include <unordered_map>
#include <vector>

#include "hash/coalesced.hpp"
#include "hash/probing.hpp"
#include "hash/vertex_table.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace nulpa {
namespace {

struct TableFixture {
  std::vector<Vertex> keys;
  std::vector<double> values;
  HashStats stats;

  explicit TableFixture(std::uint32_t capacity)
      : keys(capacity, kEmptyKey), values(capacity, 0.0) {}

  VertexTableView<double> view() {
    return VertexTableView<double>(keys.data(), values.data(),
                                   static_cast<std::uint32_t>(keys.size()),
                                   &stats);
  }
};

TEST(ProbeStep, LinearIsAlwaysOne) {
  EXPECT_EQ(initial_step(Probing::kLinear, 42, 15, 31), 1u);
  EXPECT_EQ(next_step(Probing::kLinear, 1, 42, 31), 1u);
  EXPECT_EQ(next_step(Probing::kLinear, 99, 42, 31), 1u);
}

TEST(ProbeStep, QuadraticDoubles) {
  std::uint64_t di = initial_step(Probing::kQuadratic, 5, 15, 31);
  EXPECT_EQ(di, 1u);
  di = next_step(Probing::kQuadratic, di, 5, 31);
  EXPECT_EQ(di, 2u);
  di = next_step(Probing::kQuadratic, di, 5, 31);
  EXPECT_EQ(di, 4u);
}

TEST(ProbeStep, DoubleHashIsFixedPerKey) {
  const std::uint32_t p2 = 31;
  const std::uint64_t d0 = initial_step(Probing::kDouble, 40, 15, p2);
  EXPECT_EQ(d0, 1u + 40 % 31);
  EXPECT_EQ(next_step(Probing::kDouble, d0, 40, p2), d0);
}

TEST(ProbeStep, QuadDoubleMatchesAlgorithm2Recurrence) {
  // Algorithm 2 line 20: di <- 2*di + (k mod p2), starting from di = 1.
  const std::uint32_t k = 77, p2 = 31;
  std::uint64_t di = initial_step(Probing::kQuadDouble, k, 15, p2);
  EXPECT_EQ(di, 1u);
  std::uint64_t expected = 1;
  for (int i = 0; i < 5; ++i) {
    expected = 2 * expected + (k % p2);
    di = next_step(Probing::kQuadDouble, di, k, p2);
    EXPECT_EQ(di, expected);
  }
}

TEST(VertexTable, ClearEmptiesEverySlot) {
  TableFixture f(7);
  auto t = f.view();
  t.accumulate(3, 1.0, Probing::kQuadDouble);
  t.clear();
  EXPECT_EQ(t.occupied(), 0u);
  EXPECT_EQ(t.max_key(), kEmptyKey);
}

TEST(VertexTable, AccumulateSumsRepeatedKeys) {
  TableFixture f(7);
  auto t = f.view();
  t.clear();
  t.accumulate(5, 1.5, Probing::kQuadDouble);
  t.accumulate(5, 2.5, Probing::kQuadDouble);
  EXPECT_DOUBLE_EQ(t.weight_of(5), 4.0);
  EXPECT_EQ(t.occupied(), 1u);
}

TEST(VertexTable, MaxKeyPicksHeaviest) {
  TableFixture f(7);
  auto t = f.view();
  t.clear();
  t.accumulate(1, 1.0, Probing::kQuadDouble);
  t.accumulate(2, 3.0, Probing::kQuadDouble);
  t.accumulate(3, 2.0, Probing::kQuadDouble);
  EXPECT_EQ(t.max_key(), 2u);
}

TEST(VertexTable, EmptyTableMaxKeyIsSentinel) {
  TableFixture f(3);
  auto t = f.view();
  t.clear();
  EXPECT_EQ(t.max_key(), kEmptyKey);
}

TEST(VertexTable, SurvivesFullLoad) {
  // Capacity-many distinct keys: 100% load. The fallback path must keep
  // this correct for every policy.
  for (const Probing p : {Probing::kLinear, Probing::kQuadratic,
                          Probing::kDouble, Probing::kQuadDouble}) {
    TableFixture f(15);
    auto t = f.view();
    t.clear();
    for (Vertex k = 0; k < 15; ++k) {
      t.accumulate(k * 15, 1.0, p);  // all keys collide at slot 0
    }
    EXPECT_EQ(t.occupied(), 15u) << to_string(p);
    for (Vertex k = 0; k < 15; ++k) {
      EXPECT_DOUBLE_EQ(t.weight_of(k * 15), 1.0) << to_string(p);
    }
  }
}

class ProbingProperty : public ::testing::TestWithParam<Probing> {};

TEST_P(ProbingProperty, AgreesWithReferenceAccumulator) {
  Xoshiro256 rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const auto degree = static_cast<std::uint32_t>(1 + rng.next_bounded(200));
    const std::uint32_t cap = hashtable_capacity(degree);
    TableFixture f(cap);
    auto t = f.view();
    t.clear();
    std::unordered_map<Vertex, double> ref;
    for (std::uint32_t e = 0; e < degree; ++e) {
      // Keys drawn from a narrow range force many duplicates + collisions.
      const auto k = static_cast<Vertex>(rng.next_bounded(degree));
      const double w = 1.0 + rng.next_double();
      t.accumulate(k, w, GetParam());
      ref[k] += w;
    }
    ASSERT_EQ(t.occupied(), ref.size());
    for (const auto& [k, w] : ref) {
      ASSERT_NEAR(t.weight_of(k), w, 1e-9);
    }
    // max_key must return a key of maximal weight.
    double best = -1.0;
    for (const auto& [k, w] : ref) best = std::max(best, w);
    ASSERT_NEAR(ref[t.max_key()], best, 1e-9);
  }
}

TEST_P(ProbingProperty, NeverLosesInsertsUnderAdversarialKeys) {
  // All keys equal mod p1: worst-case clustering for every policy.
  const std::uint32_t cap = hashtable_capacity(64);
  TableFixture f(cap);
  auto t = f.view();
  t.clear();
  for (Vertex i = 0; i < 64; ++i) {
    t.accumulate(i * cap + 1, 2.0, GetParam());
  }
  EXPECT_EQ(t.occupied(), 64u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ProbingProperty,
                         ::testing::Values(Probing::kLinear,
                                           Probing::kQuadratic,
                                           Probing::kDouble,
                                           Probing::kQuadDouble),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(ProbingStats, QuadDoubleProbesNoMoreThanLinearOnClustered) {
  // The paper's Figure 4 rationale: hybrid probing disperses clusters.
  auto probes_for = [](Probing p) {
    TableFixture f(hashtable_capacity(128));
    auto t = f.view();
    t.clear();
    for (Vertex i = 0; i < 128; ++i) {
      t.accumulate(i * t.capacity(), 1.0, p);  // maximal clustering
    }
    return f.stats.probes;
  };
  EXPECT_LE(probes_for(Probing::kQuadDouble), probes_for(Probing::kLinear));
}

TEST(Coalesced, AccumulateAndMaxMatchOpenAddressing) {
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const auto degree = static_cast<std::uint32_t>(1 + rng.next_bounded(100));
    const std::uint32_t cap = hashtable_capacity(degree);
    std::vector<Vertex> keys(cap, kEmptyKey);
    std::vector<double> values(cap, 0.0);
    std::vector<std::uint32_t> nexts(cap, CoalescedTableView<double>::kNil);
    CoalescedTableView<double> t(keys.data(), values.data(), nexts.data(),
                                 cap);
    t.clear();
    std::unordered_map<Vertex, double> ref;
    for (std::uint32_t e = 0; e < degree; ++e) {
      const auto k = static_cast<Vertex>(rng.next_bounded(degree));
      t.accumulate(k, 1.0);
      ref[k] += 1.0;
    }
    for (const auto& [k, w] : ref) {
      ASSERT_NEAR(t.weight_of(k), w, 1e-9);
    }
    double best = -1.0;
    for (const auto& [k, w] : ref) best = std::max(best, w);
    ASSERT_NEAR(ref[t.max_key()], best, 1e-9);
  }
}

TEST(Coalesced, HandlesFullLoad) {
  const std::uint32_t cap = 15;
  std::vector<Vertex> keys(cap, kEmptyKey);
  std::vector<double> values(cap, 0.0);
  std::vector<std::uint32_t> nexts(cap, CoalescedTableView<double>::kNil);
  CoalescedTableView<double> t(keys.data(), values.data(), nexts.data(), cap);
  t.clear();
  for (Vertex k = 0; k < cap; ++k) t.accumulate(k * cap, 1.0);
  for (Vertex k = 0; k < cap; ++k) {
    EXPECT_DOUBLE_EQ(t.weight_of(k * cap), 1.0);
  }
}

TEST(Coalesced, CursorClaimsSlotsFromTheTopDown) {
  const std::uint32_t cap = 7;
  std::vector<Vertex> keys(cap, kEmptyKey);
  std::vector<double> values(cap, 0.0);
  std::vector<std::uint32_t> nexts(cap, CoalescedTableView<double>::kNil);
  CoalescedTableView<double> t(keys.data(), values.data(), nexts.data(), cap);
  t.clear();
  // All keys hash to home slot 0; collisions must claim the highest free
  // slot and walk downward (the cellar-less coalesced policy).
  EXPECT_EQ(t.accumulate(0, 1.0), 0u);
  EXPECT_EQ(t.accumulate(7, 1.0), cap - 1);
  EXPECT_EQ(t.accumulate(14, 1.0), cap - 2);
  // The chain through home 0 links the claimed slots in claim order.
  EXPECT_EQ(nexts[0], cap - 1);
  EXPECT_EQ(nexts[cap - 1], cap - 2);
  EXPECT_EQ(nexts[cap - 2], CoalescedTableView<double>::kNil);
  // Re-accumulating an existing chained key lands on its existing slot.
  EXPECT_EQ(t.accumulate(14, 2.0), cap - 2);
  EXPECT_DOUBLE_EQ(t.weight_of(14), 3.0);
}

TEST(Coalesced, CursorExhaustionReturnsCapacitySentinel) {
  const std::uint32_t cap = 3;
  std::vector<Vertex> keys(cap, kEmptyKey);
  std::vector<double> values(cap, 0.0);
  std::vector<std::uint32_t> nexts(cap, CoalescedTableView<double>::kNil);
  CoalescedTableView<double> t(keys.data(), values.data(), nexts.data(), cap);
  t.clear();
  EXPECT_LT(t.accumulate(0, 1.0), cap);
  EXPECT_LT(t.accumulate(3, 1.0), cap);
  EXPECT_LT(t.accumulate(6, 1.0), cap);
  // A fourth distinct key exceeds the capacity invariant: the cursor scan
  // finds no free slot (it cannot wrap past 0) and reports `capacity`.
  EXPECT_EQ(t.accumulate(9, 1.0), cap);
  // Existing keys are still reachable and unharmed.
  EXPECT_DOUBLE_EQ(t.weight_of(0), 1.0);
  EXPECT_DOUBLE_EQ(t.weight_of(6), 1.0);
}

TEST(Coalesced, ClearResetsSlotsChainsAndCursor) {
  const std::uint32_t cap = 5;
  std::vector<Vertex> keys(cap, kEmptyKey);
  std::vector<double> values(cap, 0.0);
  std::vector<std::uint32_t> nexts(cap, CoalescedTableView<double>::kNil);
  CoalescedTableView<double> t(keys.data(), values.data(), nexts.data(), cap);
  t.clear();
  for (Vertex k = 0; k < 4; ++k) t.accumulate(k * cap, 1.0);
  t.clear();
  EXPECT_EQ(t.max_key(), kEmptyKey);
  for (std::uint32_t s = 0; s < cap; ++s) {
    EXPECT_EQ(keys[s], kEmptyKey);
    EXPECT_DOUBLE_EQ(values[s], 0.0);
    EXPECT_EQ(nexts[s], CoalescedTableView<double>::kNil);
  }
  // The claim cursor restarted from the top: the first collision after the
  // clear takes the highest slot again, not where the old cursor stopped.
  EXPECT_EQ(t.accumulate(0, 1.0), 0u);
  EXPECT_EQ(t.accumulate(5, 1.0), cap - 1);
}

TEST(Coalesced, StatsCountInsertsAndProbes) {
  const std::uint32_t cap = 5;
  std::vector<Vertex> keys(cap, kEmptyKey);
  std::vector<double> values(cap, 0.0);
  std::vector<std::uint32_t> nexts(cap, CoalescedTableView<double>::kNil);
  HashStats stats;
  CoalescedTableView<double> t(keys.data(), values.data(), nexts.data(), cap,
                               &stats);
  t.clear();
  t.accumulate(0, 1.0);   // home hit: 0 probes
  t.accumulate(5, 1.0);   // chain walk 0 steps + 1 cursor step
  t.accumulate(10, 1.0);  // chain walk 1 step + 1 cursor step
  t.accumulate(5, 1.0);   // chain walk 1 step to the existing slot
  EXPECT_EQ(stats.inserts, 4u);
  EXPECT_EQ(stats.probes, 4u);
  EXPECT_EQ(stats.fallbacks, 0u);  // chaining has no rescue scan
}

TEST(FloatValues, AccumulationMatchesDoubleWithinTolerance) {
  // Section 4.4's claim: 32-bit accumulation does not change outcomes for
  // unit-ish weights at graph scales.
  std::vector<Vertex> fk(31, kEmptyKey), dk(31, kEmptyKey);
  std::vector<float> fv(31, 0.0f);
  std::vector<double> dv(31, 0.0);
  VertexTableView<float> ft(fk.data(), fv.data(), 31);
  VertexTableView<double> dt(dk.data(), dv.data(), 31);
  ft.clear();
  dt.clear();
  Xoshiro256 rng(11);
  for (int i = 0; i < 500; ++i) {
    const auto k = static_cast<Vertex>(rng.next_bounded(20));
    ft.accumulate(k, 1.0f, Probing::kQuadDouble);
    dt.accumulate(k, 1.0, Probing::kQuadDouble);
  }
  EXPECT_EQ(ft.max_key(), dt.max_key());
}

}  // namespace
}  // namespace nulpa
