// Cross-module integration tests: full pipelines a downstream user would
// run — generate -> serialize -> reload -> detect -> score -> coarsen, the
// shared-memory-table configuration, and cross-algorithm sanity sweeps over
// the whole dataset suite.
#include <gtest/gtest.h>

#include <sstream>

#include "baselines/flpa.hpp"
#include "baselines/louvain.hpp"
#include "core/nulpa.hpp"
#include "graph/binary_io.hpp"
#include "graph/dataset.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/transforms.hpp"
#include "perfmodel/machine.hpp"
#include "quality/communities.hpp"
#include "quality/metrics.hpp"
#include "quality/modularity.hpp"
#include "quality/nmi.hpp"

namespace nulpa {
namespace {

TEST(Pipeline, GenerateSerializeDetectScore) {
  const Graph original = generate_web(1200, 6, 0.85, 77);

  // Round-trip through both serialization formats.
  std::stringstream mtx;
  write_matrix_market(mtx, original);
  const Graph via_mtx = read_matrix_market(mtx);
  std::stringstream bin(std::ios::in | std::ios::out | std::ios::binary);
  write_binary_csr(bin, via_mtx);
  const Graph g = read_binary_csr(bin);
  ASSERT_EQ(g.num_edges(), original.num_edges());

  // Detect communities and score them every way the library offers.
  const auto r = nu_lpa(g);
  ASSERT_TRUE(is_valid_membership(g, r.labels));
  const double q = modularity(g, r.labels);
  EXPECT_GT(q, 0.5);
  EXPECT_GT(coverage(g, r.labels), q);  // coverage has no degree tax
  // A lone mislabeled degree-1 vertex can have conductance exactly 1, so
  // only the upper bound is guaranteed.
  EXPECT_LE(max_conductance(g, r.labels), 1.0);

  // Coarsen by the communities; the coarse graph keeps total weight.
  const Graph coarse = coarsen_by_membership(g, r.labels);
  EXPECT_EQ(coarse.num_vertices(), count_communities(r.labels));
  EXPECT_NEAR(coarse.total_weight(), g.total_weight(), 1e-3);
}

TEST(Pipeline, DegreeReorderingPreservesCommunities) {
  const Graph g = generate_web(900, 6, 0.85, 31);
  const auto perm = degree_order_permutation(g);
  const Graph reordered = permute_vertices(g, perm);

  const auto r1 = nu_lpa(g);
  const auto r2 = nu_lpa(reordered);
  // Communities live on different vertex ids; map r2 back through the
  // permutation and compare partitions by NMI (tie-breaks may differ).
  std::vector<Vertex> mapped(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    mapped[v] = r2.labels[perm[v]];
  }
  EXPECT_GT(normalized_mutual_information(r1.labels, mapped), 0.8);
}

TEST(SharedTables, SameQualityLessGlobalTraffic) {
  const Graph g = generate_web(1500, 6, 0.85, 41);
  NuLpaConfig global_cfg;
  NuLpaConfig shared_cfg;
  shared_cfg.shared_memory_tables = true;

  const auto rg = nu_lpa(g, global_cfg);
  const auto rs = nu_lpa(g, shared_cfg);

  // Identical run, different table placement: labels must match exactly.
  EXPECT_EQ(rg.labels, rs.labels);
  EXPECT_GT(rs.counters.shared_loads + rs.counters.shared_stores, 0u);
  EXPECT_LT(rs.counters.global_stores, rg.counters.global_stores);
  // The paper measured "little to no gain": modeled time should improve
  // only modestly.
  const double tg = modeled_gpu_seconds(a100(), rg.counters);
  const double ts = modeled_gpu_seconds(a100(), rs.counters);
  EXPECT_LT(ts, tg);
  EXPECT_GT(ts, 0.4 * tg);
}

TEST(SharedTables, FallsBackForHugeSwitchDegrees) {
  const Graph g = generate_web(400, 6, 0.85, 2);
  NuLpaConfig cfg;
  cfg.shared_memory_tables = true;
  cfg.switch_degree = 100000;  // cannot fit in shared memory
  const auto r = nu_lpa(g, cfg);  // must not crash or mis-detect
  EXPECT_TRUE(is_valid_membership(g, r.labels));
  EXPECT_EQ(r.counters.shared_loads, 0u) << "should have fallen back";
}

TEST(Suite, EveryAlgorithmHandlesEveryCategory) {
  for (const auto& inst : make_dataset_suite(600, 9)) {
    const auto r_nu = nu_lpa(inst.graph);
    ASSERT_TRUE(is_valid_membership(inst.graph, r_nu.labels))
        << inst.spec.name;
    const auto r_flpa = flpa(inst.graph, FlpaConfig{});
    ASSERT_TRUE(is_valid_membership(inst.graph, r_flpa.labels))
        << inst.spec.name;
    const auto r_lv = louvain(inst.graph, LouvainConfig{});
    ASSERT_TRUE(is_valid_membership(inst.graph, r_lv.labels))
        << inst.spec.name;
    // Louvain should be at least roughly as good as LPA everywhere.
    EXPECT_GE(modularity(inst.graph, r_lv.labels),
              modularity(inst.graph, r_nu.labels) - 0.05)
        << inst.spec.name;
  }
}

TEST(Suite, RoadAndKmerFavourNuLpaOverFlpa) {
  // The paper attributes ν-LPA's +4.7% modularity over FLPA mainly to road
  // networks and protein k-mer graphs; verify the category-level direction.
  double nu_sum = 0.0, flpa_sum = 0.0;
  int count = 0;
  for (const auto& inst : make_dataset_suite(1500, 4)) {
    if (inst.spec.category != DatasetCategory::kRoad &&
        inst.spec.category != DatasetCategory::kKmer) {
      continue;
    }
    nu_sum += modularity(inst.graph, nu_lpa(inst.graph).labels);
    flpa_sum += modularity(inst.graph, flpa(inst.graph, FlpaConfig{}).labels);
    ++count;
  }
  ASSERT_EQ(count, 4);
  EXPECT_GT(nu_sum, flpa_sum);
}

TEST(Determinism, WholeSuiteIsReproducible) {
  const auto a = make_dataset_suite(400, 5);
  const auto b = make_dataset_suite(400, 5);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].graph.num_edges(), b[i].graph.num_edges());
    const auto ra = nu_lpa(a[i].graph);
    const auto rb = nu_lpa(b[i].graph);
    ASSERT_EQ(ra.labels, rb.labels) << a[i].spec.name;
  }
}

}  // namespace
}  // namespace nulpa
