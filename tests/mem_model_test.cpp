// Tests for the transaction-level memory model (simt/mem.hpp): the
// per-warp coalescer, the set-associative data cache, the Lane tracked
// access API, and the engine-level properties the model underwrites —
// backend/thread-count invariance of the new counters, and the measured
// transaction win of the coalescing-aware layout with byte-identical
// labels.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/nulpa.hpp"
#include "graph/builder.hpp"
#include "simt/grid.hpp"
#include "simt/mem.hpp"
#include "util/rng.hpp"

namespace nulpa {
namespace {

using simt::DataCache;
using simt::ExecPolicy;
using simt::Lane;
using simt::LaunchConfig;
using simt::LaunchSession;
using simt::MemGeometry;
using simt::PerfCounters;

// ------------------------------------------------------------- DataCache

TEST(DataCache, MissesThenHitsWithinAssociativity) {
  DataCache c;
  MemGeometry geo;
  geo.cache_sets = 2;
  geo.cache_ways = 2;
  c.configure(geo);
  // Lines 0 and 2 map to set 0; both fit in the two ways.
  EXPECT_FALSE(c.access(0));
  EXPECT_FALSE(c.access(2));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(2));
}

TEST(DataCache, EvictsLeastRecentlyUsedWay) {
  DataCache c;
  MemGeometry geo;
  geo.cache_sets = 1;
  geo.cache_ways = 2;
  c.configure(geo);
  EXPECT_FALSE(c.access(10));
  EXPECT_FALSE(c.access(20));
  EXPECT_TRUE(c.access(10));   // 10 now most recent; 20 is LRU
  EXPECT_FALSE(c.access(30));  // evicts 20
  EXPECT_TRUE(c.access(10));
  EXPECT_FALSE(c.access(20));  // gone
}

TEST(DataCache, ResetInvalidatesEverything) {
  DataCache c;
  c.configure(MemGeometry{});
  EXPECT_FALSE(c.access(7));
  EXPECT_TRUE(c.access(7));
  c.reset();
  EXPECT_FALSE(c.access(7));
}

// ------------------------------------------------- device_vector alignment

TEST(DeviceVector, DataIsSetStrideAligned) {
  const MemGeometry geo;
  simt::device_vector<std::uint32_t> v(5);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % geo.alloc_align(),
            0u);
  simt::device_vector<std::uint8_t> b(4097);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % geo.alloc_align(),
            0u);
}

// ------------------------------------------------------ coalescer kernels

/// One block of one warp; every lane performs the accesses `body` issues
/// for it, and the returned counters hold the measured transactions.
template <typename F>
PerfCounters run_warp(F&& body, bool track = true) {
  LaunchConfig cfg;
  cfg.block_dim = 32;
  cfg.resident_blocks = 1;
  PerfCounters ctr;
  LaunchSession session(cfg, ctr, ExecPolicy{}.with_track_memory(track));
  session.run(1, [&](Lane& lane) { body(lane); });
  return ctr;
}

TEST(Coalescer, AdjacentWordLoadsFormOneWideTransaction) {
  simt::device_vector<std::uint32_t> buf(32, 1);
  const PerfCounters ctr = run_warp([&](Lane& lane) {
    (void)lane.dev_load(buf[lane.thread_idx()]);
  });
  EXPECT_EQ(ctr.global_loads, 32u);
  EXPECT_EQ(ctr.tracked_accesses, 32u);
  // 32 adjacent words = one full 128B line: one transaction, 31 merges.
  EXPECT_EQ(ctr.global_transactions, 1u);
  EXPECT_EQ(ctr.coalesced_accesses, 31u);
  EXPECT_EQ(ctr.txn_128b, 1u);
  EXPECT_EQ(ctr.txn_32b, 0u);
  EXPECT_EQ(ctr.cache_misses, 1u);
  EXPECT_EQ(ctr.cache_hits, 0u);
}

TEST(Coalescer, LineStridedLoadsScatterIntoNarrowTransactions) {
  simt::device_vector<std::uint32_t> buf(32 * 32, 1);
  const PerfCounters ctr = run_warp([&](Lane& lane) {
    (void)lane.dev_load(buf[static_cast<std::size_t>(lane.thread_idx()) * 32]);
  });
  // One word per line: 32 transactions of one 32B sector each.
  EXPECT_EQ(ctr.global_transactions, 32u);
  EXPECT_EQ(ctr.coalesced_accesses, 0u);
  EXPECT_EQ(ctr.txn_32b, 32u);
  EXPECT_EQ(ctr.cache_misses, 32u);
}

TEST(Coalescer, HalfLineLoadsFormSixtyFourByteTransactions) {
  simt::device_vector<std::uint32_t> buf(64, 1);
  const PerfCounters ctr = run_warp([&](Lane& lane) {
    // Lanes 0..15 touch words 0..15 (first half-line of line 0), lanes
    // 16..31 touch words 32..47 (first half of line 1).
    const std::uint32_t t = lane.thread_idx();
    const std::size_t idx = t < 16 ? t : 16 + t;
    (void)lane.dev_load(buf[idx]);
  });
  EXPECT_EQ(ctr.global_transactions, 2u);
  EXPECT_EQ(ctr.txn_64b, 2u);
  EXPECT_EQ(ctr.coalesced_accesses, 30u);
}

TEST(Coalescer, RepeatedWindowHitsTheDataCache) {
  simt::device_vector<std::uint32_t> buf(32, 1);
  const PerfCounters ctr = run_warp([&](Lane& lane) {
    (void)lane.dev_load(buf[lane.thread_idx()]);
    (void)lane.dev_load(buf[lane.thread_idx()]);
  });
  // Two issue windows over the same line: miss then hit.
  EXPECT_EQ(ctr.global_transactions, 2u);
  EXPECT_EQ(ctr.cache_misses, 1u);
  EXPECT_EQ(ctr.cache_hits, 1u);
}

TEST(Coalescer, StoresAndSpansAreTrackedLikeLoads) {
  simt::device_vector<std::uint32_t> buf(64, 0);
  const PerfCounters ctr = run_warp([&](Lane& lane) {
    lane.dev_store(buf[lane.thread_idx()], lane.thread_idx());
    if (lane.thread_idx() == 0) {
      lane.track_load_span(buf.data() + 32, 32);
    }
  });
  EXPECT_EQ(ctr.global_stores, 32u);
  EXPECT_EQ(ctr.global_loads, 32u);
  EXPECT_EQ(ctr.tracked_accesses, 64u);
  // The warp-wide store is one line; lane 0's 32-word span covers one line
  // but arrives as 32 single-lane windows, merging nothing across lanes —
  // the cache turns all but the first into hits instead.
  EXPECT_EQ(ctr.cache_misses, 2u);
  EXPECT_GE(ctr.cache_hits, 31u);
}

TEST(Coalescer, TrackMemoryOffZeroesTheModelCounters) {
  simt::device_vector<std::uint32_t> buf(32, 1);
  const PerfCounters ctr = run_warp(
      [&](Lane& lane) { (void)lane.dev_load(buf[lane.thread_idx()]); },
      /*track=*/false);
  EXPECT_EQ(ctr.global_loads, 32u);  // word accounting survives
  EXPECT_EQ(ctr.tracked_accesses, 0u);
  EXPECT_EQ(ctr.global_transactions, 0u);
  EXPECT_EQ(ctr.coalesced_accesses, 0u);
  EXPECT_EQ(ctr.cache_hits + ctr.cache_misses, 0u);
}

// ------------------------------------------------- engine-level properties

Graph random_graph(Vertex n, int edges, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  GraphBuilder b(n);
  for (int e = 0; e < edges; ++e) {
    const auto u = static_cast<Vertex>(rng.next_bounded(n));
    const auto v = static_cast<Vertex>(rng.next_bounded(n));
    if (u != v) b.add_edge(u, v, 1.0f + 0.001f * static_cast<float>(e));
  }
  return b.build();
}

TEST(MemModelEngine, TransactionCountersMatchAcrossBackendsAndThreads) {
  const Graph g = random_graph(600, 5000, 21);
  const NuLpaConfig base;
  const NuLpaResult serial = nu_lpa(g, base);
  EXPECT_GT(serial.counters.global_transactions, 0u);
  EXPECT_GT(serial.counters.cache_hits, 0u);
  for (const unsigned t : {1u, 2u, 8u}) {
    const NuLpaResult par =
        nu_lpa(g, base.with_exec(ExecPolicy::parallel(t)));
    EXPECT_EQ(serial.labels, par.labels) << "threads=" << t;
    // Full counter equality — including every transaction/cache field.
    // fiber_switches is the one known backend-dependent scheduler counter
    // (the parallel direct path charges promotions differently); normalize
    // it so the comparison pins everything else, mem fields included.
    PerfCounters adjusted = par.counters;
    adjusted.fiber_switches = serial.counters.fiber_switches;
    EXPECT_EQ(serial.counters, adjusted) << "threads=" << t;
  }
}

TEST(MemModelEngine, CoalescedLayoutKeepsLabelsAndCutsTransactions) {
  const Graph g = random_graph(2000, 16000, 33);
  const NuLpaConfig flat = NuLpaConfig{}.with_coalesced_layout(false);
  const NuLpaConfig coal = NuLpaConfig{}.with_coalesced_layout(true);
  const NuLpaResult rf = nu_lpa(g, flat);
  const NuLpaResult rc = nu_lpa(g, coal);
  // The layout only moves bytes around: identical labels, identical word
  // counts, identical algorithmic work.
  EXPECT_EQ(rf.labels, rc.labels);
  EXPECT_EQ(rf.counters.global_loads, rc.counters.global_loads);
  EXPECT_EQ(rf.counters.global_stores, rc.counters.global_stores);
  EXPECT_EQ(rf.counters.edges_scanned, rc.counters.edges_scanned);
  EXPECT_EQ(rf.hash_stats, rc.hash_stats);
  // The acceptance bar: >= 20% fewer measured transactions per edge.
  ASSERT_GT(rf.counters.global_transactions, 0u);
  const double flat_per_edge =
      static_cast<double>(rf.counters.global_transactions) /
      static_cast<double>(rf.counters.edges_scanned);
  const double coal_per_edge =
      static_cast<double>(rc.counters.global_transactions) /
      static_cast<double>(rc.counters.edges_scanned);
  EXPECT_LE(coal_per_edge, 0.8 * flat_per_edge)
      << "flat=" << flat_per_edge << " coalesced=" << coal_per_edge;
}

TEST(MemModelEngine, TrackingOffPreservesLabelsAndWordCounts) {
  const Graph g = random_graph(500, 4000, 55);
  const NuLpaResult on = nu_lpa(g, NuLpaConfig{});
  const NuLpaResult off = nu_lpa(
      g, NuLpaConfig{}.with_exec(ExecPolicy{}.with_track_memory(false)));
  EXPECT_EQ(on.labels, off.labels);
  EXPECT_EQ(on.counters.global_loads, off.counters.global_loads);
  EXPECT_EQ(on.counters.global_stores, off.counters.global_stores);
  EXPECT_EQ(off.counters.global_transactions, 0u);
  EXPECT_EQ(off.counters.tracked_accesses, 0u);
  EXPECT_GT(on.counters.global_transactions, 0u);
}

}  // namespace
}  // namespace nulpa
