// Tests for the extended quality metrics: adjusted Rand index, coverage,
// edge cut, conductance — including the algebraic relationships between
// them (coverage + cut-fraction = 1, etc.).
#include <gtest/gtest.h>

#include <numeric>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "quality/metrics.hpp"
#include "quality/modularity.hpp"
#include "util/rng.hpp"

namespace nulpa {
namespace {

TEST(Ari, IdenticalPartitionsScoreOne) {
  const std::vector<Vertex> a = {0, 0, 1, 1, 2, 2};
  const std::vector<Vertex> b = {7, 7, 3, 3, 9, 9};
  EXPECT_NEAR(adjusted_rand_index(a, b), 1.0, 1e-12);
}

TEST(Ari, IndependentPartitionsScoreNearZero) {
  std::vector<Vertex> a(2000), b(2000);
  Xoshiro256 rng(3);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<Vertex>(rng.next_bounded(5));
    b[i] = static_cast<Vertex>(rng.next_bounded(5));
  }
  EXPECT_NEAR(adjusted_rand_index(a, b), 0.0, 0.05);
}

TEST(Ari, SymmetricAndBounded) {
  const std::vector<Vertex> a = {0, 0, 1, 1, 2, 0, 1};
  const std::vector<Vertex> b = {1, 1, 1, 0, 0, 0, 1};
  const double ab = adjusted_rand_index(a, b);
  EXPECT_NEAR(ab, adjusted_rand_index(b, a), 1e-12);
  EXPECT_GE(ab, -1.0);
  EXPECT_LE(ab, 1.0);
}

TEST(Ari, SizeMismatchThrows) {
  EXPECT_THROW(adjusted_rand_index(std::vector<Vertex>{0},
                                   std::vector<Vertex>{0, 1}),
               std::invalid_argument);
}

TEST(Ari, StricterThanNmiOnSkewedSplit) {
  // One giant community vs a split of it: ARI must penalize.
  std::vector<Vertex> truth(100, 0);
  std::vector<Vertex> split(100);
  for (std::size_t i = 0; i < 100; ++i) split[i] = i < 50 ? 0 : 1;
  EXPECT_LT(adjusted_rand_index(truth, split), 0.2);
}

Graph two_triangles_bridge() {
  GraphBuilder b(6);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
  b.add_edge(3, 4).add_edge(4, 5).add_edge(3, 5);
  b.add_edge(2, 3);
  return b.build();
}

TEST(Coverage, HandExample) {
  const Graph g = two_triangles_bridge();
  const std::vector<Vertex> labels = {0, 0, 0, 1, 1, 1};
  EXPECT_NEAR(coverage(g, labels), 6.0 / 7.0, 1e-12);
}

TEST(Coverage, OneCommunityIsFullCoverage) {
  const Graph g = generate_clique(5);
  EXPECT_DOUBLE_EQ(coverage(g, std::vector<Vertex>(5, 0)), 1.0);
}

TEST(EdgeCut, HandExample) {
  const Graph g = two_triangles_bridge();
  const std::vector<Vertex> labels = {0, 0, 0, 1, 1, 1};
  EXPECT_DOUBLE_EQ(edge_cut(g, labels), 1.0);  // only the bridge
}

TEST(EdgeCut, CoverageAndCutAreComplementary) {
  const Graph g = generate_web(500, 6, 0.85, 5);
  std::vector<Vertex> labels(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) labels[v] = v % 7;
  const double cov = coverage(g, labels);
  const double cut_fraction = edge_cut(g, labels) / g.total_weight();
  EXPECT_NEAR(cov + cut_fraction, 1.0, 1e-9);
}

TEST(Conductance, HandExample) {
  const Graph g = two_triangles_bridge();
  const std::vector<Vertex> labels = {0, 0, 0, 1, 1, 1};
  // Each triangle: cut 1, volume 7 -> conductance 1/7.
  EXPECT_NEAR(max_conductance(g, labels), 1.0 / 7.0, 1e-12);
}

TEST(Conductance, SingletonPartitioningIsWorst) {
  const Graph g = generate_clique(6);
  std::vector<Vertex> singletons(6);
  std::iota(singletons.begin(), singletons.end(), 0);
  EXPECT_DOUBLE_EQ(max_conductance(g, singletons), 1.0);
}

TEST(Conductance, InvalidMembershipThrows) {
  EXPECT_THROW(max_conductance(generate_clique(3), std::vector<Vertex>{0, 1}),
               std::invalid_argument);
}

TEST(Metrics, BetterClusteringWinsOnAllAxes) {
  const Graph g = generate_ring_of_cliques(6, 5);
  std::vector<Vertex> good(g.num_vertices()), bad(g.num_vertices());
  Xoshiro256 rng(4);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    good[v] = v / 5;
    bad[v] = static_cast<Vertex>(rng.next_bounded(6));
  }
  EXPECT_GT(coverage(g, good), coverage(g, bad));
  EXPECT_LT(edge_cut(g, good), edge_cut(g, bad));
  EXPECT_LT(max_conductance(g, good), max_conductance(g, bad));
  EXPECT_GT(modularity(g, good), modularity(g, bad));
}

}  // namespace
}  // namespace nulpa
