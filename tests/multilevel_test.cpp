// Tests for multilevel ν-LPA and METIS IO — the partitioning-facing pieces
// motivated by the paper's conclusion.
#include <gtest/gtest.h>

#include <sstream>

#include "core/multilevel.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/metis_io.hpp"
#include "quality/communities.hpp"
#include "quality/modularity.hpp"

namespace nulpa {
namespace {

TEST(Multilevel, OneLevelEqualsPlainNuLpa) {
  const Graph g = generate_web(800, 6, 0.85, 21);
  MultilevelConfig cfg;
  cfg.max_levels = 1;
  const auto ml = multilevel_lpa(g, cfg);
  const auto plain = nu_lpa(g, cfg.level_config);
  EXPECT_TRUE(same_partition(ml.labels, plain.labels));
  EXPECT_EQ(ml.levels, 1);
}

TEST(Multilevel, ImprovesOrMatchesPlainModularity) {
  const Graph g = generate_road(60, 60, 0.0, 7);
  const auto plain = nu_lpa(g);
  const auto ml = multilevel_lpa(g);
  const double q_plain = modularity(g, plain.labels);
  const double q_ml = modularity(g, ml.labels);
  EXPECT_GE(q_ml, q_plain - 1e-9);
  EXPECT_GT(ml.levels, 1) << "road networks should coarsen several times";
  // Coarsening merges fragments: strictly fewer communities.
  EXPECT_LT(count_communities(ml.labels), count_communities(plain.labels));
}

TEST(Multilevel, LabelsAreOriginalVertexIds) {
  const Graph g = generate_web(500, 6, 0.85, 3);
  const auto ml = multilevel_lpa(g);
  ASSERT_TRUE(is_valid_membership(g, ml.labels));
  // Leader invariant: every label is a vertex that carries its own label.
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(ml.labels[ml.labels[v]], ml.labels[v]);
  }
}

TEST(Multilevel, EmptyAndTinyGraphs) {
  EXPECT_NO_THROW(multilevel_lpa(Graph{}));
  const auto r = multilevel_lpa(generate_clique(3));
  EXPECT_EQ(count_communities(r.labels), 1u);
}

TEST(Multilevel, StopsWhenGraphStopsShrinking) {
  MultilevelConfig cfg;
  cfg.max_levels = 10;
  const auto r = multilevel_lpa(generate_clique(16), cfg);
  // One community after level 1; nothing further to coarsen.
  EXPECT_LE(r.levels, 2);
}

TEST(Multilevel, AccumulatesCountersAcrossLevels) {
  const Graph g = generate_road(40, 40, 0.0, 9);
  const auto r = multilevel_lpa(g);
  EXPECT_GT(r.iterations, nu_lpa(g).iterations);
  EXPECT_GT(r.counters.kernel_launches, 0u);
}

TEST(MetisIo, RoundTripUnweighted) {
  const Graph g = generate_ring_of_cliques(5, 4);
  std::stringstream ss;
  write_metis(ss, g);
  const Graph h = read_metis(ss);
  ASSERT_EQ(h.num_vertices(), g.num_vertices());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  EXPECT_TRUE(h.is_symmetric());
}

TEST(MetisIo, RoundTripWeighted) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 2.5f).add_edge(1, 2, 0.5f);
  const Graph g = b.build();
  std::stringstream ss;
  write_metis(ss, g);
  EXPECT_NE(ss.str().find("001"), std::string::npos);
  const Graph h = read_metis(ss);
  EXPECT_FLOAT_EQ(h.weights_of(0)[0], 2.5f);
  EXPECT_FLOAT_EQ(h.weights_of(2)[0], 0.5f);
}

TEST(MetisIo, ParsesCommentsAndOneBasedIds) {
  std::stringstream ss(
      "% a comment\n"
      "3 2\n"
      "2 3\n"
      "1\n"
      "1\n");
  const Graph g = read_metis(ss);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(MetisIo, RejectsMalformedInput) {
  std::stringstream empty("");
  EXPECT_THROW(read_metis(empty), std::runtime_error);
  std::stringstream bad_id("2 1\n5\n1\n");
  EXPECT_THROW(read_metis(bad_id), std::runtime_error);
  std::stringstream truncated("3 2\n2\n");
  EXPECT_THROW(read_metis(truncated), std::runtime_error);
  std::stringstream vertex_weights("2 1 011\n2\n1\n");
  EXPECT_THROW(read_metis(vertex_weights), std::runtime_error);
}

TEST(MetisIo, IsolatedVerticesGetEmptyLines) {
  GraphBuilder b(3);
  b.add_edge(0, 2);
  std::stringstream ss;
  write_metis(ss, b.build());
  const Graph h = read_metis(ss);
  EXPECT_EQ(h.num_vertices(), 3u);
  EXPECT_EQ(h.degree(1), 0u);
}

}  // namespace
}  // namespace nulpa
