// Tests for the observability layer: zero-cost-when-disabled tracing (a
// traced run must be indistinguishable from an untraced one in everything
// but the event stream), JSONL round-tripping, event-stream invariants
// (monotone iterations, labels_changed consistency), and the algorithm
// registry's uniform runner contract.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/nulpa.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "observe/trace.hpp"
#include "quality/communities.hpp"

namespace nulpa {
namespace {

const Graph& web() {
  static const Graph g = generate_web(2000, 6, 0.85, 7);
  return g;
}

/// Events of one kind, in stream order.
std::vector<observe::TraceEvent> of_kind(
    const std::vector<observe::TraceEvent>& events,
    observe::EventKind kind) {
  std::vector<observe::TraceEvent> out;
  for (const auto& ev : events) {
    if (ev.kind == kind) out.push_back(ev);
  }
  return out;
}

TEST(Observe, ActiveGuard) {
  EXPECT_FALSE(observe::active(nullptr));
  observe::CollectingTracer sink;
  EXPECT_TRUE(observe::active(&sink));
  observe::MultiTracer empty;
  EXPECT_FALSE(observe::active(&empty));  // no live sinks -> producers skip
  empty.add(&sink);
  EXPECT_TRUE(observe::active(&empty));
}

TEST(Observe, KindNamesRoundTrip) {
  using observe::EventKind;
  for (const EventKind kind :
       {EventKind::kRunStart, EventKind::kIterationStart,
        EventKind::kKernelLaunch, EventKind::kIterationEnd,
        EventKind::kRunEnd}) {
    observe::EventKind back{};
    ASSERT_TRUE(observe::kind_from_name(observe::kind_name(kind), back));
    EXPECT_EQ(back, kind);
  }
  observe::EventKind back{};
  EXPECT_FALSE(observe::kind_from_name("no_such_kind", back));
}

TEST(Observe, DisabledTracerIsNoOp) {
  // The acceptance bar for "zero-cost when disabled": a traced run returns
  // byte-identical labels AND identical hardware counters — observation
  // must not perturb the simulated execution.
  const auto plain = nu_lpa(web());
  observe::CollectingTracer sink;
  const auto traced = nu_lpa(web(), NuLpaConfig{}, &sink);
  EXPECT_EQ(plain.labels, traced.labels);
  EXPECT_EQ(plain.iterations, traced.iterations);
  EXPECT_EQ(plain.counters, traced.counters);
  EXPECT_EQ(plain.hash_stats, traced.hash_stats);
  EXPECT_FALSE(sink.events().empty());

  // And passing nullptr must emit nothing anywhere (trivially true, but
  // guards the overload plumbing).
  const auto untraced = nu_lpa(web(), NuLpaConfig{}, nullptr);
  EXPECT_EQ(plain.labels, untraced.labels);
}

TEST(Observe, EventStreamInvariants) {
  observe::CollectingTracer sink;
  const auto r = nu_lpa(web(), NuLpaConfig{}, &sink);
  const auto& events = sink.events();

  ASSERT_GE(events.size(), 3u);
  EXPECT_EQ(events.front().kind, observe::EventKind::kRunStart);
  EXPECT_EQ(events.front().vertices, web().num_vertices());
  EXPECT_EQ(events.front().edges, web().num_edges());
  EXPECT_EQ(events.back().kind, observe::EventKind::kRunEnd);
  EXPECT_EQ(events.back().iterations, r.iterations);

  const auto ends = of_kind(events, observe::EventKind::kIterationEnd);
  ASSERT_EQ(static_cast<int>(ends.size()), r.iterations);
  std::uint64_t changed_sum = 0;
  std::uint64_t edges_sum = 0;
  for (std::size_t i = 0; i < ends.size(); ++i) {
    EXPECT_EQ(ends[i].iteration, static_cast<int>(i)) << "monotone 0-based";
    EXPECT_TRUE(ends[i].has_counters);
    changed_sum += ends[i].labels_changed;
    edges_sum += ends[i].edges_scanned;
  }
  // Per-iteration deltas must reconcile with the end-of-run report.
  EXPECT_EQ(events.back().labels_changed, changed_sum);
  EXPECT_EQ(edges_sum, r.edges_scanned);
  EXPECT_EQ(events.back().edges_scanned, r.edges_scanned);

  // The kernel split must be visible: at least one TPV launch per sweep,
  // and every launch carries its work-item count.
  const auto kernels = of_kind(events, observe::EventKind::kKernelLaunch);
  ASSERT_GE(kernels.size(), ends.size());
  bool saw_tpv = false, saw_bpv = false;
  for (const auto& k : kernels) {
    saw_tpv = saw_tpv || k.kernel == "tpv";
    saw_bpv = saw_bpv || k.kernel == "bpv";
  }
  EXPECT_TRUE(saw_tpv);
  EXPECT_TRUE(saw_bpv);
}

TEST(Observe, JsonlRoundTrip) {
  observe::CollectingTracer collected;
  std::ostringstream os;
  observe::JsonlEmitter jsonl(os, a100());
  observe::MultiTracer fan;
  fan.add(&collected);
  fan.add(&jsonl);
  nu_lpa(web(), NuLpaConfig{}, &fan);

  std::istringstream is(os.str());
  const auto parsed = observe::parse_trace_jsonl(is);
  ASSERT_EQ(parsed.size(), collected.events().size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    const auto& a = parsed[i];
    const auto& b = collected.events()[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.algo, b.algo);
    EXPECT_EQ(a.iteration, b.iteration);
    EXPECT_EQ(a.active_vertices, b.active_vertices);
    EXPECT_EQ(a.labels_changed, b.labels_changed);
    EXPECT_EQ(a.edges_scanned, b.edges_scanned);
    EXPECT_EQ(a.has_counters, b.has_counters);
    if (a.has_counters) {
      EXPECT_EQ(a.counters, b.counters);
      EXPECT_EQ(a.hash_stats.probes, b.hash_stats.probes);
    }
    if (b.has_counters) {
      // The emitter carried a machine model, so modeled seconds survive
      // the wire even though the reader has no model.
      EXPECT_GT(a.modeled_seconds, 0.0);
    }
  }
}

TEST(Observe, JsonlEscapesHostileStringsAndRoundTrips) {
  // Strings with quotes, backslashes, and control characters must survive
  // the wire: the emitter escapes chars < 0x20 as \uXXXX and the parser
  // decodes them back (a raw control byte inside a JSON string literal is
  // invalid JSON and breaks downstream json.load consumers).
  observe::TraceEvent ev;
  ev.kind = observe::EventKind::kKernelLaunch;
  ev.algo = "al\"go\\with\nnewline";
  ev.kernel = std::string("k\x01\x1f") + "\t\r\b\f";
  ev.context = "ctx\x07quoted\"";
  ev.iteration = 3;
  ev.work_items = 17;

  std::ostringstream os;
  observe::JsonlEmitter jsonl(os);
  jsonl.record(ev);
  const std::string line = os.str();
  // No raw control byte may appear on the wire (bar the line terminator).
  ASSERT_FALSE(line.empty());
  ASSERT_EQ(line.back(), '\n');
  for (std::size_t i = 0; i + 1 < line.size(); ++i) {
    EXPECT_GE(static_cast<unsigned char>(line[i]), 0x20u) << "at " << i;
  }
  EXPECT_NE(line.find("\\u0001"), std::string::npos);
  EXPECT_NE(line.find("\\u001f"), std::string::npos);

  std::istringstream is(line);
  const auto parsed = observe::parse_trace_jsonl(is);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].algo, ev.algo);
  EXPECT_EQ(parsed[0].kernel, ev.kernel);
  EXPECT_EQ(parsed[0].context, ev.context);
  EXPECT_EQ(parsed[0].work_items, ev.work_items);
}

TEST(Observe, ParseDecodesUnicodeEscapes) {
  std::istringstream is(
      "{\"kind\":\"kernel_launch\",\"algo\":\"a\",\"iter\":0,"
      "\"kernel\":\"\\u0041\\u00e9\\u20ac\",\"work_items\":1}\n");
  const auto parsed = observe::parse_trace_jsonl(is);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].kernel, "A\xc3\xa9\xe2\x82\xac");  // A, é, €
}

TEST(Observe, ParseRejectsMalformedLines) {
  std::istringstream is("{\"kind\":\"iteration_end\",\"iter\":oops}\n");
  EXPECT_THROW(observe::parse_trace_jsonl(is), std::runtime_error);
  std::istringstream not_obj("[1,2,3]\n");
  EXPECT_THROW(observe::parse_trace_jsonl(not_obj), std::runtime_error);
}

TEST(Observe, TableEmitterRendersIterations) {
  std::ostringstream os;
  {
    observe::TableEmitter table(os, a100());
    nu_lpa(web(), NuLpaConfig{}, &table);
  }
  const std::string out = os.str();
  EXPECT_NE(out.find("== nulpa"), std::string::npos);
  EXPECT_NE(out.find("iter"), std::string::npos);
  EXPECT_NE(out.find("converged"), std::string::npos);
}

TEST(Observe, ContextTracerStampsEvents) {
  observe::CollectingTracer sink;
  observe::ContextTracer ctx(&sink, "my-graph");
  nu_lpa(web(), NuLpaConfig{}, &ctx);
  ASSERT_FALSE(sink.events().empty());
  for (const auto& ev : sink.events()) EXPECT_EQ(ev.context, "my-graph");

  observe::ContextTracer dead(nullptr, "x");
  EXPECT_FALSE(observe::active(&dead));
}

TEST(Registry, EveryAlgorithmRunsThroughTheUniformSignature) {
  const Graph g = generate_web(600, 5, 0.85, 11);
  RunOptions opts;
  ASSERT_EQ(algorithm_registry().size(), 8u);
  for (const auto& algo : algorithm_registry()) {
    SCOPED_TRACE(std::string(algo.name));
    const RunReport r = algo.run(g, opts);
    EXPECT_EQ(r.labels.size(), g.num_vertices());
    EXPECT_TRUE(is_valid_membership(g, r.labels));
    EXPECT_GT(r.iterations, 0);
    EXPECT_GT(r.modeled_seconds, 0.0);
  }
}

TEST(Registry, LookupAndNames) {
  EXPECT_NE(find_algorithm("nulpa"), nullptr);
  EXPECT_NE(find_algorithm("louvain"), nullptr);
  EXPECT_EQ(find_algorithm("no-such-algo"), nullptr);
  const std::string names = algorithm_names();
  for (const auto& algo : algorithm_registry()) {
    EXPECT_NE(names.find(std::string(algo.name)), std::string::npos);
  }
}

TEST(Registry, EveryAlgorithmEmitsTraceEvents) {
  const Graph g = generate_web(600, 5, 0.85, 11);
  for (const auto& algo : algorithm_registry()) {
    SCOPED_TRACE(std::string(algo.name));
    observe::CollectingTracer sink;
    RunOptions opts;
    opts.tracer = &sink;
    const RunReport r = algo.run(g, opts);
    const auto& events = sink.events();
    ASSERT_GE(events.size(), 3u);
    EXPECT_EQ(events.front().kind, observe::EventKind::kRunStart);
    EXPECT_EQ(events.back().kind, observe::EventKind::kRunEnd);
    // >= 1 event per iteration, with monotonically increasing ids.
    const auto ends = of_kind(events, observe::EventKind::kIterationEnd);
    EXPECT_GE(static_cast<int>(ends.size()), 1);
    int prev = -1;
    for (const auto& ev : ends) {
      EXPECT_GT(ev.iteration, prev);
      prev = ev.iteration;
    }
    // A traced registry run returns the same labels as an untraced one
    // (all algorithms are deterministic for fixed config).
    RunOptions quiet;
    EXPECT_EQ(algo.run(g, quiet).labels, r.labels);
  }
}

TEST(Config, FluentBuildersProduceModifiedCopies) {
  const NuLpaConfig base;
  const NuLpaConfig cfg = base.with_tolerance(0.1)
                              .with_max_iterations(7)
                              .with_pruning(false)
                              .with_switch_degree(64)
                              .with_swap(SwapPrevention::none());
  EXPECT_DOUBLE_EQ(cfg.tolerance, 0.1);
  EXPECT_EQ(cfg.max_iterations, 7);
  EXPECT_FALSE(cfg.pruning);
  EXPECT_EQ(cfg.switch_degree, 64u);
  EXPECT_EQ(cfg.swap.pick_less_every, 0);
  EXPECT_EQ(cfg.swap.cross_check_every, 0);
  // The base is untouched (modified-copy, not mutation).
  EXPECT_DOUBLE_EQ(base.tolerance, 0.05);
  EXPECT_EQ(base.swap.pick_less_every, 4);

  const SwapPrevention pl2cc1 =
      SwapPrevention{}.with_pick_less(2).with_cross_check(1);
  EXPECT_EQ(pl2cc1.pick_less_every, 2);
  EXPECT_EQ(pl2cc1.cross_check_every, 1);
}

TEST(Config, RunOptionsFromFlagsMapsSharedKnobs) {
  CommonFlags flags;
  flags.pick_less = 2;
  flags.cross_check = 1;
  flags.switch_degree = 64;
  flags.probing = "linear";
  flags.pruning = false;
  flags.tolerance = 0.2;
  flags.max_iterations = 9;
  flags.seed = 99;
  const RunOptions opts = run_options_from_flags(flags);
  EXPECT_EQ(opts.nulpa.swap.pick_less_every, 2);
  EXPECT_EQ(opts.nulpa.swap.cross_check_every, 1);
  EXPECT_EQ(opts.nulpa.switch_degree, 64u);
  EXPECT_EQ(opts.nulpa.probing, Probing::kLinear);
  EXPECT_FALSE(opts.nulpa.pruning);
  EXPECT_DOUBLE_EQ(opts.nulpa.tolerance, 0.2);
  EXPECT_EQ(opts.nulpa.max_iterations, 9);
  EXPECT_DOUBLE_EQ(opts.seq.tolerance, 0.2);
  EXPECT_EQ(opts.gve.max_iterations, 9);
  EXPECT_EQ(opts.gunrock.iterations, 9);
  EXPECT_EQ(opts.flpa.seed, 99u);
  EXPECT_EQ(opts.plp.seed, 99u);

  // Unset optionals keep each algorithm's published defaults.
  const RunOptions defaults = run_options_from_flags(CommonFlags{});
  EXPECT_DOUBLE_EQ(defaults.plp.tolerance, PlpConfig{}.tolerance);
  EXPECT_EQ(defaults.gunrock.iterations, GunrockLpaConfig{}.iterations);

  EXPECT_THROW(parse_probing("nonsense"), std::runtime_error);
}

TEST(Config, ExecPolicyFromFlagsSelectsBackendAndSeed) {
  // Serial by default.
  EXPECT_FALSE(exec_policy_from_flags(CommonFlags{}).is_parallel());

  CommonFlags flags;
  flags.parallel_sim = true;
  flags.threads = 4;
  flags.seed = 77;
  const simt::ExecPolicy p = exec_policy_from_flags(flags);
  EXPECT_TRUE(p.is_parallel());
  EXPECT_EQ(p.threads, 4u);
  EXPECT_TRUE(p.deterministic);
  EXPECT_EQ(p.schedule_seed, 77u);

  // --threads N with N > 1 implies the parallel backend on its own.
  CommonFlags just_threads;
  just_threads.threads = 2;
  EXPECT_TRUE(exec_policy_from_flags(just_threads).is_parallel());
  // ... but --threads 1 alone stays serial (it means "one worker anyway").
  CommonFlags one_thread;
  one_thread.threads = 1;
  EXPECT_FALSE(exec_policy_from_flags(one_thread).is_parallel());

  // The policy lands in opts.exec and every simulator-backed config.
  const RunOptions opts = run_options_from_flags(flags);
  EXPECT_TRUE(opts.exec.is_parallel());
  EXPECT_EQ(opts.nulpa.exec.threads, 4u);
  EXPECT_TRUE(opts.gunrock.exec.is_parallel());
  EXPECT_EQ(opts.gunrock.exec.schedule_seed, 77u);
}

}  // namespace
}  // namespace nulpa
