// Parallel-backend equivalence suite: the sharded multi-threaded simulator
// must be invisible. In deterministic mode (the default) labels, per-lane
// outputs, and merged PerfCounters are byte-identical to the serial
// backend for any thread count — across sync modes (fiberless direct and
// lockstep fibers), schedule-fuzz seeds, and both engines that ride the
// session (ν-LPA, the Gunrock baseline). These tests run the real worker
// shards even on a single-core host: shard count follows ExecPolicy's
// thread request, and the pool's fork-join jobs stride over shards, so an
// oversubscribed pool exercises exactly the same merge paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/gunrock_lpa_simt.hpp"
#include "core/nulpa.hpp"
#include "graph/generators.hpp"
#include "quality/communities.hpp"
#include "simt/grid.hpp"

namespace nulpa {
namespace {

using simt::ExecPolicy;
using simt::Lane;
using simt::LaunchConfig;
using simt::LaunchSession;
using simt::PerfCounters;

constexpr unsigned kThreadCounts[] = {1, 2, 8};

// A schedule-sensitive lockstep kernel: each lane takes a ticket from its
// block's plain (non-atomic) sequence counter between barriers, so the
// recorded per-lane outputs encode the exact intra-block lane order the
// scheduler produced. Any divergence between backends or thread counts —
// a different shuffle, a lost pass, a reordered refill — changes the
// bytes. Blocks never share state (a block is owned by one shard), so the
// plain increments are race-free by construction.
struct TicketRun {
  std::vector<std::uint32_t> out;
  PerfCounters ctr;
};

TicketRun run_ticket_kernel(const ExecPolicy& policy, std::uint64_t seed,
                            std::uint32_t grid, std::uint32_t block_dim) {
  LaunchConfig cfg;
  cfg.block_dim = block_dim;
  cfg.resident_blocks = 4;
  cfg.schedule_seed = seed;
  TicketRun r;
  r.out.assign(static_cast<std::size_t>(grid) * block_dim * 2, 0);
  std::vector<std::uint32_t> seq(grid, 0);
  LaunchSession session(cfg, r.ctr, policy.with_sync(simt::SyncMode::kLockstep));
  session.run(grid, [&](Lane& lane) {
    const std::uint32_t g = lane.global_thread();
    r.out[2 * g] = seq[lane.block_idx()]++;
    lane.syncthreads();
    r.out[2 * g + 1] = seq[lane.block_idx()]++;
    lane.syncthreads();
  });
  return r;
}

TEST(ParallelBackend, LockstepTicketsByteIdenticalToSerial) {
  for (const std::uint64_t seed : {0ULL, 7ULL, 99ULL, 424242ULL}) {
    const TicketRun serial = run_ticket_kernel(ExecPolicy{}, seed, 11, 64);
    for (const unsigned t : kThreadCounts) {
      const TicketRun par =
          run_ticket_kernel(ExecPolicy::parallel(t), seed, 11, 64);
      EXPECT_EQ(serial.out, par.out) << "threads=" << t << " seed=" << seed;
      // Deterministic lockstep replays the serial schedule exactly, so the
      // merged per-shard counters must round-trip to the serial totals —
      // every field, including scheduler costs.
      EXPECT_EQ(serial.ctr, par.ctr) << "threads=" << t << " seed=" << seed;
    }
  }
}

TEST(ParallelBackend, DirectExecutorOutputsMatchSerialAcrossThreads) {
  // Barrier-free kernel on the fiberless direct executor: per-lane math
  // plus device atomics across blocks. Lane outputs and the atomic total
  // must match serial for every thread count; merged counters may differ
  // from serial only in fiber_switches (the parallel direct path charges
  // the executor resume per block so the count is thread-invariant).
  constexpr std::uint32_t kGrid = 13;
  constexpr std::uint32_t kBlockDim = 96;
  const auto run = [&](const ExecPolicy& policy) {
    LaunchConfig cfg;
    cfg.block_dim = kBlockDim;
    cfg.resident_blocks = 4;
    TicketRun r;
    r.out.assign(kGrid * kBlockDim, 0);
    std::uint64_t total = 0;
    LaunchSession session(cfg, r.ctr, policy);
    session.run(kGrid, [&](Lane& lane) {
      const std::uint32_t g = lane.global_thread();
      r.out[g] = g * 2654435761u;
      lane.atomic_add(total, std::uint64_t{1});
    });
    r.out.push_back(static_cast<std::uint32_t>(total));
    return r;
  };
  const TicketRun serial = run(ExecPolicy{});
  ASSERT_EQ(serial.out.back(), kGrid * kBlockDim);
  PerfCounters first_par;
  for (const unsigned t : kThreadCounts) {
    const TicketRun par = run(ExecPolicy::parallel(t));
    EXPECT_EQ(serial.out, par.out) << "threads=" << t;
    PerfCounters adjusted = par.ctr;
    adjusted.fiber_switches = serial.ctr.fiber_switches;
    EXPECT_EQ(serial.ctr, adjusted) << "threads=" << t;
    // ... and across thread counts the merged counters are mutually exact.
    if (t == kThreadCounts[0]) {
      first_par = par.ctr;
    } else {
      EXPECT_EQ(first_par, par.ctr) << "threads=" << t;
    }
  }
}

TEST(ParallelBackend, FreerunKeepsOutcomesForOrderInsensitiveKernels) {
  // deterministic(false) lets shards free-run their slots: the pass
  // interleaving is arbitrary, so only order-insensitive observables are
  // guaranteed. Work totals still must merge exactly.
  LaunchConfig cfg;
  cfg.block_dim = 64;
  cfg.resident_blocks = 4;
  const auto run = [&](const ExecPolicy& policy) {
    TicketRun r;
    r.out.assign(9 * 64, 0);
    PerfCounters& ctr = r.ctr;
    LaunchSession session(cfg, ctr, policy.with_sync(simt::SyncMode::kLockstep));
    session.run(9, [&](Lane& lane) {
      const std::uint32_t g = lane.global_thread();
      r.out[g] = g + 1;
      lane.syncthreads();
      lane.count_load(2);
    });
    return r;
  };
  const TicketRun serial = run(ExecPolicy{});
  for (const unsigned t : {2u, 8u}) {
    const TicketRun par =
        run(ExecPolicy::parallel(t).with_deterministic(false));
    EXPECT_EQ(serial.out, par.out) << "threads=" << t;
    EXPECT_EQ(serial.ctr.threads_run, par.ctr.threads_run);
    EXPECT_EQ(serial.ctr.global_loads, par.ctr.global_loads);
    EXPECT_EQ(serial.ctr.block_syncs, par.ctr.block_syncs);
  }
}

TEST(ParallelBackend, MoreShardsThanResidentSlotsIsFine) {
  // threads > resident_blocks: surplus shards idle, the rest own the
  // slots; results and counters still match serial.
  LaunchConfig cfg;
  cfg.block_dim = 32;
  cfg.resident_blocks = 2;
  PerfCounters serial_ctr, par_ctr;
  std::vector<std::uint32_t> a(6 * 32, 0), b(6 * 32, 0);
  {
    LaunchSession s(cfg, serial_ctr, ExecPolicy::lockstep());
    s.run(6, [&](Lane& l) { a[l.global_thread()] = l.warp(); });
  }
  {
    LaunchSession s(cfg, par_ctr, ExecPolicy::parallel(8).with_sync(
                                      simt::SyncMode::kLockstep));
    s.run(6, [&](Lane& l) { b[l.global_thread()] = l.warp(); });
  }
  EXPECT_EQ(a, b);
  EXPECT_EQ(serial_ctr, par_ctr);
}

// ---------------------------------------------------------------- engine

void expect_engine_parallel_transparent(const Graph& g,
                                        const NuLpaConfig& cfg,
                                        const std::string& what) {
  const auto serial = nu_lpa(g, cfg);
  for (const unsigned t : kThreadCounts) {
    NuLpaConfig par = cfg;
    par.exec = cfg.exec.with_backend(ExecPolicy::Backend::kParallel)
                   .with_threads(t);
    const auto r = nu_lpa(g, par);
    EXPECT_EQ(serial.labels, r.labels) << what << " threads=" << t;
    EXPECT_EQ(serial.iterations, r.iterations) << what << " threads=" << t;
    EXPECT_EQ(serial.counters.edges_scanned, r.counters.edges_scanned)
        << what << " threads=" << t;
    EXPECT_EQ(serial.counters.threads_run, r.counters.threads_run)
        << what << " threads=" << t;
    EXPECT_EQ(serial.hash_stats.inserts, r.hash_stats.inserts)
        << what << " threads=" << t;
    EXPECT_EQ(serial.hash_stats.probes, r.hash_stats.probes)
        << what << " threads=" << t;
  }
}

TEST(EngineParallel, ByteIdenticalOnMixedKernels) {
  // switch_degree 8 sends plenty of vertices through the BPV fiber kernel
  // while the rest ride the fiberless TPV split — both kernels cross the
  // backend boundary in one run.
  const Graph g = generate_web(1200, 7, 0.85, 6);
  expect_engine_parallel_transparent(
      g, NuLpaConfig{}.with_switch_degree(8), "mixed kernels");
}

TEST(EngineParallel, ByteIdenticalOnLockstepFibers) {
  const Graph g = generate_web(900, 6, 0.85, 11);
  expect_engine_parallel_transparent(
      g, NuLpaConfig{}.with_exec(ExecPolicy::lockstep()), "fused lockstep");
}

TEST(EngineParallel, ByteIdenticalUnderScheduleFuzz) {
  const Graph g = generate_erdos_renyi(800, 6.0, 31);
  for (const std::uint64_t seed : {1ULL, 7ULL, 1234ULL}) {
    NuLpaConfig cfg;
    cfg.launch.schedule_seed = seed;
    expect_engine_parallel_transparent(
        g, cfg, "schedule_seed=" + std::to_string(seed));
    expect_engine_parallel_transparent(
        g, cfg.with_exec(ExecPolicy::lockstep()),
        "lockstep schedule_seed=" + std::to_string(seed));
  }
}

TEST(EngineParallel, ByteIdenticalWithCrossCheckEnabled) {
  // The cross-check CAS-revert sweep is order-dependent, so under the
  // parallel backend the engine must route it through its serial-backend
  // stand-in session — keeping labels identical to the serial run.
  const Graph g = generate_web(900, 6, 0.85, 25);
  NuLpaConfig cfg;
  cfg.swap.cross_check_every = 2;
  expect_engine_parallel_transparent(g, cfg, "cross-check every 2");
}

TEST(EngineParallel, FreerunStillProducesValidCommunities) {
  // Non-deterministic mode abandons byte-identity by contract; the result
  // must still be a valid clustering with exact work accounting.
  const Graph g = generate_web(1000, 6, 0.85, 3);
  NuLpaConfig cfg;
  cfg.exec = ExecPolicy::parallel(4).with_deterministic(false);
  const auto r = nu_lpa(g, cfg);
  EXPECT_TRUE(is_valid_membership(g, r.labels));
  EXPECT_GE(r.iterations, 1);
  EXPECT_GT(r.counters.edges_scanned, 0u);
}

TEST(EngineParallel, GunrockByteIdenticalAcrossThreadCounts) {
  const Graph g = generate_web(1500, 6, 0.85, 9);
  GunrockLpaConfig cfg;
  const auto serial = gunrock_lpa_simt(g, cfg);
  for (const unsigned t : kThreadCounts) {
    GunrockLpaConfig par;
    par.exec = ExecPolicy::parallel(t);
    const auto r = gunrock_lpa_simt(g, par);
    EXPECT_EQ(serial.labels, r.labels) << "threads=" << t;
    EXPECT_EQ(serial.counters.edges_scanned, r.counters.edges_scanned);
  }
}

// ------------------------------------------------------------ policy API

TEST(ExecPolicyApi, BuildersComposeWithoutMutation) {
  constexpr ExecPolicy p = ExecPolicy::parallel(4)
                               .with_deterministic(false)
                               .with_schedule_seed(9)
                               .with_frontier_compaction(false);
  static_assert(p.backend == ExecPolicy::Backend::kParallel);
  static_assert(p.threads == 4);
  static_assert(!p.deterministic);
  static_assert(p.schedule_seed == 9);
  static_assert(!p.frontier_compaction);
  static_assert(p.is_parallel());
  // Defaults: serial, deterministic, compaction on, auto sync.
  constexpr ExecPolicy d{};
  static_assert(!d.is_parallel());
  static_assert(d.deterministic);
  static_assert(d.frontier_compaction);
  static_assert(d.sync == simt::SyncMode::kAuto);
  static_assert(ExecPolicy::lockstep().sync == simt::SyncMode::kLockstep);
}

TEST(ExecPolicyApi, DeprecatedConfigBuildersMatchTheNewSurface) {
  // One-release compatibility: the NuLpaConfig bool builders must keep
  // their old meaning. (The simt::KernelTraits shim they sat beside has
  // completed its deprecation cycle and is gone; ExecPolicy is the only
  // launch-policy surface now.)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const NuLpaConfig old_fibered = NuLpaConfig{}.with_fiberless(false);
  const NuLpaConfig old_compactless =
      NuLpaConfig{}.with_frontier_compaction(false);
#pragma GCC diagnostic pop
  EXPECT_EQ(old_fibered.exec.sync, simt::SyncMode::kLockstep);
  EXPECT_FALSE(old_compactless.exec.frontier_compaction);
}

}  // namespace
}  // namespace nulpa
