// Tests for the thread pool and the OpenMP-style loop schedules the
// multicore baselines depend on.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "parallel/for_each.hpp"
#include "parallel/thread_pool.hpp"

namespace nulpa {
namespace {

TEST(ThreadPool, RunsJobOnEveryWorker) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(4);
  pool.run([&](unsigned w) { hits[w].fetch_add(1); });
  for (unsigned w = 0; w < 4; ++w) EXPECT_EQ(hits[w].load(), 1) << w;
}

TEST(ThreadPool, SurvivesManySequentialJobs) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int i = 0; i < 100; ++i) {
    pool.run([&](unsigned) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 300);
}

TEST(ThreadPool, SingleWorkerPoolWorks) {
  ThreadPool pool(1);
  int calls = 0;
  pool.run([&](unsigned w) {
    EXPECT_EQ(w, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

class ScheduleProperty : public ::testing::TestWithParam<Schedule> {};

TEST_P(ScheduleProperty, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (const std::uint64_t n : {0ULL, 1ULL, 7ULL, 1000ULL, 4096ULL}) {
    std::vector<std::atomic<int>> hits(n);
    parallel_for(pool, 0, n, GetParam(),
                 [&](std::uint64_t i, unsigned) { hits[i].fetch_add(1); });
    for (std::uint64_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " n=" << n;
    }
  }
}

TEST_P(ScheduleProperty, RespectsSubrange) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(100);
  parallel_for(pool, 10, 90, GetParam(),
               [&](std::uint64_t i, unsigned) { hits[i].fetch_add(1); });
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_EQ(hits[i].load(), (i >= 10 && i < 90) ? 1 : 0) << i;
  }
}

TEST_P(ScheduleProperty, WorkerIdsAreInRange) {
  ThreadPool pool(3);
  std::atomic<bool> ok{true};
  parallel_for(pool, 0, 10000, GetParam(), [&](std::uint64_t, unsigned w) {
    if (w >= pool.size()) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

INSTANTIATE_TEST_SUITE_P(AllSchedules, ScheduleProperty,
                         ::testing::Values(Schedule::kStatic,
                                           Schedule::kDynamic,
                                           Schedule::kGuided),
                         [](const auto& info) {
                           switch (info.param) {
                             case Schedule::kStatic: return "static";
                             case Schedule::kDynamic: return "dynamic";
                             case Schedule::kGuided: return "guided";
                           }
                           return "?";
                         });

TEST(ParallelReduce, SumsCorrectly) {
  ThreadPool pool(4);
  const std::uint64_t n = 100000;
  const auto total = parallel_reduce<std::uint64_t>(
      pool, 0, n, Schedule::kDynamic, 0,
      [](std::uint64_t i, unsigned) { return i; });
  EXPECT_EQ(total, n * (n - 1) / 2);
}

TEST(ParallelReduce, InitialValueIsIncluded) {
  ThreadPool pool(2);
  const auto total = parallel_reduce<std::uint64_t>(
      pool, 0, 10, Schedule::kStatic, 1000,
      [](std::uint64_t, unsigned) { return std::uint64_t{1}; });
  EXPECT_EQ(total, 1010u);
}

TEST(ParallelReduce, EmptyRangeReturnsInit) {
  ThreadPool pool(2);
  const auto total = parallel_reduce<int>(
      pool, 5, 5, Schedule::kGuided, 7, [](std::uint64_t, unsigned) { return 1; });
  EXPECT_EQ(total, 7);
}

TEST(ThreadPool, ShutdownLeavesUsableSingleWorkerPool) {
  ThreadPool pool(4);
  std::atomic<int> hits{0};
  pool.run([&](unsigned) { hits++; });
  EXPECT_EQ(hits.load(), 4);
  pool.shutdown();
  EXPECT_EQ(pool.size(), 1u);
  hits = 0;
  pool.run([&](unsigned id) {
    EXPECT_EQ(id, 0u);  // only the caller is left
    hits++;
  });
  EXPECT_EQ(hits.load(), 1);
  pool.shutdown();  // idempotent
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, ResizeRetargetsWorkerCount) {
  ThreadPool pool(2);
  for (const unsigned target : {5u, 1u, 3u}) {
    pool.resize(target);
    EXPECT_EQ(pool.size(), target);
    std::atomic<unsigned> hits{0};
    std::vector<std::atomic<int>> seen(target);
    pool.run([&](unsigned id) {
      ASSERT_LT(id, target);
      seen[id]++;
      hits++;
    });
    EXPECT_EQ(hits.load(), target);
    for (unsigned id = 0; id < target; ++id) EXPECT_EQ(seen[id].load(), 1);
  }
}

TEST(ThreadPool, ResizeToSameSizeIsANoOp) {
  ThreadPool pool(3);
  pool.resize(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> hits{0};
  pool.run([&](unsigned) { hits++; });
  EXPECT_EQ(hits.load(), 3);
}

}  // namespace
}  // namespace nulpa
