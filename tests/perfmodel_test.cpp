// Tests for the analytic machine models: monotonicity, bottleneck
// behaviour, and the CPU scaling helper.
#include <gtest/gtest.h>

#include "perfmodel/machine.hpp"

namespace nulpa {
namespace {

simt::PerfCounters counters_with(std::uint64_t loads, std::uint64_t stores,
                                 std::uint64_t atomics,
                                 std::uint64_t launches) {
  simt::PerfCounters c;
  c.global_loads = loads;
  c.global_stores = stores;
  c.atomic_ops = atomics;
  c.kernel_launches = launches;
  return c;
}

TEST(MachineModel, PresetsAreSane) {
  const MachineModel gpu = a100();
  const MachineModel cpu = xeon_gold_6226r_dual();
  EXPECT_GT(gpu.mem_bandwidth_Bps, cpu.mem_bandwidth_Bps);
  EXPECT_GT(gpu.hardware_threads, cpu.hardware_threads);
  EXPECT_GT(gpu.kernel_launch_s, 0.0);
}

TEST(ModeledGpu, ZeroWorkIsZeroTime) {
  EXPECT_DOUBLE_EQ(modeled_gpu_seconds(a100(), simt::PerfCounters{}), 0.0);
}

TEST(ModeledGpu, MonotoneInEveryCounter) {
  const MachineModel gpu = a100();
  const double base =
      modeled_gpu_seconds(gpu, counters_with(1000, 1000, 10, 2));
  EXPECT_GT(modeled_gpu_seconds(gpu, counters_with(2000, 1000, 10, 2)), base);
  EXPECT_GT(modeled_gpu_seconds(gpu, counters_with(1000, 2000, 10, 2)), base);
  EXPECT_GT(modeled_gpu_seconds(gpu, counters_with(1000, 1000, 99999, 2)),
            base);
  EXPECT_GT(modeled_gpu_seconds(gpu, counters_with(1000, 1000, 10, 50)),
            base);
}

TEST(ModeledGpu, LaunchOverheadFloors) {
  const MachineModel gpu = a100();
  const double t = modeled_gpu_seconds(gpu, counters_with(0, 0, 0, 10));
  EXPECT_DOUBLE_EQ(t, 10 * gpu.kernel_launch_s);
}

TEST(ModeledGpu, ProbesCostMoreThanHits) {
  const MachineModel gpu = a100();
  simt::PerfCounters smooth;
  smooth.hash_inserts = 1000000;
  simt::PerfCounters probing = smooth;
  probing.hash_probes = 1000000;
  EXPECT_GT(modeled_gpu_seconds(gpu, probing),
            modeled_gpu_seconds(gpu, smooth));
}

TEST(ModeledGpu, SharedMemoryIsCheaperThanGlobal) {
  const MachineModel gpu = a100();
  simt::PerfCounters global;
  global.global_loads = 10000000;
  simt::PerfCounters shared;
  shared.shared_loads = 10000000;
  EXPECT_LT(modeled_gpu_seconds(gpu, shared),
            modeled_gpu_seconds(gpu, global));
}

TEST(ModeledWork, ScalesWithEdgesAndWords) {
  const MachineModel gpu = a100();
  const double t1 = modeled_gpu_seconds_from_work(gpu, 1000000, 1, 4.0);
  const double t2 = modeled_gpu_seconds_from_work(gpu, 2000000, 1, 4.0);
  const double t3 = modeled_gpu_seconds_from_work(gpu, 1000000, 1, 8.0);
  EXPECT_GT(t2, t1);
  EXPECT_GT(t3, t1);
  EXPECT_NEAR(t2, t3, 1e-12);  // edges x2 == words x2
}

TEST(ModeledWork, RandomAccessesDominateWhenDependent) {
  const MachineModel gpu = a100();
  const double stream_only =
      modeled_gpu_seconds_from_work(gpu, 1000000, 0, 4.0, 0.0);
  const double with_random =
      modeled_gpu_seconds_from_work(gpu, 1000000, 0, 4.0, 8.0);
  EXPECT_GT(with_random, stream_only);
}

TEST(ModeledCpu, PerfectAndZeroEfficiency) {
  EXPECT_DOUBLE_EQ(modeled_cpu_seconds(32.0, 32, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(modeled_cpu_seconds(32.0, 32, 0.0), 32.0);
  EXPECT_DOUBLE_EQ(modeled_cpu_seconds(10.0, 1, 0.9), 10.0);
}

TEST(ModeledCpu, HalfEfficiencyScales) {
  // speedup = 1 + 31 * 0.5 = 16.5
  EXPECT_NEAR(modeled_cpu_seconds(33.0, 32, 0.5), 2.0, 1e-12);
}

}  // namespace
}  // namespace nulpa
