// Scoreboard / pipelined-warp-scheduler suite (simt/scoreboard.hpp): the
// cycle-level replay's hand-computable latency model, the exact counter
// transform between scoreboard and serialized scheduling, byte-identity of
// the cycle counters across backends and thread counts (including under
// schedule fuzz), the stream/merge round trip of the new PerfCounters
// fields, and the freerun work-stealing path.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/nulpa.hpp"
#include "graph/generators.hpp"
#include "quality/communities.hpp"
#include "simt/counters.hpp"
#include "simt/grid.hpp"
#include "simt/scoreboard.hpp"

namespace nulpa {
namespace {

using simt::ExecPolicy;
using simt::PerfCounters;
using simt::PipelineModel;
using simt::SmPipeline;

// Default model constants the hand computations below rely on.
static_assert(PipelineModel{}.issue_cycles_per_txn == 1);
static_assert(PipelineModel{}.cache_hit_cycles == 40);
static_assert(PipelineModel{}.cache_miss_cycles == 320);

// ------------------------------------------------ SmPipeline unit replay

PerfCounters drain_once(SmPipeline& p) {
  PerfCounters ctr;
  p.drain(ctr);
  return ctr;
}

TEST(SmPipeline, SingleWarpHidesNothing) {
  SmPipeline p;
  p.begin_block(1, PipelineModel{}, /*scoreboard=*/true, 0, 0);
  // One window: 2 txns (2 issue cycles), 1 hit (40 latency cycles).
  p.add_window(0, 2, 1, 0);
  const PerfCounters ctr = drain_once(p);
  // Issue 0..2, return lands at 42, nothing else to issue: the pipe idles
  // through the whole 40-cycle return. makespan 42, stall 40, hidden 0.
  EXPECT_EQ(ctr.modeled_cycles, 42u);
  EXPECT_EQ(ctr.stall_cycles, 40u);
  EXPECT_EQ(ctr.hidden_latency_cycles, 0u);
}

TEST(SmPipeline, SecondWarpIssuesUnderFirstWarpsMiss) {
  SmPipeline p;
  p.begin_block(2, PipelineModel{}, /*scoreboard=*/true, 0, 0);
  // Each warp: 1 txn (1 issue cycle), 1 miss (320 latency cycles).
  p.add_window(0, 1, 0, 1);
  p.add_window(1, 1, 0, 1);
  const PerfCounters ctr = drain_once(p);
  // w0 issues 0..1 (return at 321), w1 issues 1..2 (return at 322): w1's
  // whole issue plus 320 cycles of w0's wait overlap. makespan 322,
  // stall = tail 322-2 = 320, hidden = 640 - 320 = 320.
  EXPECT_EQ(ctr.modeled_cycles, 322u);
  EXPECT_EQ(ctr.stall_cycles, 320u);
  EXPECT_EQ(ctr.hidden_latency_cycles, 320u);
}

TEST(SmPipeline, WindowsOfOneWarpAreAnInOrderChain) {
  SmPipeline p;
  p.begin_block(1, PipelineModel{}, /*scoreboard=*/true, 0, 0);
  p.add_window(0, 1, 0, 1);
  p.add_window(0, 1, 0, 1);
  const PerfCounters ctr = drain_once(p);
  // Window 2 may not issue until window 1's miss returns at 321: issue
  // 0..1, stall to 321, issue 321..322, tail to 642. No other warp, so
  // every latency cycle is exposed.
  EXPECT_EQ(ctr.modeled_cycles, 642u);
  EXPECT_EQ(ctr.stall_cycles, 640u);
  EXPECT_EQ(ctr.hidden_latency_cycles, 0u);
}

TEST(SmPipeline, SerializedModeIsTheExactTransformOfPipelined) {
  const auto fill = [](SmPipeline& p, bool scoreboard) {
    p.begin_block(2, PipelineModel{}, scoreboard, 0, 0);
    p.add_window(0, 1, 0, 1);
    p.add_window(1, 1, 0, 1);
  };
  SmPipeline p;
  fill(p, true);
  const PerfCounters on = drain_once(p);
  fill(p, false);
  const PerfCounters off = drain_once(p);
  // Serialized: every window waits for its own return. modeled = sum of
  // issue and latency, stall = all latency, hidden = 0 — which is exactly
  // the pipelined counters with the hidden cycles folded back in.
  EXPECT_EQ(off.modeled_cycles, 642u);
  EXPECT_EQ(off.stall_cycles, 640u);
  EXPECT_EQ(off.hidden_latency_cycles, 0u);
  EXPECT_EQ(off.modeled_cycles, on.modeled_cycles + on.hidden_latency_cycles);
  EXPECT_EQ(off.stall_cycles, on.stall_cycles + on.hidden_latency_cycles);
}

TEST(SmPipeline, FuzzedReadyPickIsDeterministicAndKeepsTheIdentities) {
  // An irregular window mix over 4 warps; issue/latency totals by hand.
  const auto fill = [](SmPipeline& p, std::uint64_t seed) {
    p.begin_block(4, PipelineModel{}, /*scoreboard=*/true, seed, 3);
    p.add_window(0, 3, 2, 1);  // issue 3, latency 400
    p.add_window(0, 1, 1, 0);  // issue 1, latency 40
    p.add_window(1, 2, 0, 2);  // issue 2, latency 640
    p.add_window(2, 1, 0, 1);  // issue 1, latency 320
    p.add_window(3, 4, 4, 0);  // issue 4, latency 160
    p.add_window(3, 1, 0, 1);  // issue 1, latency 320
  };
  const std::uint64_t total_issue = 3 + 1 + 2 + 1 + 4 + 1;
  const std::uint64_t total_latency = 400 + 40 + 640 + 320 + 160 + 320;
  for (const std::uint64_t seed : {0ull, 42ull, 0xfeedull}) {
    SmPipeline p;
    fill(p, seed);
    const PerfCounters a = drain_once(p);
    fill(p, seed);
    const PerfCounters b = drain_once(p);
    EXPECT_EQ(a, b) << "seed=" << seed;
    // The replay identities hold for every schedule the fuzz can draw.
    EXPECT_EQ(a.modeled_cycles, total_issue + a.stall_cycles)
        << "seed=" << seed;
    EXPECT_EQ(a.stall_cycles + a.hidden_latency_cycles, total_latency)
        << "seed=" << seed;
  }
}

TEST(SmPipeline, EmptyBlockChargesNothing) {
  SmPipeline p;
  p.begin_block(4, PipelineModel{}, /*scoreboard=*/true, 0, 0);
  const PerfCounters ctr = drain_once(p);
  EXPECT_EQ(ctr, PerfCounters{});
  // Drain disarms: further windows are dropped, a second drain is a no-op.
  p.add_window(0, 5, 0, 5);
  const PerfCounters again = drain_once(p);
  EXPECT_EQ(again, PerfCounters{});
}

// ------------------------------------------- counter stream / merge plumbing

PerfCounters nonzero_cycle_counters() {
  PerfCounters c;
  c.global_loads = 11;
  c.global_transactions = 7;
  c.cache_hits = 5;
  c.cache_misses = 2;
  c.modeled_cycles = 1234567;
  c.stall_cycles = 234567;
  c.hidden_latency_cycles = 7890123;
  c.stolen_blocks = 3;
  return c;
}

TEST(PipelineCounters, StreamRoundTripCarriesTheCycleFields) {
  const PerfCounters c = nonzero_cycle_counters();
  std::stringstream ss;
  ss << c;
  PerfCounters back;
  ss >> back;
  EXPECT_EQ(c, back);
}

TEST(PipelineCounters, MergeSumsAndSubtractSaturates) {
  const PerfCounters c = nonzero_cycle_counters();
  PerfCounters sum = c;
  sum += c;
  EXPECT_EQ(sum.modeled_cycles, 2 * c.modeled_cycles);
  EXPECT_EQ(sum.stall_cycles, 2 * c.stall_cycles);
  EXPECT_EQ(sum.hidden_latency_cycles, 2 * c.hidden_latency_cycles);
  EXPECT_EQ(sum.stolen_blocks, 2 * c.stolen_blocks);
  sum -= c;
  EXPECT_EQ(sum, c);
  PerfCounters under;
  under -= c;  // all fields saturate at zero instead of wrapping
  EXPECT_EQ(under, PerfCounters{});
}

// ---------------------------------------------------- engine-level contract

TEST(PipelineEngine, ScoreboardOffIsAnExactCounterTransform) {
  const Graph g = generate_web(800, 6, 0.85, 17);
  const NuLpaResult on = nu_lpa(g, NuLpaConfig{});
  const NuLpaResult off = nu_lpa(
      g, NuLpaConfig{}.with_exec(ExecPolicy{}.with_scoreboard(false)));
  EXPECT_EQ(on.labels, off.labels);
  EXPECT_GT(on.counters.modeled_cycles, 0u);
  EXPECT_GT(on.counters.hidden_latency_cycles, 0u);
  EXPECT_EQ(off.counters.hidden_latency_cycles, 0u);
  // Fold the hidden cycles back into the scoreboard run's counters and the
  // two modes must agree byte-for-byte on the *entire* struct — the
  // scoreboard is a timing model only, so every functional counter is
  // pinned by this one comparison.
  PerfCounters folded = on.counters;
  folded.modeled_cycles += folded.hidden_latency_cycles;
  folded.stall_cycles += folded.hidden_latency_cycles;
  folded.hidden_latency_cycles = 0;
  EXPECT_EQ(folded, off.counters);
}

TEST(PipelineEngine, CycleCountersMatchAcrossBackendsAndThreads) {
  const Graph g = generate_web(800, 6, 0.85, 23);
  for (const std::uint64_t seed : {0ull, 0x5eedull}) {
    const NuLpaConfig base = NuLpaConfig{}.with_exec(
        ExecPolicy{}.with_schedule_seed(seed));
    const NuLpaResult serial = nu_lpa(g, base);
    EXPECT_GT(serial.counters.modeled_cycles, 0u);
    EXPECT_GT(serial.counters.hidden_latency_cycles, 0u);
    EXPECT_EQ(serial.counters.stolen_blocks, 0u);
    for (const unsigned t : {1u, 2u, 8u}) {
      const NuLpaResult par = nu_lpa(
          g, base.with_exec(
                 ExecPolicy::parallel(t).with_schedule_seed(seed)));
      EXPECT_EQ(serial.labels, par.labels) << "seed=" << seed
                                           << " threads=" << t;
      // Full counter equality including the cycle fields; fiber_switches
      // is the one known backend-dependent scheduler counter (see
      // mem_model_test), normalize it so everything else is pinned.
      PerfCounters adjusted = par.counters;
      adjusted.fiber_switches = serial.counters.fiber_switches;
      EXPECT_EQ(serial.counters, adjusted) << "seed=" << seed
                                           << " threads=" << t;
    }
  }
}

TEST(PipelineEngine, ScoreboardRevealsTheCoalescedLayoutGap) {
  // The latency-hiding headline the bench gates on, in miniature: on the
  // community-structured (social) shape the coalesced layout must cut
  // modeled stall cycles and modeled time, not just transactions. (Low-
  // degree shapes like road grids are issue-light and can go the other
  // way; the perf bench reports them honestly and gates on this shape.)
  const Graph g = generate_web(4000, 12, 0.85, 31, 48);
  const NuLpaResult flat =
      nu_lpa(g, NuLpaConfig{}.with_coalesced_layout(false));
  const NuLpaResult coal =
      nu_lpa(g, NuLpaConfig{}.with_coalesced_layout(true));
  EXPECT_EQ(flat.labels, coal.labels);
  ASSERT_GT(flat.counters.stall_cycles, 0u);
  EXPECT_LT(coal.counters.stall_cycles, flat.counters.stall_cycles);
  EXPECT_LT(coal.counters.modeled_cycles, flat.counters.modeled_cycles);
}

TEST(PipelineEngine, FreerunWithWorkStealingKeepsResultsValid) {
  // deterministic(false) enables the stealing path. Freerun blocks see
  // other blocks' label updates asynchronously, so the convergence path
  // (and any counter derived from it) is timing-dependent by contract;
  // assert only what is invariant: a valid clustering and that the merged
  // accounting is populated. Steals depend on runtime timing too, so
  // stolen_blocks is not asserted beyond being absent in deterministic
  // runs (covered above).
  const Graph g = generate_web(1200, 6, 0.85, 41);
  const NuLpaResult freerun = nu_lpa(
      g, NuLpaConfig{}.with_exec(
             ExecPolicy::parallel(4).with_deterministic(false)));
  EXPECT_TRUE(is_valid_membership(g, freerun.labels));
  EXPECT_GE(freerun.iterations, 1);
  EXPECT_GT(freerun.counters.edges_scanned, 0u);
  EXPECT_GT(freerun.counters.modeled_cycles, 0u);
}

}  // namespace
}  // namespace nulpa
