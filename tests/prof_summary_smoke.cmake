# End-to-end smoke of the profiling pipeline, run as a ctest script:
# generate a graph, run `nulpa run --profile` (sharded, so shard lanes get
# distinct pids), validate the capture as Chrome trace-event JSON, then
# render it with `nulpa prof-summary` and check the percentile columns
# made it out.
#
# Inputs: -DNULPA=<path to the nulpa binary> -DWORK_DIR=<scratch dir>
#         -DPYTHON=<python3 interpreter or ""> -DTOOLS_DIR=<repo tools/>

function(run_or_die)
  execute_process(COMMAND ${ARGV}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
  set(last_output "${out}" PARENT_SCOPE)
endfunction()

set(graph "${WORK_DIR}/prof_smoke.mtx")
set(profile "${WORK_DIR}/prof_smoke.json")

run_or_die(${NULPA} generate --kind web --vertices 800 --output ${graph})
run_or_die(${NULPA} run --input ${graph} --algo sharded --shards 2
           --profile ${profile})

if(NOT EXISTS ${profile})
  message(FATAL_ERROR "run --profile did not write ${profile}")
endif()

# Structural validation with a real JSON parser when the host has one:
# Perfetto-loadable envelope, every "ph":"X" event carries name/ts/dur/
# pid/tid, and the two shards surface as distinct pids (plus the host
# lane pid 0).
if(PYTHON)
  run_or_die(${PYTHON} ${TOOLS_DIR}/validate_chrome_trace.py ${profile}
             --min-pids 3)
endif()

run_or_die(${NULPA} prof-summary --input ${profile})
foreach(needle "phase" "p50 ms" "p95 ms" "p99 ms" "iteration")
  string(FIND "${last_output}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
            "prof-summary output missing \"${needle}\":\n${last_output}")
  endif()
endforeach()
