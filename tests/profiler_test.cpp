// Tests for the span profiler (observe/profiler.hpp) and the metrics
// histograms (observe/metrics.hpp): the pluggable clock pins deterministic
// timestamps, per-thread buffers lose no spans under the thread pool or the
// sharded runner, pid/tid attribution is well-formed, and — the acceptance
// bar — labels and PerfCounters are byte-identical with profiling on or
// off at any backend/thread/shard count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/nulpa.hpp"
#include "core/sharded.hpp"
#include "graph/generators.hpp"
#include "observe/metrics.hpp"
#include "observe/profiler.hpp"
#include "parallel/thread_pool.hpp"

namespace nulpa {
namespace {

const Graph& web() {
  static const Graph g = generate_web(2000, 6, 0.85, 7);
  return g;
}

/// Scriptable clock: now_ns() returns the set value, advancing by `step`
/// per call (step 0 freezes time). Atomic so pool workers may read it.
class FakeClock : public observe::ClockSource {
 public:
  explicit FakeClock(std::uint64_t start = 0, std::uint64_t step = 0)
      : now_(start), step_(step) {}
  std::uint64_t now_ns() override { return now_.fetch_add(step_); }
  void set(std::uint64_t ns) { now_.store(ns); }

 private:
  std::atomic<std::uint64_t> now_;
  std::uint64_t step_;
};

/// Installs a clock for the test body and restores the previous one on
/// exit (tests must never leak a dead clock into the process default).
class ScopedClock {
 public:
  explicit ScopedClock(observe::ClockSource* clock)
      : prev_(observe::set_clock(clock)) {}
  ~ScopedClock() { observe::set_clock(prev_); }
  ScopedClock(const ScopedClock&) = delete;
  ScopedClock& operator=(const ScopedClock&) = delete;

 private:
  observe::ClockSource* prev_;
};

/// Enables capture for the test body; disables and clears on exit so no
/// test leaks an enabled profiler into its neighbours.
class ScopedProfiling {
 public:
  ScopedProfiling() { observe::ProfilerRegistry::instance().enable(); }
  ~ScopedProfiling() {
    observe::ProfilerRegistry::instance().disable();
    observe::ProfilerRegistry::instance().clear();
  }
};

std::vector<observe::ProfSpanRecord> named(
    const std::vector<observe::ProfSpanRecord>& spans, const char* name) {
  std::vector<observe::ProfSpanRecord> out;
  for (const auto& r : spans) {
    if (std::string(r.name) == name) out.push_back(r);
  }
  return out;
}

TEST(Clock, DefaultIsSteadyAndMonotone) {
  auto& clock = observe::active_clock();
  const std::uint64_t a = clock.now_ns();
  const std::uint64_t b = clock.now_ns();
  EXPECT_LE(a, b);
}

TEST(Clock, SetClockSwapsAndRestores) {
  FakeClock fake(123);
  observe::ClockSource* prev = observe::set_clock(&fake);
  EXPECT_EQ(observe::active_clock().now_ns(), 123u);
  // nullptr restores the steady default.
  observe::set_clock(nullptr);
  EXPECT_NE(&observe::active_clock(), static_cast<observe::ClockSource*>(
                                          &fake));
  observe::set_clock(prev);
}

TEST(Clock, ScriptedClockPinsSpanTimestamps) {
  FakeClock clock(1000);
  ScopedClock guard(&clock);
  ScopedProfiling prof;
  {
    observe::ProfSpan span("scripted", "arg", 42);  // start = 1000
    clock.set(4000);
  }  // dur = 3000
  {
    observe::ProfPidScope pid(2);                  // -> pid 3
    observe::ProfSpan span("scripted.sharded");    // start = 4000
    clock.set(4500);
  }  // dur = 500
  const auto spans = observe::ProfilerRegistry::instance().drain();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_STREQ(spans[0].name, "scripted");
  EXPECT_EQ(spans[0].start_ns, 1000u);
  EXPECT_EQ(spans[0].dur_ns, 3000u);
  EXPECT_EQ(spans[0].pid, 0u);
  EXPECT_STREQ(spans[0].arg_name, "arg");
  EXPECT_EQ(spans[0].arg, 42u);
  EXPECT_STREQ(spans[1].name, "scripted.sharded");
  EXPECT_EQ(spans[1].start_ns, 4000u);
  EXPECT_EQ(spans[1].dur_ns, 500u);
  EXPECT_EQ(spans[1].pid, 3u);  // shard 2 -> lane 3
  EXPECT_EQ(spans[0].tid, spans[1].tid) << "same emitting thread";
}

TEST(Clock, SpanTimerReadsTheActiveClock) {
  FakeClock clock(5000);
  ScopedClock guard(&clock);
  observe::SpanTimer t;
  EXPECT_EQ(t.ns(), 0u);
  EXPECT_DOUBLE_EQ(t.seconds(), 0.0);
  clock.set(5'000'000'000 + 5000);
  EXPECT_DOUBLE_EQ(t.seconds(), 5.0);
  clock.set(7000);
  t.reset();
  clock.set(9000);
  EXPECT_EQ(t.ns(), 2000u);
}

TEST(Clock, FrozenClockZeroesTracerSecondsDeterministically) {
  // Satellite: the tracer's `seconds` stamps flow through the injected
  // clock, so a frozen clock makes the full event stream reproducible.
  FakeClock frozen(1'000'000);
  ScopedClock guard(&frozen);
  observe::CollectingTracer sink;
  const auto r = nu_lpa(web(), NuLpaConfig{}, &sink);
  ASSERT_FALSE(sink.events().empty());
  for (const auto& ev : sink.events()) {
    EXPECT_DOUBLE_EQ(ev.seconds, 0.0);
  }
  // Frozen time must not perturb the algorithm itself.
  EXPECT_EQ(r.labels, nu_lpa(web()).labels);
}

// ---------------------------------------------------------------------------
// Histogram.

TEST(Histogram, ExactBelowSixteen) {
  observe::Histogram h;
  for (std::uint64_t v = 0; v < 16; ++v) h.record(v);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 15u);
  EXPECT_DOUBLE_EQ(h.mean(), 7.5);
  // With one sample per exact bucket the p-th percentile lands inside
  // bucket floor(p/100 * 16); spot-check the median region.
  EXPECT_GE(h.percentile(50.0), 7.0);
  EXPECT_LE(h.percentile(50.0), 8.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 15.0);
}

TEST(Histogram, EmptyIsAllZero) {
  const observe::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  const auto s = observe::summarize(h);
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(Histogram, PercentilesClampToObservedRange) {
  observe::Histogram h;
  h.record(1'000'000);  // a single large sample
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1'000'000.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 1'000'000.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.9), 1'000'000.0);
}

TEST(Histogram, PercentileRelativeErrorIsBounded) {
  // Log bucketing with 16 sub-buckets per octave: any percentile is within
  // one sub-bucket width (~6.25% relative) of the true order statistic.
  observe::Histogram h;
  for (std::uint64_t v = 1; v <= 10'000; ++v) h.record(v * 1000);
  const double p50 = h.percentile(50.0);
  EXPECT_NEAR(p50, 5'000'000.0, 0.07 * 5'000'000.0);
  const double p99 = h.percentile(99.0);
  EXPECT_NEAR(p99, 9'900'000.0, 0.07 * 9'900'000.0);
  EXPECT_LE(h.percentile(95.0), p99);
  EXPECT_LE(p50, h.percentile(95.0));
}

TEST(Histogram, MergeMatchesCombinedRecording) {
  observe::Histogram a, b, combined;
  for (std::uint64_t v : {3u, 170u, 99'000u}) {
    a.record(v);
    combined.record(v);
  }
  for (std::uint64_t v : {1u, 42u, 7'777'777u}) {
    b.record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (double p : {10.0, 50.0, 95.0, 99.0}) {
    EXPECT_DOUBLE_EQ(a.percentile(p), combined.percentile(p));
  }
}

TEST(Metrics, RegistryRoundTripsThroughJson) {
  observe::MetricsRegistry reg;
  reg.counter("spans") = 7;
  reg.gauge("overhead_pct") = 1.25;
  reg.histogram("lat").record(100);
  reg.histogram("lat").record(300);
  std::ostringstream os;
  reg.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"spans\":7"), std::string::npos);
  EXPECT_NE(json.find("\"overhead_pct\":1.25"), std::string::npos);
  EXPECT_NE(json.find("\"lat\":{\"count\":2"), std::string::npos);
  std::ostringstream table;
  reg.print_table(table, 1e-9, "s");
  EXPECT_NE(table.str().find("p99"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Multi-threaded capture (satellite: spans from {1,2,8} threads all land).

TEST(Profiler, SpansFromManyThreadsAllDrained) {
  constexpr int kSpansPerWorker = 50;
  for (unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(threads);
    ScopedProfiling prof;
    ThreadPool pool(threads);
    pool.run([&](unsigned id) {
      for (int i = 0; i < kSpansPerWorker; ++i) {
        observe::ProfSpan span("test.work", "worker", id);
      }
    });
    observe::ProfilerRegistry::instance().disable();
    const auto spans = observe::ProfilerRegistry::instance().drain();
    EXPECT_EQ(observe::ProfilerRegistry::instance().dropped(), 0u);

    const auto work = named(spans, "test.work");
    ASSERT_EQ(work.size(),
              static_cast<std::size_t>(pool.size()) * kSpansPerWorker)
        << "no span lost or torn";
    std::set<std::uint32_t> tids;
    for (const auto& r : work) {
      EXPECT_GE(r.tid, 1u) << "tids are 1-based";
      EXPECT_EQ(r.pid, 0u) << "host lane outside any shard scope";
      tids.insert(r.tid);
    }
    EXPECT_EQ(tids.size(), static_cast<std::size_t>(pool.size()))
        << "distinct tid per worker";
    // The pool's own instrumentation attributes one pool.job span per
    // worker dispatch (background workers only; worker 0 is the caller).
    EXPECT_EQ(named(spans, "pool.job").size(),
              static_cast<std::size_t>(pool.size()) - 1);
  }
}

TEST(Profiler, DrainIsSortedAndStableAcrossEnableCycles) {
  ScopedProfiling prof;
  { observe::ProfSpan a("test.one"); }
  { observe::ProfSpan b("test.two"); }
  auto spans = observe::ProfilerRegistry::instance().drain();
  ASSERT_GE(spans.size(), 2u);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    const bool ordered =
        spans[i - 1].tid < spans[i].tid ||
        (spans[i - 1].tid == spans[i].tid &&
         spans[i - 1].start_ns <= spans[i].start_ns);
    EXPECT_TRUE(ordered) << "drain() sorts by (tid, start_ns)";
  }
  // enable() starts a fresh capture: prior spans are discarded.
  observe::ProfilerRegistry::instance().enable();
  { observe::ProfSpan c("test.three"); }
  spans = observe::ProfilerRegistry::instance().drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "test.three");
}

TEST(Profiler, DisabledSpansCostNoRecords) {
  observe::ProfilerRegistry::instance().clear();
  ASSERT_FALSE(observe::ProfilerRegistry::enabled());
  { observe::ProfSpan span("test.invisible"); }
  EXPECT_TRUE(observe::ProfilerRegistry::instance().drain().empty());
}

// ---------------------------------------------------------------------------
// Shard attribution (satellite: {1,4} shards, distinct pid per shard).

TEST(Profiler, ShardedRunsGetDistinctPidPerShard) {
  for (std::uint32_t shards : {1u, 4u}) {
    SCOPED_TRACE(shards);
    ScopedProfiling prof;
    sharded_lpa(web(), ShardedConfig{}.with_shards(shards));
    observe::ProfilerRegistry::instance().disable();
    const auto spans = observe::ProfilerRegistry::instance().drain();

    std::set<std::uint32_t> launch_pids;
    for (const auto& r : named(spans, "shard.launch")) {
      launch_pids.insert(r.pid);
    }
    std::set<std::uint32_t> expected;
    for (std::uint32_t s = 0; s < shards; ++s) expected.insert(s + 1);
    EXPECT_EQ(launch_pids, expected) << "pid = shard + 1, host stays 0";

    // Run-level spans stay on the host lane.
    const auto runs = named(spans, "run.sharded");
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].pid, 0u);
    if (shards > 1) {
      EXPECT_FALSE(named(spans, "exchange.barrier").empty());
      EXPECT_FALSE(named(spans, "comm.serialize").empty());
      EXPECT_FALSE(named(spans, "comm.apply").empty());
    }
  }
}

TEST(Profiler, ParallelBackendTagsWorkerTids) {
  // The lockstep backend schedules shards over ThreadPool::global(); size
  // it like the CLI's --threads flag does (restored below) so the test is
  // meaningful on single-CPU hosts too.
  ThreadPool::global().resize(4);
  ScopedProfiling prof;
  NuLpaConfig cfg;
  cfg.exec.backend = simt::ExecPolicy::Backend::kParallel;
  cfg.exec.threads = 4;
  nu_lpa(web(), cfg);
  ThreadPool::global().resize(0);
  observe::ProfilerRegistry::instance().disable();
  const auto spans = observe::ProfilerRegistry::instance().drain();
  std::set<std::uint32_t> tids;
  for (const auto& r : named(spans, "simt.shard_pass")) tids.insert(r.tid);
  EXPECT_GE(tids.size(), 2u) << "shard passes ran on multiple workers";
  EXPECT_FALSE(named(spans, "simt.launch").empty());
  EXPECT_FALSE(named(spans, "iteration").empty());
}

// ---------------------------------------------------------------------------
// The acceptance bar: profiling must not perturb the run.

TEST(Profiler, LabelsAndCountersByteIdenticalOnOff) {
  const auto plain = nu_lpa(web());
  {
    ScopedProfiling prof;
    const auto profiled = nu_lpa(web());
    EXPECT_EQ(plain.labels, profiled.labels);
    EXPECT_EQ(plain.iterations, profiled.iterations);
    EXPECT_EQ(plain.counters, profiled.counters);
    EXPECT_EQ(plain.hash_stats, profiled.hash_stats);
    EXPECT_FALSE(observe::ProfilerRegistry::instance().drain().empty());
  }

  // Parallel backend, multiple thread counts.
  NuLpaConfig par;
  par.exec.backend = simt::ExecPolicy::Backend::kParallel;
  for (unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(threads);
    par.exec.threads = threads;
    const auto base = nu_lpa(web(), par);
    EXPECT_EQ(base.labels, plain.labels) << "backend determinism holds";
    ScopedProfiling prof;
    const auto profiled = nu_lpa(web(), par);
    EXPECT_EQ(base.labels, profiled.labels);
    EXPECT_EQ(base.counters, profiled.counters);
  }
}

TEST(Profiler, ShardedByteIdenticalOnOff) {
  for (std::uint32_t shards : {1u, 4u}) {
    SCOPED_TRACE(shards);
    const auto cfg = ShardedConfig{}.with_shards(shards);
    const auto plain = sharded_lpa(web(), cfg);
    ScopedProfiling prof;
    const auto profiled = sharded_lpa(web(), cfg);
    EXPECT_EQ(plain.labels, profiled.labels);
    EXPECT_EQ(plain.iterations, profiled.iterations);
    EXPECT_EQ(plain.counters, profiled.counters);
  }
}

// ---------------------------------------------------------------------------
// Chrome trace writing and reading.

TEST(Profiler, ChromeTraceRoundTrip) {
  FakeClock clock(10'000);
  ScopedClock guard(&clock);
  ScopedProfiling prof;
  observe::set_thread_name("round-trip-main");
  {
    observe::ProfSpan outer("test.outer", "items", 9);
    clock.set(20'000);
    {
      observe::ProfPidScope pid(0);  // shard 0 -> pid 1
      observe::ProfSpan inner("test.inner");
      clock.set(25'000);
    }
    clock.set(40'000);
  }
  std::ostringstream os;
  observe::ProfilerRegistry::instance().write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("round-trip-main"), std::string::npos);
  EXPECT_NE(json.find("\"items\":9"), std::string::npos);

  std::istringstream is(json);
  const auto spans = observe::parse_chrome_trace(is);
  ASSERT_EQ(spans.size(), 2u);
  // ts is normalized to the earliest span and scaled to microseconds.
  const auto& outer = spans[0].name == "test.outer" ? spans[0] : spans[1];
  const auto& inner = spans[0].name == "test.outer" ? spans[1] : spans[0];
  EXPECT_EQ(outer.name, "test.outer");
  EXPECT_DOUBLE_EQ(outer.ts_us, 0.0);
  EXPECT_DOUBLE_EQ(outer.dur_us, 30.0);
  EXPECT_EQ(outer.pid, 0u);
  EXPECT_EQ(inner.name, "test.inner");
  EXPECT_DOUBLE_EQ(inner.ts_us, 10.0);
  EXPECT_DOUBLE_EQ(inner.dur_us, 5.0);
  EXPECT_EQ(inner.pid, 1u);
}

TEST(Profiler, ParseRejectsMalformedTraces) {
  std::istringstream junk("this is not json");
  EXPECT_THROW(observe::parse_chrome_trace(junk), std::runtime_error);
  std::istringstream missing(
      R"({"traceEvents":[{"ph":"X","name":"a","ts":1}]})");
  EXPECT_THROW(observe::parse_chrome_trace(missing), std::runtime_error)
      << "complete events must carry name/ts/dur/pid/tid";
  std::istringstream truncated(R"({"traceEvents":[{"ph":"X")");
  EXPECT_THROW(observe::parse_chrome_trace(truncated), std::runtime_error);
}

TEST(Profiler, ParseAcceptsBareArraysAndSkipsMetadata) {
  std::istringstream is(
      R"([{"ph":"M","name":"process_name","pid":1,"args":{"name":"x"}},)"
      R"({"ph":"X","name":"k","ts":2.5,"dur":1.25,"pid":1,"tid":3}])");
  const auto spans = observe::parse_chrome_trace(is);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "k");
  EXPECT_DOUBLE_EQ(spans[0].ts_us, 2.5);
  EXPECT_DOUBLE_EQ(spans[0].dur_us, 1.25);
  EXPECT_EQ(spans[0].pid, 1u);
  EXPECT_EQ(spans[0].tid, 3u);
}

TEST(Profiler, SummaryPrintsPercentileColumnsPerPhase) {
  std::vector<observe::ParsedSpan> spans;
  for (int i = 1; i <= 100; ++i) {
    spans.push_back({"phase.a", 0.0, static_cast<double>(i), 0, 1});
  }
  spans.push_back({"phase.b", 0.0, 10'000.0, 0, 1});
  std::ostringstream os;
  observe::print_prof_summary(spans, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("phase.a"), std::string::npos);
  EXPECT_NE(out.find("phase.b"), std::string::npos);
  EXPECT_NE(out.find("p50"), std::string::npos);
  EXPECT_NE(out.find("p95"), std::string::npos);
  EXPECT_NE(out.find("p99"), std::string::npos);
  // phase.b has more total time, so it sorts first.
  EXPECT_LT(out.find("phase.b"), out.find("phase.a"));
}

}  // namespace
}  // namespace nulpa
