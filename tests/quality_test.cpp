// Tests for modularity (hand-computed examples + invariants), NMI, and the
// membership utilities.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "quality/communities.hpp"
#include "quality/modularity.hpp"
#include "quality/nmi.hpp"

namespace nulpa {
namespace {

TEST(Modularity, TwoTrianglesByHand) {
  // Two triangles joined by one edge; communities = the triangles.
  // m = 7; intra arcs weight = 12 (6 per triangle); Sigma per community = 7.
  // Q = 12/14 - 2*(7/14)^2 = 6/7 - 1/2 = 5/14.
  GraphBuilder b(6);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
  b.add_edge(3, 4).add_edge(4, 5).add_edge(3, 5);
  b.add_edge(2, 3);
  const Graph g = b.build();
  const std::vector<Vertex> labels = {0, 0, 0, 1, 1, 1};
  EXPECT_NEAR(modularity(g, labels), 5.0 / 14.0, 1e-12);
}

TEST(Modularity, SingleCommunityIsZero) {
  const Graph g = generate_clique(5);
  const std::vector<Vertex> labels(5, 0);
  EXPECT_NEAR(modularity(g, labels), 0.0, 1e-12);
}

TEST(Modularity, SingletonsOnCliqueAreNegative) {
  const Graph g = generate_clique(5);
  std::vector<Vertex> labels(5);
  std::iota(labels.begin(), labels.end(), 0);
  EXPECT_LT(modularity(g, labels), 0.0);
}

TEST(Modularity, RingOfCliquesOptimalBeatsMerged) {
  const Graph g = generate_ring_of_cliques(8, 5);
  std::vector<Vertex> per_clique(40), merged(40);
  for (Vertex v = 0; v < 40; ++v) {
    per_clique[v] = v / 5;
    merged[v] = (v / 5) / 2;  // pairs of cliques merged
  }
  EXPECT_GT(modularity(g, per_clique), modularity(g, merged));
}

TEST(Modularity, InRange) {
  const Graph g = generate_erdos_renyi(200, 6.0, 5);
  std::vector<Vertex> labels(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) labels[v] = v % 10;
  const double q = modularity(g, labels);
  EXPECT_GE(q, -0.5);
  EXPECT_LE(q, 1.0);
}

TEST(Modularity, InvalidMembershipThrows) {
  const Graph g = generate_clique(3);
  EXPECT_THROW(modularity(g, std::vector<Vertex>{0, 1}),
               std::invalid_argument);
  EXPECT_THROW(modularity(g, std::vector<Vertex>{0, 1, 99}),
               std::invalid_argument);
}

TEST(DeltaModularity, MatchesRecomputedModularityDifference) {
  // Moving vertex 2 between the two triangle-communities of the hand
  // example must match modularity recomputation exactly.
  GraphBuilder b(6);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
  b.add_edge(3, 4).add_edge(4, 5).add_edge(3, 5);
  b.add_edge(2, 3);
  const Graph g = b.build();
  const double m = g.total_weight();

  std::vector<Vertex> before = {0, 0, 0, 1, 1, 1};
  std::vector<Vertex> after = {0, 0, 1, 1, 1, 1};
  const double direct = modularity(g, after) - modularity(g, before);

  // K_2->c: weight from vertex 2 into community 1 (edge 2-3) = 1;
  // K_2->d: into community 0 minus itself = 2; K_2 = 3.
  // Sigma_c = 7 (community {3,4,5}); Sigma_d = 7 (community {0,1,2},
  // including vertex 2 which is still a member).
  const double dq = delta_modularity(1.0, 2.0, 3.0, 7.0, 7.0, m);
  EXPECT_NEAR(dq, direct, 1e-12);
}

TEST(Communities, ValidityChecks) {
  const Graph g = generate_clique(4);
  EXPECT_TRUE(is_valid_membership(g, std::vector<Vertex>{0, 0, 3, 3}));
  EXPECT_FALSE(is_valid_membership(g, std::vector<Vertex>{0, 0, 3}));
  EXPECT_FALSE(is_valid_membership(g, std::vector<Vertex>{0, 0, 3, 4}));
}

TEST(Communities, CountAndCompact) {
  std::vector<Vertex> labels = {7, 3, 7, 9, 3};
  EXPECT_EQ(count_communities(labels), 3u);
  const Vertex k = compact_labels(labels);
  EXPECT_EQ(k, 3u);
  EXPECT_EQ(labels, (std::vector<Vertex>{0, 1, 0, 2, 1}));
}

TEST(Communities, Sizes) {
  const std::vector<Vertex> labels = {5, 5, 2, 5, 2};
  const auto sizes = community_sizes(labels);
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], 3u);  // community "5" appears first
  EXPECT_EQ(sizes[1], 2u);
}

TEST(Communities, SamePartitionIgnoresLabelValues) {
  const std::vector<Vertex> a = {0, 0, 1, 1};
  const std::vector<Vertex> b = {9, 9, 4, 4};
  const std::vector<Vertex> c = {9, 9, 4, 9};
  EXPECT_TRUE(same_partition(a, b));
  EXPECT_FALSE(same_partition(a, c));
}

TEST(Nmi, IdenticalPartitionsScoreOne) {
  const std::vector<Vertex> a = {0, 0, 1, 1, 2, 2};
  const std::vector<Vertex> b = {5, 5, 9, 9, 1, 1};
  EXPECT_NEAR(normalized_mutual_information(a, b), 1.0, 1e-12);
}

TEST(Nmi, SingleClusterVsItselfIsOne) {
  const std::vector<Vertex> a(10, 0);
  EXPECT_NEAR(normalized_mutual_information(a, a), 1.0, 1e-12);
}

TEST(Nmi, IndependentPartitionsScoreLow) {
  // a splits by half, b alternates: knowing one tells nothing about the
  // other.
  std::vector<Vertex> a(1000), b(1000);
  for (std::size_t i = 0; i < 1000; ++i) {
    a[i] = i < 500 ? 0 : 1;
    b[i] = i % 2;
  }
  EXPECT_LT(normalized_mutual_information(a, b), 0.05);
}

TEST(Nmi, SymmetricInArguments) {
  const std::vector<Vertex> a = {0, 0, 1, 1, 2, 0};
  const std::vector<Vertex> b = {1, 1, 1, 0, 0, 0};
  EXPECT_NEAR(normalized_mutual_information(a, b),
              normalized_mutual_information(b, a), 1e-12);
}

TEST(Nmi, RefinementScoresBetweenZeroAndOne) {
  const std::vector<Vertex> coarse = {0, 0, 0, 0, 1, 1, 1, 1};
  const std::vector<Vertex> fine = {0, 0, 1, 1, 2, 2, 3, 3};
  const double v = normalized_mutual_information(coarse, fine);
  EXPECT_GT(v, 0.5);
  EXPECT_LT(v, 1.0);
}

TEST(Nmi, SizeMismatchThrows) {
  EXPECT_THROW(normalized_mutual_information(std::vector<Vertex>{0},
                                             std::vector<Vertex>{0, 1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace nulpa
