// Sharding subsystem tests: ShardPlan construction invariants, the comm
// layer's changed-bitset and message encodings, and the headline
// determinism contract — sharded_lpa's final labels are byte-identical to
// the single-device run for any shard count, shard mode, execution
// backend, schedule seed, and message encoding.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <optional>
#include <vector>

#include "comm/bitset.hpp"
#include "comm/exchange.hpp"
#include "core/sharded.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "graph/stats.hpp"
#include "observe/trace.hpp"

namespace nulpa {
namespace {

Graph test_graph(Vertex n = 1500) { return generate_web(n, 6, 0.85, 99); }

// ---- ShardPlan invariants -------------------------------------------------

void check_plan(const Graph& g, const ShardPlan& plan) {
  const Vertex n = g.num_vertices();
  ASSERT_EQ(plan.owner.size(), n);
  std::vector<int> master_seen(n, 0);

  for (std::uint32_t s = 0; s < plan.num_shards; ++s) {
    const ShardPlan::Shard& sh = plan.shards[s];
    const auto locals = static_cast<Vertex>(sh.local_to_global.size());
    ASSERT_LE(sh.num_masters, locals);
    ASSERT_EQ(sh.local.num_vertices(), locals);

    // Masters form an ascending-global prefix, mirrors an ascending-global
    // suffix; ownership matches the plan's owner array.
    for (Vertex l = 0; l < locals; ++l) {
      const Vertex gv = sh.local_to_global[l];
      ASSERT_LT(gv, n);
      if (l > 0 && l != sh.num_masters) {
        EXPECT_GT(gv, sh.local_to_global[l - 1]);
      }
      if (l < sh.num_masters) {
        EXPECT_EQ(plan.owner[gv], s);
        ++master_seen[gv];
      } else {
        EXPECT_NE(plan.owner[gv], s);
      }
    }

    // Master rows reproduce the global adjacency (remapped, order and
    // weights preserved); mirror rows are stubs.
    for (Vertex l = 0; l < locals; ++l) {
      const Vertex gv = sh.local_to_global[l];
      if (l >= sh.num_masters) {
        EXPECT_EQ(sh.local.degree(l), 0u);
        continue;
      }
      const auto global_nbrs = g.neighbors(gv);
      const auto local_nbrs = sh.local.neighbors(l);
      ASSERT_EQ(local_nbrs.size(), global_nbrs.size());
      const auto gw = g.weights_of(gv);
      const auto lw = sh.local.weights_of(l);
      for (std::size_t i = 0; i < global_nbrs.size(); ++i) {
        EXPECT_EQ(sh.local_to_global[local_nbrs[i]], global_nbrs[i]);
        EXPECT_EQ(lw[i], gw[i]);
      }
    }

    // mirror_adj is a valid CSR over mirrors, listing only adjacent local
    // masters.
    const Vertex mirrors = sh.num_mirrors();
    ASSERT_EQ(sh.mirror_adj_offsets.size(), mirrors + 1u);
    for (Vertex m = 0; m < mirrors; ++m) {
      const Vertex ml = sh.num_masters + m;
      for (EdgeIndex i = sh.mirror_adj_offsets[m];
           i < sh.mirror_adj_offsets[m + 1]; ++i) {
        const Vertex master = sh.mirror_adj[i];
        ASSERT_LT(master, sh.num_masters);
        const auto nbrs = sh.local.neighbors(master);
        EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), ml), nbrs.end());
      }
    }
  }

  // Every vertex is mastered exactly once.
  for (Vertex v = 0; v < n; ++v) EXPECT_EQ(master_seen[v], 1) << v;

  // Send/recv lists are aligned pairwise: entry k of s's send list to t is
  // the same global vertex as entry k of t's recv list from s.
  for (std::uint32_t s = 0; s < plan.num_shards; ++s) {
    for (std::uint32_t t = 0; t < plan.num_shards; ++t) {
      const auto& send = plan.shards[s].send_masters[t];
      const auto& recv = plan.shards[t].recv_mirrors[s];
      ASSERT_EQ(send.size(), recv.size());
      for (std::size_t k = 0; k < send.size(); ++k) {
        ASSERT_LT(send[k], plan.shards[s].num_masters);
        ASSERT_GE(recv[k], plan.shards[t].num_masters);
        EXPECT_EQ(plan.shards[s].local_to_global[send[k]],
                  plan.shards[t].local_to_global[recv[k]]);
      }
    }
  }
}

TEST(ShardPlan, InvariantsHoldForBothModesAndManyCounts) {
  const Graph g = test_graph();
  for (const ShardMode mode : {ShardMode::kContiguous, ShardMode::kHash}) {
    for (const std::uint32_t shards : {1u, 2u, 3u, 4u, 8u}) {
      const ShardPlan plan = make_shard_plan(g, shards, mode);
      ASSERT_EQ(plan.num_shards, shards);
      ASSERT_EQ(plan.mode, mode);
      check_plan(g, plan);
    }
  }
}

TEST(ShardPlan, SingleShardHasNoMirrors) {
  const Graph g = test_graph(400);
  const ShardPlan plan = make_shard_plan(g, 1);
  EXPECT_EQ(plan.shards[0].num_masters, g.num_vertices());
  EXPECT_EQ(plan.shards[0].num_mirrors(), 0u);
  const PartitionStats ps = compute_partition_stats(g, plan);
  EXPECT_EQ(ps.cut_arcs, 0u);
  EXPECT_DOUBLE_EQ(ps.replication_factor, 1.0);
}

TEST(ShardPlan, PartitionStatsMatchPlanShape) {
  const Graph g = test_graph();
  const ShardPlan plan = make_shard_plan(g, 4, ShardMode::kHash);
  const PartitionStats ps = compute_partition_stats(g, plan);
  EXPECT_EQ(ps.shards, 4u);
  EXPECT_GT(ps.cut_arcs, 0u);
  EXPECT_LE(ps.cut_arcs, g.num_edges());
  EXPECT_GE(ps.replication_factor, 1.0);
  EXPECT_LE(ps.replication_factor, 4.0);
  std::size_t locals = 0;
  for (const auto& sh : plan.shards) locals += sh.local_to_global.size();
  EXPECT_NEAR(ps.replication_factor,
              static_cast<double>(locals) / g.num_vertices(), 1e-12);
}

TEST(ShardPlan, ModeNamesRoundTrip) {
  for (const ShardMode m : {ShardMode::kContiguous, ShardMode::kHash}) {
    ShardMode back{};
    ASSERT_TRUE(shard_mode_from_name(shard_mode_name(m), back));
    EXPECT_EQ(back, m);
  }
  ShardMode out{};
  EXPECT_FALSE(shard_mode_from_name("nope", out));
}

// ---- ChangedBitset --------------------------------------------------------

TEST(ChangedBitset, SetTestCountReset) {
  comm::ChangedBitset bs(200);
  EXPECT_EQ(bs.count(), 0u);
  bs.set(0);
  bs.set(63);
  bs.set(64);
  bs.set(199);
  EXPECT_TRUE(bs.test(63));
  EXPECT_FALSE(bs.test(62));
  EXPECT_EQ(bs.count(), 4u);
  std::vector<std::size_t> seen;
  bs.for_each_set([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 63, 64, 199}));
  bs.reset();
  EXPECT_EQ(bs.count(), 0u);
  EXPECT_FALSE(bs.test(0));
}

// ---- DeltaExchange --------------------------------------------------------

TEST(DeltaExchange, CommModeNamesRoundTrip) {
  for (const auto m :
       {comm::DataCommMode::kNoData, comm::DataCommMode::kBitsetData,
        comm::DataCommMode::kOffsetsData, comm::DataCommMode::kFullVector}) {
    comm::DataCommMode back{};
    ASSERT_TRUE(comm::comm_mode_from_name(comm::comm_mode_name(m), back));
    EXPECT_EQ(back, m);
  }
}

TEST(DeltaExchange, PickCommModeFollowsDensity) {
  using comm::DataCommMode;
  EXPECT_EQ(comm::pick_comm_mode(1000, 0, 4), DataCommMode::kNoData);
  // Dense: every slot changed — nothing sparser can beat the bare vector.
  EXPECT_EQ(comm::pick_comm_mode(1000, 1000, 4), DataCommMode::kFullVector);
  // Very sparse: offsets (4B each) beat a 125-byte bitset.
  EXPECT_EQ(comm::pick_comm_mode(1000, 3, 4), DataCommMode::kOffsetsData);
  // Mid density: the bitset's fixed cost amortizes across many entries.
  EXPECT_EQ(comm::pick_comm_mode(1000, 400, 4), DataCommMode::kBitsetData);
  // The picked mode is never beaten by another encoding's wire size.
  for (const std::size_t k : {0u, 1u, 7u, 50u, 333u, 999u, 1000u}) {
    const auto picked = comm::pick_comm_mode(1000, k, 4);
    for (const auto other :
         {DataCommMode::kBitsetData, DataCommMode::kOffsetsData,
          DataCommMode::kFullVector}) {
      EXPECT_LE(comm::message_wire_bytes(picked, 1000, k, 4),
                comm::message_wire_bytes(other, 1000, k, 4));
    }
  }
}

TEST(DeltaExchange, RoundTripEveryEncoding) {
  // Owner side: 10 values, slots {2, 5, 9} changed.
  std::vector<Vertex> values(10);
  std::iota(values.begin(), values.end(), 100);
  comm::ChangedBitset changed(10);
  for (const std::size_t i : {2u, 5u, 9u}) {
    changed.set(i);
    values[i] += 1000;
  }
  const std::vector<Vertex> send_list{9, 2, 4, 5};  // list order != id order

  for (const auto mode :
       {comm::DataCommMode::kBitsetData, comm::DataCommMode::kOffsetsData,
        comm::DataCommMode::kFullVector}) {
    simt::PerfCounters ctr;
    const auto msg = comm::batch_get<Vertex>(
        send_list, values, changed, mode, ctr);
    EXPECT_EQ(msg.mode, mode);
    const std::size_t packed =
        mode == comm::DataCommMode::kFullVector ? 4u : 3u;
    EXPECT_EQ(msg.values.size(), packed);
    EXPECT_EQ(ctr.exchanged_labels, packed);
    EXPECT_EQ(ctr.full_broadcast_labels_saved, send_list.size() - packed);
    EXPECT_EQ(ctr.exchange_bytes, msg.wire_bytes());
    EXPECT_GT(msg.wire_bytes(), 0u);

    // Receiver side: recv_list maps list positions to mirror slots 20..23.
    std::vector<Vertex> mirror(24, 0);
    for (std::size_t k = 0; k < send_list.size(); ++k) {
      mirror[20 + k] = values[send_list[k]];  // stale copy except changed
    }
    mirror[20] = 9 + 100;  // pre-change copies of the changed entries
    mirror[21] = 2 + 100;
    mirror[23] = 5 + 100;
    const std::vector<Vertex> recv_list{20, 21, 22, 23};
    std::vector<std::size_t> updated;
    simt::PerfCounters rctr;
    comm::batch_set<Vertex>(msg, recv_list,
                            std::span<Vertex>(mirror), rctr,
                            [&](std::size_t pos) { updated.push_back(pos); });
    // Every mirror copy now matches the owner, whatever the encoding.
    for (std::size_t k = 0; k < send_list.size(); ++k) {
      EXPECT_EQ(mirror[20 + k], values[send_list[k]]) << comm::comm_mode_name(mode);
    }
    // Only genuine changes count as updates or fire reactivation — the
    // full vector re-sent position 2's unchanged value and it must not
    // reactivate (encoding-invariant frontier).
    EXPECT_EQ(rctr.mirror_updates, 3u);
    EXPECT_EQ(updated, (std::vector<std::size_t>{0, 1, 3}));
  }

  // kNoData moves nothing.
  simt::PerfCounters ctr;
  comm::ChangedBitset none(10);
  const auto msg = comm::batch_get<Vertex>(
      send_list, values, none, std::nullopt, ctr);
  EXPECT_EQ(msg.mode, comm::DataCommMode::kNoData);
  EXPECT_EQ(ctr.exchanged_labels, 0u);
  EXPECT_EQ(ctr.full_broadcast_labels_saved, send_list.size());
}

// ---- Byte-identity matrix -------------------------------------------------

class ShardedIdentity : public ::testing::Test {
 protected:
  static const Graph& graph() {
    static const Graph g = test_graph();
    return g;
  }
  static const std::vector<Vertex>& reference() {
    static const std::vector<Vertex> labels =
        sharded_lpa(graph(), ShardedConfig{}).labels;
    return labels;
  }
};

TEST_F(ShardedIdentity, AnyShardCountMatchesSingleDevice) {
  for (const std::uint32_t shards : {2u, 4u, 8u}) {
    const auto r =
        sharded_lpa(graph(), ShardedConfig{}.with_shards(shards));
    EXPECT_EQ(r.labels, reference()) << shards << " shards";
    EXPECT_GT(r.counters.exchanged_labels, 0u);
    EXPECT_GT(r.counters.mirror_updates, 0u);
  }
  // Single device never touches the comm layer.
  const auto r1 = sharded_lpa(graph(), ShardedConfig{});
  EXPECT_EQ(r1.counters.exchanged_labels, 0u);
  EXPECT_EQ(r1.counters.exchange_bytes, 0u);
}

TEST_F(ShardedIdentity, HashShardingMatches) {
  const auto r = sharded_lpa(
      graph(),
      ShardedConfig{}.with_shards(4).with_shard_mode(ShardMode::kHash));
  EXPECT_EQ(r.labels, reference());
}

TEST_F(ShardedIdentity, ParallelBackendMatches) {
  for (const unsigned threads : {2u, 3u}) {
    const auto r = sharded_lpa(
        graph(), ShardedConfig{}.with_shards(4).with_exec(
                     simt::ExecPolicy::parallel(threads)));
    EXPECT_EQ(r.labels, reference()) << threads << " threads";
  }
}

TEST_F(ShardedIdentity, ScheduleFuzzMatches) {
  for (const std::uint64_t seed : {7ull, 1234ull}) {
    const auto r = sharded_lpa(
        graph(), ShardedConfig{}.with_shards(4).with_exec(
                     simt::ExecPolicy{}.with_schedule_seed(seed)));
    EXPECT_EQ(r.labels, reference()) << "seed " << seed;
  }
}

TEST_F(ShardedIdentity, EveryCommModeMatches) {
  for (const auto mode :
       {comm::DataCommMode::kBitsetData, comm::DataCommMode::kOffsetsData,
        comm::DataCommMode::kFullVector}) {
    const auto r = sharded_lpa(
        graph(), ShardedConfig{}.with_shards(4).with_comm_mode(mode));
    EXPECT_EQ(r.labels, reference()) << comm::comm_mode_name(mode);
  }
}

TEST_F(ShardedIdentity, DeltaShipsFewerLabelsThanBroadcast) {
  const auto broadcast = sharded_lpa(
      graph(), ShardedConfig{}.with_shards(4).with_comm_mode(
                   comm::DataCommMode::kFullVector));
  const auto delta =
      sharded_lpa(graph(), ShardedConfig{}.with_shards(4));
  EXPECT_EQ(broadcast.labels, delta.labels);
  EXPECT_LT(delta.counters.exchanged_labels,
            broadcast.counters.exchanged_labels);
  EXPECT_LT(delta.counters.exchange_bytes,
            broadcast.counters.exchange_bytes);
  EXPECT_GT(delta.counters.full_broadcast_labels_saved, 0u);
  // Both apply the same set of genuine mirror changes.
  EXPECT_EQ(delta.counters.mirror_updates,
            broadcast.counters.mirror_updates);
}

// ---- Tracing --------------------------------------------------------------

TEST(ShardedTrace, RunStartCarriesPartitionStatsAndExchangeEvents) {
  const Graph g = test_graph(600);
  observe::CollectingTracer tracer;
  const auto r =
      sharded_lpa(g, ShardedConfig{}.with_shards(4), &tracer);
  ASSERT_FALSE(tracer.events().empty());

  const observe::TraceEvent& head = tracer.events().front();
  ASSERT_EQ(head.kind, observe::EventKind::kRunStart);
  EXPECT_EQ(head.shards, 4u);
  EXPECT_GT(head.cut_arcs, 0u);
  EXPECT_GT(head.replication_factor, 1.0);

  std::uint64_t lpa_launches = 0, exchange_events = 0,
                traced_exchanged = 0;
  for (const auto& ev : tracer.events()) {
    if (ev.kind != observe::EventKind::kKernelLaunch) continue;
    if (ev.kernel == "lpa") ++lpa_launches;
    if (ev.kernel == "exchange") {
      ++exchange_events;
      traced_exchanged += ev.counters.exchanged_labels;
      EXPECT_EQ(ev.work_items, ev.counters.exchanged_labels);
    }
  }
  EXPECT_GT(lpa_launches, 0u);
  EXPECT_EQ(exchange_events, static_cast<std::uint64_t>(r.iterations));
  // Exchange events attribute the full comm volume.
  EXPECT_EQ(traced_exchanged, r.counters.exchanged_labels);

  const observe::TraceEvent& tail = tracer.events().back();
  ASSERT_EQ(tail.kind, observe::EventKind::kRunEnd);
  EXPECT_EQ(tail.counters, r.counters);
}

}  // namespace
}  // namespace nulpa
