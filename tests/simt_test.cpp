// Tests for the SIMT simulator: fiber context switching, barrier semantics,
// atomics, block scheduling, and — most importantly — the warp-lockstep
// property that makes community swaps reproducible (Section 4.1).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "simt/fiber.hpp"
#include "simt/grid.hpp"

namespace nulpa::simt {
namespace {

TEST(Fiber, RunsEntryToCompletion) {
  std::vector<std::byte> stack(1 << 14);
  int value = 0;
  Fiber f;
  f.init(stack.data(), stack.size(),
         [](void* arg) { *static_cast<int*>(arg) = 42; }, &value);
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(value, 42);
  EXPECT_TRUE(f.stack_intact());
}

namespace yield_test {
int step = 0;
void entry(void*) {
  step = 1;
  Fiber::yield();
  step = 2;
  Fiber::yield();
  step = 3;
}
}  // namespace yield_test

TEST(Fiber, YieldSuspendsAndResumes) {
  std::vector<std::byte> stack(1 << 14);
  Fiber f;
  yield_test::step = 0;
  f.init(stack.data(), stack.size(), &yield_test::entry, nullptr);
  f.resume();
  EXPECT_EQ(yield_test::step, 1);
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_EQ(yield_test::step, 2);
  f.resume();
  EXPECT_EQ(yield_test::step, 3);
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, CurrentIsNullOutsideFiber) {
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, StackIsReusableAfterFinish) {
  std::vector<std::byte> stack(1 << 14);
  int runs = 0;
  Fiber f;
  for (int i = 0; i < 3; ++i) {
    f.init(stack.data(), stack.size(),
           [](void* arg) { ++*static_cast<int*>(arg); }, &runs);
    f.resume();
    EXPECT_TRUE(f.finished());
  }
  EXPECT_EQ(runs, 3);
}

TEST(Fiber, LocalVariablesSurviveYield) {
  std::vector<std::byte> stack(1 << 14);
  long long out = 0;
  Fiber f;
  f.init(
      stack.data(), stack.size(),
      [](void* arg) {
        // Values in callee-saved and stack slots must survive the switch.
        long long acc = 7;
        double fp = 0.5;
        for (int i = 0; i < 10; ++i) {
          acc = acc * 3 + i;
          fp = fp * 1.5;
          Fiber::yield();
        }
        *static_cast<long long*>(arg) = acc + static_cast<long long>(fp);
      },
      &out);
  while (!f.finished()) f.resume();
  long long acc = 7;
  double fp = 0.5;
  for (int i = 0; i < 10; ++i) {
    acc = acc * 3 + i;
    fp = fp * 1.5;
  }
  EXPECT_EQ(out, acc + static_cast<long long>(fp));
}

TEST(Launch, EveryThreadRunsExactlyOnce) {
  LaunchConfig cfg;
  cfg.block_dim = 64;
  cfg.resident_blocks = 3;
  PerfCounters ctr;
  std::vector<int> hits(64 * 5, 0);
  launch(5, cfg, ctr, [&](Lane& lane) { hits[lane.global_thread()]++; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1) << "thread " << i;
  }
  EXPECT_EQ(ctr.kernel_launches, 1u);
  EXPECT_EQ(ctr.threads_run, 64u * 5);
}

TEST(Launch, ThreadAndBlockIndicesAreConsistent) {
  LaunchConfig cfg;
  cfg.block_dim = 32;
  PerfCounters ctr;
  bool ok = true;
  launch(4, cfg, ctr, [&](Lane& lane) {
    if (lane.block_dim() != 32 || lane.grid_dim() != 4) ok = false;
    if (lane.global_thread() !=
        lane.block_idx() * lane.block_dim() + lane.thread_idx()) {
      ok = false;
    }
    if (lane.warp() != lane.thread_idx() / kWarpSize) ok = false;
    if (lane.lane_in_warp() != lane.thread_idx() % kWarpSize) ok = false;
  });
  EXPECT_TRUE(ok);
}

TEST(Launch, MoreBlocksThanResidentSlotsAllRun) {
  LaunchConfig cfg;
  cfg.block_dim = 8;
  cfg.resident_blocks = 2;
  PerfCounters ctr;
  std::vector<int> block_hits(50, 0);
  launch(50, cfg, ctr, [&](Lane& lane) {
    if (lane.thread_idx() == 0) block_hits[lane.block_idx()]++;
  });
  for (int b = 0; b < 50; ++b) EXPECT_EQ(block_hits[b], 1) << b;
}

TEST(Launch, ZeroGridIsANoop) {
  LaunchConfig cfg;
  PerfCounters ctr;
  bool ran = false;
  launch(0, cfg, ctr, [&](Lane&) { ran = true; });
  EXPECT_FALSE(ran);
}

// syncthreads: no lane enters phase 2 until all lanes finished phase 1.
TEST(Barrier, SyncthreadsSeparatesPhases) {
  LaunchConfig cfg;
  cfg.block_dim = 128;
  PerfCounters ctr;
  std::vector<int> phase1(128, 0);
  bool violated = false;
  launch(1, cfg, ctr, [&](Lane& lane) {
    phase1[lane.thread_idx()] = 1;
    lane.syncthreads();
    for (int v : phase1) {
      if (v != 1) violated = true;
    }
  });
  EXPECT_FALSE(violated);
  EXPECT_EQ(ctr.block_syncs, 128u);
}

// syncwarp: all lanes of a warp complete their segment before any lane of
// that warp continues — the lockstep property.
TEST(Barrier, SyncwarpIsWarpLocal) {
  LaunchConfig cfg;
  cfg.block_dim = 64;  // two warps
  PerfCounters ctr;
  std::vector<int> progress(64, 0);
  bool violated = false;
  launch(1, cfg, ctr, [&](Lane& lane) {
    progress[lane.thread_idx()] = 1;
    lane.syncwarp();
    // After the warp barrier every lane of *my* warp must have progressed.
    const std::uint32_t base = lane.warp() * kWarpSize;
    for (std::uint32_t t = base; t < base + kWarpSize; ++t) {
      if (progress[t] != 1) violated = true;
    }
  });
  EXPECT_FALSE(violated);
}

// The motivating scenario of Section 4.1: two mutually-connected vertices in
// the same warp both read the other's old label before either commits, so
// they swap labels — livelock on real lockstep hardware. This test pins the
// simulator to that behaviour.
TEST(Lockstep, SymmetricNeighborsSwapLabels) {
  LaunchConfig cfg;
  cfg.block_dim = 32;
  PerfCounters ctr;
  std::vector<std::uint32_t> label = {0, 1};
  launch(1, cfg, ctr, [&](Lane& lane) {
    const std::uint32_t v = lane.global_thread();
    std::uint32_t adopted = 0xFFFFFFFF;
    if (v < 2) {
      adopted = label[1 - v];  // gather: read neighbour's label
    }
    lane.syncwarp();  // lockstep
    if (v < 2) {
      label[v] = adopted;  // commit
    }
  });
  // Both adopted the other's OLD label: a swap, not a merge.
  EXPECT_EQ(label[0], 1u);
  EXPECT_EQ(label[1], 0u);
}

// Without the barrier, the simulator runs lanes to completion in id order,
// so vertex 1 sees vertex 0's *new* label and they merge — the asynchronous
// behaviour a single CPU thread would produce.
TEST(Lockstep, WithoutBarrierLanesMerge) {
  LaunchConfig cfg;
  cfg.block_dim = 32;
  PerfCounters ctr;
  std::vector<std::uint32_t> label = {0, 1};
  launch(1, cfg, ctr, [&](Lane& lane) {
    const std::uint32_t v = lane.global_thread();
    if (v < 2) label[v] = label[1 - v];
  });
  EXPECT_EQ(label[0], 1u);
  EXPECT_EQ(label[1], 1u);  // merged: saw the updated label[0]
}

TEST(Barrier, EarlyReturningLanesDoNotDeadlockBarriers) {
  LaunchConfig cfg;
  cfg.block_dim = 64;
  PerfCounters ctr;
  int through = 0;
  launch(1, cfg, ctr, [&](Lane& lane) {
    if (lane.thread_idx() % 2 == 0) return;  // half the lanes exit early
    lane.syncwarp();
    lane.syncthreads();
    ++through;
  });
  EXPECT_EQ(through, 32);
}

TEST(Barrier, RepeatedBarriersKeepPhasesAligned) {
  LaunchConfig cfg;
  cfg.block_dim = 32;
  PerfCounters ctr;
  std::vector<int> counter(32, 0);
  bool violated = false;
  launch(1, cfg, ctr, [&](Lane& lane) {
    for (int round = 0; round < 10; ++round) {
      counter[lane.thread_idx()]++;
      lane.syncthreads();
      for (int c : counter) {
        if (c != round + 1) violated = true;
      }
      lane.syncthreads();
    }
  });
  EXPECT_FALSE(violated);
}

TEST(Atomics, AddAccumulatesAcrossAllThreads) {
  LaunchConfig cfg;
  cfg.block_dim = 64;
  PerfCounters ctr;
  std::uint32_t sum = 0;
  launch(4, cfg, ctr, [&](Lane& lane) {
    lane.atomic_add(sum, std::uint32_t{1});
  });
  EXPECT_EQ(sum, 256u);
  EXPECT_EQ(ctr.atomic_ops, 256u);
}

TEST(Atomics, CasClaimsSlotExactlyOnce) {
  LaunchConfig cfg;
  cfg.block_dim = 64;
  PerfCounters ctr;
  std::uint32_t slot = 0xFFFFFFFFu;
  int winners = 0;
  launch(1, cfg, ctr, [&](Lane& lane) {
    const std::uint32_t old =
        lane.atomic_cas(slot, 0xFFFFFFFFu, lane.thread_idx());
    if (old == 0xFFFFFFFFu) ++winners;
  });
  EXPECT_EQ(winners, 1);
  EXPECT_NE(slot, 0xFFFFFFFFu);
}

TEST(Atomics, FloatAndDoubleAdd) {
  LaunchConfig cfg;
  cfg.block_dim = 32;
  PerfCounters ctr;
  float fsum = 0.0f;
  double dsum = 0.0;
  launch(1, cfg, ctr, [&](Lane& lane) {
    lane.atomic_add(fsum, 0.5f);
    lane.atomic_add(dsum, 0.25);
  });
  EXPECT_FLOAT_EQ(fsum, 16.0f);
  EXPECT_DOUBLE_EQ(dsum, 8.0);
}

TEST(SharedMemory, IsZeroedPerBlockAndShared) {
  LaunchConfig cfg;
  cfg.block_dim = 16;
  cfg.shared_bytes = 64;
  cfg.resident_blocks = 1;  // blocks reuse the same arena sequentially
  PerfCounters ctr;
  bool zeroed = true;
  std::vector<std::uint32_t> block_sums(3, 0);
  launch(3, cfg, ctr, [&](Lane& lane) {
    auto* words = reinterpret_cast<std::uint32_t*>(lane.shared());
    if (lane.thread_idx() == 0) {
      for (int i = 0; i < 16; ++i) {
        if (words[i] != 0) zeroed = false;  // previous block must not leak
      }
    }
    lane.syncthreads();
    lane.atomic_add(words[0], lane.thread_idx());
    lane.syncthreads();
    if (lane.thread_idx() == 0) block_sums[lane.block_idx()] = words[0];
  });
  EXPECT_TRUE(zeroed);
  for (const auto s : block_sums) EXPECT_EQ(s, 120u);  // sum 0..15
}

TEST(Launch, GridLargerThanWarpMultipleWorks) {
  LaunchConfig cfg;
  cfg.block_dim = 48;  // deliberately not a multiple of 32: partial warp
  PerfCounters ctr;
  int through = 0;
  launch(2, cfg, ctr, [&](Lane& lane) {
    lane.syncwarp();  // the 16-lane partial warp must release too
    lane.syncthreads();
    ++through;
  });
  EXPECT_EQ(through, 96);
}

TEST(Launch, DeterministicExecutionOrder) {
  LaunchConfig cfg;
  cfg.block_dim = 32;
  auto run = [&] {
    PerfCounters ctr;
    std::vector<std::uint32_t> order;
    launch(3, cfg, ctr, [&](Lane& lane) {
      order.push_back(lane.global_thread());
      lane.syncwarp();
      order.push_back(1000 + lane.global_thread());
    });
    return order;
  };
  EXPECT_EQ(run(), run());
}

TEST(Counters, MemoryHooksAccumulate) {
  LaunchConfig cfg;
  cfg.block_dim = 8;
  PerfCounters ctr;
  launch(1, cfg, ctr, [&](Lane& lane) {
    lane.count_load(3);
    lane.count_store(2);
  });
  EXPECT_EQ(ctr.global_loads, 24u);
  EXPECT_EQ(ctr.global_stores, 16u);
}

TEST(Atomics, FloatAddSumsLaneDistinctValuesAcrossBlocks) {
  LaunchConfig cfg;
  cfg.block_dim = 96;  // 3 warps, last one partial when grid pads
  cfg.resident_blocks = 2;
  PerfCounters ctr;
  float fsum = 0.0f;
  launch(4, cfg, ctr, [&](Lane& lane) {
    // Each lane adds its own power-of-two-scaled index: exactly
    // representable, so any lost update shows as an exact mismatch.
    lane.atomic_add(fsum, 0.25f * static_cast<float>(lane.thread_idx()));
  });
  // 4 blocks * sum(0..95)/4 = 4 * 4560 * 0.25
  EXPECT_FLOAT_EQ(fsum, 4560.0f);
  EXPECT_EQ(ctr.atomic_ops, 4u * 96u);
}

TEST(Atomics, DoubleAddHandlesNegativeAndBarrierSeparatedPhases) {
  LaunchConfig cfg;
  cfg.block_dim = 64;
  PerfCounters ctr;
  double dsum = 1024.0;
  bool mid_ok = true;
  launch(1, cfg, ctr, [&](Lane& lane) {
    lane.atomic_add(dsum, -8.0);
    lane.syncthreads();
    // Phase boundary: every lane's subtraction must be visible here.
    if (dsum != 1024.0 - 64.0 * 8.0) mid_ok = false;
    lane.syncthreads();
    lane.atomic_add(dsum, 0.5);
  });
  EXPECT_TRUE(mid_ok);
  EXPECT_DOUBLE_EQ(dsum, 1024.0 - 64.0 * 8.0 + 64.0 * 0.5);
}

TEST(Session, RunDoesNotBumpKernelLaunches) {
  LaunchConfig cfg;
  cfg.block_dim = 32;
  PerfCounters ctr;
  LaunchSession session(cfg, ctr);
  int runs = 0;
  for (int i = 0; i < 3; ++i) {
    session.run(2, [&](Lane&) { ++runs; });
  }
  // Sessions let callers compose several run() windows into one logical
  // kernel; the caller decides what counts as a launch.
  EXPECT_EQ(ctr.kernel_launches, 0u);
  EXPECT_EQ(runs, 3 * 2 * 32);
  EXPECT_EQ(ctr.threads_run, 3u * 2u * 32u);
}

TEST(Session, SharedMemoryIsZeroedAcrossRuns) {
  LaunchConfig cfg;
  cfg.block_dim = 16;
  cfg.shared_bytes = 64;
  cfg.resident_blocks = 1;
  PerfCounters ctr;
  LaunchSession session(cfg, ctr);
  bool zeroed = true;
  for (int r = 0; r < 2; ++r) {
    session.run(2, [&](Lane& lane) {
      auto* words = reinterpret_cast<std::uint32_t*>(lane.shared());
      if (lane.thread_idx() == 0) {
        for (int i = 0; i < 16; ++i) {
          if (words[i] != 0) zeroed = false;  // prior run/block must not leak
        }
      }
      lane.syncthreads();
      words[lane.thread_idx()] = 0xA5A5A5A5u;  // poison for the next block
    });
  }
  EXPECT_TRUE(zeroed);
}

TEST(Barrier, ArrivalCountersReleaseMixedExitWarps) {
  // Warps where some lanes exit before the barrier and the rest sync: the
  // arrival counters must treat Done lanes as non-participants, at every
  // warp fill level (full, partial, singleton).
  LaunchConfig cfg;
  cfg.block_dim = 70;  // 2 full warps + a 6-lane partial warp
  PerfCounters ctr;
  std::vector<int> after(70, 0);
  bool phases_ok = true;
  launch(1, cfg, ctr, [&](Lane& lane) {
    if (lane.thread_idx() % 3 == 0) return;  // early exit, no barrier
    lane.syncwarp();
    after[lane.thread_idx()] = 1;
    lane.syncthreads();
    // All surviving lanes of all warps must have passed the syncwarp.
    for (std::uint32_t t = 0; t < 70; ++t) {
      if (t % 3 != 0 && after[t] != 1) phases_ok = false;
    }
  });
  EXPECT_TRUE(phases_ok);
  EXPECT_GT(ctr.barrier_checks, 0u);
}

TEST(Barrier, ReleaseVerdictsAreConstantTimePerArrival) {
  // O(1) release: every barrier arrival produces at most two counter
  // verdicts (warp + block), so barrier_checks is linearly bounded by
  // arrivals — the old scheduler's rescan was quadratic in block_dim.
  LaunchConfig cfg;
  cfg.block_dim = 256;
  PerfCounters ctr;
  launch(2, cfg, ctr, [&](Lane& lane) {
    lane.syncwarp();
    lane.syncthreads();
    lane.syncwarp();
  });
  const std::uint64_t arrivals = ctr.warp_syncs + ctr.block_syncs;
  EXPECT_LE(ctr.barrier_checks, 2 * arrivals + 2ull * 2 * 256);
}

}  // namespace
}  // namespace nulpa::simt
