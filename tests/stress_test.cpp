// Stress and property tests: randomized barrier patterns against the
// scheduler (the property: every lane finishes and data is phase-consistent
// for any barrier count), config-matrix sweeps over ν-LPA options, and
// larger randomized end-to-end runs.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/nulpa.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "quality/communities.hpp"
#include "quality/modularity.hpp"
#include "simt/grid.hpp"
#include "util/rng.hpp"

namespace nulpa {
namespace {

using simt::Lane;
using simt::LaunchConfig;
using simt::PerfCounters;

TEST(SchedulerStress, RandomBarrierCountsAllComplete) {
  // Every lane syncs a lane-dependent number of times. The scheduler's
  // release rule (done lanes count as arrived) must drain the block for
  // any such pattern.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Xoshiro256 rng(seed);
    LaunchConfig cfg;
    cfg.block_dim = 64;
    cfg.resident_blocks = 3;
    PerfCounters ctr;
    std::vector<int> syncs(64 * 7);
    for (auto& s : syncs) s = static_cast<int>(rng.next_bounded(6));
    std::vector<int> done(syncs.size(), 0);
    simt::launch(7, cfg, ctr, [&](Lane& lane) {
      const std::uint32_t id = lane.global_thread();
      for (int i = 0; i < syncs[id]; ++i) lane.syncwarp();
      done[id] = 1;
    });
    for (std::size_t i = 0; i < done.size(); ++i) {
      ASSERT_EQ(done[i], 1) << "lane " << i << " seed " << seed;
    }
  }
}

TEST(SchedulerStress, UniformBlockBarriersWithDivergentWork) {
  // Lanes do different amounts of local work between uniform block
  // barriers; the phase data must still be consistent.
  LaunchConfig cfg;
  cfg.block_dim = 96;
  PerfCounters ctr;
  std::vector<std::uint64_t> acc(96, 0);
  bool consistent = true;
  simt::launch(1, cfg, ctr, [&](Lane& lane) {
    const std::uint32_t tid = lane.thread_idx();
    for (int round = 0; round < 8; ++round) {
      std::uint64_t local = 0;
      for (std::uint32_t i = 0; i <= tid; ++i) local += i + round;
      acc[tid] += local;
      lane.syncthreads();
      // After the barrier every lane of the block has completed the round.
      for (std::uint32_t t = 0; t < 96; ++t) {
        std::uint64_t expect = 0;
        for (int r = 0; r <= round; ++r) {
          for (std::uint32_t i = 0; i <= t; ++i) expect += i + r;
        }
        if (acc[t] != expect) consistent = false;
      }
      lane.syncthreads();
    }
  });
  EXPECT_TRUE(consistent);
}

TEST(SchedulerStress, ManyTinyBlocks) {
  LaunchConfig cfg;
  cfg.block_dim = 2;
  cfg.resident_blocks = 5;
  PerfCounters ctr;
  std::uint32_t total = 0;
  simt::launch(500, cfg, ctr, [&](Lane& lane) {
    lane.syncthreads();
    lane.atomic_add(total, 1u);
  });
  EXPECT_EQ(total, 1000u);
}

TEST(SchedulerStress, ResultIndependentOfResidency) {
  // Pure data-parallel kernels (no cross-lane reads) must produce identical
  // results whatever the residency; this pins the scheduler's refill logic.
  auto run = [](std::uint32_t resident) {
    LaunchConfig cfg;
    cfg.block_dim = 32;
    cfg.resident_blocks = resident;
    PerfCounters ctr;
    std::vector<std::uint64_t> out(32 * 20);
    simt::launch(20, cfg, ctr, [&](Lane& lane) {
      out[lane.global_thread()] =
          static_cast<std::uint64_t>(lane.global_thread()) * 2654435761u;
    });
    return out;
  };
  const auto a = run(1);
  EXPECT_EQ(a, run(3));
  EXPECT_EQ(a, run(64));
}

// Config-matrix sweep: every combination of (probing x switch-degree x
// value type x pruning) must produce a valid, decent clustering. This is
// the "no configuration is broken" net under the individual feature tests.
using ConfigTuple = std::tuple<Probing, std::uint32_t, bool, bool>;
class ConfigMatrix : public ::testing::TestWithParam<ConfigTuple> {};

TEST_P(ConfigMatrix, EveryConfigurationIsSound) {
  const auto [probing, switch_degree, double_values, pruning] = GetParam();
  const Graph g = generate_web(700, 6, 0.85, 19);
  NuLpaConfig cfg;
  cfg.probing = probing;
  cfg.switch_degree = switch_degree;
  cfg.use_double_values = double_values;
  cfg.pruning = pruning;
  if (probing == Probing::kCoalesced) {
    cfg.switch_degree = 0xFFFFFFFFu;  // chaining is TPV-only
  }
  const auto r = nu_lpa(g, cfg);
  ASSERT_TRUE(is_valid_membership(g, r.labels));
  EXPECT_GT(modularity(g, r.labels), 0.4);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ConfigMatrix,
    ::testing::Combine(::testing::Values(Probing::kLinear,
                                         Probing::kQuadDouble,
                                         Probing::kCoalesced),
                       ::testing::Values(16u, 32u, 4096u),
                       ::testing::Bool(),   // double values
                       ::testing::Bool()),  // pruning
    [](const auto& info) {
      std::string name = to_string(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_sd" + std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_f64" : "_f32") +
             (std::get<3>(info.param) ? "_prune" : "_noprune");
    });

// Schedule fuzzing: the lockstep guarantees come from barriers, not from
// the default lane order, so any seed must leave kernel semantics intact.
TEST(ScheduleFuzz, BarrierPhasesHoldUnderRandomLaneOrder) {
  for (std::uint64_t seed : {1ULL, 7ULL, 1234ULL}) {
    LaunchConfig cfg;
    cfg.block_dim = 64;
    cfg.schedule_seed = seed;
    PerfCounters ctr;
    std::vector<int> phase1(64, 0);
    bool violated = false;
    simt::launch(2, cfg, ctr, [&](Lane& lane) {
      phase1[lane.thread_idx()] = 1;
      lane.syncthreads();
      for (int v : phase1) {
        if (v != 1) violated = true;
      }
      lane.syncthreads();
      phase1[lane.thread_idx()] = 1;  // reset for the next block
    });
    EXPECT_FALSE(violated) << "seed " << seed;
  }
}

TEST(ScheduleFuzz, PickLessResolvesSwapsUnderAnySchedule) {
  // The PL guarantee must not depend on the deterministic lane order: the
  // warp barrier, not the order, is what separates gathers from commits.
  for (std::uint64_t seed : {0ULL, 3ULL, 99ULL, 424242ULL}) {
    NuLpaConfig cfg;
    cfg.launch.schedule_seed = seed;
    GraphBuilder b(64);
    for (Vertex p = 0; p < 32; ++p) b.add_edge(2 * p, 2 * p + 1);
    const Graph g = b.build();
    const auto r = nu_lpa(g, cfg);
    for (Vertex p = 0; p < 32; ++p) {
      ASSERT_EQ(r.labels[2 * p], r.labels[2 * p + 1])
          << "pair " << p << " seed " << seed;
    }
  }
}

TEST(ScheduleFuzz, QualityStableAcrossSchedules) {
  const Graph g = generate_web(800, 6, 0.85, 23);
  std::vector<double> qs;
  for (std::uint64_t seed : {0ULL, 5ULL, 17ULL}) {
    NuLpaConfig cfg;
    cfg.launch.schedule_seed = seed;
    const auto r = nu_lpa(g, cfg);
    ASSERT_TRUE(is_valid_membership(g, r.labels));
    qs.push_back(modularity(g, r.labels));
  }
  for (const double q : qs) EXPECT_NEAR(q, qs[0], 0.08);
}

TEST(EndToEndStress, RandomGraphsNeverCrashOrEmitGarbage) {
  Xoshiro256 rng(2026);
  for (int trial = 0; trial < 10; ++trial) {
    const auto n = static_cast<Vertex>(50 + rng.next_bounded(1500));
    const double deg = 1.0 + rng.next_double() * 12.0;
    const Graph g = generate_erdos_renyi(n, deg, rng.next());
    const auto r = nu_lpa(g);
    ASSERT_TRUE(is_valid_membership(g, r.labels)) << "trial " << trial;
    ASSERT_GE(r.iterations, 1);
    ASSERT_LE(r.iterations, 20);
    const double q = modularity(g, r.labels);
    ASSERT_GE(q, -0.5);
    ASSERT_LE(q, 1.0);
  }
}

TEST(EndToEndStress, HeavyTailGraphExercisesBothKernels) {
  // Barabasi-Albert hubs go through the block kernel, leaves through the
  // thread kernel, in one run. Under the default fiberless executor the
  // thread kernel's footprint is fiberless lanes (its syncwarp is gone —
  // the gather/commit split); the block kernel still syncs on fibers.
  const Graph g = generate_barabasi_albert(3000, 8, 5);
  ASSERT_GT(g.max_degree(), 64u);
  const auto r = nu_lpa(g);
  EXPECT_TRUE(is_valid_membership(g, r.labels));
  EXPECT_GT(r.counters.block_syncs, 0u);
  EXPECT_GT(r.counters.fiberless_lanes, 0u);
  EXPECT_EQ(r.counters.promoted_lanes, 0u);  // split kernels never block

  // The fused-kernel fiber path still reports its warp lockstep boundary.
  const auto fused = nu_lpa(g, NuLpaConfig{}.with_exec(simt::ExecPolicy::lockstep()));
  EXPECT_GT(fused.counters.warp_syncs, 0u);
  EXPECT_EQ(fused.labels, r.labels);
}

}  // namespace
}  // namespace nulpa
