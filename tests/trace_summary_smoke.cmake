# End-to-end smoke of the observability pipeline, run as a ctest script:
# generate a graph, run `nulpa detect --trace`, then render the capture
# with `nulpa trace-summary` and check the table made it out.
#
# Inputs: -DNULPA=<path to the nulpa binary> -DWORK_DIR=<scratch dir>

function(run_or_die)
  execute_process(COMMAND ${ARGV}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
  set(last_output "${out}" PARENT_SCOPE)
endfunction()

set(graph "${WORK_DIR}/trace_smoke.mtx")
set(trace "${WORK_DIR}/trace_smoke.jsonl")

run_or_die(${NULPA} generate --kind web --vertices 800 --output ${graph})
run_or_die(${NULPA} detect --input ${graph} --algo nulpa --trace ${trace})

if(NOT EXISTS ${trace})
  message(FATAL_ERROR "detect --trace did not write ${trace}")
endif()
file(STRINGS ${trace} trace_lines)
list(LENGTH trace_lines n_events)
if(n_events LESS 3)
  message(FATAL_ERROR "trace has only ${n_events} events")
endif()

run_or_die(${NULPA} trace-summary --input ${trace})
foreach(needle "== nulpa" "iter" "total" "iterations")
  string(FIND "${last_output}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
            "trace-summary output missing \"${needle}\":\n${last_output}")
  endif()
endforeach()
