// Tests for graph transforms: connected components, membership coarsening
// (must preserve total weight and modularity), permutation, subgraphs, and
// the binary CSR round-trip.
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "graph/binary_io.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/transforms.hpp"
#include "quality/communities.hpp"
#include "quality/modularity.hpp"

namespace nulpa {
namespace {

TEST(Components, SingleComponentClique) {
  Vertex count = 0;
  const auto comp = connected_components(generate_clique(8), &count);
  EXPECT_EQ(count, 1u);
  for (const Vertex c : comp) EXPECT_EQ(c, 0u);
}

TEST(Components, DisjointCliques) {
  GraphBuilder b(9);
  for (Vertex base : {0u, 3u, 6u}) {
    b.add_edge(base, base + 1).add_edge(base + 1, base + 2).add_edge(base,
                                                                     base + 2);
  }
  Vertex count = 0;
  const auto comp = connected_components(b.build(), &count);
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(comp[0], comp[2]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[3], comp[6]);
}

TEST(Components, IsolatedVerticesAreTheirOwnComponent) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  Vertex count = 0;
  const auto comp = connected_components(b.build(), &count);
  EXPECT_EQ(count, 3u);
}

TEST(Components, EmptyGraph) {
  Vertex count = 99;
  EXPECT_TRUE(connected_components(Graph{}, &count).empty());
  EXPECT_EQ(count, 0u);
}

TEST(Coarsen, PreservesTotalWeight) {
  const Graph g = generate_ring_of_cliques(6, 5);
  std::vector<Vertex> membership(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) membership[v] = v / 5;
  const Graph coarse = coarsen_by_membership(g, membership);
  EXPECT_EQ(coarse.num_vertices(), 6u);
  EXPECT_DOUBLE_EQ(coarse.total_weight(), g.total_weight());
}

TEST(Coarsen, SelfLoopsCarryIntraWeight) {
  const Graph g = generate_clique(4);  // one community
  const std::vector<Vertex> membership(4, 0);
  const Graph coarse = coarsen_by_membership(g, membership);
  EXPECT_EQ(coarse.num_vertices(), 1u);
  // All 6 undirected unit edges collapse into a self-loop of weight 6.
  EXPECT_DOUBLE_EQ(coarse.total_weight(), 6.0);
}

TEST(Coarsen, ModularityPreservedUnderAggregation) {
  // Modularity of the coarse graph under identity membership equals the
  // original graph's modularity under the coarsening membership — the
  // invariant Louvain relies on between levels.
  const Graph g = generate_ring_of_cliques(8, 4);
  std::vector<Vertex> membership(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) membership[v] = v / 4;
  std::vector<Vertex> coarse_id;
  const Graph coarse = coarsen_by_membership(g, membership, &coarse_id);

  std::vector<Vertex> identity(coarse.num_vertices());
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_NEAR(modularity(coarse, identity), modularity(g, membership), 1e-9);
}

TEST(Coarsen, RejectsSizeMismatch) {
  EXPECT_THROW(
      coarsen_by_membership(generate_clique(3), std::vector<Vertex>{0}),
      std::invalid_argument);
}

TEST(Permute, ReverseRelabelsNeighbors) {
  const Graph g = generate_path(4);  // 0-1-2-3
  std::vector<Vertex> perm = {3, 2, 1, 0};
  const Graph p = permute_vertices(g, perm);
  // New 3 (old 0) connects to new 2 (old 1).
  ASSERT_EQ(p.degree(3), 1u);
  EXPECT_EQ(p.neighbors(3)[0], 2u);
  EXPECT_EQ(p.num_edges(), g.num_edges());
}

TEST(Permute, RejectsNonPermutation) {
  const Graph g = generate_path(3);
  EXPECT_THROW(permute_vertices(g, std::vector<Vertex>{0, 0, 1}),
               std::invalid_argument);
  EXPECT_THROW(permute_vertices(g, std::vector<Vertex>{0, 1, 5}),
               std::invalid_argument);
  EXPECT_THROW(permute_vertices(g, std::vector<Vertex>{0, 1}),
               std::invalid_argument);
}

TEST(Permute, DegreeOrderPlacesHubsFirst) {
  GraphBuilder b(5);
  // Vertex 4 is a hub of degree 4.
  for (Vertex v = 0; v < 4; ++v) b.add_edge(4, v);
  b.add_edge(0, 1);
  const Graph g = b.build();
  const auto perm = degree_order_permutation(g);
  EXPECT_EQ(perm[4], 0u) << "hub must map to new id 0";
  const Graph ordered = permute_vertices(g, perm);
  for (Vertex v = 0; v + 1 < ordered.num_vertices(); ++v) {
    EXPECT_GE(ordered.degree(v), ordered.degree(v + 1));
  }
}

TEST(Subgraph, ExtractsOneClique) {
  const Graph g = generate_ring_of_cliques(4, 5);
  std::vector<Vertex> first_clique = {0, 1, 2, 3, 4};
  const Graph sub = induced_subgraph(g, first_clique);
  EXPECT_EQ(sub.num_vertices(), 5u);
  // The 10 clique edges survive; the bridge endpoints are outside.
  EXPECT_EQ(sub.num_edges(), 20u);
}

TEST(Subgraph, OutOfRangeThrows) {
  EXPECT_THROW(
      induced_subgraph(generate_clique(3), std::vector<Vertex>{0, 99}),
      std::out_of_range);
}

TEST(BinaryIo, RoundTripsExactly) {
  const Graph g = generate_web(500, 6, 0.85, 3);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_binary_csr(ss, g);
  const Graph h = read_binary_csr(ss);
  ASSERT_EQ(h.num_vertices(), g.num_vertices());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.neighbors(v);
    const auto b = h.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
      ASSERT_EQ(a[k], b[k]);
      ASSERT_EQ(g.weights_of(v)[k], h.weights_of(v)[k]);
    }
  }
}

TEST(BinaryIo, RejectsBadMagicAndTruncation) {
  std::stringstream bad("not a csr file at all", std::ios::in | std::ios::binary);
  EXPECT_THROW(read_binary_csr(bad), std::runtime_error);

  const Graph g = generate_clique(4);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_binary_csr(ss, g);
  std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() / 2),
                              std::ios::in | std::ios::binary);
  EXPECT_THROW(read_binary_csr(truncated), std::runtime_error);
}

TEST(BinaryIo, EmptyGraphRoundTrips) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_binary_csr(ss, Graph{});
  const Graph h = read_binary_csr(ss);
  EXPECT_EQ(h.num_vertices(), 0u);
}

}  // namespace
}  // namespace nulpa
