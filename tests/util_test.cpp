// Tests for src/util: RNG determinism and distribution sanity, power-of-two
// math, and the hashtable sizing rules the paper's Figure 3 relies on.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "util/bits.hpp"
#include "util/rng.hpp"

namespace nulpa {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, IsDeterministic) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, BoundedStaysInBounds) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_bounded(17), 17u);
  }
}

TEST(Xoshiro256, BoundedCoversRange) {
  Xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, DoubleInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);  // mean of U[0,1)
}

TEST(Xoshiro256, FloatInUnitInterval) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 10000; ++i) {
    const float f = rng.next_float();
    ASSERT_GE(f, 0.0f);
    ASSERT_LT(f, 1.0f);
  }
}

TEST(Xoshiro256, SplitStreamsAreIndependentAndDeterministic) {
  Xoshiro256 base(11);
  Xoshiro256 s1 = base.split(1);
  Xoshiro256 s2 = base.split(2);
  Xoshiro256 s1_again = base.split(1);
  EXPECT_EQ(s1.next(), s1_again.next());
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += s1.next() == s2.next();
  EXPECT_LT(equal, 3);
}

TEST(Bits, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(4), 4u);
  EXPECT_EQ(next_pow2(5), 8u);
  EXPECT_EQ(next_pow2(1023), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1u << 20));
  EXPECT_FALSE(is_pow2((1u << 20) + 1));
}

TEST(Bits, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
}

// Invariant (Figure 3): capacity holds every distinct neighbour label
// (cap >= degree) and fits the reserved block of 2*degree slots.
class HashtableCapacityProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(HashtableCapacityProperty, CapacityWithinReservedBlock) {
  const std::uint32_t d = GetParam();
  const std::uint32_t cap = hashtable_capacity(d);
  EXPECT_GE(cap, d) << "capacity must hold d distinct labels";
  if (d > 0) {
    EXPECT_LE(cap, 2 * d) << "capacity must fit the reserved 2d slots";
  }
  EXPECT_EQ(cap % 2, 1u) << "Mersenne-style capacity must be odd";
}

TEST_P(HashtableCapacityProperty, SecondaryPrimeExceedsAndIsOdd) {
  const std::uint32_t d = GetParam();
  const std::uint32_t p1 = hashtable_capacity(d);
  const std::uint32_t p2 = secondary_prime(p1);
  EXPECT_GT(p2, p1);
  EXPECT_EQ(p2 % 2, 1u);
}

INSTANTIATE_TEST_SUITE_P(DegreeSweep, HashtableCapacityProperty,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u,
                                           15u, 16u, 17u, 31u, 32u, 33u, 63u,
                                           64u, 100u, 255u, 256u, 1000u,
                                           65536u));

}  // namespace
}  // namespace nulpa
