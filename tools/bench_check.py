#!/usr/bin/env python3
"""Perf gate for the paired-mode bench harnesses.

Runs the given bench binary fresh, then compares the result against a
committed reference JSON (``bench/baselines/BENCH_*.json``). A baseline
describes two runs of the same algorithm per graph — a reference mode and
an optimized mode, named by its top-level ``reference_mode`` /
``optimized_mode`` keys (defaults ``full`` / ``compacted`` keep the
original frontier baseline readable without them):

* labels must stay byte-identical between the two modes on every graph
  (a correctness property, machine-independent);
* every numeric ``headline`` ratio (optimized vs reference on the largest
  graph) must not collapse — ratios of two runs on the *same* machine
  transfer across hosts, so the gate requires the fresh ratio to keep at
  least half the baseline's headroom over 1.0;
* optimized-mode wall-clock must not regress more than --tolerance
  (default 20%) against the baseline, scaled by how much the reference
  run differs from baseline on this host (calibrates away machine speed).

Wired as the optional ctest label ``perf`` behind -DNULPA_PERF_TESTS=ON.

Usage: bench_check.py --bench <path-to-bench-binary>
                      --baseline <path-to-BENCH_*.json>
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path


def fail(msg: str) -> None:
    print(f"bench_check: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", required=True,
                    help="path to the built bench binary")
    ap.add_argument("--baseline", required=True,
                    help="committed BENCH_*.json to compare against")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed wall-time regression (fraction)")
    args = ap.parse_args()

    baseline_path = Path(args.baseline)
    if not baseline_path.is_file():
        fail(f"baseline {baseline_path} not found")
    baseline = json.loads(baseline_path.read_text())
    ref_mode = baseline.get("reference_mode", "full")
    opt_mode = baseline.get("optimized_mode", "compacted")

    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / baseline_path.name
        cmd = [args.bench, "--out", str(out),
               "--scale", str(baseline.get("scale", 4000)),
               "--seed", str(baseline.get("seed", 42))]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            fail(f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
        fresh = json.loads(out.read_text())

    if not fresh.get("labels_identical", False):
        fail(f"{opt_mode} labels diverged from {ref_mode} labels")

    head = fresh.get("headline", {})
    base_head = baseline.get("headline", {})
    # Ratio checks: every numeric headline entry is an optimized/reference
    # ratio from one machine, portable across hosts. Require the fresh
    # ratios to keep at least half the baseline's headroom over 1.0. A
    # baseline recorded on a host that could not realize a win (e.g. the
    # parallel backend on a single-core reference machine records honest
    # ratios below 1.0) has no headroom to halve — there the gate only
    # rejects a further collapse past 80% of the recorded ratio.
    base_threads = baseline.get("hardware_threads")
    host_threads = os.cpu_count()
    for key, base_ratio in base_head.items():
        if not isinstance(base_ratio, float):
            continue  # graph name, vertex count, ...
        fresh_ratio = head.get(key, 0.0)
        if base_ratio > 1.0:
            floor = 1.0 + 0.5 * (base_ratio - 1.0)
        else:
            # A sub-1.0 baseline ratio means the recording host could not
            # realize the win (e.g. too few cores for the parallel
            # backend). That is only acceptable when the baseline says so
            # explicitly: the recording bench must have emitted a
            # "subunity_note" documenting why. A sub-1.0 ratio without the
            # note is a silently collapsed baseline — hard-fail rather
            # than weaken the gate around it.
            if not baseline.get("subunity_note"):
                fail(f"headline {key} baseline ratio {base_ratio:.2f}x is "
                     f"below 1.0 but the baseline carries no "
                     f"'subunity_note' explaining it; re-record the "
                     f"baseline (the bench emits the note automatically) "
                     f"or fix the regression it hides")
            if base_threads is not None and base_threads != host_threads:
                print(f"bench_check: WARNING: headline {key} baseline ratio "
                      f"{base_ratio:.2f}x was recorded on a host with "
                      f"{base_threads} hardware threads; this host has "
                      f"{host_threads}. Applying the collapsed-ratio floor "
                      f"({0.8 * base_ratio:.2f}x) — consider re-recording "
                      f"the baseline on this host.", file=sys.stderr)
            floor = 0.8 * base_ratio
        if fresh_ratio < floor:
            fail(f"headline {key} collapsed: {fresh_ratio:.2f}x "
                 f"(baseline {base_ratio:.2f}x, floor {floor:.2f}x)")

    # Wall-time regression, calibrated by the reference run so a slower
    # machine does not trip the gate: compare optimized seconds after
    # normalizing by this host's reference / baseline reference factor.
    by_name = {g["name"]: g for g in baseline.get("graphs", [])}
    for g in fresh.get("graphs", []):
        base_g = by_name.get(g["name"])
        if base_g is None:
            continue
        host_factor = (g[ref_mode]["seconds"] /
                       max(base_g[ref_mode]["seconds"], 1e-9))
        expected = base_g[opt_mode]["seconds"] * host_factor
        actual = g[opt_mode]["seconds"]
        if actual > expected * (1.0 + args.tolerance):
            fail(f"{g['name']}: {opt_mode} wall time {actual:.3f}s exceeds "
                 f"calibrated baseline {expected:.3f}s "
                 f"by more than {args.tolerance:.0%}")
        print(f"bench_check: {g['name']}: {opt_mode} {actual:.3f}s vs "
              f"calibrated baseline {expected:.3f}s — ok")

    print("bench_check: PASS")


if __name__ == "__main__":
    main()
