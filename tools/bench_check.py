#!/usr/bin/env python3
"""Perf gate for the frontier-compaction bench.

Runs ``bench/frontier`` fresh, then compares the result against the
committed reference in ``bench/baselines/BENCH_frontier.json``:

* labels must stay byte-identical between compacted and full-range modes
  on every graph (a correctness property, machine-independent);
* the headline speedup ratios (compacted vs full-range on the largest
  graph) must not collapse — they are ratios of two runs on the *same*
  machine, so they transfer across hosts;
* compacted wall-clock must not regress more than --tolerance (default
  20%) against the baseline, scaled by how much the full-range run
  differs from baseline on this host (calibrates away machine speed).

Wired as the optional ctest label ``perf`` behind -DNULPA_PERF_TESTS=ON.

Usage: bench_check.py --bench <path-to-frontier-binary>
                      --baseline <path-to-BENCH_frontier.json>
"""

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path


def fail(msg: str) -> None:
    print(f"bench_check: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", required=True,
                    help="path to the built bench/frontier binary")
    ap.add_argument("--baseline", required=True,
                    help="committed BENCH_frontier.json to compare against")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed wall-time regression (fraction)")
    args = ap.parse_args()

    baseline_path = Path(args.baseline)
    if not baseline_path.is_file():
        fail(f"baseline {baseline_path} not found")
    baseline = json.loads(baseline_path.read_text())

    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "BENCH_frontier.json"
        cmd = [args.bench, "--out", str(out),
               "--scale", str(baseline.get("scale", 4000)),
               "--seed", str(baseline.get("seed", 42))]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            fail(f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
        fresh = json.loads(out.read_text())

    if not fresh.get("labels_identical", False):
        fail("compacted labels diverged from full-range labels")

    head = fresh.get("headline", {})
    base_head = baseline.get("headline", {})
    # Ratio checks: same-machine ratios, portable across hosts. Require the
    # fresh ratios to keep at least half the baseline's headroom over 1.0.
    for key in ("wall_clock_speedup", "fiber_switches_after_iter_3"):
        fresh_ratio = head.get(key, 0.0)
        base_ratio = base_head.get(key, 0.0)
        floor = 1.0 + 0.5 * (base_ratio - 1.0)
        if fresh_ratio < floor:
            fail(f"headline {key} collapsed: {fresh_ratio:.2f}x "
                 f"(baseline {base_ratio:.2f}x, floor {floor:.2f}x)")

    # Wall-time regression, calibrated by the full-range run so a slower
    # machine does not trip the gate: compare compacted seconds after
    # normalizing by this host's full-range / baseline full-range factor.
    by_name = {g["name"]: g for g in baseline.get("graphs", [])}
    for g in fresh.get("graphs", []):
        base_g = by_name.get(g["name"])
        if base_g is None:
            continue
        host_factor = (g["full"]["seconds"] /
                       max(base_g["full"]["seconds"], 1e-9))
        expected = base_g["compacted"]["seconds"] * host_factor
        actual = g["compacted"]["seconds"]
        if actual > expected * (1.0 + args.tolerance):
            fail(f"{g['name']}: compacted wall time {actual:.3f}s exceeds "
                 f"calibrated baseline {expected:.3f}s "
                 f"by more than {args.tolerance:.0%}")
        print(f"bench_check: {g['name']}: compacted {actual:.3f}s vs "
              f"calibrated baseline {expected:.3f}s — ok")

    print("bench_check: PASS")


if __name__ == "__main__":
    main()
