#!/usr/bin/env python3
"""Perf gate for the paired-mode bench harnesses.

Runs the given bench binary fresh, then compares the result against a
committed reference JSON (``bench/baselines/BENCH_*.json``). A baseline
describes two runs of the same algorithm per graph — a reference mode and
an optimized mode, named by its top-level ``reference_mode`` /
``optimized_mode`` keys (defaults ``full`` / ``compacted`` keep the
original frontier baseline readable without them).

Machine-independent gates:

* labels must stay byte-identical between the two modes on every graph;
* when the baseline carries a ``metrics`` object, each entry is gated by
  its declared kind::

      "metrics": {
        "delta_exchange_reduction": {"value": 9.3, "kind": "ratio",
                                     "min_value": 5.0},
        "replication_factor":       {"value": 2.15, "kind": "exact",
                                     "rel_tol": 0.001},
        "wall_clock_speedup":       {"value": 0.92, "kind": "info"}
      }

  - ``ratio``: an optimized-vs-reference improvement ratio. The fresh
    value must keep at least half the baseline's headroom over 1.0, and
    must clear ``min_value`` when one is declared (an absolute floor the
    feature promises regardless of what was recorded). A baseline ratio
    below 1.0 is a recorded regression and fails outright — record it as
    ``info`` if it is genuinely host-limited.
  - ``exact``: a deterministic quantity (work counters, partition shape).
    The fresh value must match within ``rel_tol`` (default 0 — equality).
  - ``info``: recorded for provenance, never gated (host-dependent
    quantities like wall-clock speedup on an unknown core count).

* baselines without ``metrics`` fall back to the legacy ``headline``
  gate: every numeric headline entry is treated as a ``ratio`` metric.

Machine-dependent gate:

* optimized-mode wall-clock must not regress more than --tolerance
  (default 20%) against the baseline, scaled by how much the reference
  run differs from baseline on this host (calibrates away machine speed).

Wired as the optional ctest label ``perf`` behind -DNULPA_PERF_TESTS=ON.

Usage: bench_check.py --bench <path-to-bench-binary>
                      --baseline <path-to-BENCH_*.json>
"""

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path


def fail(msg: str) -> None:
    print(f"bench_check: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_ratio(name: str, base: float, fresh: float,
                min_value=None) -> None:
    """Halving-floor gate for an improvement ratio."""
    if base < 1.0:
        fail(f"metric {name}: baseline ratio {base:.2f}x is below 1.0 — a "
             f"recorded regression cannot anchor a ratio gate; fix the "
             f"regression or record the metric with kind 'info'")
    floor = 1.0 + 0.5 * (base - 1.0)
    if min_value is not None:
        floor = max(floor, float(min_value))
    if fresh < floor:
        fail(f"metric {name} collapsed: {fresh:.2f}x "
             f"(baseline {base:.2f}x, floor {floor:.2f}x)")
    print(f"bench_check: {name}: {fresh:.2f}x vs baseline {base:.2f}x "
          f"(floor {floor:.2f}x) — ok")


def check_exact(name: str, base: float, fresh: float, rel_tol: float) -> None:
    if abs(fresh - base) > rel_tol * abs(base):
        fail(f"metric {name}: {fresh:.6g} != baseline {base:.6g} "
             f"(rel_tol {rel_tol:g})")
    print(f"bench_check: {name}: {fresh:.6g} matches baseline — ok")


def check_metrics(baseline: dict, fresh: dict) -> None:
    fresh_metrics = fresh.get("metrics", {})
    for name, spec in baseline["metrics"].items():
        kind = spec.get("kind", "ratio")
        if kind == "info":
            print(f"bench_check: {name}: "
                  f"{fresh_metrics.get(name, {}).get('value')} "
                  f"(info, not gated)")
            continue
        if name not in fresh_metrics:
            fail(f"fresh run emitted no metric {name!r}")
        fresh_value = float(fresh_metrics[name]["value"])
        base_value = float(spec["value"])
        if kind == "ratio":
            check_ratio(name, base_value, fresh_value,
                        spec.get("min_value"))
        elif kind == "exact":
            check_exact(name, base_value, fresh_value,
                        float(spec.get("rel_tol", 0.0)))
        else:
            fail(f"metric {name}: unknown kind {kind!r}")


def check_legacy_headline(baseline: dict, fresh: dict) -> None:
    head = fresh.get("headline", {})
    for key, base_ratio in baseline.get("headline", {}).items():
        if not isinstance(base_ratio, float):
            continue  # graph name, vertex count, ...
        check_ratio(f"headline {key}", base_ratio, head.get(key, 0.0))


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", required=True,
                    help="path to the built bench binary")
    ap.add_argument("--baseline", required=True,
                    help="committed BENCH_*.json to compare against")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed wall-time regression (fraction)")
    args = ap.parse_args()

    baseline_path = Path(args.baseline)
    if not baseline_path.is_file():
        fail(f"baseline {baseline_path} not found")
    baseline = json.loads(baseline_path.read_text())
    ref_mode = baseline.get("reference_mode", "full")
    opt_mode = baseline.get("optimized_mode", "compacted")

    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / baseline_path.name
        cmd = [args.bench, "--out", str(out),
               "--scale", str(baseline.get("scale", 4000)),
               "--seed", str(baseline.get("seed", 42))]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            fail(f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
        fresh = json.loads(out.read_text())

    if not fresh.get("labels_identical", False):
        fail(f"{opt_mode} labels diverged from {ref_mode} labels")

    if "metrics" in baseline:
        check_metrics(baseline, fresh)
    else:
        check_legacy_headline(baseline, fresh)

    # Wall-time regression, calibrated by the reference run so a slower
    # machine does not trip the gate: compare optimized seconds after
    # normalizing by this host's reference / baseline reference factor.
    by_name = {g["name"]: g for g in baseline.get("graphs", [])}
    for g in fresh.get("graphs", []):
        base_g = by_name.get(g["name"])
        if base_g is None:
            continue
        host_factor = (g[ref_mode]["seconds"] /
                       max(base_g[ref_mode]["seconds"], 1e-9))
        expected = base_g[opt_mode]["seconds"] * host_factor
        actual = g[opt_mode]["seconds"]
        if actual > expected * (1.0 + args.tolerance):
            fail(f"{g['name']}: {opt_mode} wall time {actual:.3f}s exceeds "
                 f"calibrated baseline {expected:.3f}s "
                 f"by more than {args.tolerance:.0%}")
        print(f"bench_check: {g['name']}: {opt_mode} {actual:.3f}s vs "
              f"calibrated baseline {expected:.3f}s — ok")

    print("bench_check: PASS")


if __name__ == "__main__":
    main()
