#!/usr/bin/env python3
"""Schema check for the committed bench baselines.

Validates every ``bench/baselines/BENCH_*.json`` against the structure
``tools/bench_check.py`` consumes, so a malformed baseline fails fast in
the default ctest run instead of surfacing as a confusing perf-gate error
months later (the perf gates themselves stay behind -DNULPA_PERF_TESTS=ON).

Checked per file:

* parses as JSON;
* ``labels_identical`` is present and is the boolean ``true`` (a committed
  baseline recording diverged labels is a recorded correctness bug);
* every ``metrics`` entry has a numeric ``value`` and a ``kind`` in
  {ratio, exact, info}; ratio entries must record >= 1.0 (bench_check
  refuses to anchor a gate on a recorded regression);
* ``graphs`` is a non-empty list whose entries carry ``name`` and, for
  both ``reference_mode`` and ``optimized_mode``, an object with a
  numeric ``seconds`` (what the calibrated wall-time gate reads);
* baselines with neither ``metrics`` nor ``headline`` are rejected —
  there would be nothing machine-independent to gate.

Usage: bench_schema_check.py <baselines-dir>
"""

import json
import numbers
import sys
from pathlib import Path


def fail(path: Path, msg: str) -> None:
    print(f"bench_schema_check: FAIL: {path.name}: {msg}", file=sys.stderr)
    sys.exit(1)


def check_file(path: Path) -> None:
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as e:
        fail(path, f"not valid JSON: {e}")

    if doc.get("labels_identical") is not True:
        fail(path, "labels_identical must be present and true")

    metrics = doc.get("metrics")
    if metrics is not None:
        if not isinstance(metrics, dict) or not metrics:
            fail(path, "metrics must be a non-empty object")
        for name, spec in metrics.items():
            if not isinstance(spec, dict):
                fail(path, f"metric {name!r} is not an object")
            if not isinstance(spec.get("value"), numbers.Real):
                fail(path, f"metric {name!r} has no numeric value")
            kind = spec.get("kind", "ratio")
            if kind not in ("ratio", "exact", "info"):
                fail(path, f"metric {name!r} has unknown kind {kind!r}")
            if kind == "ratio" and float(spec["value"]) < 1.0:
                fail(path, f"metric {name!r}: ratio {spec['value']} < 1.0 "
                           f"is a recorded regression; use kind 'info'")
    elif "headline" not in doc:
        fail(path, "needs a metrics or headline object to gate on")

    ref_mode = doc.get("reference_mode", "full")
    opt_mode = doc.get("optimized_mode", "compacted")
    graphs = doc.get("graphs")
    if not isinstance(graphs, list) or not graphs:
        fail(path, "graphs must be a non-empty list")
    for g in graphs:
        if not isinstance(g.get("name"), str):
            fail(path, "graph entry without a name")
        for mode in (ref_mode, opt_mode):
            run = g.get(mode)
            if not isinstance(run, dict):
                fail(path, f"{g['name']}: missing mode object {mode!r}")
            if not isinstance(run.get("seconds"), numbers.Real):
                fail(path, f"{g['name']}/{mode}: no numeric seconds")

    print(f"bench_schema_check: {path.name}: ok "
          f"({len(graphs)} graphs, modes {ref_mode}/{opt_mode})")


def main() -> None:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    baselines = sorted(Path(sys.argv[1]).glob("BENCH_*.json"))
    if not baselines:
        print(f"bench_schema_check: FAIL: no BENCH_*.json under "
              f"{sys.argv[1]}", file=sys.stderr)
        sys.exit(1)
    for path in baselines:
        check_file(path)
    print(f"bench_schema_check: PASS ({len(baselines)} baselines)")


if __name__ == "__main__":
    main()
