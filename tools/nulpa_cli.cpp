// nulpa — command-line community detection.
//
// Usage:
//   nulpa detect   --input g.mtx [--format mtx|edges|bin|metis] [--algo nulpa|flpa|
//                  plp|gve|gunrock|louvain|seq] [--output labels.txt]
//                  [--pick-less 4] [--cross-check 0] [--switch-degree 32]
//                  [--probing quad-double|linear|quadratic|double|coalesced]
//                  [--tolerance 0.05] [--max-iterations 20] [--double-values]
//   nulpa convert  --input g.mtx --output g.bin       (to binary CSR)
//   nulpa info     --input g.mtx                      (graph statistics)
//   nulpa generate --kind web|social|road|kmer|er --vertices N --output g.mtx
//
// Exit code 0 on success, 1 on usage errors, 2 on IO/algorithm failure.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "baselines/flpa.hpp"
#include "baselines/gunrock_lpa.hpp"
#include "baselines/gve_lpa.hpp"
#include "baselines/louvain.hpp"
#include "baselines/plp.hpp"
#include "baselines/seq_lpa.hpp"
#include "core/nulpa.hpp"
#include "graph/binary_io.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/metis_io.hpp"
#include "graph/stats.hpp"
#include "perfmodel/machine.hpp"
#include "quality/communities.hpp"
#include "quality/metrics.hpp"
#include "quality/modularity.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

using namespace nulpa;

int usage() {
  std::fprintf(stderr,
               "usage: nulpa <detect|convert|info|generate> --input FILE "
               "[options]\n"
               "run `nulpa` with no arguments for the full option list "
               "(see the header of tools/nulpa_cli.cpp)\n");
  return 1;
}

Graph load(const CliArgs& args) {
  const std::string path = args.get("input", "");
  if (path.empty()) throw std::runtime_error("--input is required");
  std::string format = args.get("format", "");
  if (format.empty()) {
    if (path.ends_with(".mtx")) {
      format = "mtx";
    } else if (path.ends_with(".bin")) {
      format = "bin";
    } else if (path.ends_with(".graph")) {
      format = "metis";
    } else {
      format = "edges";
    }
  }
  if (format == "mtx") return read_matrix_market_file(path);
  if (format == "bin") return read_binary_csr_file(path);
  if (format == "metis") return read_metis_file(path);
  if (format == "edges") return read_edge_list_file(path);
  throw std::runtime_error("unknown --format " + format);
}

Probing parse_probing(const std::string& name) {
  if (name == "linear") return Probing::kLinear;
  if (name == "quadratic") return Probing::kQuadratic;
  if (name == "double") return Probing::kDouble;
  if (name == "quad-double") return Probing::kQuadDouble;
  if (name == "coalesced") return Probing::kCoalesced;
  throw std::runtime_error("unknown --probing " + name);
}

int cmd_detect(const CliArgs& args) {
  const Graph g = load(args);
  const std::string algo = args.get("algo", "nulpa");

  std::vector<Vertex> labels;
  int iterations = 0;
  double seconds = 0.0;
  std::string modeled_note;

  if (algo == "nulpa") {
    NuLpaConfig cfg;
    cfg.swap.pick_less_every = static_cast<int>(args.get_int("pick-less", 4));
    cfg.swap.cross_check_every =
        static_cast<int>(args.get_int("cross-check", 0));
    cfg.switch_degree =
        static_cast<std::uint32_t>(args.get_int("switch-degree", 32));
    cfg.probing = parse_probing(args.get("probing", "quad-double"));
    cfg.tolerance = args.get_double("tolerance", 0.05);
    cfg.max_iterations = static_cast<int>(args.get_int("max-iterations", 20));
    cfg.use_double_values = args.get_bool("double-values", false);
    cfg.shared_memory_tables = args.get_bool("shared-tables", false);
    const auto r = nu_lpa(g, cfg);
    labels = r.labels;
    iterations = r.iterations;
    seconds = r.seconds;
    modeled_note = "modeled A100 time: " +
                   std::to_string(modeled_gpu_seconds(a100(), r.counters)) +
                   " s";
  } else if (algo == "flpa") {
    const auto r = flpa(g, FlpaConfig{});
    labels = r.labels;
    iterations = r.iterations;
    seconds = r.seconds;
  } else if (algo == "plp") {
    const auto r = plp(g, PlpConfig{});
    labels = r.labels;
    iterations = r.iterations;
    seconds = r.seconds;
  } else if (algo == "gve") {
    const auto r = gve_lpa(g, GveLpaConfig{});
    labels = r.labels;
    iterations = r.iterations;
    seconds = r.seconds;
  } else if (algo == "gunrock") {
    const auto r = gunrock_lpa(g, GunrockLpaConfig{});
    labels = r.labels;
    iterations = r.iterations;
    seconds = r.seconds;
  } else if (algo == "louvain") {
    const auto r = louvain(g, LouvainConfig{});
    labels = r.labels;
    iterations = r.iterations;
    seconds = r.seconds;
  } else if (algo == "seq") {
    const auto r = seq_lpa(g, SeqLpaConfig{});
    labels = r.labels;
    iterations = r.iterations;
    seconds = r.seconds;
  } else {
    throw std::runtime_error("unknown --algo " + algo);
  }

  std::printf("algorithm:   %s\n", algo.c_str());
  std::printf("graph:       %u vertices, %llu arcs\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));
  std::printf("iterations:  %d\n", iterations);
  std::printf("runtime:     %.4f s%s%s\n", seconds,
              modeled_note.empty() ? "" : "  |  ", modeled_note.c_str());
  std::printf("communities: %u\n", count_communities(labels));
  std::printf("modularity:  %.4f\n", modularity(g, labels));
  std::printf("coverage:    %.4f\n", coverage(g, labels));
  std::printf("edge cut:    %.1f\n", edge_cut(g, labels));

  if (const std::string out = args.get("output", ""); !out.empty()) {
    std::ofstream os(out);
    if (!os) throw std::runtime_error("cannot open for write: " + out);
    for (std::size_t v = 0; v < labels.size(); ++v) {
      os << v << ' ' << labels[v] << '\n';
    }
    std::printf("labels written to %s\n", out.c_str());
  }
  return 0;
}

int cmd_convert(const CliArgs& args) {
  const Graph g = load(args);
  const std::string out = args.get("output", "");
  if (out.empty()) throw std::runtime_error("--output is required");
  Timer t;
  if (out.ends_with(".bin")) {
    write_binary_csr_file(out, g);
  } else if (out.ends_with(".graph")) {
    write_metis_file(out, g);
  } else {
    write_matrix_market_file(out, g);
  }
  std::printf("wrote %s (%u vertices, %llu arcs) in %.3f s\n", out.c_str(),
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()),
              t.seconds());
  return 0;
}

int cmd_info(const CliArgs& args) {
  const Graph g = load(args);
  const GraphStats s = compute_stats(g);
  std::printf("vertices:     %u\n", s.vertices);
  std::printf("arcs:         %llu\n", static_cast<unsigned long long>(s.edges));
  std::printf("avg degree:   %.2f\n", s.avg_degree);
  std::printf("max degree:   %u\n", s.max_degree);
  std::printf("total weight: %.1f\n", s.total_weight);
  std::printf("symmetric:    %s\n", g.is_symmetric() ? "yes" : "no");
  return 0;
}

int cmd_generate(const CliArgs& args) {
  const std::string kind = args.get("kind", "web");
  const auto n = static_cast<Vertex>(args.get_int("vertices", 10000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  Graph g;
  if (kind == "web") {
    g = generate_web(n, 8, 0.85, seed);
  } else if (kind == "social") {
    g = generate_web(n, 12, 0.85, seed, 48);
  } else if (kind == "road") {
    const auto side = static_cast<Vertex>(std::sqrt(double(n)));
    g = generate_road(side, side, 0.0, seed);
  } else if (kind == "kmer") {
    g = generate_kmer(n, 0.03, seed);
  } else if (kind == "er") {
    g = generate_erdos_renyi(n, args.get_double("avg-degree", 8.0), seed);
  } else {
    throw std::runtime_error("unknown --kind " + kind);
  }
  const std::string out = args.get("output", "");
  if (out.empty()) throw std::runtime_error("--output is required");
  if (out.ends_with(".bin")) {
    write_binary_csr_file(out, g);
  } else if (out.ends_with(".graph")) {
    write_metis_file(out, g);
  } else {
    write_matrix_market_file(out, g);
  }
  std::printf("generated %s graph: %u vertices, %llu arcs -> %s\n",
              kind.c_str(), g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()), out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const CliArgs args(argc - 1, argv + 1);
  try {
    if (command == "detect") return cmd_detect(args);
    if (command == "convert") return cmd_convert(args);
    if (command == "info") return cmd_info(args);
    if (command == "generate") return cmd_generate(args);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nulpa %s: %s\n", command.c_str(), e.what());
    return 2;
  }
}
