// nulpa — command-line community detection.
//
// Usage:
//   nulpa detect   --input g.mtx [--format mtx|edges|bin|metis]
//                  [--algo nulpa|sharded|gve|flpa|plp|seq|gunrock|louvain]
//                  [--output labels.txt] [--pick-less 4] [--cross-check 0]
//                  [--switch-degree 32] [--probing quad-double|linear|
//                  quadratic|double|coalesced] [--tolerance 0.05]
//                  [--max-iterations 20] [--double-values] [--shared-tables]
//                  [--pruning true|false] [--seed N]
//                  [--parallel-sim] [--threads N]
//                  [--shards N] [--shard-mode contiguous|hash]
//                  [--comm-mode auto|none|bitset|offsets|full]
//                  [--trace run.jsonl] [--metrics table.txt]
//                  [--profile prof.json] [--metrics-histograms]
//                  ("run" is accepted as an alias of "detect")
//   nulpa trace-summary --input run.jsonl    (per-iteration table from a
//                                             --trace capture; "-" = stdin)
//   nulpa prof-summary  --input prof.json    (per-phase p50/p95/p99 table
//                                             from a --profile capture)
//   nulpa convert  --input g.mtx --output g.bin       (to binary CSR)
//   nulpa info     --input g.mtx                      (graph statistics)
//   nulpa generate --kind web|social|road|kmer|er --vertices N --output g.mtx
//
// --trace writes one JSON object per event (run/iteration boundaries,
// kernel launches, counter deltas); --metrics writes the human-readable
// per-iteration table. "-" sends either stream to stdout. The trace schema
// is documented in DESIGN.md ("Trace schema").
//
// --profile enables the host-side span profiler and writes a Chrome
// trace-event JSON timeline (open in Perfetto / chrome://tracing; one
// process lane per shard, one thread lane per simulator worker).
// --metrics-histograms prints per-phase latency percentiles from the same
// spans. Both are pure observation: labels and counters are byte-identical
// with profiling on or off. See DESIGN.md "Profiling & metrics".
//
// --shards N > 1 simulates N devices: the graph is edge-cut (--shard-mode),
// each shard runs its own simulated device, and only changed labels cross
// shard boundaries at iteration barriers (--comm-mode pins the message
// encoding; "auto" picks per message by density). With the default --algo
// this routes to the "sharded" algorithm automatically; final labels are
// byte-identical for any shard count. See DESIGN.md "Sharding & delta
// exchange".
//
// --parallel-sim runs the SIMT simulator's sharded multi-threaded backend;
// --threads N fixes its worker count (0 = hardware concurrency; N > 1
// implies --parallel-sim). Labels are byte-identical to the serial
// simulation for any thread count (deterministic mode is the default), and
// --seed also seeds the simulator's schedule shuffle. See DESIGN.md
// "Parallel backend & ExecPolicy".
//
// Exit code 0 on success, 1 on usage errors, 2 on IO/algorithm failure.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "core/runner.hpp"
#include "graph/binary_io.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/metis_io.hpp"
#include "graph/stats.hpp"
#include "observe/profiler.hpp"
#include "observe/trace.hpp"
#include "perfmodel/machine.hpp"
#include "quality/communities.hpp"
#include "quality/metrics.hpp"
#include "quality/modularity.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

using namespace nulpa;

int usage() {
  std::fprintf(stderr,
               "usage: nulpa <detect|trace-summary|prof-summary|convert|"
               "info|generate> --input FILE [options]\n"
               "run `nulpa` with no arguments for the full option list "
               "(see the header of tools/nulpa_cli.cpp)\n");
  return 1;
}

Graph load(const CliArgs& args) {
  const std::string path = args.get("input", "");
  if (path.empty()) throw std::runtime_error("--input is required");
  std::string format = args.get("format", "");
  if (format.empty()) {
    if (path.ends_with(".mtx")) {
      format = "mtx";
    } else if (path.ends_with(".bin")) {
      format = "bin";
    } else if (path.ends_with(".graph")) {
      format = "metis";
    } else {
      format = "edges";
    }
  }
  if (format == "mtx") return read_matrix_market_file(path);
  if (format == "bin") return read_binary_csr_file(path);
  if (format == "metis") return read_metis_file(path);
  if (format == "edges") return read_edge_list_file(path);
  throw std::runtime_error("unknown --format " + format);
}

/// Opens `path` for writing, or aliases stdout when path is "-".
std::ostream& open_sink(std::ofstream& file, const std::string& path) {
  if (path == "-") return std::cout;
  file.open(path);
  if (!file) throw std::runtime_error("cannot open for write: " + path);
  return file;
}

int cmd_detect(const CliArgs& args) {
  const Graph g = load(args);
  CommonFlags flags = parse_common_flags(args);
  if (flags.shards > 1 && flags.algo == "nulpa" && !args.has("algo")) {
    std::printf("note: --shards %u selects --algo sharded\n", flags.shards);
    flags.algo = "sharded";
  }

  const AlgorithmInfo* algo = find_algorithm(flags.algo);
  if (algo == nullptr) {
    throw std::runtime_error("unknown --algo " + flags.algo +
                             " (choose from: " + algorithm_names() + ")");
  }

  // Observability sinks; both flags may be set at once (fan-out).
  std::ofstream trace_file, metrics_file;
  std::optional<observe::JsonlEmitter> jsonl;
  std::optional<observe::TableEmitter> table;
  observe::MultiTracer tracer;
  if (!flags.trace_file.empty()) {
    jsonl.emplace(open_sink(trace_file, flags.trace_file), a100());
    tracer.add(&*jsonl);
  }
  if (!flags.metrics_file.empty()) {
    table.emplace(open_sink(metrics_file, flags.metrics_file), a100());
    tracer.add(&*table);
  }

  RunOptions opts = run_options_from_flags(flags);
  apply_threads(opts.exec);
  if (tracer.enabled()) opts.tracer = &tracer;

  // Span profiling (host-side only; labels/counters unaffected).
  const bool profiling =
      !opts.profile_file.empty() || opts.metrics_histograms;
  if (profiling) observe::ProfilerRegistry::instance().enable();

  const RunReport r = algo->run(g, opts);
  if (table) table->flush();
  if (profiling) {
    auto& prof = observe::ProfilerRegistry::instance();
    prof.disable();
    if (!opts.profile_file.empty()) {
      std::ofstream pf;
      prof.write_chrome_trace(open_sink(pf, opts.profile_file));
    }
    if (opts.metrics_histograms) {
      std::vector<observe::ParsedSpan> spans;
      for (const observe::ProfSpanRecord& rec : prof.drain()) {
        observe::ParsedSpan s;
        s.name = rec.name;
        s.ts_us = static_cast<double>(rec.start_ns) / 1000.0;
        s.dur_us = static_cast<double>(rec.dur_ns) / 1000.0;
        s.pid = rec.pid;
        s.tid = rec.tid;
        spans.push_back(std::move(s));
      }
      observe::print_prof_summary(spans, std::cout);
    }
  }

  std::printf("algorithm:   %s\n", flags.algo.c_str());
  std::printf("graph:       %u vertices, %llu arcs\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));
  std::printf("iterations:  %d\n", r.iterations);
  std::printf("runtime:     %.4f s (this host)\n", r.seconds);
  std::printf("modeled:     %.6f s  [%.*s]\n", r.modeled_seconds,
              static_cast<int>(algo->description.size()),
              algo->description.data());
  std::printf("communities: %u\n", count_communities(r.labels));
  std::printf("modularity:  %.4f\n", modularity(g, r.labels));
  std::printf("coverage:    %.4f\n", coverage(g, r.labels));
  std::printf("edge cut:    %.1f\n", edge_cut(g, r.labels));
  if (!flags.trace_file.empty() && flags.trace_file != "-") {
    std::printf("trace:       %s\n", flags.trace_file.c_str());
  }
  if (!flags.metrics_file.empty() && flags.metrics_file != "-") {
    std::printf("metrics:     %s\n", flags.metrics_file.c_str());
  }
  if (!flags.profile_file.empty() && flags.profile_file != "-") {
    std::printf("profile:     %s\n", flags.profile_file.c_str());
  }

  if (const std::string out = args.get("output", ""); !out.empty()) {
    std::ofstream os(out);
    if (!os) throw std::runtime_error("cannot open for write: " + out);
    for (std::size_t v = 0; v < r.labels.size(); ++v) {
      os << v << ' ' << r.labels[v] << '\n';
    }
    std::printf("labels written to %s\n", out.c_str());
  }
  return 0;
}

int cmd_trace_summary(const CliArgs& args) {
  const std::string path = args.get("input", "");
  if (path.empty()) throw std::runtime_error("--input is required");
  std::vector<observe::TraceEvent> events;
  if (path == "-") {
    events = observe::parse_trace_jsonl(std::cin);
  } else {
    std::ifstream is(path);
    if (!is) throw std::runtime_error("cannot open: " + path);
    events = observe::parse_trace_jsonl(is);
  }
  if (events.empty()) throw std::runtime_error("no trace events in " + path);
  // The JSONL already carries modeled seconds (m_total_s) when the capture
  // had a machine model; don't re-model on read.
  observe::print_iteration_table(events, std::cout, std::nullopt);
  return 0;
}

int cmd_prof_summary(const CliArgs& args) {
  const std::string path = args.get("input", "");
  if (path.empty()) throw std::runtime_error("--input is required");
  std::vector<observe::ParsedSpan> spans;
  if (path == "-") {
    spans = observe::parse_chrome_trace(std::cin);
  } else {
    std::ifstream is(path);
    if (!is) throw std::runtime_error("cannot open: " + path);
    spans = observe::parse_chrome_trace(is);
  }
  if (spans.empty()) throw std::runtime_error("no spans in " + path);
  observe::print_prof_summary(spans, std::cout);
  return 0;
}

int cmd_convert(const CliArgs& args) {
  const Graph g = load(args);
  const std::string out = args.get("output", "");
  if (out.empty()) throw std::runtime_error("--output is required");
  Timer t;
  if (out.ends_with(".bin")) {
    write_binary_csr_file(out, g);
  } else if (out.ends_with(".graph")) {
    write_metis_file(out, g);
  } else {
    write_matrix_market_file(out, g);
  }
  std::printf("wrote %s (%u vertices, %llu arcs) in %.3f s\n", out.c_str(),
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()),
              t.seconds());
  return 0;
}

int cmd_info(const CliArgs& args) {
  const Graph g = load(args);
  const GraphStats s = compute_stats(g);
  std::printf("vertices:     %u\n", s.vertices);
  std::printf("arcs:         %llu\n", static_cast<unsigned long long>(s.edges));
  std::printf("avg degree:   %.2f\n", s.avg_degree);
  std::printf("max degree:   %u\n", s.max_degree);
  std::printf("total weight: %.1f\n", s.total_weight);
  std::printf("symmetric:    %s\n", g.is_symmetric() ? "yes" : "no");
  return 0;
}

int cmd_generate(const CliArgs& args) {
  const std::string kind = args.get("kind", "web");
  const auto n = static_cast<Vertex>(args.get_int("vertices", 10000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  Graph g;
  if (kind == "web") {
    g = generate_web(n, 8, 0.85, seed);
  } else if (kind == "social") {
    g = generate_web(n, 12, 0.85, seed, 48);
  } else if (kind == "road") {
    const auto side = static_cast<Vertex>(std::sqrt(double(n)));
    g = generate_road(side, side, 0.0, seed);
  } else if (kind == "kmer") {
    g = generate_kmer(n, 0.03, seed);
  } else if (kind == "er") {
    g = generate_erdos_renyi(n, args.get_double("avg-degree", 8.0), seed);
  } else {
    throw std::runtime_error("unknown --kind " + kind);
  }
  const std::string out = args.get("output", "");
  if (out.empty()) throw std::runtime_error("--output is required");
  if (out.ends_with(".bin")) {
    write_binary_csr_file(out, g);
  } else if (out.ends_with(".graph")) {
    write_metis_file(out, g);
  } else {
    write_matrix_market_file(out, g);
  }
  std::printf("generated %s graph: %u vertices, %llu arcs -> %s\n",
              kind.c_str(), g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()), out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const CliArgs args(argc - 1, argv + 1);
  try {
    if (command == "detect" || command == "run") return cmd_detect(args);
    if (command == "trace-summary") return cmd_trace_summary(args);
    if (command == "prof-summary") return cmd_prof_summary(args);
    if (command == "convert") return cmd_convert(args);
    if (command == "info") return cmd_info(args);
    if (command == "generate") return cmd_generate(args);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nulpa %s: %s\n", command.c_str(), e.what());
    return 2;
  }
}
