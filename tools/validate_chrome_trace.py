#!/usr/bin/env python3
"""Validates a profiler capture as Chrome trace-event JSON.

The contract `nulpa run --profile out.json` promises: the file is a single
JSON document Perfetto / chrome://tracing will accept — a ``traceEvents``
array whose complete events ("ph":"X") all carry name/ts/dur/pid/tid, with
process/thread metadata ("ph":"M") naming the lanes.

Usage: validate_chrome_trace.py <trace.json> [--min-pids N] [--min-tids N]
"""

import argparse
import json
import numbers
import sys


def fail(msg: str) -> None:
    print(f"validate_chrome_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace")
    ap.add_argument("--min-pids", type=int, default=1,
                    help="require at least N distinct pids across spans")
    ap.add_argument("--min-tids", type=int, default=1,
                    help="require at least N distinct tids across spans")
    args = ap.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{args.trace}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("no traceEvents array")

    spans = [e for e in events if e.get("ph") == "X"]
    if not spans:
        fail("no complete ('ph':'X') events")
    for i, e in enumerate(spans):
        for key in ("name", "ts", "dur", "pid", "tid"):
            if key not in e:
                fail(f"span {i} ({e.get('name', '?')}) missing {key!r}")
        for key in ("ts", "dur", "pid", "tid"):
            if not isinstance(e[key], numbers.Real):
                fail(f"span {i}: {key} is not numeric")

    meta = [e for e in events if e.get("ph") == "M"]
    names = {e.get("name") for e in meta}
    if "process_name" not in names or "thread_name" not in names:
        fail("missing process_name/thread_name metadata events")

    pids = sorted({e["pid"] for e in spans})
    tids = sorted({e["tid"] for e in spans})
    if len(pids) < args.min_pids:
        fail(f"expected >= {args.min_pids} distinct pids, got {pids}")
    if len(tids) < args.min_tids:
        fail(f"expected >= {args.min_tids} distinct tids, got {tids}")

    print(f"validate_chrome_trace: ok: {len(spans)} spans, "
          f"pids={pids}, tids={tids}, "
          f"phases={len({e['name'] for e in spans})}")


if __name__ == "__main__":
    main()
